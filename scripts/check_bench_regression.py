#!/usr/bin/env python
"""Gate freshly measured BENCH_*.json files against committed baselines.

Usage::

    # one file pair
    python scripts/check_bench_regression.py BASELINE.json FRESH.json

    # every known BENCH_*.json present in both directories
    python scripts/check_bench_regression.py /tmp/bench-baselines .

Each benchmark file is judged by the per-file metric table below.  Checks
are ratio-based so they are machine-independent: speedups and overhead
fractions are measured against a sibling arm in the same job, so CI
runners and developer laptops agree on them even though absolute
wall-clocks differ.  A "higher is better" metric must not fall more than
its allowed fraction below the committed baseline; a "lower is better"
metric must not rise more than its allowed fraction above it.

``--max-regression`` (compatibility flag) overrides the allowed fraction
for every gated metric.

Exit status: 0 when all gates pass, 1 on regression or malformed input.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path


@dataclass(frozen=True)
class Gate:
    metric: str
    higher_is_better: bool
    #: allowed fractional drift from the baseline value
    max_regression: float
    #: absolute backstop on the bound.  Lower-is-better: the bound never
    #: drops below this (loosens gates whose baseline hovers near zero).
    #: Higher-is-better: the fresh value must also clear this (enforces a
    #: hard minimum regardless of what the baseline recorded).
    floor: float | None = None
    #: self-arming gates: apply only when the FRESH measurement carries a
    #: truthy value under this key.  Lets a benchmark that depends on the
    #: runner's hardware (e.g. parallel speedup needs >= `workers` cores)
    #: record honestly on weak machines without tripping the gate there,
    #: while capable runners enforce it.
    arm_key: str | None = None


#: every gated benchmark artifact and its metrics
GATES: dict[str, tuple[Gate, ...]] = {
    # cached-vs-bypass hot-path speedup (benchmarks/bench_hotpath.py)
    "BENCH_hotpath.json": (Gate("speedup", True, 0.25),),
    # process-pool sweep + run cache (benchmarks/bench_parallel_sweep.py);
    # parallel_speedup needs real cores: the benchmark sets speedup_gated
    # only when the runner has >= workers CPUs, so the gate self-arms on
    # capable machines (floor = the benchmark's own MIN_PARALLEL_SPEEDUP)
    # and stands down on 1-CPU boxes; cached_fraction baselines near zero,
    # so it gets the absolute floor the benchmark itself asserts
    "BENCH_parallel_sweep.json": (
        Gate("parallel_speedup", True, 0.35, floor=2.0,
             arm_key="speedup_gated"),
        Gate("cached_fraction", False, 4.0, floor=0.05),
    ),
    # swarm-scale run (benchmarks/bench_swarm.py): a >= 10k-Daemon tiered
    # wheel-mode run must stay tractable.  events_per_sec is wall-clock
    # dependent, hence the wide allowance plus an absolute floor (raised
    # once by the kernel/message-plane throughput overhaul, and again by
    # the batched compute plane re-recording the baseline at >= 1.5x the
    # overhaul's 39k events/s);
    # heartbeat_collapse_ratio (process-mode events / wheel-mode events at
    # identical scale) is deterministic and machine-independent
    "BENCH_swarm.json": (
        Gate("daemons", True, 0.05, floor=10_000),
        Gate("events_per_sec", True, 0.50, floor=59_000),
        Gate("peak_rss_mb", False, 0.25, floor=200.0),
        Gate("heartbeat_collapse_ratio", True, 0.30, floor=1.5),
    ),
    # batched compute plane (benchmarks/bench_compute.py): panel-mode
    # cohort solves vs the full hot-path bypass on the compute-heavy
    # direct-solver run.  The ratio is measured between sibling arms in
    # the same job, so the floor is machine-independent
    "BENCH_compute.json": (
        Gate("speedup", True, 0.25, floor=1.8),
    ),
    # disabled-tracer guard cost ratios (benchmarks/bench_obs_overhead.py);
    # nanosecond-scale timing, so the allowance is deliberately loose —
    # the hard <5% budget is asserted inside the benchmark itself
    "BENCH_obs_overhead.json": (
        Gate("des_guard_over_event", False, 4.0),
        Gate("rmi_guard_over_call", False, 4.0),
    ),
    # armed-but-idle fault plan vs plain run (benchmarks/bench_faults.py);
    # the baseline hovers around zero, so the gate is the absolute 5%
    # budget the benchmark itself asserts rather than a relative drift
    "BENCH_faults.json": (
        Gate("overhead_fraction", False, 4.0, floor=0.05),
    ),
    # decentralized control plane (benchmarks/bench_gossip.py): the
    # disabled-guard bound hovers near zero (same treatment as the other
    # overhead gates — the hard <5% budget lives in the benchmark);
    # takeover latency is *simulated* time, deterministic per seed, so the
    # allowance is a drift pin, with an absolute 1s grace for intentional
    # protocol retunes (beat period, probe timeout)
    "BENCH_gossip.json": (
        Gate("overhead_fraction", False, 4.0, floor=0.05),
        Gate("takeover_latency_s", False, 0.5, floor=1.0),
    ),
    # adaptive-vs-fixed checkpoint strategy sweep
    # (benchmarks/bench_checkpoint_policy.py): simulated-time accounting,
    # deterministic per seed, so the allowance is a drift pin; the floor
    # is the issue's acceptance criterion — adaptive must cut wasted work
    # across the churn scenarios by at least 20%
    "BENCH_checkpoint.json": (
        Gate("wasted_work_reduction", True, 0.5, floor=0.20),
    ),
}


#: schema gate: keys every fresh measurement must carry with a truthy,
#: non-empty value.  Catches a benchmark silently dropping an arm (e.g.
#: the profiled ledger) without anyone noticing until the data is needed.
REQUIRED_KEYS: dict[str, tuple[str, ...]] = {
    "BENCH_swarm.json": (
        "converged", "events", "wall_seconds", "events_per_sec",
        "peak_rss_mb", "heartbeat_collapse_ratio", "profile_top",
    ),
    "BENCH_gossip.json": (
        "takeover_converged", "takeover_latency_s", "events",
    ),
    # bitwise_identical is the identity arm's verdict: the auto-mode plane
    # must remain invisible to the simulation, and a benchmark silently
    # dropping that arm (or recording False) must fail the gate
    "BENCH_compute.json": (
        "speedup", "bitwise_identical", "wall_seconds_plane",
        "wall_seconds_bypass", "batched_columns",
    ),
    # scenarios must carry the full per-scenario breakdown; a bench
    # silently dropping an arm or the churn aggregate must fail here
    "BENCH_checkpoint.json": (
        "scenarios", "churn_scenarios", "fixed_wasted_seconds",
        "adaptive_wasted_seconds",
    ),
}


def check_file(name: str, baseline_path: Path, fresh_path: Path,
               override: float | None) -> bool:
    """Apply every gate for ``name``; prints a verdict line per metric."""
    gates = GATES.get(name)
    if gates is None:
        print(f"{name}: no gate registered — skipping")
        return True
    try:
        baseline = json.loads(baseline_path.read_text())
        fresh = json.loads(fresh_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {name}: {exc}", file=sys.stderr)
        return False

    ok = True
    for key in REQUIRED_KEYS.get(name, ()):
        value = fresh.get(key)
        if not value:
            print(f"error: {name}: required key {key!r} missing or empty "
                  f"in fresh measurement (got {value!r})", file=sys.stderr)
            ok = False
        else:
            print(f"{name}: required key {key} present OK")
    for gate in gates:
        allowed = override if override is not None else gate.max_regression
        if gate.arm_key is not None and not fresh.get(gate.arm_key):
            print(f"{name}: {gate.metric} gate disarmed "
                  f"({gate.arm_key!r} falsy in fresh measurement) — skipping")
            continue
        try:
            base_value = float(baseline[gate.metric])
            new_value = float(fresh[gate.metric])
        except (KeyError, TypeError, ValueError) as exc:
            print(f"error: {name}: metric {gate.metric!r} unreadable: {exc}",
                  file=sys.stderr)
            ok = False
            continue
        if gate.higher_is_better:
            bound = (1.0 - allowed) * base_value
            if gate.floor is not None:
                bound = max(bound, gate.floor)
            passed = new_value >= bound
            relation = ">="
        else:
            bound = (1.0 + allowed) * base_value
            if gate.floor is not None:
                bound = max(bound, gate.floor)
            passed = new_value <= bound
            relation = "<="
        verdict = "OK" if passed else "REGRESSION"
        print(f"{name}: {gate.metric} = {new_value:.4g} "
              f"(baseline {base_value:.4g}, must be {relation} {bound:.4g}) "
              f"{verdict}")
        ok = ok and passed
    return ok


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", type=Path,
                    help="committed BENCH_*.json file, or a directory of them")
    ap.add_argument("fresh", type=Path,
                    help="freshly measured file/directory")
    ap.add_argument(
        "--max-regression", type=float, default=None,
        help="override every gate's allowed fractional drift")
    args = ap.parse_args()

    if args.baseline.is_dir() != args.fresh.is_dir():
        print("error: baseline and fresh must both be files or both be "
              "directories", file=sys.stderr)
        return 1

    ok = True
    if args.baseline.is_dir():
        checked = 0
        for name in sorted(GATES):
            base, new = args.baseline / name, args.fresh / name
            if not base.exists():
                print(f"{name}: no committed baseline — skipping")
                continue
            if not new.exists():
                print(f"error: {name}: baseline exists but no fresh "
                      f"measurement at {new}", file=sys.stderr)
                ok = False
                continue
            ok = check_file(name, base, new, args.max_regression) and ok
            checked += 1
        if checked == 0 and ok:
            print("error: no benchmark files gated", file=sys.stderr)
            ok = False
    else:
        ok = check_file(args.fresh.name, args.baseline, args.fresh,
                        args.max_regression)

    print("OK" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
