#!/usr/bin/env python
"""Compare a freshly measured BENCH_*.json against the committed baseline.

Usage::

    python scripts/check_bench_regression.py BASELINE.json FRESH.json [--max-regression 0.25]

The check is ratio-based so it is machine-independent: the *speedup*
(cached vs bypass, measured on the same machine in the same job) must not
fall more than ``--max-regression`` below the committed baseline speedup.
Absolute wall-clock numbers are reported but never gated on — CI runners
and developer laptops differ; the cached/bypass ratio does not.

Exit status: 0 when within budget, 1 on regression or malformed input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", type=Path, help="committed BENCH_*.json")
    ap.add_argument("fresh", type=Path, help="freshly measured BENCH_*.json")
    ap.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional speedup drop vs baseline (default 0.25)",
    )
    args = ap.parse_args()

    try:
        baseline = json.loads(args.baseline.read_text())
        fresh = json.loads(args.fresh.read_text())
        base_speedup = float(baseline["speedup"])
        new_speedup = float(fresh["speedup"])
    except (OSError, KeyError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: cannot read benchmark results: {exc}", file=sys.stderr)
        return 1

    floor = (1.0 - args.max_regression) * base_speedup
    print(f"baseline speedup: {base_speedup:.2f}x "
          f"(bypass {baseline.get('wall_seconds_bypass')}s / "
          f"cached {baseline.get('wall_seconds_cached')}s)")
    print(f"fresh speedup:    {new_speedup:.2f}x "
          f"(bypass {fresh.get('wall_seconds_bypass')}s / "
          f"cached {fresh.get('wall_seconds_cached')}s)")
    print(f"floor:            {floor:.2f}x "
          f"(max regression {args.max_regression:.0%})")

    if new_speedup < floor:
        print("REGRESSION: hot-path speedup dropped below the allowed floor",
              file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
