#!/usr/bin/env python
"""Audit: hot-path classes must stay ``__slots__``-only.

The kernel and message plane create these objects millions of times per
swarm run; a single accidentally-added attribute (or a subclass dropping
``__slots__``) silently re-grows a ``__dict__`` per instance — tens of MB
of RSS and a measurable events/s regression that no functional test
catches.  This script fails CI the moment any audited class (or any of
its subclasses found in the package) grows a ``__dict__``.

Run from the repo root::

    PYTHONPATH=src python scripts/check_slots.py
"""

from __future__ import annotations

import importlib
import pkgutil
import sys

#: module path → class names that must be dict-free.
AUDITED = {
    "repro.des.events": ["Event", "Timeout", "Condition", "AllOf", "AnyOf"],
    "repro.des.process": ["Process"],
    "repro.des.kernel": ["ScheduledCall"],
    "repro.obs.trace": ["TraceEvent"],
    "repro.net.network": ["Message"],
    "repro.net.address": ["Address"],
    "repro.rmi.stub": ["Stub", "BoundStub"],
    "repro.rmi.invocation": [
        "CallMessage", "ReplyMessage", "OnewayMessage", "PreparedOneway",
    ],
    # the batched compute plane: one CohortMember per live task, touched
    # on every inner solve; StepPlan is created once per iteration
    "repro.compute.plane": ["ComputePlane", "Cohort", "CohortMember"],
    "repro.p2p.task": ["StepPlan"],
}


def has_instance_dict(cls: type) -> bool:
    """True when instances of ``cls`` carry a ``__dict__``."""
    return any("__dict__" in base.__dict__ for base in cls.__mro__)


def audited_classes() -> list[type]:
    out = []
    for module_path, names in sorted(AUDITED.items()):
        module = importlib.import_module(module_path)
        for name in names:
            out.append(getattr(module, name))
    return out


def find_subclasses(roots: list[type]) -> set[type]:
    """Every subclass of an audited class defined anywhere in ``repro``."""
    import repro

    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        try:
            importlib.import_module(info.name)
        except Exception:  # optional deps (plotting) may be absent
            continue
    found: set[type] = set()
    stack = list(roots)
    while stack:
        cls = stack.pop()
        for sub in type.__subclasses__(cls):
            if sub not in found:
                found.add(sub)
                stack.append(sub)
    return found


def main() -> int:
    roots = audited_classes()
    offenders = []
    for cls in roots:
        if has_instance_dict(cls):
            offenders.append((cls, "audited class"))
    for sub in sorted(find_subclasses(roots), key=lambda c: c.__qualname__):
        if sub.__module__.startswith("repro") and has_instance_dict(sub):
            offenders.append((sub, "subclass of an audited class"))
    if offenders:
        print("slots audit FAILED — instances carry a __dict__:")
        for cls, why in offenders:
            print(f"  {cls.__module__}.{cls.__qualname__}  ({why})")
        return 1
    n_subs = len([
        s for s in find_subclasses(roots) if s.__module__.startswith("repro")
    ])
    print(f"slots audit OK: {len(roots)} classes + {n_subs} repro subclasses "
          "are __dict__-free")
    return 0


if __name__ == "__main__":
    sys.exit(main())
