"""Tests tying the §6 convergence theory to the actual solvers.

The paper's whole design rests on one mathematical fact: for M-matrix
splittings, chaotic (asynchronous) iterations converge.  These tests
compute the certificate ρ(|T|) for concrete decompositions and pair it
with the chaotic reference solver — in both directions.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.numerics import (
    BlockDecomposition,
    Poisson2D,
    chaotic_block_jacobi,
)
from repro.numerics.theory import (
    async_certificate,
    block_iteration_matrix,
)
from repro.util.rng import RngTree


def test_poisson_decomposition_is_certified():
    prob = Poisson2D.manufactured(10)
    d = BlockDecomposition(prob.A, prob.b, nblocks=5, line=10)
    cert = async_certificate(d)
    assert cert.m_matrix
    assert cert.weak_regular
    assert cert.async_convergent and cert.sync_convergent
    # for this nonnegative-off-diagonal splitting, |T| = T
    assert cert.rho_abs == pytest.approx(cert.rho, rel=1e-8)
    assert "ASYNC-SAFE" in str(cert)


def test_certificate_radius_shrinks_with_fewer_blocks():
    prob = Poisson2D.manufactured(12)
    rhos = []
    for nb in (6, 2):
        d = BlockDecomposition(prob.A, prob.b, nblocks=nb, line=12)
        rhos.append(async_certificate(d).rho_abs)
    assert rhos[1] < rhos[0] < 1.0


def test_certified_system_converges_chaotically():
    prob = Poisson2D.manufactured(8)
    d = BlockDecomposition(prob.A, prob.b, nblocks=4, line=8)
    assert async_certificate(d).async_convergent
    result = chaotic_block_jacobi(d, rng=RngTree(1), tol=1e-8,
                                  activation_probability=0.4, max_delay=4)
    assert result.converged


def test_uncertified_counterexample_diverges_chaotically():
    """A system violating the M-matrix hypothesis with rho(|T|) > 1: the
    synchronous-looking spectral radius can deceive, the chaotic iteration
    blows up — exactly why the paper restricts to M-matrices."""
    # 2x2 blocks with large positive off-diagonal coupling: not a Z-matrix
    n = 4
    A = np.array([
        [1.0, 0.0, 0.9, -0.9],
        [0.0, 1.0, -0.9, 0.9],
        [0.9, -0.9, 1.0, 0.0],
        [-0.9, 0.9, 0.0, 1.0],
    ])
    As = sp.csr_matrix(A)
    b = np.ones(n)
    d = BlockDecomposition(As, b, nblocks=2, line=1)
    cert = async_certificate(d)
    assert not cert.m_matrix
    assert cert.rho_abs > 1.0
    # the synchronous radius happens to also certify failure here — the
    # interesting regime is rho(T) < 1 < rho(|T|); build one explicitly:
    B = np.array([
        [1.0, 0.0, -0.55, 0.55],
        [0.0, 1.0, 0.55, -0.55],
        [0.55, -0.55, 1.0, 0.0],
        [-0.55, 0.55, 0.0, 1.0],
    ])
    dB = BlockDecomposition(sp.csr_matrix(B), b, nblocks=2, line=1)
    certB = async_certificate(dB)
    if certB.sync_convergent and not certB.async_convergent:
        # sync converges, chaos (with enough delay) must be able to diverge
        result = chaotic_block_jacobi(
            dB, rng=RngTree(3), tol=1e-10, max_steps=200,
            activation_probability=0.5, max_delay=6,
        )
        final = result.residual_norm
        assert not result.converged or final > 1e-10


def test_block_iteration_matrix_shape_and_structure():
    prob = Poisson2D.manufactured(6)
    d = BlockDecomposition(prob.A, prob.b, nblocks=3, line=6)
    T = block_iteration_matrix(d)
    assert T.shape == (36, 36)
    # rows inside a block are annihilated against their own block columns
    blk = d.blocks[1]
    sl = slice(blk.own_start, blk.own_end)
    assert np.allclose(T[sl, sl], 0.0, atol=1e-10)


def test_certificate_size_guard():
    prob = Poisson2D.manufactured(60)  # 3600 unknowns: too large for dense
    d = BlockDecomposition(prob.A, prob.b, nblocks=4, line=60)
    with pytest.raises(ValueError, match="too.*large|dense"):
        async_certificate(d)
