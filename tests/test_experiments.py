"""Tests for the experiment harness (cheap parameterizations)."""

import math

import pytest

from repro.experiments import (
    EXPERIMENT_CONFIG,
    figure7_sweep,
    format_table,
    iterations_vs_n,
    optimal_overlap,
    run_poisson_on_p2p,
    sync_vs_async,
)
from repro.experiments.ablations import overlap_ablation
from repro.experiments.report import format_value


# -------------------------------------------------------------------- config


def test_experiment_config_is_valid_and_paperlike():
    assert EXPERIMENT_CONFIG.checkpoint_frequency == 5  # paper §7
    assert EXPERIMENT_CONFIG.backup_count == 20         # paper §7
    assert EXPERIMENT_CONFIG.heartbeat_timeout > EXPERIMENT_CONFIG.heartbeat_period


def test_optimal_overlap_rule():
    assert optimal_overlap(40, 8) == 2   # width 5 -> half
    assert optimal_overlap(128, 8) == 8  # width 16 -> half
    assert optimal_overlap(8, 8) == 0    # width 1 -> no room
    # always valid for the decomposition: overlap + 1 <= width
    for n in range(8, 200, 8):
        width = n // 8
        assert optimal_overlap(n, 8) + 1 <= width


# -------------------------------------------------------------------- driver


def test_run_poisson_result_fields():
    r = run_poisson_on_p2p(n=24, peers=3, seed=1, horizon=300.0)
    assert r.converged
    assert r.simulated_time > 0
    assert r.residual is not None and r.residual < 1e-3
    assert r.total_iterations > 0
    assert r.disconnections_executed == 0
    assert r.overlap == optimal_overlap(24, 3)
    row = r.row()
    assert row["n"] == 24 and row["size"] == 576


def test_run_poisson_with_churn_recovers():
    # pin the churn window to early-run so the failure is detected and
    # recovered well before convergence (the n=48 run lasts ~1 s simulated
    # against a ~0.5 s detection+replacement cycle)
    r = run_poisson_on_p2p(n=48, peers=4, disconnections=1, seed=3,
                           churn_window=0.5, horizon=300.0)
    assert r.converged
    assert r.disconnections_executed == 1
    assert r.recoveries >= 1
    assert r.residual is not None and r.residual < 1e-3


def test_run_poisson_deterministic_per_seed():
    r1 = run_poisson_on_p2p(n=24, peers=3, seed=5, collect=False)
    r2 = run_poisson_on_p2p(n=24, peers=3, seed=5, collect=False)
    assert r1.simulated_time == r2.simulated_time
    assert r1.total_iterations == r2.total_iterations


def test_run_poisson_validation():
    with pytest.raises(ValueError):
        run_poisson_on_p2p(n=24, peers=0)
    with pytest.raises(ValueError):
        run_poisson_on_p2p(n=24, peers=2, disconnections=-1)


# ------------------------------------------------------- the RunSpec-first API


def test_spec_first_entrypoint_matches_kwarg_shim():
    from repro.exec import RunSpec

    spec = RunSpec(n=24, peers=3, seed=1)
    assert run_poisson_on_p2p(spec=spec) == run_poisson_on_p2p(
        n=24, peers=3, seed=1
    )
    assert spec.run() == run_poisson_on_p2p(spec=spec)


def test_spec_and_kwargs_are_mutually_exclusive():
    from repro.errors import ConfigurationError
    from repro.exec import RunSpec

    with pytest.raises(ConfigurationError):
        run_poisson_on_p2p(spec=RunSpec(n=24, peers=3), n=24)
    with pytest.raises(ConfigurationError):
        run_poisson_on_p2p()  # neither spec nor n


def test_kwarg_shim_cannot_drift_from_runspec():
    """Every keyword of the legacy entrypoint must be a RunSpec field, so
    new knobs land in the spec (and the cache key / sweep engine) first."""
    import dataclasses
    import inspect

    from repro.exec import RunSpec

    params = set(inspect.signature(run_poisson_on_p2p).parameters)
    fields = {f.name for f in dataclasses.fields(RunSpec)}
    assert params - {"spec", "tracer"} <= fields


# ------------------------------------------------------------------- figure 7


def test_figure7_sweep_tiny():
    result = figure7_sweep(ns=(24,), disconnections=(0, 1), peers=3, repeats=1)
    assert (24, 0) in result.times and (24, 1) in result.times
    assert result.times[(24, 1)] >= result.times[(24, 0)] * 0.8
    table = result.format_table()
    assert "disc=0" in table and "slowdown" in table
    assert not math.isnan(result.slowdown(24))


def test_figure7_validation():
    with pytest.raises(ValueError):
        figure7_sweep(ns=(24,), repeats=0)


# ---------------------------------------------------------------- ratio / C1


def test_iterations_vs_n_tiny():
    result = iterations_vs_n(ns=(24, 40), peers=4)
    assert len(result.rows) == 2
    table = result.format_table()
    assert "sync sweeps" in table
    # C1 direction even at this tiny scale
    assert result.async_iters()[0] > result.async_iters()[1]


# ------------------------------------------------------------------ sync/async


def test_sync_vs_async_tiny():
    result = sync_vs_async(n=24, peers=3, disconnections=0, horizon=300.0)
    assert result.async_time is not None
    assert result.sync_time is not None
    assert result.sync_rollbacks == 0
    assert "sync/async" in result.format_table()


# ------------------------------------------------------------------ ablations


def test_overlap_ablation_tiny():
    table = overlap_ablation(overlaps=(0, 1), n=24, peers=4)
    assert len(table.rows) == 2
    assert table.rows[0][1] > table.rows[1][1]  # fewer sweeps with overlap
    assert table.rows[0][2] == table.rows[1][2]  # constant exchange


# -------------------------------------------------------------------- report


def test_format_value():
    assert format_value(None) == "-"
    assert format_value(0.0) == "0"
    assert format_value(1234567.0) == "1.23e+06"
    assert format_value(0.25) == "0.25"
    assert format_value(3) == "3"
    assert format_value("x") == "x"


def test_format_table_alignment():
    text = format_table(["a", "bb"], [[1, 2.5], [10, None]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len({len(l) for l in lines[1:]}) == 1  # rectangular

def test_format_table_empty_rows():
    text = format_table(["x"], [])
    assert "x" in text
