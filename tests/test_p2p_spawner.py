"""Spawner-focused tests: reservation, register broadcast, epoch filtering,
failure detection timing, convergence protocol (paper §5.2, §5.3, §5.5)."""

import pytest

from repro.checkpoint import FixedPolicy
from repro.p2p import P2PConfig, build_cluster, launch_application
from repro.p2p.messages import AppSpec, ApplicationRegister, TaskSlot

from tests.helpers import GeometricTask, make_geometric_app, run_until_done

FAST = P2PConfig(
    heartbeat_period=0.5,
    heartbeat_timeout=2.0,
    monitor_period=0.5,
    call_timeout=2.0,
    bootstrap_retry_delay=0.5,
    reserve_retry_period=0.5,
    min_iteration_time=0.01,
)
CKPT = FixedPolicy(count=2, frequency=5)


# ----------------------------------------------------------- register object


def test_application_register_empty_and_accessors():
    reg = ApplicationRegister.empty("app", 3)
    assert reg.num_tasks == 3
    assert reg.assigned_count() == 0
    assert reg.stub_of(1) is None
    assert not reg.slot(2).assigned


def test_application_register_snapshot_is_independent():
    reg = ApplicationRegister.empty("app", 2)
    snap = reg.snapshot()
    snap.slot(0).daemon_id = "x"
    snap.version = 9
    assert reg.slot(0).daemon_id is None
    assert reg.version == 0


def test_app_spec_validation():
    with pytest.raises(ValueError):
        AppSpec(app_id="", task_factory=GeometricTask, num_tasks=1)
    with pytest.raises(ValueError):
        AppSpec(app_id="a", task_factory=GeometricTask, num_tasks=0)


# ------------------------------------------------------------------ spawner


def test_spawner_assigns_all_slots_then_converges():
    cluster = build_cluster(n_daemons=5, n_superpeers=2, seed=71, config=FAST, checkpoint=CKPT)
    app = make_geometric_app(num_tasks=4, rate=0.999, threshold=1e-9, flops=3e6)
    spawner = launch_application(cluster, app)
    # allow the heartbeat-timeout eviction of any stale register entries
    cluster.sim.run(until=6.0)
    assert spawner.register.assigned_count() == 4
    # reserved daemons left the super-peer registers; only the spare remains
    assert cluster.registered_daemons() == 1
    assert run_until_done(cluster, spawner, horizon=300.0)


def test_spawner_reservation_spans_superpeers():
    """More tasks than any single Super-Peer has registered."""
    cluster = build_cluster(n_daemons=6, n_superpeers=3, seed=73, config=FAST, checkpoint=CKPT)
    cluster.sim.run(until=2.0)  # let daemons spread over the super-peers
    per_sp = [len(sp.register) for sp in cluster.superpeers]
    spawner = launch_application(cluster, make_geometric_app(num_tasks=6))
    assert run_until_done(cluster, spawner, horizon=120.0)
    if max(per_sp) < 6:  # the reservation had to be forwarded
        assert sum(sp.forwarded_requests for sp in cluster.superpeers) > 0


def test_spawner_detects_failure_within_timeout_window():
    cluster = build_cluster(n_daemons=6, n_superpeers=2, seed=79, config=FAST, checkpoint=CKPT)
    app = make_geometric_app(num_tasks=3, rate=0.9999, threshold=1e-12, flops=3e6)
    spawner = launch_application(cluster, app)
    sim = cluster.sim
    sim.run(until=2.0)
    victim_name = spawner.register.slot(1).daemon_id.rsplit("#", 1)[0]
    victim = next(h for h in cluster.testbed.daemon_hosts if h.name == victim_name)
    fail_at = sim.now
    victim.fail(cause="test")
    while spawner.failures_detected == 0 and sim.now < fail_at + 30:
        sim.run(until=sim.now + 0.25)
    detection_delay = sim.now - fail_at
    assert spawner.failures_detected == 1
    # detected within timeout + one monitor period + slack
    assert detection_delay <= FAST.heartbeat_timeout + 2 * FAST.monitor_period + 0.5


def test_spawner_broadcasts_register_on_membership_change():
    cluster = build_cluster(n_daemons=6, n_superpeers=2, seed=83, config=FAST, checkpoint=CKPT)
    app = make_geometric_app(num_tasks=3, rate=0.9999, threshold=1e-12, flops=3e6)
    spawner = launch_application(cluster, app)
    sim = cluster.sim
    sim.run(until=2.0)
    initial_broadcasts = spawner.register_broadcasts
    initial_version = spawner.register.version
    victim_name = spawner.register.slot(0).daemon_id.rsplit("#", 1)[0]
    next(h for h in cluster.testbed.daemon_hosts if h.name == victim_name).fail()
    sim.run(until=sim.now + 10.0)
    assert spawner.register_broadcasts > initial_broadcasts
    assert spawner.register.version > initial_version
    # surviving daemons adopted the newer register
    for slot in spawner.register.slots:
        if slot.assigned:
            host = next(h for h in cluster.testbed.daemon_hosts
                        if h.name == slot.daemon_id.rsplit("#", 1)[0])
            daemon = cluster.daemons[host.name]
            if daemon.runner is not None:
                assert daemon.runner.register.version == spawner.register.version


def test_spawner_epoch_filter_ignores_stale_messages():
    cluster = build_cluster(n_daemons=4, n_superpeers=1, seed=89, config=FAST, checkpoint=CKPT)
    app = make_geometric_app(num_tasks=2, rate=0.9999, threshold=1e-12, flops=3e6)
    spawner = launch_application(cluster, app)
    cluster.sim.run(until=2.0)
    slot = spawner.register.slot(0)
    # a message from a previous epoch must be ignored
    spawner.set_state("geo", 0, slot.epoch - 1, True)
    assert not spawner.tracker.states[0]
    spawner.heartbeat_task("geo", 0, slot.epoch - 1, "zombie")
    # and one from the current epoch but wrong daemon id too
    spawner.heartbeat_task("geo", 0, slot.epoch, "zombie")
    seen = spawner.last_seen[0]
    spawner.heartbeat_task("geo", 0, slot.epoch, slot.daemon_id)
    assert spawner.last_seen[0] >= seen


def test_spawner_ignores_foreign_app_messages():
    cluster = build_cluster(n_daemons=4, n_superpeers=1, seed=97, config=FAST, checkpoint=CKPT)
    app = make_geometric_app(num_tasks=2, rate=0.9999, threshold=1e-12, flops=3e6)
    spawner = launch_application(cluster, app)
    cluster.sim.run(until=2.0)
    spawner.set_state("other-app", 0, 1, True)
    assert not spawner.tracker.states[0]
    spawner.set_state("geo", 99, 1, True)  # out-of-range task id
    assert not spawner.tracker.converged


def test_spawner_replacement_counter_and_epochs():
    cluster = build_cluster(n_daemons=8, n_superpeers=2, seed=101, config=FAST, checkpoint=CKPT)
    app = make_geometric_app(num_tasks=3, rate=0.9999, threshold=1e-12, flops=3e6)
    spawner = launch_application(cluster, app)
    sim = cluster.sim
    sim.run(until=2.0)
    victim_name = spawner.register.slot(2).daemon_id.rsplit("#", 1)[0]
    next(h for h in cluster.testbed.daemon_hosts if h.name == victim_name).fail()
    sim.run(until=sim.now + 15.0)
    assert spawner.replacements == 1
    assert spawner.register.slot(2).epoch == 2
    assert spawner.register.slot(2).assigned


def test_set_state_after_done_is_ignored():
    cluster = build_cluster(n_daemons=4, n_superpeers=1, seed=103, config=FAST, checkpoint=CKPT)
    spawner = launch_application(cluster, make_geometric_app(num_tasks=2))
    assert run_until_done(cluster, spawner, horizon=120.0)
    msgs = spawner.tracker.messages_received
    spawner.set_state("geo", 0, spawner.register.slot(0).epoch, False)
    assert spawner.tracker.messages_received == msgs
