"""Edge-case tests for the runtime: degenerate populations, dead-end
collections, idle-daemon control messages, incarnation bookkeeping."""

import pytest

from repro.checkpoint import FixedPolicy
from repro.p2p import P2PConfig, build_cluster, launch_application

from tests.helpers import (
    collect_solution,
    make_geometric_app,
    run_until_done,
)

FAST = P2PConfig(
    heartbeat_period=0.5, heartbeat_timeout=2.0, monitor_period=0.5,
    call_timeout=2.0, bootstrap_retry_delay=0.5, reserve_retry_period=0.5,
    min_iteration_time=0.01,
)
CKPT = FixedPolicy(count=2, frequency=5)


def test_application_larger_than_population_waits_forever():
    """4 tasks, 2 daemons: the app can never fully launch; the maintenance
    loop keeps retrying without crashing or spinning the simulation hot."""
    cluster = build_cluster(n_daemons=2, n_superpeers=1, seed=81, config=FAST, checkpoint=CKPT)
    spawner = launch_application(cluster, make_geometric_app(num_tasks=4))
    cluster.sim.run(until=30.0)
    assert not spawner.done.triggered
    assert spawner.register.assigned_count() == 2
    # bounded event rate: the retry loop must not be a busy-spin
    assert cluster.sim.event_count < 200_000


def test_collect_solution_with_dead_fragment_returns_none():
    cluster = build_cluster(n_daemons=5, n_superpeers=1, seed=83, config=FAST, checkpoint=CKPT)
    app = make_geometric_app(num_tasks=3)
    spawner = launch_application(cluster, app)
    assert run_until_done(cluster, spawner, horizon=120.0)
    # kill one computing host right after convergence, before collection
    victim_name = spawner.register.slot(1).daemon_id.rsplit("#", 1)[0]
    victim = next(h for h in cluster.testbed.daemon_hosts
                  if h.name == victim_name)
    victim.fail(cause="post-convergence")
    frags = collect_solution(cluster, spawner)
    assert frags[1] is None
    assert frags[0] is not None and frags[2] is not None


def test_halt_for_unknown_app_is_harmless():
    cluster = build_cluster(n_daemons=3, n_superpeers=1, seed=85, config=FAST, checkpoint=CKPT)
    spawner = launch_application(cluster, make_geometric_app(num_tasks=2))
    sim = cluster.sim
    sim.run(until=2.0)
    some_daemon = next(iter(cluster.daemons.values()))
    assert some_daemon.halt("no-such-app") is True  # idempotent no-op
    assert run_until_done(cluster, spawner, horizon=120.0)


def test_daemon_incarnations_count_up_per_host():
    cluster = build_cluster(n_daemons=2, n_superpeers=1, seed=87, config=FAST, checkpoint=CKPT)
    sim = cluster.sim
    sim.run(until=1.0)
    host = cluster.testbed.daemon_hosts[0]
    first = cluster.daemons[host.name]
    assert first.daemon_id.endswith("#1")
    host.fail(cause="test")
    sim.run(until=2.0)
    host.recover()
    sim.run(until=3.0)
    second = cluster.daemons[host.name]
    assert second is not first
    assert second.daemon_id.endswith("#2")
    host.fail(cause="again")
    sim.run(until=4.0)
    host.recover()
    sim.run(until=5.0)
    assert cluster.daemons[host.name].daemon_id.endswith("#3")


def test_superpeer_count_one_still_works():
    cluster = build_cluster(n_daemons=4, n_superpeers=1, seed=89, config=FAST, checkpoint=CKPT)
    spawner = launch_application(cluster, make_geometric_app(num_tasks=3))
    assert run_until_done(cluster, spawner, horizon=120.0)


def test_spawner_done_value_carries_convergence_time():
    cluster = build_cluster(n_daemons=4, n_superpeers=1, seed=91, config=FAST, checkpoint=CKPT)
    spawner = launch_application(cluster, make_geometric_app(num_tasks=2))
    assert run_until_done(cluster, spawner, horizon=120.0)
    assert spawner.done.value["converged_at"] == pytest.approx(
        spawner.telemetry.converged_at
    )


def test_cluster_handle_accessors():
    cluster = build_cluster(n_daemons=3, n_superpeers=2, seed=93, config=FAST, checkpoint=CKPT)
    assert cluster.network is cluster.testbed.network
    assert len(cluster.superpeer_addresses) == 2
    cluster.sim.run(until=2.0)
    assert cluster.registered_daemons() == 3
