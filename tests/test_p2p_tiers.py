"""Tests for the hierarchical Super-Peer topology (docs/scaling.md).

Covers the tier plan arithmetic, cluster wiring (leaves hold Daemon
Registers, interior Super-Peers hold child summaries, top tier is
mesh-linked), cross-tier reservation forwarding, subtree eviction when a
mid-tier Super-Peer crashes (plus recovery re-attachment), and the
wheel-mode heartbeat path end to end.
"""

import pytest

from repro.p2p import P2PConfig, build_cluster
from repro.p2p.cluster import tier_sizes
from repro.rmi import RmiRuntime

CFG = P2PConfig(
    heartbeat_period=0.1,
    heartbeat_timeout=0.35,
    monitor_period=0.1,
    call_timeout=1.0,
    superpeer_tiers=2,
    superpeer_fanout=2,
)


def tiered_cluster(n_daemons=8, n_superpeers=4, cfg=CFG, **overrides):
    return build_cluster(
        n_daemons=n_daemons,
        n_superpeers=n_superpeers,
        seed=0,
        config=cfg.with_(**overrides) if overrides else cfg,
    )


# -- tier plan ---------------------------------------------------------------


def test_tier_sizes_plan():
    assert tier_sizes(32, 3, 8) == [32, 4, 1]
    assert tier_sizes(4, 3, 2) == [4, 2, 1]
    assert tier_sizes(8, 1, 4) == [8]  # flat: one tier, no interiors


def test_tier_sizes_stops_at_single_root():
    # a 5-tier request over 2 leaves collapses after one interior tier
    assert tier_sizes(2, 5, 4) == [2, 1]
    assert tier_sizes(1, 4, 2) == [1]


# -- cluster wiring ----------------------------------------------------------


def test_tiered_cluster_wiring():
    cluster = tiered_cluster()
    # sizes [4, 2]: four leaves plus two interior Super-Peers
    assert len(cluster.superpeers) == 6
    assert [sp.sp_id for sp in cluster.leaf_superpeers] == [
        "SP0", "SP1", "SP2", "SP3"
    ]
    t1 = cluster.superpeers_of_tier(1)
    assert [sp.sp_id for sp in t1] == ["SP-t1.0", "SP-t1.1"]
    # contiguous fanout-2 blocks
    assert cluster.sp_parent == {
        "SP0": "SP-t1.0", "SP1": "SP-t1.0",
        "SP2": "SP-t1.1", "SP3": "SP-t1.1",
    }
    assert cluster.sp_children == {
        "SP-t1.0": ["SP0", "SP1"], "SP-t1.1": ["SP2", "SP3"],
    }
    # leaves point up, no sideways links; the top tier is a mesh
    for leaf in cluster.leaf_superpeers:
        assert leaf.parent_stub is not None
        assert leaf.neighbour_stubs == []
    assert len(t1[0].neighbour_stubs) == 1
    assert t1[0].neighbour_stubs[0].address == t1[1].stub.address
    # bootstrap entry points are the Register-holding leaves only
    assert len(cluster.superpeer_addresses) == 4


def test_daemons_register_only_with_leaves():
    cluster = tiered_cluster()
    cluster.sim.run(until=1.0)
    assert cluster.registered_daemons() == 8
    for sp in cluster.superpeers_of_tier(1):
        assert sp.register == {}
    # aggregated summaries reached the interior tier: every leaf reported
    for sp in cluster.superpeers_of_tier(1):
        assert set(sp.child_summaries) == set(cluster.sp_children[sp.sp_id])
        assert sp.summaries_sent == 0  # roots have no parent to report to
    total_summarized = sum(
        sp.subtree_idle() for sp in cluster.superpeers_of_tier(1)
    )
    assert total_summarized == 8


# -- cross-tier reservation --------------------------------------------------


def test_reservation_forwards_across_tiers():
    """Demand exceeding one leaf's Register drains the whole tree: local
    Register -> up to the parent -> down into sibling subtrees -> across
    the top-tier mesh into the other interior Super-Peer's subtree."""
    cluster = tiered_cluster()
    sim = cluster.sim
    sim.run(until=1.0)  # bootstrap + at least one summary round
    sp0 = cluster.superpeer_by_id("SP0")
    client = RmiRuntime(cluster.network, cluster.network.new_host("client"),
                        4900, name="client")

    def script(env):
        picked = yield client.call(sp0.stub, "reserve", 8, timeout=10.0)
        return picked

    p = sim.process(script(sim))
    sim.run(until=p)
    assert len(p.value) == 8
    assert len({daemon_id for daemon_id, _ in p.value}) == 8
    # every Register drained, and the request really was forwarded
    assert cluster.registered_daemons() == 0
    assert sp0.forwarded_requests >= 1
    parent = cluster.superpeer_by_id("SP-t1.0")
    assert parent.forwarded_requests >= 1  # parent fanned out the remainder


def test_reservation_flat_topology_unchanged():
    cluster = tiered_cluster(cfg=CFG.with_(superpeer_tiers=1))
    sim = cluster.sim
    sim.run(until=1.0)
    sp0 = cluster.superpeer_by_id("SP0")
    assert sp0.parent_stub is None and sp0.child_summaries == {}
    client = RmiRuntime(cluster.network, cluster.network.new_host("client"),
                        4900, name="client")

    def script(env):
        picked = yield client.call(sp0.stub, "reserve", 8, timeout=10.0)
        return picked

    p = sim.process(script(sim))
    sim.run(until=p)
    assert len(p.value) == 8  # neighbour forwarding still covers the mesh


# -- subtree eviction and recovery -------------------------------------------


def test_mid_tier_crash_evicts_subtree():
    # three tiers over four leaves: [4, 2, 1] — a single root
    cluster = tiered_cluster(cfg=CFG.with_(superpeer_tiers=3))
    sim = cluster.sim
    sim.run(until=1.0)
    (root,) = cluster.superpeers_of_tier(2)
    assert set(root.child_summaries) == {"SP-t1.0", "SP-t1.1"}

    victim = cluster.superpeer_by_id("SP-t1.0")
    victim.host.fail(cause="test")
    sim.run(until=2.0)  # well past heartbeat_timeout
    assert "SP-t1.0" not in root.child_summaries
    assert root.subtree_evictions >= 1
    # the sibling subtree keeps reporting
    assert "SP-t1.1" in root.child_summaries


def test_mid_tier_recovery_reattaches_subtree():
    cluster = tiered_cluster(cfg=CFG.with_(superpeer_tiers=3))
    sim = cluster.sim
    sim.run(until=1.0)
    (root,) = cluster.superpeers_of_tier(2)
    victim = cluster.superpeer_by_id("SP-t1.0")
    host = victim.host
    host.fail(cause="test")
    sim.run(until=2.0)
    assert "SP-t1.0" not in root.child_summaries

    host.recover()
    replacement = cluster.boot_superpeer(host)
    assert replacement is not victim
    assert replacement.tier == 1
    sim.run(until=3.0)
    # the replacement re-adopted its children, resumed summarizing, and
    # the root hears about the subtree again
    assert set(replacement.child_summaries) == {"SP0", "SP1"}
    assert "SP-t1.0" in root.child_summaries
    assert root.child_summaries["SP-t1.0"].idle == replacement.subtree_idle()


# -- wheel-mode heartbeats ---------------------------------------------------


def test_wheel_mode_daemons_register_and_stay():
    cluster = tiered_cluster(heartbeat_mode="wheel")
    sim = cluster.sim
    assert cluster.wheel is not None
    sim.run(until=2.0)
    assert cluster.registered_daemons() == 8
    # no evictions: oneway beats kept every record fresh
    assert sum(sp.evictions for sp in cluster.superpeers) == 0
    assert cluster.wheel.timers_fired > 0


def test_wheel_mode_nack_triggers_reregistration():
    cluster = tiered_cluster(heartbeat_mode="wheel")
    sim = cluster.sim
    sim.run(until=1.0)
    # forcibly forget one Daemon at its leaf (as a rebooted Super-Peer
    # would): its next oneway beat draws a notify_unknown nack and the
    # Daemon must re-bootstrap
    leaf = next(sp for sp in cluster.leaf_superpeers if sp.register)
    daemon_id = next(iter(leaf.register))
    del leaf.register[daemon_id]
    assert cluster.registered_daemons() == 7
    sim.run(until=3.0)
    assert cluster.registered_daemons() == 8


def test_wheel_mode_dead_host_leaves_wheel_and_gets_evicted():
    cluster = tiered_cluster(heartbeat_mode="wheel")
    sim = cluster.sim
    sim.run(until=1.0)
    alive_before = len(cluster.wheel)
    victim = cluster.testbed.daemon_hosts[0]
    victim.fail(cause="test")
    sim.run(until=2.5)
    # the dead Daemon's periodic entry deregistered itself and the leaf's
    # timeout protocol evicted the silent record
    assert len(cluster.wheel) == alive_before - 1
    assert cluster.registered_daemons() == 7
    assert sum(sp.evictions for sp in cluster.superpeers) == 1


def test_wheel_mode_tiered_run_converges():
    from repro.experiments import run_poisson_on_p2p
    from repro.experiments.config import EXPERIMENT_CONFIG

    result = run_poisson_on_p2p(
        n=16, peers=4, n_daemons=10, n_superpeers=4,
        config=EXPERIMENT_CONFIG.with_(
            superpeer_tiers=2, superpeer_fanout=2, heartbeat_mode="wheel",
        ),
    )
    assert result.converged
    assert result.residual is not None and result.residual < 1e-3
