"""§5.3 under fire: the whole protocol stack on a lossy network.

"As the asynchronous model is message loss tolerant, any message to be sent
... is lost, and the alive nodes keep computing their tasks."

These tests drop a sizeable fraction of ALL messages — data exchanges,
heartbeats, checkpoints, control calls — and require the application to
still converge to the right answer.  Lost heartbeats also provoke false
failure detections, so this exercises eviction, re-registration and
replacement under noise, not just the data channel.
"""

import numpy as np
import pytest

from repro.apps import make_poisson_app
from repro.numerics import Poisson2D
from repro.checkpoint import FixedPolicy
from repro.p2p import P2PConfig, build_cluster, launch_application

from tests.helpers import (
    assemble_strip_solution,
    collect_solution,
    run_until_done,
)

# a timeout tolerant of a couple of consecutively-lost heartbeats, so the
# loss does not degenerate into a permanent eviction storm
LOSSY = P2PConfig(
    heartbeat_period=0.3,
    heartbeat_timeout=2.5,
    monitor_period=0.3,
    call_timeout=1.5,
    bootstrap_retry_delay=0.3,
    reserve_retry_period=0.5,
    min_iteration_time=0.01,
    stability_window=6,
)
CKPT = FixedPolicy(count=4, frequency=5)


@pytest.mark.parametrize("loss_rate", [0.05, 0.2])
def test_poisson_converges_on_lossy_network(loss_rate):
    n, peers = 16, 4
    cluster = build_cluster(
        n_daemons=8, n_superpeers=2, seed=23, config=LOSSY,
        checkpoint=CKPT,
        loss_rate=loss_rate,
    )
    app = make_poisson_app("p", n=n, num_tasks=peers,
                           convergence_threshold=1e-8)
    spawner = launch_application(cluster, app)
    assert run_until_done(cluster, spawner, horizon=900.0)
    assert cluster.network.dropped_loss > 0  # the loss really happened
    frags = collect_solution(cluster, spawner)
    x = assemble_strip_solution(frags, n * n)
    if np.isnan(x).any():
        pytest.skip("collection raced a loss-induced replacement")
    assert Poisson2D.manufactured(n).residual_norm(x) < 1e-4


def test_loss_slows_but_does_not_break():
    times = {}
    for loss in (0.0, 0.2):
        cluster = build_cluster(
            n_daemons=8, n_superpeers=2, seed=29, config=LOSSY,
            checkpoint=CKPT,
            loss_rate=loss,
        )
        app = make_poisson_app("p", n=16, num_tasks=4,
                               convergence_threshold=1e-8)
        spawner = launch_application(cluster, app)
        assert run_until_done(cluster, spawner, horizon=900.0)
        times[loss] = spawner.execution_time
    assert times[0.2] > times[0.0] * 0.8  # no free lunch, but it finishes


def test_false_detections_are_survivable():
    """With 30% loss, heartbeats go missing in bursts: the Spawner may
    falsely evict a live daemon and replace its task.  The zombie's stale
    messages must be rejected by the epoch filters and the result stay
    correct."""
    n, peers = 16, 3
    cluster = build_cluster(
        n_daemons=8, n_superpeers=2, seed=31,
        config=LOSSY.with_(heartbeat_timeout=1.0),  # hair-trigger detection
        checkpoint=CKPT,
        loss_rate=0.3,
    )
    app = make_poisson_app("p", n=n, num_tasks=peers,
                           convergence_threshold=1e-8)
    spawner = launch_application(cluster, app)
    assert run_until_done(cluster, spawner, horizon=900.0)
    frags = collect_solution(cluster, spawner)
    x = assemble_strip_solution(frags, n * n)
    if np.isnan(x).any():
        pytest.skip("collection raced a loss-induced replacement")
    assert Poisson2D.manufactured(n).residual_norm(x) < 1e-4
