"""Tests for Backup objects, stores, placement policy and recovery rule."""

import numpy as np
import pytest

from repro.checkpoint import Backup, BackupPolicy, BackupStore, choose_latest
from repro.checkpoint.recovery import latest_iteration
from repro.errors import NoBackupAvailableError
from repro.util.hotpath import hotpath_disabled


# --------------------------------------------------------------------- backup


def test_backup_snapshot_is_isolated_from_live_state():
    # Zero-copy path: the constructor takes ownership of the snapshot and
    # freezes it — a caller mutating it afterwards fails loudly instead of
    # silently corrupting the checkpoint.
    live = {"x": np.arange(4.0), "iteration": 3}
    b = Backup(task_id=1, iteration=3, state=live, app_id="app")
    with pytest.raises(ValueError):
        live["x"][0] = 777.0
    assert b.state["x"][0] == 0.0
    restored = b.restore()
    restored["x"][1] = -1.0  # restore() hands out writable copies
    assert b.state["x"][1] == 1.0


def test_backup_legacy_path_deep_copies():
    # With zerocopy off, the original eager double copy isolates the
    # snapshot without freezing the caller's arrays.
    with hotpath_disabled():
        live = {"x": np.arange(4.0)}
        b = Backup(task_id=1, iteration=3, state=live, app_id="app")
        live["x"][0] = 777.0  # still writable, and the Backup is immune
        assert b.state["x"][0] == 0.0
        restored = b.restore()
        restored["x"][1] = -1.0
        assert b.state["x"][1] == 1.0


def test_backup_size_accounting_tracks_payload():
    small = Backup(0, 0, {"x": np.zeros(10)})
    big = Backup(0, 0, {"x": np.zeros(10_000)})
    assert big.nbytes > small.nbytes


def test_backup_negative_iteration_rejected():
    with pytest.raises(ValueError):
        Backup(0, -1, {})


# ---------------------------------------------------------------------- store


def test_store_keeps_latest_version_per_task():
    store = BackupStore()
    assert store.save(Backup(2, 0, {"v": 0}, app_id="a"))
    assert store.save(Backup(2, 2, {"v": 2}, app_id="a"))
    assert store.iteration_of("a", 2) == 2
    assert store.load("a", 2).state == {"v": 2}
    assert len(store) == 1
    assert store.saves_accepted == 2


def test_store_rejects_stale_checkpoint():
    store = BackupStore()
    store.save(Backup(1, 5, {}, app_id="a"))
    assert not store.save(Backup(1, 3, {}, app_id="a"))  # reordered message
    assert not store.save(Backup(1, 5, {}, app_id="a"))  # duplicate
    assert store.iteration_of("a", 1) == 5
    assert store.saves_rejected_stale == 2


def test_store_separates_apps_and_tasks():
    store = BackupStore()
    store.save(Backup(1, 1, {}, app_id="a"))
    store.save(Backup(1, 9, {}, app_id="b"))
    store.save(Backup(2, 4, {}, app_id="a"))
    assert store.iteration_of("a", 1) == 1
    assert store.iteration_of("b", 1) == 9
    assert store.guarded_tasks("a") == [1, 2]
    store.drop_app("a")
    assert store.guarded_tasks("a") == []
    assert store.iteration_of("b", 1) == 9


def test_store_miss_returns_none():
    store = BackupStore()
    assert store.iteration_of("a", 0) is None
    assert store.load("a", 0) is None
    store.drop("a", 0)  # no-op


def test_store_total_bytes():
    store = BackupStore()
    store.save(Backup(0, 0, {"x": np.zeros(100)}, app_id="a"))
    store.save(Backup(1, 0, {"x": np.zeros(100)}, app_id="a"))
    assert store.total_bytes >= 1600


# --------------------------------------------------------------------- policy


def test_policy_left_right_neighbours_for_count_two():
    """count=2 reproduces the paper's Figure 5 example exactly."""
    policy = BackupPolicy(num_tasks=4, count=2)
    assert set(policy.backup_peers(1)) == {0, 2}
    assert set(policy.backup_peers(2)) == {1, 3}
    # wrap-around at the ends
    assert set(policy.backup_peers(0)) == {1, 3}
    assert set(policy.backup_peers(3)) == {2, 0}


def test_policy_round_robin_alternates_targets():
    """Figure 5: T2's even-iteration saves go to one side, odd to the other."""
    policy = BackupPolicy(num_tasks=4, count=2)
    targets = [policy.target_for_save(1, i) for i in range(4)]
    assert targets == [2, 0, 2, 0]


def test_policy_count_clamped_to_population():
    policy = BackupPolicy(num_tasks=5, count=20)
    peers = policy.backup_peers(2)
    assert len(peers) == 4
    assert sorted(peers) == [0, 1, 3, 4]


def test_policy_peers_never_include_self_and_are_unique():
    policy = BackupPolicy(num_tasks=9, count=6)
    for k in range(9):
        peers = policy.backup_peers(k)
        assert k not in peers
        assert len(set(peers)) == len(peers) == 6


def test_policy_single_task_has_no_peers():
    policy = BackupPolicy(num_tasks=1, count=20)
    assert policy.backup_peers(0) == []
    assert policy.target_for_save(0, 0) is None


def test_policy_checkpoint_frequency():
    policy = BackupPolicy(num_tasks=2, count=1, frequency=5)
    due = [i for i in range(21) if policy.checkpoint_due(i)]
    assert due == [5, 10, 15, 20]
    every = BackupPolicy(num_tasks=2, count=1, frequency=1)
    assert every.checkpoint_due(1) and not every.checkpoint_due(0)


def test_policy_validation():
    with pytest.raises(ValueError):
        BackupPolicy(num_tasks=0)
    with pytest.raises(ValueError):
        BackupPolicy(num_tasks=2, count=-1)
    with pytest.raises(ValueError):
        BackupPolicy(num_tasks=2, frequency=0)
    with pytest.raises(ValueError):
        BackupPolicy(num_tasks=3).backup_peers(3)


# ------------------------------------------------------------------- recovery


def test_choose_latest_picks_highest_iteration():
    # the paper's Figure 6: D2 holds iter 6, D4 holds iter 7 -> restart at 7
    assert choose_latest({2: 6, 4: 7}) == 4


def test_choose_latest_ignores_unreachable_peers():
    assert choose_latest({0: None, 1: 12, 2: None}) == 1


def test_choose_latest_tie_breaks_deterministically():
    assert choose_latest({5: 8, 2: 8}) == 2


def test_choose_latest_nothing_recoverable():
    assert choose_latest({0: None, 1: None}) is None
    assert choose_latest({}) is None
    with pytest.raises(NoBackupAvailableError):
        choose_latest({0: None}, raise_if_none=True)


def test_latest_iteration_helper():
    assert latest_iteration({0: 3, 1: None, 2: 9}) == 9
    assert latest_iteration({0: None}) == 0
    assert latest_iteration({}) == 0


# ------------------------------------------------------------- RAM budget


def test_store_capacity_budget_rejects_oversize():
    store = BackupStore(max_bytes=2000)
    small = Backup(0, 1, {"x": np.zeros(50)}, app_id="a")   # ~700 B
    big = Backup(1, 1, {"x": np.zeros(100_000)}, app_id="a")
    assert store.save(small)
    assert not store.save(big)  # would blow the budget
    assert store.saves_rejected_capacity == 1
    assert store.iteration_of("a", 1) is None


def test_store_budget_replacement_does_not_double_count():
    store = BackupStore(max_bytes=1200)
    first = Backup(0, 1, {"x": np.zeros(100)}, app_id="a")  # ~1100 B
    assert store.save(first)
    # replacing the same task's Backup with a same-size newer one fits:
    # the old copy is released in the same operation
    newer = Backup(0, 5, {"x": np.zeros(100)}, app_id="a")
    assert store.save(newer)
    assert store.iteration_of("a", 0) == 5
    # but a SECOND task's Backup does not fit alongside it
    other = Backup(1, 1, {"x": np.zeros(100)}, app_id="a")
    assert not store.save(other)


def test_store_budget_validation():
    with pytest.raises(ValueError):
        BackupStore(max_bytes=0)


def test_daemon_backup_budget_scales_with_ram():
    from repro.p2p.config import P2PConfig

    with pytest.raises(ValueError):
        P2PConfig(backup_ram_fraction=0.0)
    with pytest.raises(ValueError):
        P2PConfig(backup_ram_fraction=1.5)
