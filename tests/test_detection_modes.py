"""Tests for the convergence-detection modes (§5.5 + the §8 hardening).

The paper's protocol halts the moment the Spawner's array is all-stable
("immediate").  That is vulnerable to a real race this reproduction hits
when message latency exceeds the quiet window: a correction wave still in
flight lets every peer look stable simultaneously, and the application
halts on a wrong answer.  ``detection_mode="dwell"`` (our implementation of
the §8 improvement direction) holds the all-stable state for a dwell period
before finishing.
"""

import numpy as np
import pytest

from repro.apps import make_poisson_app
from repro.experiments.config import EXPERIMENT_CONFIG, EXPERIMENT_LINK_SCALE
from repro.numerics import Poisson2D
from repro.p2p import P2PConfig, build_cluster, launch_application


def run_mode(mode: str, seed: int = 0, window: int = 3):
    cfg = EXPERIMENT_CONFIG.with_(
        stability_window=window, detection_mode=mode, verification_dwell=0.05
    )
    cluster = build_cluster(
        n_daemons=12, n_superpeers=3, seed=seed, config=cfg,
        link_scale=EXPERIMENT_LINK_SCALE,
    )
    app = make_poisson_app("p", n=48, num_tasks=8, overlap=3)
    spawner = launch_application(cluster, app)
    sim = cluster.sim
    sim.run(until=sim.any_of([spawner.done, sim.timeout(300.0)]))
    assert spawner.done.triggered
    proc = sim.process(spawner.collect_solution())
    sim.run(until=proc)
    x = np.zeros(48 * 48)
    for frag in proc.value.values():
        offset, values = frag
        x[offset : offset + len(values)] = values
    return spawner, Poisson2D.manufactured(48).residual_norm(x)


def test_immediate_mode_can_halt_prematurely_under_latency():
    """The documented weakness: with a quiet window shorter than the
    message RTT, the paper's immediate protocol accepts a wrong answer."""
    spawner, residual = run_mode("immediate", seed=0)
    assert residual > 1e-1  # garbage: halted mid-transient
    assert spawner.dwell_aborts == 0


def test_dwell_mode_rides_out_the_transient():
    spawner, residual = run_mode("dwell", seed=0)
    assert residual < 1e-3  # correct answer
    assert spawner.dwell_aborts >= 1  # it caught in-flight corrections


def test_dwell_mode_costs_bounded_extra_time():
    s_imm, _ = run_mode("immediate", seed=2)
    s_dwell, res = run_mode("dwell", seed=2)
    assert res < 1e-3
    # the dwell only delays completion by roughly (aborts+1) * dwell periods
    extra = s_dwell.execution_time - s_imm.execution_time
    assert extra < 1.0


def test_large_window_makes_immediate_mode_sound():
    """The alternative mitigation: a stability window outlasting the RTT
    (what EXPERIMENT_CONFIG uses for the headline benchmarks)."""
    spawner, residual = run_mode("immediate", seed=0, window=48)
    assert residual < 1e-3


def test_detection_mode_validation():
    with pytest.raises(ValueError):
        P2PConfig(detection_mode="sometimes")
    with pytest.raises(ValueError):
        P2PConfig(verification_dwell=0.0)
