"""Tests for the network substrate: hosts, links, delivery, loss, partitions."""

import pytest

from repro.des import Simulator, Interrupt
from repro.errors import HostDownError, NetworkError
from repro.net import (
    Address,
    Host,
    HeterogeneousLinkModel,
    Network,
    UniformLinkModel,
    build_testbed,
)
from repro.net.host import BASE_FLOPS
from repro.net.link import FAST_ETHERNET, GIGABIT_ETHERNET
from repro.util.rng import RngTree


# --------------------------------------------------------------------- address


def test_address_validation():
    a = Address("h1", 5000)
    assert str(a) == "h1:5000"
    with pytest.raises(ValueError):
        Address("", 80)
    with pytest.raises(ValueError):
        Address("h", 0)
    with pytest.raises(ValueError):
        Address("h", 70000)


def test_address_hashable_and_ordered():
    assert Address("a", 1) == Address("a", 1)
    assert len({Address("a", 1), Address("a", 1), Address("b", 1)}) == 2
    assert Address("a", 1) < Address("a", 2) < Address("b", 1)


# ------------------------------------------------------------------------ host


def test_host_compute_scales_with_speed():
    sim = Simulator()
    slow = Host(sim, "slow", speed=1.0)
    fast = Host(sim, "fast", speed=2.0)
    done = {}

    def work(env, host, name):
        yield host.compute(BASE_FLOPS)  # 1 second on a speed-1 machine
        done[name] = env.now

    sim.process(work(sim, slow, "slow"))
    sim.process(work(sim, fast, "fast"))
    sim.run()
    assert done["slow"] == pytest.approx(1.0)
    assert done["fast"] == pytest.approx(0.5)


def test_host_invalid_speed_and_negative_flops():
    sim = Simulator()
    with pytest.raises(ValueError):
        Host(sim, "h", speed=0)
    h = Host(sim, "h", speed=1)
    with pytest.raises(ValueError):
        h.compute(-5)


def test_host_fail_interrupts_processes():
    sim = Simulator()
    host = Host(sim, "h")
    outcome = []

    def worker(env):
        try:
            yield env.timeout(100)
            outcome.append("finished")
        except Interrupt as i:
            outcome.append(("killed", i.cause, env.now))

    host.spawn(worker(sim))

    def killer(env):
        yield env.timeout(5)
        host.fail(cause="churn")

    sim.process(killer(sim))
    sim.run()
    assert outcome == [("killed", "churn", 5.0)]
    assert not host.online
    assert host.fail_count == 1


def test_host_fail_closes_endpoints():
    sim = Simulator()
    host = Host(sim, "h")
    ep = host.open_endpoint(4000)
    host.fail()
    assert ep.closed
    assert host.endpoint(4000) is None


def test_host_fail_idempotent_and_recover_hooks():
    sim = Simulator()
    host = Host(sim, "h")
    boots = []
    host.on_recover(lambda h: boots.append(h.name))
    host.fail()
    host.fail()  # no-op
    assert host.fail_count == 1
    host.recover()
    host.recover()  # no-op
    assert host.recover_count == 1
    assert boots == ["h"]


def test_host_offline_operations_rejected():
    sim = Simulator()
    host = Host(sim, "h")
    host.fail()
    with pytest.raises(HostDownError):
        host.open_endpoint(1234)
    with pytest.raises(HostDownError):
        host.compute(10)
    with pytest.raises(HostDownError):
        host.spawn(iter(()))


def test_endpoint_port_collision():
    sim = Simulator()
    host = Host(sim, "h")
    host.open_endpoint(1000)
    with pytest.raises(NetworkError):
        host.open_endpoint(1000)


def test_endpoint_rebind_after_close():
    sim = Simulator()
    host = Host(sim, "h")
    ep = host.open_endpoint(1000)
    ep.close()
    ep2 = host.open_endpoint(1000)
    assert not ep2.closed


# ------------------------------------------------------------------------ links


def test_uniform_link_delay_formula():
    m = UniformLinkModel(latency=1e-3, bandwidth=1e6)
    sim = Simulator()
    a, b = Host(sim, "a"), Host(sim, "b")
    assert m.delay(a, b, 1_000_000) == pytest.approx(1e-3 + 1.0)
    assert m.delay(a, a, 10) < 1e-4  # loop-back is nearly free


def test_uniform_link_validation():
    with pytest.raises(ValueError):
        UniformLinkModel(latency=-1)
    with pytest.raises(ValueError):
        UniformLinkModel(bandwidth=0)
    with pytest.raises(ValueError):
        UniformLinkModel(jitter=0.1)  # jitter without rng


def test_heterogeneous_link_paced_by_slower_class():
    sim = Simulator()
    m = HeterogeneousLinkModel()
    fast = Host(sim, "f", tags=(GIGABIT_ETHERNET.name,))
    slow = Host(sim, "s", tags=(FAST_ETHERNET.name,))
    nbytes = 1_250_000
    d_ff = m.delay(fast, Host(sim, "f2", tags=(GIGABIT_ETHERNET.name,)), nbytes)
    d_fs = m.delay(fast, slow, nbytes)
    # mixed pair is paced by the 100 Mbps side: ~10x the transfer time
    assert d_fs > 5 * d_ff
    assert m.class_of(Host(sim, "untagged")) is m.default_class


def test_heterogeneous_link_jitter_bounded():
    rng = RngTree(0)
    m = HeterogeneousLinkModel(jitter=0.1, rng=rng)
    sim = Simulator()
    a = Host(sim, "a", tags=(GIGABIT_ETHERNET.name,))
    b = Host(sim, "b", tags=(GIGABIT_ETHERNET.name,))
    base = HeterogeneousLinkModel().delay(a, b, 1000)
    for _ in range(50):
        d = m.delay(a, b, 1000)
        assert 0.9 * base - 1e-12 <= d <= 1.1 * base + 1e-12


# --------------------------------------------------------------------- network


def _net_pair():
    sim = Simulator()
    net = Network(sim, link_model=UniformLinkModel(latency=1e-3, bandwidth=1e9))
    a = net.new_host("a")
    b = net.new_host("b")
    return sim, net, a, b


def test_network_roundtrip_delivery():
    sim, net, a, b = _net_pair()
    ep = b.open_endpoint(4000)
    received = []

    def receiver(env):
        msg = yield ep.recv()
        received.append((env.now, msg.payload))

    sim.process(receiver(sim))
    net.send(Address("a", 1), Address("b", 4000), {"hello": "world"})
    sim.run()
    assert len(received) == 1
    t, payload = received[0]
    assert payload == {"hello": "world"}
    assert t >= 1e-3  # at least the latency
    assert net.delivered == 1 and net.sent == 1


def test_network_send_to_dead_host_drops_silently():
    sim, net, a, b = _net_pair()
    b.open_endpoint(4000)
    b.fail()
    net.send(Address("a", 1), Address("b", 4000), "lost")
    sim.run()
    assert net.delivered == 0
    assert net.dropped_dead == 1


def test_network_send_to_unknown_host_drops():
    sim, net, a, b = _net_pair()
    net.send(Address("a", 1), Address("ghost", 4000), "x")
    sim.run()
    assert net.dropped_dead == 1


def test_network_send_to_missing_endpoint_drops():
    sim, net, a, b = _net_pair()
    net.send(Address("a", 1), Address("b", 9999), "x")
    sim.run()
    assert net.dropped_dead == 1 and net.delivered == 0


def test_network_host_dies_mid_flight():
    sim, net, a, b = _net_pair()
    b.open_endpoint(4000)

    def killer(env):
        yield env.timeout(0.0005)  # during the 1ms flight
        b.fail()

    sim.process(killer(sim))
    net.send(Address("a", 1), Address("b", 4000), "x")
    sim.run()
    assert net.delivered == 0 and net.dropped_dead == 1


def test_network_source_dead_cannot_send():
    sim, net, a, b = _net_pair()
    ep = b.open_endpoint(4000)
    a.fail()
    net.send(Address("a", 1), Address("b", 4000), "x")
    sim.run()
    assert net.delivered == 0 and net.dropped_dead == 1


def test_network_random_loss():
    sim = Simulator()
    net = Network(
        sim,
        link_model=UniformLinkModel(latency=1e-6, bandwidth=1e9),
        loss_rate=0.5,
        rng=RngTree(42).child("loss"),
    )
    a, b = net.new_host("a"), net.new_host("b")
    ep = b.open_endpoint(4000)
    for i in range(200):
        net.send(Address("a", 1), Address("b", 4000), i)
    sim.run()
    assert net.dropped_loss > 40
    assert net.delivered > 40
    assert net.dropped_loss + net.delivered == 200


def test_network_loss_rate_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Network(sim, loss_rate=1.5)
    with pytest.raises(ValueError):
        Network(sim, loss_rate=0.1)  # no rng


def test_network_partition_blocks_cross_group():
    sim, net, a, b = _net_pair()
    c = net.new_host("c")
    epb = b.open_endpoint(4000)
    epc = c.open_endpoint(4000)
    net.partition([["a", "b"], ["c"]])
    assert net.reachable("a", "b")
    assert not net.reachable("a", "c")
    net.send(Address("a", 1), Address("b", 4000), "same-side")
    net.send(Address("a", 1), Address("c", 4000), "cross")
    sim.run()
    assert net.delivered == 1
    assert net.dropped_partition == 1
    net.heal_partition()
    net.send(Address("a", 1), Address("c", 4000), "after-heal")
    sim.run()
    assert net.delivered == 2


def test_network_partition_validation():
    sim, net, a, b = _net_pair()
    with pytest.raises(NetworkError):
        net.partition([["a"], ["a"]])
    with pytest.raises(NetworkError):
        net.partition([["nope"]])


def test_network_duplicate_host_rejected():
    sim, net, a, b = _net_pair()
    with pytest.raises(NetworkError):
        net.new_host("a")
    with pytest.raises(NetworkError):
        net.host("missing")


def test_network_stats_bytes_accounting():
    sim, net, a, b = _net_pair()
    ep = b.open_endpoint(4000)
    net.send(Address("a", 1), Address("b", 4000), b"x" * 1000)
    sim.run()
    st = net.stats()
    assert st["bytes_sent"] >= 1000
    assert st["bytes_delivered"] == st["bytes_sent"]


def test_mailbox_overflow_counted():
    sim, net, a, b = _net_pair()
    ep = b.open_endpoint(4000, capacity=2)
    for i in range(5):
        net.send(Address("a", 1), Address("b", 4000), i)
    sim.run()
    assert net.delivered == 2
    assert net.dropped_overflow == 3


# --------------------------------------------------------------------- testbed


def test_build_testbed_population_shape():
    sim = Simulator()
    tb = build_testbed(sim, n_daemons=20, n_superpeers=3, rng=RngTree(1))
    assert len(tb.daemon_hosts) == 20
    assert len(tb.superpeer_hosts) == 3
    assert tb.spawner_host is not None
    assert len(tb.all_hosts) == 24
    lo, hi = tb.speed_spread()
    assert 1.0 <= lo < hi <= 2.38 + 1e-9


def test_build_testbed_deterministic():
    tb1 = build_testbed(Simulator(), 30, rng=RngTree(9))
    tb2 = build_testbed(Simulator(), 30, rng=RngTree(9))
    assert [h.speed for h in tb1.daemon_hosts] == [h.speed for h in tb2.daemon_hosts]
    assert [h.tags for h in tb1.daemon_hosts] == [h.tags for h in tb2.daemon_hosts]


def test_build_testbed_homogeneous():
    tb = build_testbed(Simulator(), 10, homogeneous=True)
    assert all(h.speed == 1.0 for h in tb.daemon_hosts)


def test_build_testbed_network_mix():
    tb = build_testbed(Simulator(), 200, rng=RngTree(4), fast_network_fraction=0.5)
    fast = sum(GIGABIT_ETHERNET.name in h.tags for h in tb.daemon_hosts)
    assert 60 < fast < 140  # roughly half


def test_build_testbed_validation():
    with pytest.raises(ValueError):
        build_testbed(Simulator(), 0)
    with pytest.raises(ValueError):
        build_testbed(Simulator(), 5, n_superpeers=0)
    with pytest.raises(ValueError):
        build_testbed(Simulator(), 5)  # heterogeneous without rng
