"""Advanced RMI scenarios: multiple exports, nested calls, generator
oneways, stress multiplexing."""

import pytest

from repro.des import Simulator
from repro.errors import RemoteError
from repro.net import Network, UniformLinkModel
from repro.rmi import RemoteObject, RmiRuntime, remote


class Adder(RemoteObject):
    @remote
    def add(self, a, b):
        return a + b


class Doubler(RemoteObject):
    @remote
    def double(self, x):
        return 2 * x


class Forwarder(RemoteObject):
    """A service whose handler remotely calls ANOTHER service (nested RMI,
    like a Super-Peer forwarding a reservation)."""

    def __init__(self, runtime, downstream_stub):
        self.runtime = runtime
        self.downstream = downstream_stub

    @remote
    def relay_double(self, x):
        result = yield self.runtime.call(self.downstream, "double", x)
        return ("relayed", result)


class SlowNotepad(RemoteObject):
    def __init__(self, sim):
        self.sim = sim
        self.notes = []

    @remote
    def slow_note(self, tag):
        yield self.sim.timeout(0.5)
        self.notes.append((self.sim.now, tag))


def make_world(n_hosts=3):
    sim = Simulator()
    net = Network(sim, link_model=UniformLinkModel(latency=1e-4, bandwidth=1e9))
    hosts = [net.new_host(f"h{i}") for i in range(n_hosts)]
    return sim, net, hosts


def test_multiple_objects_on_one_runtime():
    sim, net, (ha, hb, _) = make_world()
    server = RmiRuntime(net, hb, 5000)
    client = RmiRuntime(net, ha, 5000)
    add_stub = server.serve(Adder(), "adder")
    dbl_stub = server.serve(Doubler(), "doubler")

    def script(env):
        a = yield client.call(add_stub, "add", 2, 3)
        d = yield client.call(dbl_stub, "double", 21)
        # calling the wrong method on the right object still fails
        try:
            yield client.call(add_stub, "double", 1)
        except RemoteError:
            pass
        return a, d

    p = sim.process(script(sim))
    sim.run(until=p)
    assert p.value == (5, 42)


def test_nested_remote_calls_across_three_hosts():
    sim, net, (ha, hb, hc) = make_world()
    backend = RmiRuntime(net, hc, 5000, name="backend")
    middle = RmiRuntime(net, hb, 5000, name="middle")
    client = RmiRuntime(net, ha, 5000, name="client")
    dbl_stub = backend.serve(Doubler(), "doubler")
    fwd_stub = middle.serve(Forwarder(middle, dbl_stub), "forwarder")

    def script(env):
        return (yield client.call(fwd_stub, "relay_double", 8))

    p = sim.process(script(sim))
    sim.run(until=p)
    assert p.value == ("relayed", 16)


def test_nested_call_failure_propagates_to_origin():
    sim, net, (ha, hb, hc) = make_world()
    backend = RmiRuntime(net, hc, 5000)
    middle = RmiRuntime(net, hb, 5000, call_timeout=1.0)
    client = RmiRuntime(net, ha, 5000, call_timeout=5.0)
    dbl_stub = backend.serve(Doubler(), "doubler")
    fwd_stub = middle.serve(Forwarder(middle, dbl_stub), "forwarder")
    hc.fail()  # the backend is gone

    def script(env):
        try:
            yield client.call(fwd_stub, "relay_double", 8)
        except RemoteError:
            return ("failed-through", env.now)

    p = sim.process(script(sim))
    sim.run(until=p)
    kind, t = p.value
    assert kind == "failed-through"
    assert t == pytest.approx(1.0, abs=0.1)  # the middle tier's timeout


def test_generator_oneway_runs_to_completion():
    sim, net, (ha, hb, _) = make_world()
    server = RmiRuntime(net, hb, 5000)
    client = RmiRuntime(net, ha, 5000)
    pad = SlowNotepad(sim)
    stub = server.serve(pad, "pad")
    client.oneway(stub, "slow_note", "async-side-effect")
    sim.run(until=2.0)
    assert len(pad.notes) == 1
    assert pad.notes[0][0] == pytest.approx(0.5, abs=0.01)


def test_many_interleaved_calls_resolve_to_right_callers():
    sim, net, (ha, hb, _) = make_world()
    server = RmiRuntime(net, hb, 5000)
    client = RmiRuntime(net, ha, 5000)
    stub = server.serve(Adder(), "adder")
    results = {}

    def caller(env, k):
        # stagger and interleave 30 calls
        yield env.timeout(0.001 * (k % 7))
        value = yield client.call(stub, "add", k, 1000)
        results[k] = value

    for k in range(30):
        sim.process(caller(sim, k))
    sim.run()
    assert results == {k: k + 1000 for k in range(30)}
    assert server.calls_served == 30
