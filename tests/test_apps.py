"""Unit tests for the SPMD applications (Poisson / Jacobi / Heat tasks):
setup determinism, state round-trips, iteration math against sequential
references, and message shapes."""

import numpy as np
import pytest

from repro.apps import (
    HeatTask,
    JacobiTask,
    PoissonTask,
    make_heat_app,
    make_jacobi_app,
    make_poisson_app,
)
from repro.numerics import BlockDecomposition, Poisson2D, block_jacobi
from repro.p2p import TaskContext


def make_task(cls, params, task_id=1, num_tasks=3, app_id="t"):
    task = cls()
    task.setup(TaskContext(app_id=app_id, task_id=task_id, num_tasks=num_tasks,
                           params=params))
    task.load_state(task.initial_state())
    return task


def run_ring_until(tasks, rounds):
    """Synchronously relay messages between task objects for `rounds`."""
    inboxes = [dict() for _ in tasks]
    for _ in range(rounds):
        steps = [t.iterate(inboxes[i]) for i, t in enumerate(tasks)]
        inboxes = [dict() for _ in tasks]
        for i, step in enumerate(steps):
            for dst, payload in step.outgoing.items():
                inboxes[dst][i] = payload
    return steps


# --------------------------------------------------------------------- poisson


def test_poisson_task_setup_is_deterministic():
    a = make_task(PoissonTask, {"n": 12, "overlap": 1})
    b = make_task(PoissonTask, {"n": 12, "overlap": 1})
    assert a.blk.own_start == b.blk.own_start
    assert np.array_equal(a.blk.b_local, b.blk.b_local)
    assert (a.blk.A_local != b.blk.A_local).nnz == 0


def test_poisson_task_state_roundtrip():
    task = make_task(PoissonTask, {"n": 10})
    task.x[:] = 3.14
    task.ext[:] = 2.71
    state = task.dump_state()
    other = make_task(PoissonTask, {"n": 10})
    other.load_state(state)
    assert np.array_equal(other.x, task.x)
    assert np.array_equal(other.ext, task.ext)
    # dumped state must be a snapshot, not an alias
    task.x[0] = -1
    assert state["x"][0] == 3.14


def test_poisson_tasks_match_sequential_block_jacobi():
    """Running the tasks in lockstep == the sequential reference solver."""
    n, p = 10, 2
    tasks = [
        make_task(PoissonTask, {"n": n, "overlap": 0}, task_id=k, num_tasks=p)
        for k in range(p)
    ]
    run_ring_until(tasks, rounds=50)
    x = np.zeros(n * n)
    for t in tasks:
        off, vals = t.solution_fragment()
        x[off : off + len(vals)] = vals

    prob = Poisson2D.manufactured(n)
    d = BlockDecomposition(prob.A, prob.b, nblocks=p, line=n)
    ref = block_jacobi(d, tol=1e-30, max_outer=50)
    assert np.allclose(x, ref.x, atol=1e-8)


def test_poisson_task_ignores_malformed_inbox():
    task = make_task(PoissonTask, {"n": 10}, task_id=0, num_tasks=2)
    step_ok = task.iterate({})
    # wrong source, wrong shape: silently ignored
    step = task.iterate({99: np.ones(10), 1: np.ones(3)})
    assert np.all(task.ext == 0.0)
    assert set(step.outgoing) == set(step_ok.outgoing)


def test_poisson_task_iteration_reports_costs():
    task = make_task(PoissonTask, {"n": 10}, task_id=0, num_tasks=2)
    step = task.iterate({})
    assert step.flops > 0
    assert step.local_distance > 0  # first iteration moves off zero
    assert step.info["inner_iterations"] > 0
    assert list(step.outgoing) == [1]
    assert step.outgoing[1].shape == (10,)


def test_poisson_task_warm_start_reduces_inner_iterations():
    cold = make_task(PoissonTask, {"n": 10, "warm_start": False},
                     task_id=0, num_tasks=2)
    warm = make_task(PoissonTask, {"n": 10, "warm_start": True},
                     task_id=0, num_tasks=2)
    for task in (cold, warm):
        task.iterate({})
    # second iterate on identical data: warm start is nearly free
    cold2 = cold.iterate({})
    warm2 = warm.iterate({})
    assert warm2.info["inner_iterations"] < cold2.info["inner_iterations"]
    assert warm2.flops < cold2.flops


def test_poisson_task_unknown_problem_rejected():
    with pytest.raises(ValueError):
        make_task(PoissonTask, {"n": 8, "problem": "nonsense"})


def test_make_poisson_app_spec_carries_params():
    app = make_poisson_app("x", n=16, num_tasks=4, overlap=2, warm_start=True)
    assert app.params["n"] == 16 and app.params["overlap"] == 2
    assert app.params["warm_start"] is True
    assert app.num_tasks == 4


# ---------------------------------------------------------------------- jacobi


def test_jacobi_task_sweep_matches_manual_jacobi():
    n = 8
    task = make_task(JacobiTask, {"n": n, "sweeps": 1}, task_id=0, num_tasks=1)
    task.iterate({})
    prob = Poisson2D.manufactured(n)
    D = prob.A.diagonal()
    expected = (prob.b - (prob.A @ np.zeros(n * n)) + D * 0.0) / D
    assert np.allclose(task.x, prob.b / D)
    assert np.allclose(task.x, expected)


def test_jacobi_task_multiple_sweeps_progress_more():
    one = make_task(JacobiTask, {"n": 8, "sweeps": 1}, task_id=0, num_tasks=1)
    five = make_task(JacobiTask, {"n": 8, "sweeps": 5}, task_id=0, num_tasks=1)
    prob = Poisson2D.manufactured(8)
    ref = prob.solve_direct()
    one.iterate({})
    five.iterate({})
    assert np.linalg.norm(five.x - ref) < np.linalg.norm(one.x - ref)


def test_jacobi_task_validation():
    with pytest.raises(ValueError):
        make_task(JacobiTask, {"n": 8, "sweeps": 0})


def test_make_jacobi_app():
    app = make_jacobi_app("j", n=12, num_tasks=3, sweeps=4)
    assert app.params["sweeps"] == 4


# ------------------------------------------------------------------------ heat


def test_heat_task_respects_stability_limit():
    task = make_task(HeatTask, {"n": 8, "theta": 0.9})
    prob = Poisson2D.heat_plate(8)
    assert task.dt * prob.A.diagonal().max() == pytest.approx(0.9)


def test_heat_task_marches_toward_steady_state():
    n = 8
    task = make_task(HeatTask, {"n": n, "steps_per_iteration": 50},
                     task_id=0, num_tasks=1)
    prob = Poisson2D.heat_plate(n)
    ref = prob.solve_direct()
    errs = []
    for _ in range(20):
        task.iterate({})
        errs.append(np.linalg.norm(task.x - ref))
    assert errs[-1] < errs[0] * 0.1  # strong decay toward the steady state


def test_heat_task_validation():
    with pytest.raises(ValueError):
        make_task(HeatTask, {"n": 8, "theta": 1.5})
    with pytest.raises(ValueError):
        make_task(HeatTask, {"n": 8, "steps_per_iteration": 0})


def test_make_heat_app():
    app = make_heat_app("h", n=10, num_tasks=2, theta=0.5)
    assert app.params["theta"] == 0.5


# ----------------------------------------------------- cross-app conventions


@pytest.mark.parametrize(
    "factory,params",
    [
        (PoissonTask, {"n": 12, "overlap": 1}),
        (JacobiTask, {"n": 12}),
        (HeatTask, {"n": 12}),
    ],
)
def test_every_app_exchanges_one_grid_line_per_neighbour(factory, params):
    """§6: exchanged data per neighbour is n components."""
    task = make_task(factory, params, task_id=1, num_tasks=3)
    step = task.iterate({})
    assert set(step.outgoing) == {0, 2}
    for payload in step.outgoing.values():
        assert np.asarray(payload).shape == (12,)


@pytest.mark.parametrize(
    "factory,params",
    [
        (PoissonTask, {"n": 8}),
        (JacobiTask, {"n": 8}),
        (HeatTask, {"n": 8}),
    ],
)
def test_every_app_fragment_covers_owned_range(factory, params):
    task = make_task(factory, params, task_id=2, num_tasks=4)
    task.iterate({})
    offset, values = task.solution_fragment()
    assert offset == task.blk.own_start
    assert len(values) == task.blk.n_owned
