"""Tests for the ASCII chart renderer."""

import pytest

from repro.experiments.figure7 import Figure7Result
from repro.experiments.plotting import ascii_chart, figure7_chart


def test_empty_chart():
    assert "no data" in ascii_chart({})


def test_single_series_extremes_land_on_grid_corners():
    chart = ascii_chart({"s": [(0, 0), (10, 100)]}, width=20, height=8)
    lines = [l for l in chart.splitlines() if "|" in l]
    # max point: top row, right column; min point: bottom row, left column
    assert lines[0].split("|")[1][19] == "o"
    assert lines[-1].split("|")[1][0] == "o"


def test_multiple_series_get_distinct_markers_and_legend():
    chart = ascii_chart(
        {"a": [(0, 1), (1, 2)], "b": [(0, 2), (1, 4)]},
        width=20, height=6,
    )
    assert "o=a" in chart and "x=b" in chart
    assert "o" in chart and "x" in chart


def test_axis_labels_and_title():
    chart = ascii_chart({"s": [(5, 5), (15, 9)]}, width=24, height=6,
                        title="T", x_label="size", y_label="time")
    assert chart.splitlines()[0] == "T"
    assert "time" in chart
    assert "15" in chart and "5" in chart


def test_chart_size_validation():
    with pytest.raises(ValueError):
        ascii_chart({"s": [(0, 0)]}, width=5, height=2)


def test_figure7_chart_renders_every_series():
    result = Figure7Result(ns=(40, 64), disconnections=(0, 4), peers=8,
                           repeats=1)
    result.times = {(40, 0): 1.0, (64, 0): 1.5, (40, 4): 2.0, (64, 4): 2.8}
    chart = figure7_chart(result)
    assert "0 disc" in chart and "4 disc" in chart
    assert "Fig. 7" in chart


def test_figure7_chart_skips_missing_cells():
    result = Figure7Result(ns=(40,), disconnections=(0, 4), peers=8, repeats=1)
    result.times = {(40, 0): 1.0}  # the churn cell never converged
    chart = figure7_chart(result)
    assert "0 disc" in chart and "4 disc" not in chart
