"""Tests for the real threaded backend: channels + executor."""

import numpy as np
import pytest

from repro.errors import TaskError
from repro.local import LatestValueChannel, MailboxSet, ThreadedEngine
from repro.apps import make_poisson_app
from repro.numerics import Poisson2D
from repro.p2p import AppSpec, IterationStep, Task

from tests.helpers import assemble_strip_solution, make_geometric_app


# ------------------------------------------------------------------- channels


def test_channel_last_write_wins():
    ch = LatestValueChannel()
    assert ch.take() == (False, None)
    ch.put(1)
    ch.put(2)
    assert ch.take() == (True, 2)
    assert ch.take() == (False, None)
    assert ch.puts == 2 and ch.overwrites == 1


def test_channel_peek_does_not_consume():
    ch = LatestValueChannel()
    ch.put("x")
    assert ch.peek() == (True, "x")
    assert ch.take() == (True, "x")
    assert ch.peek() == (False, None)


def test_mailbox_set_collect():
    mb = MailboxSet(3)
    mb.send(0, 2, "a")
    mb.send(1, 2, "b")
    mb.send(0, 2, "a2")  # overwrites
    inbox = mb.collect(2)
    assert inbox == {0: "a2", 1: "b"}
    assert mb.collect(2) == {}


def test_mailbox_set_validation():
    with pytest.raises(ValueError):
        MailboxSet(0)
    mb = MailboxSet(2)
    with pytest.raises(KeyError):
        mb.channel(0, 0)  # no self-channel


def test_channel_thread_safety_under_contention():
    import threading

    ch = LatestValueChannel()
    stop = threading.Event()
    taken = []

    def producer():
        for i in range(5000):
            ch.put(i)
        stop.set()

    def consumer():
        while not stop.is_set() or ch.peek()[0]:
            fresh, v = ch.take()
            if fresh:
                taken.append(v)

    t1, t2 = threading.Thread(target=producer), threading.Thread(target=consumer)
    t1.start(); t2.start(); t1.join(); t2.join()
    assert taken, "consumer saw nothing"
    assert taken == sorted(taken)  # monotone: never see an older value
    assert taken[-1] == 4999


# ------------------------------------------------------------------- executor


def test_threaded_async_geometric_converges():
    engine = ThreadedEngine(make_geometric_app(num_tasks=3), mode="async")
    result = engine.run()
    assert result.converged
    assert result.total_iterations > 0
    assert all(abs(frag[1]) < 1e-3 for frag in result.fragments.values())


def test_threaded_sync_geometric_converges():
    engine = ThreadedEngine(make_geometric_app(num_tasks=3), mode="sync")
    result = engine.run()
    assert result.converged
    # BSP: every task performs the same number of supersteps (+-1 at stop)
    counts = list(result.iterations.values())
    assert max(counts) - min(counts) <= 1


def test_threaded_async_poisson_accuracy():
    app = make_poisson_app(
        "p", n=12, num_tasks=3, convergence_threshold=1e-8
    )
    result = ThreadedEngine(app, mode="async").run()
    assert result.converged
    x = assemble_strip_solution(result.fragments, 144)
    assert Poisson2D.manufactured(12).residual_norm(x) < 1e-4


def test_threaded_sync_poisson_accuracy():
    app = make_poisson_app(
        "p", n=12, num_tasks=3, convergence_threshold=1e-8
    )
    result = ThreadedEngine(app, mode="sync").run()
    assert result.converged
    x = assemble_strip_solution(result.fragments, 144)
    assert Poisson2D.manufactured(12).residual_norm(x) < 1e-4


def test_threaded_single_task():
    result = ThreadedEngine(make_geometric_app(num_tasks=1)).run()
    assert result.converged
    assert result.useless_iterations == {0: 0}  # solo task is never 'useless'


def test_threaded_max_iterations_guard():
    app = make_geometric_app(num_tasks=2, rate=0.999999, threshold=1e-15)
    result = ThreadedEngine(app, max_iterations=50).run()
    assert not result.converged
    assert all(c <= 50 for c in result.iterations.values())


def test_threaded_worker_exception_surfaces():
    class Bomb(Task):
        def setup(self, ctx):
            super().setup(ctx)

        def initial_state(self):
            return {}

        def load_state(self, state):
            pass

        def dump_state(self):
            return {}

        def iterate(self, inbox):
            raise RuntimeError("bad task")

    app = AppSpec(app_id="bomb", task_factory=Bomb, num_tasks=2)
    with pytest.raises(TaskError, match="bad task"):
        ThreadedEngine(app).run()


def test_threaded_engine_validation():
    app = make_geometric_app()
    with pytest.raises(ValueError):
        ThreadedEngine(app, mode="chaos")
    with pytest.raises(ValueError):
        ThreadedEngine(app, max_iterations=0)
