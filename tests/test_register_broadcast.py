"""Tests for register dissemination: full vs delta broadcasts (§8)."""

import numpy as np
import pytest

from repro.apps import make_poisson_app
from repro.numerics import Poisson2D
from repro.checkpoint import FixedPolicy
from repro.p2p import P2PConfig, build_cluster, launch_application
from repro.p2p.messages import ApplicationRegister, RegisterDelta, TaskSlot

from tests.helpers import (
    assemble_strip_solution,
    collect_solution,
    make_geometric_app,
    run_until_done,
)

FAST = P2PConfig(
    heartbeat_period=0.5, heartbeat_timeout=2.0, monitor_period=0.5,
    call_timeout=2.0, bootstrap_retry_delay=0.5, reserve_retry_period=0.5,
    min_iteration_time=0.01,
)
CKPT = FixedPolicy(count=3, frequency=5)


def run_with_failure(mode: str, seed: int = 51):
    cluster = build_cluster(
        n_daemons=8, n_superpeers=2, seed=seed,
        config=FAST.with_(broadcast_mode=mode),
        checkpoint=CKPT,
    )
    app = make_poisson_app("p", n=16, num_tasks=4, convergence_threshold=1e-8)
    spawner = launch_application(cluster, app)
    sim = cluster.sim
    sim.run(until=1.0)
    victim_name = spawner.register.slot(2).daemon_id.rsplit("#", 1)[0]
    victim = next(h for h in cluster.testbed.daemon_hosts
                  if h.name == victim_name)
    victim.fail(cause="test")
    assert run_until_done(cluster, spawner, horizon=900.0)
    frags = collect_solution(cluster, spawner)
    x = assemble_strip_solution(frags, 256)
    residual = Poisson2D.manufactured(16).residual_norm(x)
    return cluster, spawner, residual


def test_config_validates_broadcast_mode():
    with pytest.raises(ValueError):
        P2PConfig(broadcast_mode="sometimes")


def test_delta_mode_converges_correctly_under_failure():
    cluster, spawner, residual = run_with_failure("delta")
    assert residual < 1e-4
    assert spawner.replacements == 1


def test_delta_broadcasts_are_smaller_than_full():
    _, full_spawner, full_res = run_with_failure("full")
    _, delta_spawner, delta_res = run_with_failure("delta")
    assert full_res < 1e-4 and delta_res < 1e-4
    # same number of membership changes, materially fewer bytes
    assert delta_spawner.broadcast_bytes < full_spawner.broadcast_bytes


def test_delta_apply_in_sequence():
    """Unit-level: a daemon applies consecutive deltas and ignores stale
    or already-seen ones."""
    from repro.net.address import Address
    from repro.rmi import Stub

    reg = ApplicationRegister.empty("app", 3)
    reg.version = 5

    class FakeRunner:
        app_id = "app"
        register = reg
        spawner_stub = Stub("spawner", Address("s", 4200))

    class FakeDaemon:
        runner = FakeRunner()
        _resyncing = False

        def __getattr__(self, name):
            raise AssertionError(f"unexpected daemon access: {name}")

    from repro.p2p.daemon import Daemon

    daemon = FakeDaemon()
    new_slot = TaskSlot(1, "dX", Stub("daemon", Address("h", 4100)), epoch=2)
    delta = RegisterDelta("app", from_version=5, to_version=6,
                          changes=[new_slot])
    assert Daemon.update_register_delta(daemon, delta) is True
    assert reg.version == 6
    assert reg.slot(1).daemon_id == "dX"
    # replay of the same delta: harmless no-op
    assert Daemon.update_register_delta(daemon, delta) is True
    assert reg.version == 6
    # wrong app: rejected
    foreign = RegisterDelta("other", 6, 7, [])
    assert Daemon.update_register_delta(daemon, foreign) is False


def test_delta_gap_triggers_resync_on_live_cluster():
    """Force a version gap by injecting a far-future delta: the daemon
    must pull a full snapshot rather than apply it."""
    cluster = build_cluster(
        n_daemons=5, n_superpeers=2, seed=53,
        config=FAST.with_(broadcast_mode="delta"),
        checkpoint=CKPT,
    )
    app = make_geometric_app(num_tasks=3, rate=0.9999, threshold=1e-12,
                             flops=3e6)
    spawner = launch_application(cluster, app)
    sim = cluster.sim
    sim.run(until=2.0)
    slot = spawner.register.slot(0)
    daemon_host = slot.daemon_id.rsplit("#", 1)[0]
    daemon = cluster.daemons[daemon_host]
    # a delta whose base version the daemon never saw
    gap = RegisterDelta(app.app_id, from_version=40, to_version=41, changes=[])
    assert daemon.update_register_delta(gap) is False
    sim.run(until=sim.now + 3.0)
    assert spawner.resyncs_served >= 1
    assert daemon.runner.register.version == spawner.register.version
