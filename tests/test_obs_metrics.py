"""Unit tests for the metrics registry (repro.obs.metrics)."""

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


def test_counter_unlabelled():
    c = Counter("msgs")
    c.inc()
    c.inc(2.5)
    assert c.value() == 3.5
    assert c.total == 3.5


def test_counter_labelled():
    c = Counter("iters")
    c.inc(task=0)
    c.inc(task=0)
    c.inc(task=1)
    assert c.value(task=0) == 2
    assert c.value(task=1) == 1
    assert c.value(task=2) == 0
    assert c.total == 3
    assert c.by_label("task") == {0: 2.0, 1: 1.0}


def test_counter_label_order_is_irrelevant():
    c = Counter("x")
    c.inc(a=1, b=2)
    c.inc(b=2, a=1)
    assert c.value(a=1, b=2) == 2


def test_counter_set_absolute():
    c = Counter("legacy")
    c.set(10)
    c.set(c.value() + 1)  # the facade's += pattern
    assert c.value() == 11


def test_gauge_set_inc_clear():
    g = Gauge("depth")
    assert g.value() is None
    assert g.value(default=0.0) == 0.0
    g.set(5.0)
    g.inc(2.0)
    assert g.value() == 7.0
    g.clear()
    assert g.value() is None
    g.set(1.0, host="a")
    assert g.value(host="a") == 1.0 and g.value() is None


def test_histogram_summary_only():
    h = Histogram("lat")
    for v in (1.0, 2.0, 3.0):
        h.observe(v)
    assert h.count == 3
    assert h.stats.mean == pytest.approx(2.0)
    with pytest.raises(ValueError):
        h.quantile(0.5)


def test_histogram_with_bins():
    h = Histogram("lat", low=0.0, high=10.0, bins=10)
    for v in range(10):
        h.observe(float(v))
    assert h.count == 10
    assert 3.0 <= h.quantile(0.5) <= 6.0
    snap = h.snapshot()
    assert snap["type"] == "histogram" and "p95" in snap


def test_registry_get_or_create_shares_instances():
    reg = MetricsRegistry()
    a = reg.counter("msgs", help="messages")
    b = reg.counter("msgs")
    assert a is b
    a.inc()
    assert b.total == 1


def test_registry_type_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError, match="already registered"):
        reg.gauge("x")


def test_registry_introspection():
    reg = MetricsRegistry()
    reg.counter("b")
    reg.gauge("a")
    reg.histogram("c")
    assert reg.names() == ["a", "b", "c"]
    assert "a" in reg and "zzz" not in reg
    assert len(reg) == 3
    assert reg.get("zzz") is None
    assert {m.name for m in reg} == {"a", "b", "c"}


def test_registry_snapshot_is_json_friendly():
    import json

    reg = MetricsRegistry()
    reg.counter("msgs").inc(task=1)
    reg.gauge("t").set(4.2)
    reg.histogram("lat").observe(0.1)
    snap = reg.snapshot()
    assert set(snap) == {"msgs", "t", "lat"}
    assert snap["msgs"]["type"] == "counter"
    json.dumps(snap)  # must not raise
