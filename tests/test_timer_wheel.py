"""Tests for the slotted TimerWheel and batched kernel scheduling.

The wheel is the swarm-scale heartbeat substrate (docs/scaling.md): these
tests pin the quantization rule (round *up* to a slot boundary, never fire
early), the in-slot firing order, the next-boundary semantics for entries
registered mid-fire, and — the point of the exercise — that a wheel full
of timers costs one kernel event per slot where the per-process reference
pays one per timer.
"""

import pytest

from repro.des import Simulator, TimerWheel
from repro.errors import SimulationError

WIDTH = 0.1


def make_wheel(width=WIDTH):
    sim = Simulator()
    return sim, sim.timer_wheel(width)


# -- one-shot quantization ----------------------------------------------------


def test_after_rounds_up_to_slot_boundary():
    sim, wheel = make_wheel()
    fired = []
    wheel.after(0.25, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [pytest.approx(0.3)]


def test_at_on_exact_boundary_fires_on_that_boundary():
    sim, wheel = make_wheel()
    fired = []
    wheel.at(0.2, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [pytest.approx(0.2)]
    assert wheel.slots_fired == 1


def test_same_slot_fires_in_registration_order():
    sim, wheel = make_wheel()
    order = []
    wheel.after(0.28, order.append, "a")
    wheel.after(0.21, order.append, "b")  # different delay, same slot (0.3)
    wheel.after(0.30, order.append, "c")
    sim.run()
    assert order == ["a", "b", "c"]
    assert wheel.slots_fired == 1  # one kernel event served all three
    assert wheel.timers_fired == 3


def test_float_fuzz_does_not_skip_a_slot():
    # 3 * 0.1 accumulates to 0.30000000000000004; a timer for "0.3" must
    # still land on slot 3, not slip to slot 4
    sim, wheel = make_wheel()
    fired = []
    wheel.at(3 * 0.1, lambda: fired.append(sim.now))
    sim.run()
    assert fired and fired[0] == pytest.approx(0.3, abs=1e-9)
    assert wheel.slots_fired == 1


def test_scheduling_into_the_past_rejected():
    sim, wheel = make_wheel()
    sim.run(until=0.5)
    with pytest.raises(SimulationError):
        wheel.at(0.2, lambda: None)
    with pytest.raises(SimulationError):
        wheel.after(-0.1, lambda: None)


def test_zero_slot_width_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timer_wheel(0.0)


# -- periodic timers ----------------------------------------------------------


def test_every_fires_each_boundary_until_false():
    sim, wheel = make_wheel()
    times = []

    def tick():
        times.append(round(sim.now, 10))
        return len(times) < 4  # deregister after the 4th firing

    wheel.every(tick)
    sim.run(until=2.0)
    assert times == [pytest.approx(t) for t in (0.1, 0.2, 0.3, 0.4)]
    assert len(wheel) == 0  # returning False removed the entry


def test_every_cancel_handle():
    sim, wheel = make_wheel()
    times = []
    entry = wheel.every(lambda: times.append(sim.now))
    sim.process(_cancel_at(sim, entry, 0.35))
    sim.run(until=1.0)
    assert len(times) == 3  # 0.1, 0.2, 0.3; cancelled before 0.4


def _cancel_at(sim, entry, when):
    yield sim.timeout(when)
    entry.cancel()


def test_registration_during_firing_starts_next_boundary():
    sim, wheel = make_wheel()
    log = []

    def inner():
        log.append(("inner", round(sim.now, 10)))
        return False

    def outer():
        log.append(("outer", round(sim.now, 10)))
        if len(log) == 1:
            wheel.every(inner)  # registered mid-fire: must NOT run this slot
        return len([e for e in log if e[0] == "outer"]) < 2

    wheel.every(outer)
    sim.run(until=1.0)
    assert log == [
        ("outer", pytest.approx(0.1)),
        ("outer", pytest.approx(0.2)),
        ("inner", pytest.approx(0.2)),
    ]


# -- wheel vs per-process reference -------------------------------------------


def test_wheel_matches_per_process_reference_times():
    """N periodic wheel timers fire at exactly the times N dedicated DES
    processes sleeping the slot width would — same timestamps, same
    per-boundary grouping — while costing one kernel event per slot."""
    N, HORIZON = 50, 1.0

    # reference arm: one process per timer
    ref_sim = Simulator()
    ref_times: list[list[float]] = [[] for _ in range(N)]

    def beater(env, out):
        while True:
            yield env.timeout(WIDTH)
            out.append(round(env.now, 10))

    for i in range(N):
        ref_sim.process(beater(ref_sim, ref_times[i]))
    ref_sim.run(until=HORIZON)

    # wheel arm: one wheel, N entries
    sim, wheel = make_wheel()
    wheel_times: list[list[float]] = [[] for _ in range(N)]
    for i in range(N):
        wheel.every(lambda out=wheel_times[i]: out.append(round(sim.now, 10)))
    sim.run(until=HORIZON)

    assert wheel_times == ref_times
    # cost collapse: the reference pays ~N events per boundary, the wheel
    # pays one (10 boundaries over the horizon)
    assert wheel.slots_fired == 10
    assert wheel.timers_fired == N * 10
    assert sim.event_count < ref_sim.event_count / (N / 4)


def test_wheel_stops_arming_when_empty():
    sim, wheel = make_wheel()
    wheel.every(lambda: False)  # fires once, deregisters
    sim.run()
    # schedule drained: no perpetual re-arming of empty slots
    assert sim.now == pytest.approx(0.1)
    assert wheel.slots_fired == 1


# -- batched scheduling -------------------------------------------------------


def test_call_later_batched_coalesces_same_fire_time():
    sim = Simulator()
    order = []
    for i in range(5):
        sim.call_later_batched(1.0, order.append, i)
    sim.call_later_batched(2.0, order.append, "late")
    sim.run()
    assert order == [0, 1, 2, 3, 4, "late"]
    # five callbacks at t=1.0 shared one heap entry: 4 coalesced
    assert sim.batched_calls == 4
    assert sim.event_count == 2


def test_batched_and_unbatched_same_time_coexist():
    sim = Simulator()
    seen = []
    sim.call_later(1.0, seen.append, "plain")
    sim.call_later_batched(1.0, seen.append, "batched")
    sim.run()
    assert sorted(seen) == ["batched", "plain"]
    assert sim.now == 1.0
