"""Advanced DES kernel scenarios: nested processes, canceled waiters,
interrupt interplay with stores and resources."""

import pytest

from repro.des import Interrupt, PriorityStore, Resource, Simulator, Store
from repro.errors import SimulationError


def test_deep_process_chain_joins_in_order():
    sim = Simulator()
    order = []

    def leaf(env, k):
        yield env.timeout(0.1 * (k + 1))
        order.append(f"leaf{k}")
        return k

    def mid(env, k):
        value = yield env.process(leaf(env, k))
        order.append(f"mid{k}")
        return value * 10

    def root(env):
        results = []
        for k in range(3):
            results.append((yield env.process(mid(env, k))))
        order.append("root")
        return results

    p = sim.process(root(sim))
    sim.run()
    assert p.value == [0, 10, 20]
    assert order == ["leaf0", "mid0", "leaf1", "mid1", "leaf2", "mid2", "root"]


def test_interrupted_store_getter_does_not_steal_items():
    """A consumer interrupted while blocked in get() must not consume the
    next put: the item goes to the surviving consumer."""
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(env, name):
        try:
            item = yield store.get()
            got.append((name, item))
        except Interrupt:
            got.append((name, "interrupted"))

    first = sim.process(consumer(sim, "first"))
    sim.process(consumer(sim, "second"))

    def script(env):
        yield env.timeout(1)
        first.interrupt()
        yield env.timeout(1)
        store.put("prize")

    sim.process(script(sim))
    sim.run()
    assert ("first", "interrupted") in got
    assert ("second", "prize") in got


def test_interrupted_resource_waiter_releases_queue_position():
    sim = Simulator()
    res = Resource(sim, slots=1)
    winners = []

    def holder(env):
        yield res.acquire()
        yield env.timeout(5)
        res.release()

    def waiter(env, name):
        try:
            yield res.acquire()
            winners.append(name)
            res.release()
        except Interrupt:
            pass

    sim.process(holder(sim))
    doomed = sim.process(waiter(sim, "doomed"))
    sim.process(waiter(sim, "patient"))

    def killer(env):
        yield env.timeout(1)
        doomed.interrupt()

    sim.process(killer(sim))
    sim.run()
    assert winners == ["patient"]


def test_priority_store_interleaved_with_blocking_getter():
    sim = Simulator()
    store = PriorityStore(sim)
    got = []

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            got.append(item[1])

    def producer(env):
        yield env.timeout(1)
        store.put((5, "low"))
        yield env.timeout(1)
        store.put((1, "high"))
        store.put((3, "mid"))

    sim.process(consumer(sim))
    sim.process(producer(sim))
    sim.run()
    # first item delivered immediately on arrival (blocked getter), the
    # remaining two ordered by priority
    assert got == ["low", "high", "mid"]


def test_event_processed_then_yielded_by_two_processes():
    sim = Simulator()
    gate = sim.event()
    seen = []

    def early(env):
        value = yield gate
        seen.append(("early", value, env.now))

    def late(env):
        yield env.timeout(5)
        value = yield gate  # long processed by now
        seen.append(("late", value, env.now))

    sim.process(early(sim))
    sim.process(late(sim))
    gate.succeed("open")
    sim.run()
    assert ("early", "open", 0.0) in seen
    assert ("late", "open", 5.0) in seen


def test_failed_event_rethrows_for_late_yielder():
    sim = Simulator(strict=False)
    gate = sim.event()
    gate.fail(ValueError("poisoned"))

    def late(env):
        yield env.timeout(2)
        try:
            yield gate
        except ValueError as exc:
            return f"caught:{exc}"

    p = sim.process(late(sim))
    sim.run()
    assert p.value == "caught:poisoned"


def test_interrupting_a_just_finished_process_is_an_error():
    """FIFO at equal times: the sleeper's t=5 wake-up processes before the
    killer's t=5 turn, so by the time the killer acts its victim is dead —
    and interrupting a dead process is a programming error, loudly."""
    sim = Simulator(strict=False)
    outcome = []

    def sleeper(env):
        try:
            yield env.timeout(5)
            outcome.append("woke")
        except Interrupt:
            outcome.append("interrupted")

    victim = sim.process(sleeper(sim))

    def killer(env):
        yield env.timeout(5)  # exactly when the sleeper wakes
        victim.interrupt()

    killer_proc = sim.process(killer(sim))
    sim.run()
    assert outcome == ["woke"]
    assert not killer_proc.ok
    assert isinstance(killer_proc.value, SimulationError)


def test_interrupt_beats_wakeup_when_scheduled_first():
    """The URGENT priority: an interrupt issued strictly before the
    victim's wake-up instant always wins, even by a hair."""
    sim = Simulator()
    outcome = []

    def sleeper(env):
        try:
            yield env.timeout(5)
            outcome.append("woke")
        except Interrupt:
            outcome.append("interrupted")

    victim = sim.process(sleeper(sim))

    def killer(env):
        yield env.timeout(5 - 1e-12)
        victim.interrupt()

    sim.process(killer(sim))
    sim.run()
    assert outcome == ["interrupted"]


def test_two_simulators_do_not_share_events():
    sim1, sim2 = Simulator(), Simulator()
    foreign = sim2.timeout(1)

    def proc(env):
        yield foreign

    p = sim1.process(proc(sim1))
    sim1.run(until=1.0)
    assert not p.ok
    assert isinstance(p.value, SimulationError)
