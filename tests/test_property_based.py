"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.checkpoint import BackupPolicy, choose_latest
from repro.convergence import LocalConvergenceDetector
from repro.des import Simulator
from repro.numerics import (
    BlockDecomposition,
    conjugate_gradient,
    poisson_matrix,
)
from repro.util.rng import RngTree, derive_seed
from repro.util.serialization import clone_state, measured_size
from repro.util.stats import OnlineStats

COMMON = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# --------------------------------------------------------------------- kernel


@COMMON
@given(st.lists(st.floats(min_value=0.001, max_value=100.0), min_size=1,
                max_size=30))
def test_des_timeouts_fire_in_sorted_order(delays):
    sim = Simulator()
    fired = []

    def waiter(env, d):
        yield env.timeout(d)
        fired.append(d)

    for d in delays:
        sim.process(waiter(sim, d))
    sim.run()
    assert fired == sorted(delays)
    assert sim.now == max(delays)


@COMMON
@given(
    st.lists(st.floats(min_value=0.001, max_value=10.0), min_size=1, max_size=10),
    st.floats(min_value=0.0, max_value=15.0),
)
def test_des_run_until_deadline_never_overshoots(delays, deadline):
    sim = Simulator()

    def waiter(env, d):
        yield env.timeout(d)

    for d in delays:
        sim.process(waiter(sim, d))
    sim.run(until=deadline)
    assert sim.now == deadline


# ------------------------------------------------------------------------ rng


@COMMON
@given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=8),
       st.text(min_size=1, max_size=8))
def test_rng_children_deterministic_and_distinct(seed, a, b):
    t = RngTree(seed)
    assert t.child(a).uniform() == RngTree(seed).child(a).uniform()
    if a != b:
        # distinct labels should give distinct seeds (SHA-256 collision-free
        # in practice)
        assert derive_seed(seed, a) != derive_seed(seed, b)


# ---------------------------------------------------------------------- stats


@COMMON
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2,
                max_size=200))
def test_online_stats_matches_numpy_reference(xs):
    stats = OnlineStats()
    stats.extend(xs)
    arr = np.asarray(xs)
    assert stats.count == len(xs)
    assert stats.mean == pytest.approx(arr.mean(), rel=1e-9, abs=1e-9)
    assert stats.min == arr.min() and stats.max == arr.max()
    assert stats.variance == pytest.approx(arr.var(ddof=1), rel=1e-6, abs=1e-6)


@COMMON
@given(
    st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=1, max_size=50),
    st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=1, max_size=50),
)
def test_online_stats_merge_is_union(xs, ys):
    a, b, u = OnlineStats(), OnlineStats(), OnlineStats()
    a.extend(xs)
    b.extend(ys)
    u.extend(xs + ys)
    m = a.merge(b)
    assert m.count == u.count
    assert m.mean == pytest.approx(u.mean, rel=1e-9, abs=1e-9)
    assert m.variance == pytest.approx(u.variance, rel=1e-6, abs=1e-6)


# -------------------------------------------------------------- serialization


@COMMON
@given(st.integers(min_value=0, max_value=10_000))
def test_measured_size_monotone_in_array_length(k):
    assert measured_size(np.zeros(k + 1)) > measured_size(np.zeros(k)) - 1


@COMMON
@given(
    st.dictionaries(
        st.text(max_size=5),
        st.one_of(
            st.integers(), st.floats(allow_nan=False), st.text(max_size=10),
            st.lists(st.integers(), max_size=5),
        ),
        max_size=6,
    )
)
def test_clone_state_roundtrips_plain_data(state):
    snap = clone_state(state)
    assert snap == state
    assert snap is not state or not state


# --------------------------------------------------------------------- policy


@COMMON
@given(
    st.integers(min_value=1, max_value=64),
    st.integers(min_value=0, max_value=40),
    st.integers(min_value=1, max_value=20),
)
def test_backup_policy_invariants(num_tasks, count, frequency):
    policy = BackupPolicy(num_tasks=num_tasks, count=count, frequency=frequency)
    for task_id in range(num_tasks):
        peers = policy.backup_peers(task_id)
        assert task_id not in peers
        assert len(peers) == len(set(peers)) == policy.effective_count
        assert all(0 <= p < num_tasks for p in peers)
        # round-robin covers every guardian exactly once per cycle
        if peers:
            cycle = [policy.target_for_save(task_id, i) for i in range(len(peers))]
            assert sorted(cycle) == sorted(peers)
    # checkpoint_due fires exactly on multiples of frequency (except 0)
    due = [i for i in range(frequency * 3 + 1) if policy.checkpoint_due(i)]
    assert due == [frequency, 2 * frequency, 3 * frequency]


@COMMON
@given(
    st.dictionaries(
        st.integers(min_value=0, max_value=30),
        st.one_of(st.none(), st.integers(min_value=0, max_value=1000)),
        max_size=20,
    )
)
def test_choose_latest_picks_max_or_none(offers):
    best = choose_latest(offers)
    values = [v for v in offers.values() if v is not None]
    if not values:
        assert best is None
    else:
        assert offers[best] == max(values)


# ----------------------------------------------------------------- detection


@COMMON
@given(
    st.lists(st.floats(min_value=0, max_value=10), min_size=1, max_size=100),
    st.floats(min_value=1e-6, max_value=1.0),
    st.integers(min_value=1, max_value=10),
)
def test_local_detector_matches_reference_model(distances, threshold, window):
    det = LocalConvergenceDetector(threshold, window)
    streak = 0
    state = False
    for d in distances:
        flipped = det.update(d)
        streak = streak + 1 if d < threshold else 0
        expected = streak >= window
        assert det.stable == expected
        assert flipped == (expected != state)
        state = expected


# ------------------------------------------------------------------ numerics


@st.composite
def spd_system(draw):
    """Random diagonally dominant SPD system (guaranteed solvable by CG)."""
    n = draw(st.integers(min_value=2, max_value=25))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    A = rng.normal(size=(n, n))
    A = A @ A.T + n * np.eye(n)  # SPD with margin
    b = rng.normal(size=n)
    return sp.csr_matrix(A), b


@COMMON
@given(spd_system())
def test_cg_solves_random_spd_systems(system):
    A, b = system
    result = conjugate_gradient(A, b, tol=1e-12, max_iter=2000)
    assert result.converged
    ref = np.linalg.solve(A.toarray(), b)
    assert np.allclose(result.x, ref, atol=1e-6)


@COMMON
@given(
    st.integers(min_value=2, max_value=12),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=0, max_value=3),
)
def test_block_decomposition_invariants(n, nblocks, overlap):
    nblocks = min(nblocks, n)
    A = poisson_matrix(n, scaled=False)
    b = np.arange(float(n * n))
    widths_ok = overlap + 1 <= n // nblocks
    if nblocks > 1 and overlap > 0 and not widths_ok:
        with pytest.raises(ValueError):
            BlockDecomposition(A, b, nblocks=nblocks, line=n, overlap=overlap)
        return
    d = BlockDecomposition(A, b, nblocks=nblocks, line=n, overlap=overlap)
    # ownership partitions [0, n^2)
    owned = np.zeros(n * n, dtype=int)
    for blk in d.blocks:
        owned[blk.own_start : blk.own_end] += 1
    assert (owned == 1).all()
    # extended ranges contain owned ranges
    for blk in d.blocks:
        assert blk.ext_start <= blk.own_start <= blk.own_end <= blk.ext_end
        # every needed external column is owned by exactly one neighbour
        for src, positions in blk.ext_sources.items():
            cols = blk.ext_cols[positions]
            src_blk = d.blocks[src]
            assert np.all((cols >= src_blk.own_start) & (cols < src_blk.own_end))
    # assembling each block's slice of an arbitrary global vector restores it
    x = np.arange(float(n * n)) * 2.0 + 1.0
    locals_ = [x[blk.ext_start : blk.ext_end].copy() for blk in d.blocks]
    assert np.array_equal(d.assemble(locals_), x)
    # exchange volume is independent of the overlap
    if nblocks > 1:
        d0 = BlockDecomposition(A, b, nblocks=nblocks, line=n, overlap=0)
        for k in range(nblocks):
            assert d.exchange_volume(k) == d0.exchange_volume(k)


# -------------------------------------------------------------------- network


@COMMON
@given(
    st.floats(min_value=0.0, max_value=0.1),
    st.floats(min_value=1e3, max_value=1e9),
    st.integers(min_value=0, max_value=10_000_000),
    st.integers(min_value=0, max_value=10_000_000),
)
def test_link_delay_monotone_in_bytes(latency, bandwidth, b1, b2):
    from repro.des import Simulator
    from repro.net.host import Host
    from repro.net.link import UniformLinkModel

    sim = Simulator()
    a, b = Host(sim, "a"), Host(sim, "b")
    model = UniformLinkModel(latency=latency, bandwidth=bandwidth)
    lo, hi = sorted([b1, b2])
    assert model.delay(a, b, lo) <= model.delay(a, b, hi)
    assert model.delay(a, b, lo) >= latency


@COMMON
@given(st.integers(min_value=0, max_value=1_000_000))
def test_heterogeneous_link_symmetric(nbytes):
    from repro.des import Simulator
    from repro.net.host import Host
    from repro.net.link import (
        FAST_ETHERNET,
        GIGABIT_ETHERNET,
        HeterogeneousLinkModel,
    )

    sim = Simulator()
    fast = Host(sim, "f", tags=(GIGABIT_ETHERNET.name,))
    slow = Host(sim, "s", tags=(FAST_ETHERNET.name,))
    model = HeterogeneousLinkModel()
    assert model.delay(fast, slow, nbytes) == model.delay(slow, fast, nbytes)


@COMMON
@given(
    st.integers(min_value=1, max_value=30),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=1, max_value=10),
)
def test_churn_schedule_is_sorted_and_bounded(n_disc, seed, horizon_scale):
    from repro.churn import PaperChurn

    horizon = float(horizon_scale)
    events = PaperChurn(n_disc).schedule(RngTree(seed), horizon)
    assert len(events) == n_disc
    times = [e.time for e in events]
    assert times == sorted(times)
    assert all(0.05 * horizon <= t <= 0.85 * horizon for t in times)
