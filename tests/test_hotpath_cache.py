"""Tests for the hot-path caches: decomposition sharing, cached inner
solves, size memoization — and the bitwise-identity guarantees that make
them invisible to simulated time."""

import dataclasses

import numpy as np
import pytest
import scipy.sparse as sp

from repro.net.address import Address
from repro.numerics import (
    BlockDecomposition,
    CgOperator,
    Poisson2D,
    block_operator,
    conjugate_gradient,
    csr_matvec_into,
    shared_decomposition,
)
from repro.numerics.residual import update_distance
from repro.numerics.splitting import DECOMPOSITION_CACHE
from repro.rmi.invocation import is_remote, remote_method_table
from repro.rmi.runtime import RemoteObject
from repro.rmi.stub import Stub
from repro.util.hotpath import HOTPATH, clear_caches, hotpath_disabled
from repro.util.serialization import _payload_size, measured_size


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


def _same_csr(a, b):
    assert a.shape == b.shape
    assert np.array_equal(a.indptr, b.indptr)
    assert np.array_equal(a.indices, b.indices)
    assert np.array_equal(a.data, b.data)


# --------------------------------------------------- fast vs legacy builds


@pytest.mark.parametrize("n,nblocks,overlap", [
    (8, 1, 0), (8, 3, 0), (9, 3, 1), (12, 4, 2), (10, 2, 2), (12, 12, 0),
])
def test_fast_build_matches_legacy(n, nblocks, overlap):
    prob = Poisson2D.manufactured(n)
    fast = BlockDecomposition(prob.A, prob.b, nblocks=nblocks, line=n,
                              overlap=overlap, build="fast")
    legacy = BlockDecomposition(prob.A, prob.b, nblocks=nblocks, line=n,
                                overlap=overlap, build="legacy")
    for bf, bl in zip(fast.blocks, legacy.blocks):
        assert (bf.own_start, bf.own_end, bf.ext_start, bf.ext_end) == \
               (bl.own_start, bl.own_end, bl.ext_start, bl.ext_end)
        _same_csr(bf.A_local, bl.A_local)
        _same_csr(bf.B_coupling, bl.B_coupling)
        assert np.array_equal(bf.ext_cols, bl.ext_cols)
        assert np.array_equal(bf.b_local, bl.b_local)
        assert sorted(bf.send_map) == sorted(bl.send_map)
        for k in bf.send_map:
            assert np.array_equal(bf.send_map[k], bl.send_map[k])
            assert np.array_equal(bf.send_local[k],
                                  bf.send_map[k] - bf.ext_start)


def test_fast_build_canonicalizes_noncanonical_input():
    # COO with duplicate entries: fast build must match legacy, which
    # canonicalizes implicitly through the CSC round-trip.
    rows = [0, 0, 1, 1, 2, 2, 0]
    cols = [0, 1, 1, 2, 2, 0, 1]
    vals = [4.0, -1.0, 4.0, -1.0, 4.0, -1.0, -0.5]
    A = sp.coo_matrix((vals, (rows, cols)), shape=(3, 3)).tocsr()
    b = np.array([1.0, 2.0, 3.0])
    fast = BlockDecomposition(A, b, nblocks=3, build="fast")
    legacy = BlockDecomposition(A, b, nblocks=3, build="legacy")
    for bf, bl in zip(fast.blocks, legacy.blocks):
        _same_csr(bf.A_local, bl.A_local)
        _same_csr(bf.B_coupling, bl.B_coupling)


# ------------------------------------------------------ shared decomposition


def _poisson_system(n):
    prob = Poisson2D.manufactured(n)
    return lambda: (prob.A, prob.b)


def test_shared_decomposition_memoizes():
    d1 = shared_decomposition(("poisson", 8), _poisson_system(8),
                              nblocks=2, line=8, overlap=1)
    d2 = shared_decomposition(("poisson", 8), _poisson_system(8),
                              nblocks=2, line=8, overlap=1)
    assert d1 is d2
    assert DECOMPOSITION_CACHE.hits == 1 and DECOMPOSITION_CACHE.misses == 1


def test_shared_decomposition_key_isolation():
    d1 = shared_decomposition(("poisson", 8), _poisson_system(8),
                              nblocks=2, line=8)
    d2 = shared_decomposition(("heat", 8), _poisson_system(8),
                              nblocks=2, line=8)
    d3 = shared_decomposition(("poisson", 8), _poisson_system(8),
                              nblocks=4, line=8)
    assert d1 is not d2 and d1 is not d3
    assert len(DECOMPOSITION_CACHE) == 3


def test_shared_decomposition_disabled_returns_fresh_unfrozen():
    d1 = shared_decomposition(("poisson", 8), _poisson_system(8),
                              nblocks=2, line=8, enabled=False)
    d2 = shared_decomposition(("poisson", 8), _poisson_system(8),
                              nblocks=2, line=8, enabled=False)
    assert d1 is not d2
    assert len(DECOMPOSITION_CACHE) == 0
    d1.blocks[0].b_local[0] = 99.0  # unfrozen: writable


def test_cached_decomposition_is_frozen():
    d = shared_decomposition(("poisson", 8), _poisson_system(8),
                             nblocks=2, line=8, overlap=1)
    blk = d.blocks[0]
    with pytest.raises(ValueError):
        blk.b_local[0] = 1.0
    with pytest.raises(ValueError):
        blk.A_local.data[0] = 1.0
    with pytest.raises(ValueError):
        blk.ext_cols[0] = 1


def test_hotpath_disabled_bypasses_and_clears():
    d1 = shared_decomposition(("poisson", 8), _poisson_system(8),
                              nblocks=2, line=8)
    with hotpath_disabled():
        assert not HOTPATH.decomposition_cache
        assert len(DECOMPOSITION_CACHE) == 0  # cleared on entry
        d2 = shared_decomposition(("poisson", 8), _poisson_system(8),
                                  nblocks=2, line=8)
        assert d2 is not d1
    assert HOTPATH.decomposition_cache
    d3 = shared_decomposition(("poisson", 8), _poisson_system(8),
                              nblocks=2, line=8)
    assert d3 is not d1  # cache cleared again on exit


# ----------------------------------------------------------- cached CG


def _assert_same_result(res_a, res_b):
    assert np.array_equal(res_a.x, res_b.x)
    assert res_a.converged == res_b.converged
    assert res_a.iterations == res_b.iterations
    assert res_a.residual_norm == res_b.residual_norm
    assert res_a.flops == res_b.flops
    assert res_a.residual_history == res_b.residual_history


@pytest.mark.parametrize("precond", [False, True])
def test_cg_operator_bitwise_cold_start(precond):
    prob = Poisson2D.manufactured(10)
    d = BlockDecomposition(prob.A, prob.b, nblocks=3, line=10, overlap=1)
    for blk in d.blocks:
        op = CgOperator(blk.A_local)
        ref = conjugate_gradient(blk.A_local, blk.b_local, tol=1e-8,
                                 jacobi_precondition=precond,
                                 keep_history=True)
        got = op.solve(blk.b_local, tol=1e-8, jacobi_precondition=precond,
                       keep_history=True)
        _assert_same_result(got, ref)


def test_cg_operator_bitwise_warm_start_and_cap():
    prob = Poisson2D.manufactured(10)
    d = BlockDecomposition(prob.A, prob.b, nblocks=2, line=10, overlap=2)
    blk = d.blocks[1]
    rng = np.random.default_rng(7)
    x0 = rng.standard_normal(blk.n_ext)
    op = CgOperator(blk.A_local)
    for max_iter in (3, None):
        ref = conjugate_gradient(blk.A_local, blk.b_local, x0=x0,
                                 tol=1e-10, max_iter=max_iter)
        got = op.solve(blk.b_local, x0=x0, tol=1e-10, max_iter=max_iter)
        _assert_same_result(got, ref)


def test_cg_operator_repeated_solves_stay_identical():
    # Work buffers are scratch: a second solve must not see stale state.
    prob = Poisson2D.manufactured(8)
    A = prob.A
    op = CgOperator(A)
    ref = conjugate_gradient(A, prob.b, tol=1e-9)
    first = op.solve(prob.b, tol=1e-9)
    second = op.solve(prob.b, tol=1e-9)
    _assert_same_result(first, ref)
    _assert_same_result(second, ref)


def test_csr_matvec_into_matches_matmul():
    prob = Poisson2D.manufactured(9)
    rng = np.random.default_rng(0)
    x = rng.standard_normal(prob.size)
    out = np.empty(prob.size)
    csr_matvec_into(prob.A, x, out)
    assert np.array_equal(out, prob.A @ x)


def test_solve_direct_accuracy_and_flops():
    prob = Poisson2D.manufactured(8)
    op = CgOperator(prob.A)
    res = op.solve_direct(prob.b, tol=1e-10)
    assert res.converged and res.iterations == 1
    assert np.allclose(prob.A @ res.x, prob.b, atol=1e-10)
    assert res.flops > 2.0 * prob.A.nnz  # LU has at least A's fill
    # the factorization is cached
    assert op.factorization() is op.factorization()


def test_block_operator_cached_per_block():
    d = shared_decomposition(("poisson", 8), _poisson_system(8),
                             nblocks=2, line=8)
    op1 = block_operator(d.blocks[0])
    op2 = block_operator(d.blocks[0])
    assert op1 is op2
    assert block_operator(d.blocks[1]) is not op1


def test_local_rhs_out_buffer_bitwise():
    prob = Poisson2D.manufactured(10)
    d = BlockDecomposition(prob.A, prob.b, nblocks=3, line=10, overlap=1)
    rng = np.random.default_rng(1)
    for k, blk in enumerate(d.blocks):
        ext = rng.standard_normal(blk.ext_cols.size)
        buf = np.empty(blk.n_ext)
        assert np.array_equal(d.local_rhs(k, ext, out=buf),
                              d.local_rhs(k, ext))


def test_update_distance_work_buffer_bitwise():
    rng = np.random.default_rng(2)
    a = rng.standard_normal(50)
    b = a + 1e-7 * rng.standard_normal(50)
    work = np.empty(50)
    for rel in (True, False):
        assert update_distance(b, a, relative=rel, work=work) == \
               update_distance(b, a, relative=rel)


# --------------------------------------------------------- size memoization


def _payload_zoo():
    arr = np.arange(12, dtype=float)
    addr = Address("host-a", 4)
    stub = Stub("worker", addr)
    return [
        None, True, 3, 2.5, "héllo", b"bytes",
        arr, [1, 2.0, "x"], (arr, arr), {"k": arr, 2: None},
        {1, 2, 3}, frozenset({4, 5}),
        addr, stub, [stub, stub, {"a": addr}],
        np.float64(1.5),
    ]


def test_fast_size_matches_legacy_for_payload_zoo():
    for obj in _payload_zoo():
        fast = measured_size(obj)
        with hotpath_disabled():
            legacy = measured_size(obj)
        assert fast == legacy, f"size mismatch for {obj!r}"


def test_frozen_dataclass_size_is_memoized():
    @dataclasses.dataclass(frozen=True)
    class Snapshot:
        name: str
        payload: tuple

    snap = Snapshot("worker", (1, 2.5))
    first = measured_size(snap)
    assert getattr(snap, "_measured_payload_cache", None) is not None
    assert measured_size(snap) == first
    # legacy walk agrees with the memoized charge
    assert first == 256 + _payload_size(snap, depth=0)


def test_slots_frozen_dataclass_sized_without_memo():
    # Stub/Address declare __slots__ (hot-path classes): no per-instance
    # memo can be planted, but every walk must still match the legacy
    # charge exactly — and must not raise trying to plant one.
    stub = Stub("worker", Address("host-a", 4))
    first = measured_size(stub)
    assert getattr(stub, "_measured_payload_cache", None) is None
    assert measured_size(stub) == first
    assert first == 256 + _payload_size(stub, depth=0)


def test_nonfrozen_dataclass_not_memoized():
    @dataclasses.dataclass
    class Mutable:
        text: str

    m = Mutable("abcd")
    s1 = measured_size(m)
    m.text = "abcdefgh"
    assert measured_size(m) == s1 + 4  # re-measured, not memoized


# ----------------------------------------------------- remote method table


def test_remote_method_table_matches_dir_walk():
    from repro.rmi import remote

    class Obj(RemoteObject):
        @remote
        def ping(self):
            return "pong"

        @remote
        def add(self, a, b):
            return a + b

        def local_only(self):
            return None

    legacy = sorted(
        name for name in dir(Obj)
        if not name.startswith("_")
        and callable(getattr(Obj, name, None))
        and is_remote(getattr(Obj, name))
    )
    assert sorted(remote_method_table(Obj)) == legacy == ["add", "ping"]
    assert Obj().exported_methods() == ["add", "ping"]
    # cached: same frozenset object on re-query
    assert remote_method_table(Obj) is remote_method_table(Obj)


# ------------------------------------------------------- run-level identity


def _run(use_cache, **kw):
    from repro.experiments.driver import run_poisson_on_p2p

    if use_cache:
        return run_poisson_on_p2p(use_cache=True, **kw)
    with hotpath_disabled():
        return run_poisson_on_p2p(use_cache=False, **kw)


def test_run_bitwise_identical_cached_vs_bypass():
    kw = dict(n=16, peers=3, seed=11, convergence_threshold=1e-6)
    cached = _run(True, **kw)
    bypass = _run(False, **kw)
    assert cached.converged and bypass.converged
    assert cached.simulated_time == bypass.simulated_time
    assert cached.total_iterations == bypass.total_iterations
    assert cached.residual == bypass.residual
    assert cached == bypass


def test_run_with_recovery_uses_shared_decomposition():
    kw = dict(n=16, peers=3, seed=5, disconnections=1,
              convergence_threshold=1e-4)
    cached = _run(True, **kw)
    assert cached.converged
    # one build serves all tasks plus the churn replacement
    assert DECOMPOSITION_CACHE.misses >= 1
    assert DECOMPOSITION_CACHE.hits >= kw["peers"]
    bypass = _run(False, **kw)
    assert bypass.converged
    assert cached.simulated_time == bypass.simulated_time
    assert cached.total_iterations == bypass.total_iterations


def test_concurrent_apps_get_isolated_cache_entries():
    # Two different problem keys must never collide, even with identical
    # block structure.
    d_poisson = shared_decomposition(("poisson", 8), _poisson_system(8),
                                     nblocks=2, line=8)
    prob = Poisson2D.manufactured(8)
    A2 = (prob.A * 2.0).tocsr()
    d_other = shared_decomposition(("scaled", 8), lambda: (A2, prob.b),
                                   nblocks=2, line=8)
    assert d_other is not d_poisson
    assert not np.array_equal(d_other.blocks[0].A_local.data,
                              d_poisson.blocks[0].A_local.data)
