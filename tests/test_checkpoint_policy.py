"""Tests for the checkpoint strategy layer (``repro.checkpoint.policy``).

Covers the :class:`CheckpointPolicy` protocol: serialization round-trips,
the deprecation shim over the legacy ``P2PConfig`` knobs, canonicalization
(legacy knobs and an explicit policy build the same normalized spec and
cache key), bitwise identity of the default :class:`FixedPolicy` with the
historical knob route, and the online adaptation of
:class:`AdaptivePolicy` (deterministic replay, churn-driven re-tuning,
checkpoint-traffic savings).
"""

import pickle
import warnings
from dataclasses import asdict

import pytest

from repro.checkpoint import (
    AdaptivePolicy,
    BackupPolicy,
    FailureFeed,
    FixedPolicy,
    policy_from_dict,
)
from repro.exec import RunSpec
from repro.experiments.driver import run_poisson_on_p2p
from repro.p2p.config import P2PConfig


# ------------------------------------------------------------- serialization


def test_fixed_policy_roundtrip():
    pol = FixedPolicy(count=7, frequency=3)
    data = pol.to_dict()
    assert data["kind"] == "fixed"
    assert policy_from_dict(data) == pol


def test_adaptive_policy_roundtrip():
    pol = AdaptivePolicy(count=4, frequency=2, min_frequency=2,
                         max_frequency=16, max_replicas=2, alpha=0.5)
    data = pol.to_dict()
    assert data["kind"] == "adaptive"
    assert policy_from_dict(data) == pol


def test_policy_from_dict_rejects_unknown_kind():
    with pytest.raises(ValueError):
        policy_from_dict({"kind": "quantum", "count": 1})


def test_policy_validation():
    with pytest.raises(ValueError):
        FixedPolicy(frequency=0)
    with pytest.raises(ValueError):
        FixedPolicy(count=-1)
    with pytest.raises(ValueError):
        AdaptivePolicy(min_frequency=8, max_frequency=4)
    with pytest.raises(ValueError):
        AdaptivePolicy(max_replicas=0)
    with pytest.raises(ValueError):
        AdaptivePolicy(alpha=0.0)
    with pytest.raises(ValueError):
        AdaptivePolicy(bandwidth=-1.0)


def test_runspec_roundtrips_policies():
    for pol in (FixedPolicy(count=3, frequency=2),
                AdaptivePolicy(max_replicas=2), None):
        spec = RunSpec(n=16, peers=2, checkpoint=pol)
        assert RunSpec.from_dict(spec.to_dict()) == spec


# ------------------------------------------- BackupPolicy _peers_cache fix


def test_backup_policy_pickle_excludes_peers_cache():
    pol = BackupPolicy(num_tasks=6, count=3, frequency=5)
    pol.backup_peers(2)  # populate the planted cache
    state = pol.__getstate__()
    assert "_peers_cache" not in state
    clone = pickle.loads(pickle.dumps(pol))
    assert clone == pol
    assert clone.backup_peers(2) == pol.backup_peers(2)


def test_backup_policy_asdict_and_equality_ignore_cache():
    warm = BackupPolicy(num_tasks=6, count=3, frequency=5)
    warm.backup_peers(0)
    cold = BackupPolicy(num_tasks=6, count=3, frequency=5)
    assert warm == cold
    assert asdict(warm) == asdict(cold)
    assert "_peers_cache" not in asdict(warm)


# ---------------------------------------------------------- deprecation shim


def test_config_knob_construction_warns():
    with pytest.warns(DeprecationWarning, match="repro\\."):
        P2PConfig(checkpoint_frequency=3)
    with pytest.warns(DeprecationWarning, match="FixedPolicy"):
        P2PConfig(backup_count=2)


def test_with_carrying_knobs_forward_is_quiet():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy = P2PConfig(checkpoint_frequency=3, backup_count=2)
    # not a new construction site: no warning escapes
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        bumped = legacy.with_(heartbeat_period=0.5)
    assert bumped.checkpoint_frequency == 3
    assert bumped.backup_count == 2


def test_with_setting_a_knob_warns():
    cfg = P2PConfig()
    with pytest.warns(DeprecationWarning):
        cfg.with_(backup_count=2)


# ------------------------------------------------- canonicalization / keys


def test_legacy_knobs_and_policy_cannot_drift():
    """The signature-drift guarantee of the redesign: the legacy knob route
    and the explicit policy route build the SAME normalized spec, hence the
    same cache key — results cached under one route serve the other."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy = RunSpec(n=32, peers=4,
                         config=P2PConfig(checkpoint_frequency=3,
                                          backup_count=7))
    explicit = RunSpec(n=32, peers=4, config=P2PConfig(),
                       checkpoint=FixedPolicy(count=7, frequency=3))
    assert legacy.normalized() == explicit.normalized()
    assert legacy.key() == explicit.key()


def test_normalized_resolves_default_policy_from_config():
    norm = RunSpec(n=32, peers=4).normalized()
    assert norm.checkpoint == FixedPolicy(count=20, frequency=5)
    # the knobs themselves are reset to defaults after folding
    assert norm.config.checkpoint_frequency == 5
    assert norm.config.backup_count == 20


def test_explicit_default_policy_matches_default_route_bitwise():
    """FixedPolicy(defaults) must reproduce the knob route bit-for-bit."""
    base = run_poisson_on_p2p(n=24, peers=3, disconnections=1, seed=5,
                              use_cache=False)
    explicit = run_poisson_on_p2p(n=24, peers=3, disconnections=1, seed=5,
                                  checkpoint=FixedPolicy(count=20,
                                                         frequency=5),
                                  use_cache=False)
    assert base.simulated_time == explicit.simulated_time
    assert base.total_iterations == explicit.total_iterations
    assert base.checkpoints_sent == explicit.checkpoints_sent
    assert base.residual == explicit.residual


# --------------------------------------------------------------- FailureFeed


def test_failure_feed_mtbf_unknown_until_first_failure():
    feed = FailureFeed()
    assert feed.mtbf(10.0) is None


def test_failure_feed_tracks_interarrival_ewma():
    feed = FailureFeed(alpha=1.0)  # no smoothing: last gap wins
    feed.record_failure(1.0)
    feed.record_failure(3.0)
    assert feed.mtbf(3.0) == pytest.approx(2.0)
    feed.record_failure(3.5)
    assert feed.mtbf(3.5) == pytest.approx(0.5)


def test_failure_feed_silence_stretches_estimate():
    feed = FailureFeed(alpha=1.0)
    feed.record_failure(1.0)
    feed.record_failure(1.2)
    # long quiet tail: the estimate must not stay stuck at the storm gap
    assert feed.mtbf(9.2) == pytest.approx(8.0)


def test_failure_feed_checkpoint_cost_tracks_bytes():
    feed = FailureFeed(alpha=1.0)
    feed.record_checkpoint(1_000_000)
    cost = feed.checkpoint_cost(bandwidth=1e6, overhead=0.5)
    assert cost == pytest.approx(1.5)


# ----------------------------------------------------------- bound policies


def test_fixed_state_round_robins_one_guardian_per_save():
    state = FixedPolicy(count=2, frequency=5).bind(num_tasks=4)
    assert not state.checkpoint_due(0, now=0.0)
    assert state.checkpoint_due(5, now=0.0)
    ring = state.ring.backup_peers(0)
    targets = [state.begin_save(0, it)[0] for it in (5, 10, 15, 20)]
    assert targets == [ring[0], ring[1], ring[0], ring[1]]


def test_fixed_state_rollback_resets_cursor():
    state = FixedPolicy(count=2, frequency=5).bind(num_tasks=4)
    for it in (5, 10, 15):
        state.begin_save(0, it)
    state.on_rollback(5)
    assert state.save_count == 1


def test_adaptive_state_holds_prior_until_evidence():
    feed = FailureFeed()
    state = AdaptivePolicy(frequency=5).bind(num_tasks=4, feed=feed)
    for i in range(50):
        state.on_iteration(now=i * 0.01, duration=0.01)
    assert state.interval == 5
    assert state.replicas == 1
    assert state.retunes == 0


def test_adaptive_state_retunes_after_failures():
    feed = FailureFeed()
    pol = AdaptivePolicy(frequency=5, min_frequency=1, max_frequency=40)
    state = pol.bind(num_tasks=8, feed=feed)
    # a churn burst: failures 30 ms apart while iterations take 5 ms
    now = 0.0
    for i in range(10):
        now += 0.005
        if i in (3, 6, 9):
            feed.record_failure(now)
        feed.record_checkpoint(5_000)
        state.on_iteration(now, duration=0.005)
    assert state.retunes >= 1
    tight = state.interval
    assert 1 <= tight <= 40
    # a long quiet tail relaxes the schedule again
    for _ in range(200):
        now += 0.005
        state.on_iteration(now, duration=0.005)
    assert state.interval >= tight


def test_adaptive_begin_save_fans_out_replicas():
    feed = FailureFeed()
    state = AdaptivePolicy(count=4, max_replicas=3).bind(num_tasks=8,
                                                         feed=feed)
    state.replicas = 3
    targets = state.begin_save(0, 5)
    assert len(targets) == 3
    assert len(set(targets)) == 3  # consecutive ring slots are distinct
    assert set(targets) <= set(state.ring.backup_peers(0))


# ------------------------------------------------------- end-to-end adaptive


def test_adaptive_run_is_deterministic():
    kwargs = dict(n=24, peers=3, disconnections=2, seed=3,
                  checkpoint=AdaptivePolicy(), use_cache=False)
    a, b = run_poisson_on_p2p(**kwargs), run_poisson_on_p2p(**kwargs)
    assert a.simulated_time == b.simulated_time
    assert a.total_iterations == b.total_iterations
    assert a.checkpoints_sent == b.checkpoints_sent
    assert a.checkpoint_bytes == b.checkpoint_bytes


def test_adaptive_cuts_checkpoint_traffic_under_churn():
    fixed = run_poisson_on_p2p(n=24, peers=3, disconnections=2, seed=3,
                               use_cache=False)
    adaptive = run_poisson_on_p2p(n=24, peers=3, disconnections=2, seed=3,
                                  checkpoint=AdaptivePolicy(),
                                  use_cache=False)
    assert adaptive.converged and fixed.converged
    assert adaptive.checkpoint_bytes < fixed.checkpoint_bytes
