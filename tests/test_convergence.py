"""Tests for local and global convergence detection."""

import pytest

from repro.convergence import GlobalConvergenceTracker, LocalConvergenceDetector


# ---------------------------------------------------------------------- local


def test_local_detector_requires_stability_window():
    det = LocalConvergenceDetector(threshold=1e-3, stability_window=3)
    assert not det.update(1e-5)
    assert not det.update(1e-5)
    assert not det.stable
    flipped = det.update(1e-5)  # third consecutive quiet iteration
    assert flipped and det.stable


def test_local_detector_noise_resets_streak():
    det = LocalConvergenceDetector(threshold=1e-3, stability_window=3)
    det.update(1e-5)
    det.update(1e-5)
    det.update(0.5)  # noise
    det.update(1e-5)
    det.update(1e-5)
    assert not det.stable
    det.update(1e-5)
    assert det.stable


def test_local_detector_flips_back_to_unstable():
    det = LocalConvergenceDetector(threshold=1e-3, stability_window=2)
    det.update(0.0)
    det.update(0.0)
    assert det.stable
    flipped = det.update(1.0)  # fresh neighbour data arrived, big update
    assert flipped and not det.stable
    assert det.flips == 2


def test_local_detector_flip_signal_only_on_change():
    det = LocalConvergenceDetector(threshold=1e-3, stability_window=1)
    assert det.update(0.0)       # -> stable: flip
    assert not det.update(0.0)   # still stable: no flip
    assert det.update(1.0)       # -> unstable: flip
    assert not det.update(1.0)   # still unstable: no flip


def test_local_detector_boundary_is_strict():
    det = LocalConvergenceDetector(threshold=1e-3, stability_window=1)
    det.update(1e-3)  # equal to threshold: NOT quiet
    assert not det.stable


def test_local_detector_reset():
    det = LocalConvergenceDetector(threshold=1e-3, stability_window=1)
    det.update(0.0)
    assert det.stable
    det.reset()
    assert not det.stable and det.quiet_streak == 0


def test_local_detector_validation():
    with pytest.raises(ValueError):
        LocalConvergenceDetector(threshold=0.0)
    with pytest.raises(ValueError):
        LocalConvergenceDetector(threshold=1e-3, stability_window=0)
    det = LocalConvergenceDetector(threshold=1e-3)
    with pytest.raises(ValueError):
        det.update(-1.0)


# --------------------------------------------------------------------- global


def test_global_tracker_converges_when_all_stable():
    tracker = GlobalConvergenceTracker(3)
    assert not tracker.converged
    tracker.set_state(0, True)
    tracker.set_state(1, True)
    assert not tracker.converged
    assert tracker.stable_count == 2
    tracker.set_state(2, True)
    assert tracker.converged


def test_global_tracker_unstable_message_clears_bit():
    tracker = GlobalConvergenceTracker(2)
    tracker.set_state(0, True)
    tracker.set_state(1, True)
    tracker.set_state(0, False)
    assert not tracker.converged
    assert tracker.messages_received == 3


def test_global_tracker_reset_on_reassignment():
    tracker = GlobalConvergenceTracker(2)
    tracker.set_state(0, True)
    tracker.set_state(1, True)
    tracker.reset_task(1)  # daemon running task 1 failed and was replaced
    assert not tracker.converged
    assert tracker.resets_on_reassign == 1
    tracker.reset_task(1)  # already cleared: counted once only
    assert tracker.resets_on_reassign == 1


def test_global_tracker_validation():
    with pytest.raises(ValueError):
        GlobalConvergenceTracker(0)
    tracker = GlobalConvergenceTracker(2)
    with pytest.raises(ValueError):
        tracker.set_state(2, True)
    with pytest.raises(ValueError):
        tracker.reset_task(-1)


def test_global_tracker_single_task():
    tracker = GlobalConvergenceTracker(1)
    tracker.set_state(0, True)
    assert tracker.converged
