"""Tests for the fault-plane scenario engine (``repro.faults``)."""

import pytest

from repro.errors import ConfigurationError, FaultError
from repro.exec import RunCache, RunSpec, SweepEngine
from repro.faults import (
    SCENARIOS,
    DaemonCrash,
    FaultInjector,
    FaultPlan,
    HealAction,
    MessageCorruption,
    PartitionAction,
    RackFailure,
    SuperPeerCrash,
    action_from_dict,
    scenario,
    scenario_names,
    scenario_overrides,
)
from repro.p2p import build_cluster
from repro.util.rng import RngTree

#: the acceptance scenario from the issue: a Super-Peer crash, a two-group
#: partition that heals, message corruption, and a Daemon crash — all in one
#: seeded plan that must still converge to the CORRECT solution.
ACCEPTANCE_PLAN = FaultPlan.of(
    MessageCorruption(time=0.02, duration=0.25, rate=0.10),
    SuperPeerCrash(time=0.05, downtime=0.15),
    PartitionAction(time=0.10, groups=(("daemon-host-0", "daemon-host-1"),),
                    duration=0.08),
    DaemonCrash(time=0.12, downtime=0.10),
    name="acceptance",
)


# -- actions and plans --------------------------------------------------------


def test_actions_validate_their_fields():
    with pytest.raises(ConfigurationError):
        DaemonCrash(time=-1.0)
    with pytest.raises(ConfigurationError):
        DaemonCrash(time=0.0, downtime=0.0)
    with pytest.raises(ConfigurationError):
        PartitionAction(time=0.0, groups=())
    with pytest.raises(ConfigurationError):
        MessageCorruption(time=0.0, duration=0.1, rate=1.5)


def test_action_from_dict_rejects_unknown_kind():
    with pytest.raises(ConfigurationError):
        action_from_dict({"kind": "meteor-strike", "time": 0.1})


def test_plan_round_trips_through_dict():
    plan = ACCEPTANCE_PLAN
    clone = FaultPlan.from_dict(plan.to_dict())
    assert clone == plan
    assert clone.name == "acceptance"
    assert [a.kind for a in clone.schedule()] == [
        "corruption", "superpeer_crash", "partition", "daemon_crash",
    ]


def test_plan_schedule_is_time_sorted():
    plan = FaultPlan.of(
        HealAction(time=0.3),
        DaemonCrash(time=0.1),
        PartitionAction(time=0.2, groups=(("a",),)),
    )
    assert [a.time for a in plan.schedule()] == [0.1, 0.2, 0.3]


def test_plans_compose_with_add():
    a = FaultPlan.of(DaemonCrash(time=0.1), name="a")
    b = FaultPlan.of(SuperPeerCrash(time=0.2), name="b")
    combined = a + b
    assert len(combined) == 2
    assert not FaultPlan()
    assert combined


def test_scenario_catalogue():
    assert set(scenario_names()) == set(SCENARIOS)
    # all ten scenarios, including the control-plane trio added with the
    # gossip failover work and the corruption-filter acceptance scenario
    assert {"spawner-down", "standby-flap", "discovery-storm",
            "poisoned-channel"} <= set(SCENARIOS)
    assert len(SCENARIOS) == 10
    for name in scenario_names():
        plan = scenario(name)
        assert len(plan) >= 1
        assert plan.name == name
        # every catalogued plan survives the dict round-trip (cache keys);
        # serialization is schedule-ordered, so compare schedules
        assert FaultPlan.from_dict(plan.to_dict()).schedule() == plan.schedule()
    with pytest.raises(ConfigurationError):
        scenario("no-such-scenario")


def test_scenario_overrides_surface_control_plane_requirements():
    assert scenario_overrides("spawner-down") == {"gossip": True,
                                                  "standby": True}
    assert scenario_overrides("discovery-storm") == {"gossip": True}
    assert scenario_overrides("churn-burst") == {}


def test_runspec_carries_faults_through_dict():
    spec = RunSpec(n=32, peers=4, seed=0, faults=ACCEPTANCE_PLAN)
    clone = RunSpec.from_dict(spec.to_dict())
    assert clone.faults == ACCEPTANCE_PLAN
    assert clone.key() == spec.key()
    assert RunSpec.from_dict(RunSpec(n=32, peers=4).to_dict()).faults is None


# -- the injector against a live cluster -------------------------------------


def test_injector_requires_context_for_actions():
    cluster = build_cluster(n_daemons=2, n_superpeers=1, seed=0)
    plan = FaultPlan.of(SuperPeerCrash(time=0.1))
    with pytest.raises(FaultError):
        FaultInjector(cluster.sim, plan, rng=RngTree(0),
                      hosts=cluster.testbed.daemon_hosts,
                      network=cluster.network)  # no cluster: SP unknown


def test_injector_executes_and_records_daemon_crash():
    cluster = build_cluster(n_daemons=3, n_superpeers=1, seed=0)
    plan = FaultPlan.of(DaemonCrash(time=0.05, downtime=0.02))
    inj = FaultInjector(cluster.sim, plan, rng=RngTree(7).child("faults"),
                        cluster=cluster)
    cluster.sim.run(until=0.2)
    assert len(inj.executed) == 1
    rec = inj.executed[0]
    assert rec.kind == "daemon_crash"
    assert rec.detail["host"].startswith("daemon-host-")
    # the victim recovered and a fresh incarnation re-registered
    assert cluster.incarnations[rec.detail["host"]] == 2


def test_executed_plan_is_a_pinned_replay():
    cluster = build_cluster(n_daemons=3, n_superpeers=1, seed=0)
    plan = FaultPlan.of(DaemonCrash(time=0.05, downtime=0.02))
    inj = FaultInjector(cluster.sim, plan, rng=RngTree(7).child("faults"),
                        cluster=cluster)
    cluster.sim.run(until=0.2)
    replay = inj.executed_plan()
    (action,) = replay.schedule()
    assert isinstance(action, DaemonCrash)
    assert action.host == inj.executed[0].detail["host"]  # victim pinned
    assert action.downtime == pytest.approx(0.02)


def test_superpeer_crash_reboots_with_same_identity():
    cluster = build_cluster(n_daemons=3, n_superpeers=2, seed=0)
    before = {sp.sp_id: sp for sp in cluster.superpeers}
    plan = FaultPlan.of(SuperPeerCrash(time=0.05, downtime=0.05))
    inj = FaultInjector(cluster.sim, plan, rng=RngTree(3).child("faults"),
                        cluster=cluster)
    cluster.sim.run(until=0.3)
    assert len(inj.executed) == 1
    sp_id = inj.executed[0].detail["sp_id"]
    replacement = next(sp for sp in cluster.superpeers if sp.sp_id == sp_id)
    assert replacement is not before[sp_id]  # a fresh incarnation
    assert {sp.sp_id for sp in cluster.superpeers} == set(before)


def test_partition_heals_automatically():
    cluster = build_cluster(n_daemons=4, n_superpeers=1, seed=0)
    net = cluster.network
    plan = FaultPlan.of(PartitionAction(
        time=0.05, groups=(("daemon-host-0",),), duration=0.05))
    FaultInjector(cluster.sim, plan, rng=RngTree(0).child("faults"),
                  cluster=cluster)
    cluster.sim.run(until=0.07)
    assert not net.reachable("daemon-host-0", "daemon-host-1")
    cluster.sim.run(until=0.2)
    assert net.reachable("daemon-host-0", "daemon-host-1")


def test_cancel_stops_pending_actions():
    cluster = build_cluster(n_daemons=3, n_superpeers=1, seed=0)
    plan = FaultPlan.of(DaemonCrash(time=0.05), DaemonCrash(time=5.0))
    inj = FaultInjector(cluster.sim, plan, rng=RngTree(0).child("faults"),
                        cluster=cluster)
    cluster.sim.run(until=0.1)
    inj.cancel()
    cluster.sim.run(until=6.0)
    assert len(inj.executed) == 1  # the t=5.0 crash never fired


# -- churn front-end equivalence ----------------------------------------------


def test_churn_runs_are_unchanged_by_the_fault_plane():
    """ChurnInjector now fronts FaultInjector; seeded runs must not move."""
    a = RunSpec(n=24, peers=3, seed=2, disconnections=1).run()
    b = RunSpec(n=24, peers=3, seed=2, disconnections=1).run()
    assert a == b
    assert a.converged
    assert a.disconnections_executed == 1
    assert a.faults_executed == 0  # churn is reported separately


# -- end-to-end acceptance -----------------------------------------------------


def test_acceptance_scenario_converges_to_the_correct_solution():
    """SP crash + partition/heal + corruption + daemon crash, one seed:
    the run must converge to the RIGHT fixed point, not merely converge."""
    spec = RunSpec(n=32, peers=4, seed=0, faults=ACCEPTANCE_PLAN)
    result = spec.run()
    assert result.converged
    assert result.residual < 1e-4
    assert result.faults_executed == 4
    assert result.messages_corrupted >= 1


def test_acceptance_scenario_is_engine_and_cache_invariant(tmp_path):
    spec = RunSpec(n=32, peers=4, seed=0, faults=ACCEPTANCE_PLAN)
    serial = spec.run()
    engine = SweepEngine(workers=4, cache=RunCache(tmp_path / "cache"))
    pooled = engine.run(spec)
    cached = engine.run(spec)
    assert pooled == serial
    assert cached == serial


def test_acceptance_report_shows_reregistration_and_recovery():
    spec = RunSpec(n=32, peers=4, seed=0, faults=ACCEPTANCE_PLAN, traced=True)
    result = spec.execute()
    report = result.run_report
    assert report is not None
    kinds = [rec["kind"] for rec in report.faults]
    assert kinds == ["corruption", "superpeer_crash",
                     "partition", "daemon_crash"]
    # the crashed Daemon's replacement recovered the task from a Backup
    assert len(report.recoveries) >= 1
    # Daemons re-registered after the Super-Peer reboot (initial
    # registrations number n_daemons; anything beyond is re-registration)
    registrations = report.event_counts.get(("p2p", "register"), 0)
    assert registrations > spec.normalized().n_daemons
    rendered = report.to_text()
    assert "fault history:" in rendered
    assert "superpeer_crash" in rendered
