"""Tests for churn models and the failure injector."""

import pytest

from repro.churn import (
    ChurnEvent,
    ChurnInjector,
    NoChurn,
    PaperChurn,
    PoissonChurn,
    TraceChurn,
)
from repro.des import Simulator
from repro.net import Network
from repro.util.logging import EventLog
from repro.util.rng import RngTree


# --------------------------------------------------------------------- models


def test_churn_event_validation():
    with pytest.raises(ValueError):
        ChurnEvent(-1.0, 5.0)
    with pytest.raises(ValueError):
        ChurnEvent(1.0, 0.0)


def test_no_churn_is_empty():
    assert NoChurn().schedule(RngTree(0), 100.0) == []


def test_paper_churn_count_and_window():
    model = PaperChurn(n_disconnections=20, reconnect_delay=20.0)
    events = model.schedule(RngTree(1), horizon=1000.0)
    assert len(events) == 20
    assert all(e.duration == 20.0 for e in events)
    assert all(50.0 <= e.time <= 850.0 for e in events)  # default window
    assert events == sorted(events)
    assert all(e.host is None for e in events)  # victims picked at fire time


def test_paper_churn_deterministic_per_seed():
    m = PaperChurn(5)
    assert m.schedule(RngTree(3), 100.0) == m.schedule(RngTree(3), 100.0)
    assert m.schedule(RngTree(3), 100.0) != m.schedule(RngTree(4), 100.0)


def test_paper_churn_validation():
    with pytest.raises(ValueError):
        PaperChurn(-1)
    with pytest.raises(ValueError):
        PaperChurn(1, reconnect_delay=0)
    with pytest.raises(ValueError):
        PaperChurn(1, start_fraction=0.9, end_fraction=0.5)
    with pytest.raises(ValueError):
        PaperChurn(1).schedule(RngTree(0), horizon=0.0)


def test_poisson_churn_rate_scaling():
    slow = PoissonChurn(rate=0.01).schedule(RngTree(2), 10_000.0)
    fast = PoissonChurn(rate=0.1).schedule(RngTree(2), 10_000.0)
    assert len(fast) > len(slow) > 0
    assert all(0 <= e.time < 10_000 for e in fast)
    assert PoissonChurn(rate=0.0).schedule(RngTree(2), 100.0) == []


def test_poisson_churn_validation():
    with pytest.raises(ValueError):
        PoissonChurn(rate=-1)
    with pytest.raises(ValueError):
        PoissonChurn(rate=1, mean_downtime=0)


def test_trace_churn_replays_sorted():
    events = (ChurnEvent(5.0, 2.0, "h1"), ChurnEvent(1.0, 2.0, "h0"))
    out = TraceChurn(events).schedule(RngTree(0), 100.0)
    assert [e.time for e in out] == [1.0, 5.0]
    assert out[0].host == "h0"


# ------------------------------------------------------------------- injector


def make_pool(n=4):
    sim = Simulator()
    net = Network(sim)
    hosts = [net.new_host(f"h{i}") for i in range(n)]
    return sim, hosts


def test_injector_executes_schedule_and_recovers():
    sim, hosts = make_pool(3)
    log = EventLog()
    trace = TraceChurn((ChurnEvent(2.0, 5.0, "h1"),))
    inj = ChurnInjector(sim, hosts, trace, RngTree(0), horizon=100.0, log=log)
    sim.run(until=3.0)
    assert not hosts[1].online
    sim.run(until=8.0)
    assert hosts[1].online
    assert inj.disconnections == 1
    assert log.count("disconnect") == 1 and log.count("reconnect") == 1


def test_injector_random_victims_are_alive_hosts():
    sim, hosts = make_pool(5)
    inj = ChurnInjector(
        sim, hosts, PaperChurn(10, reconnect_delay=1.0), RngTree(7), horizon=100.0
    )
    sim.run()
    assert inj.disconnections == 10
    assert all(e.host in {h.name for h in hosts} for e in inj.executed)
    # after the run everyone reconnected
    assert all(h.online for h in hosts)


def test_injector_skips_when_no_victim_available():
    sim, hosts = make_pool(1)
    # one host, two overlapping disconnections: the second finds nobody alive
    trace = TraceChurn((ChurnEvent(1.0, 10.0, None), ChurnEvent(2.0, 10.0, None)))
    inj = ChurnInjector(sim, hosts, trace, RngTree(0), horizon=50.0)
    sim.run()
    assert inj.disconnections == 1
    assert inj.skipped == 1


def test_injector_trace_victim_down_is_skipped():
    sim, hosts = make_pool(2)
    trace = TraceChurn(
        (ChurnEvent(1.0, 10.0, "h0"), ChurnEvent(2.0, 1.0, "h0"))  # h0 already down
    )
    inj = ChurnInjector(sim, hosts, trace, RngTree(0), horizon=50.0)
    sim.run()
    assert inj.disconnections == 1
    assert inj.skipped == 1


def test_injector_executed_trace_is_replayable():
    sim, hosts = make_pool(4)
    inj = ChurnInjector(
        sim, hosts, PaperChurn(5, reconnect_delay=2.0), RngTree(9), horizon=50.0
    )
    sim.run()
    trace = TraceChurn(tuple(inj.executed))

    sim2, hosts2 = make_pool(4)
    inj2 = ChurnInjector(sim2, hosts2, trace, RngTree(123), horizon=50.0)
    sim2.run()
    assert [e.host for e in inj2.executed] == [e.host for e in inj.executed]
    assert [e.time for e in inj2.executed] == [e.time for e in inj.executed]


def test_injector_requires_hosts():
    sim = Simulator()
    with pytest.raises(ValueError):
        ChurnInjector(sim, [], NoChurn(), RngTree(0), horizon=10.0)


def test_injector_determinism():
    names = []
    for _ in range(2):
        sim, hosts = make_pool(6)
        inj = ChurnInjector(
            sim, hosts, PaperChurn(8, reconnect_delay=1.0), RngTree(5), horizon=200.0
        )
        sim.run()
        names.append([e.host for e in inj.executed])
    assert names[0] == names[1]
