"""Tests for the timeline/report utilities."""

from repro.experiments.timeline import (
    activity_chart,
    event_timeline,
    run_summary,
)
from repro.checkpoint import FixedPolicy
from repro.p2p import P2PConfig, build_cluster, launch_application
from repro.util.logging import EventLog

from tests.helpers import make_geometric_app, run_until_done

FAST = P2PConfig(
    heartbeat_period=0.5, heartbeat_timeout=2.0, monitor_period=0.5,
    call_timeout=2.0, bootstrap_retry_delay=0.5, reserve_retry_period=0.5,
    min_iteration_time=0.01,
)
CKPT = FixedPolicy(count=2, frequency=5)


def test_empty_log_handled():
    log = EventLog()
    assert "no protocol events" in event_timeline(log)
    assert "nothing to chart" in activity_chart(log)
    summary = run_summary(log)
    assert summary["assignments"] == 0 and not summary["converged"]


def test_timeline_of_a_real_run_with_failure():
    cluster = build_cluster(n_daemons=6, n_superpeers=2, seed=37, config=FAST, checkpoint=CKPT)
    app = make_geometric_app(num_tasks=3, rate=0.999, threshold=1e-9, flops=3e6)
    spawner = launch_application(cluster, app)
    sim = cluster.sim
    sim.run(until=2.0)
    victim_name = spawner.register.slot(0).daemon_id.rsplit("#", 1)[0]
    victim = next(h for h in cluster.testbed.daemon_hosts
                  if h.name == victim_name)
    victim.fail(cause="test")
    assert run_until_done(cluster, spawner, horizon=300.0)

    narrative = event_timeline(cluster.log)
    assert "spawner_assigned" in narrative
    assert "spawner_failure_detected" in narrative
    assert "task_recovered" in narrative
    assert "spawner_converged" in narrative
    # chronological
    times = [float(line.split("]")[0].strip("[ ")) for line in narrative.splitlines()]
    assert times == sorted(times)

    chart = activity_chart(cluster.log, width=60)
    assert "A" in chart and "!" in chart and "R" in chart
    assert "legend" not in chart  # legend text itself, marks included
    assert victim_name in chart

    summary = run_summary(cluster.log)
    assert summary["converged"]
    assert summary["failures_detected"] == 1
    assert summary["recoveries"] == 1
    assert summary["assignments"] == 4  # 3 initial + 1 replacement


def test_chart_respects_width_and_until():
    log = EventLog()
    log.emit(0.5, "spawner:x", "spawner_assigned", daemon="d1")
    log.emit(9.5, "churn", "disconnect", host="d1")
    chart = activity_chart(log, width=20, until=10.0)
    row = next(l for l in chart.splitlines() if l.startswith("d1"))
    cells = row.split("|")[1]
    assert len(cells) == 20
    assert cells[1] == "A"   # t=0.5 of 10s -> bin 1
    assert cells[19] == "x"  # t=9.5 -> last bin
