"""Unit tests for the RunTelemetry instrument (and its deprecated alias)."""

import pytest

from repro.obs import RunTelemetry
from repro.p2p.telemetry import RecoveryRecord


def test_iteration_accounting():
    t = RunTelemetry()
    t.record_iteration(0, fresh=True)
    t.record_iteration(0, fresh=False)
    t.record_iteration(1, fresh=False)
    assert t.total_iterations == 3
    assert t.total_useless == 2
    assert t.useless_fraction == 2 / 3
    assert t.iterations[0] == 2 and t.useless_iterations[1] == 1
    assert t.max_task_iterations == 2
    assert t.mean_task_iterations == 1.5


def test_empty_telemetry_is_well_defined():
    t = RunTelemetry()
    assert t.total_iterations == 0
    assert t.useless_fraction == 0.0
    assert t.max_task_iterations == 0
    assert t.mean_task_iterations == 0.0
    assert t.execution_time is None
    assert t.restarts_from_zero == 0


def test_recovery_records():
    t = RunTelemetry()
    t.record_recovery(1.5, task_id=2, resumed_iteration=10, from_scratch=False)
    t.record_recovery(3.0, task_id=2, resumed_iteration=0, from_scratch=True)
    assert len(t.recoveries) == 2
    assert t.restarts_from_zero == 1
    assert t.recoveries[0] == RecoveryRecord(1.5, 2, 10, False)


def test_execution_time():
    t = RunTelemetry()
    t.launched_at = 2.0
    t.converged_at = 7.5
    assert t.execution_time == 5.5


# -- the metrics-registry façade ---------------------------------------------


def test_facade_counters_back_onto_registry():
    t = RunTelemetry()
    t.data_messages_sent += 1
    t.data_messages_sent += 1
    t.checkpoints_sent += 1
    t.convergence_messages += 3
    assert t.data_messages_sent == 2
    assert t.registry.get("data_messages_sent").total == 2
    assert t.registry.get("checkpoints_sent").total == 1
    assert t.registry.get("convergence_messages").total == 3


def test_facade_iterations_live_in_registry():
    t = RunTelemetry()
    t.record_iteration(0, fresh=True)
    t.record_iteration(0, fresh=False)
    c = t.registry.get("task_iterations")
    assert c.by_label("task") == {0: 2.0}
    assert t.registry.get("task_useless_iterations").total == 1


def test_facade_gauges_round_trip():
    t = RunTelemetry()
    assert t.converged_at is None
    t.launched_at = 1.0
    t.converged_at = 3.0
    assert t.registry.get("launched_at").value() == 1.0
    assert t.registry.get("converged_at").value() == 3.0
    t.converged_at = None  # clearing must work too
    assert t.converged_at is None
    assert t.execution_time is None


def test_facade_recoveries_counted_in_registry():
    t = RunTelemetry()
    t.record_recovery(1.0, task_id=0, resumed_iteration=5, from_scratch=False)
    t.record_recovery(2.0, task_id=1, resumed_iteration=0, from_scratch=True)
    assert t.registry.get("recoveries").total == 2
    assert t.registry.get("restarts_from_scratch").total == 1


def test_shared_registry_injection():
    from repro.obs import MetricsRegistry

    reg = MetricsRegistry()
    t = RunTelemetry(registry=reg)
    t.record_iteration(0, fresh=True)
    assert t.registry is reg
    assert reg.get("task_iterations").total == 1


def test_legacy_telemetry_facade_deprecated():
    """The old repro.p2p Telemetry name still works but warns."""
    from repro.p2p import Telemetry

    with pytest.warns(DeprecationWarning, match=r"repro\.p2p\.telemetry"):
        legacy = Telemetry()
    assert isinstance(legacy, RunTelemetry)
    legacy.record_iteration(0, fresh=True)
    assert legacy.total_iterations == 1
