"""Unit tests for the Telemetry instrument."""

from repro.p2p import Telemetry
from repro.p2p.telemetry import RecoveryRecord


def test_iteration_accounting():
    t = Telemetry()
    t.record_iteration(0, fresh=True)
    t.record_iteration(0, fresh=False)
    t.record_iteration(1, fresh=False)
    assert t.total_iterations == 3
    assert t.total_useless == 2
    assert t.useless_fraction == 2 / 3
    assert t.iterations[0] == 2 and t.useless_iterations[1] == 1
    assert t.max_task_iterations == 2
    assert t.mean_task_iterations == 1.5


def test_empty_telemetry_is_well_defined():
    t = Telemetry()
    assert t.total_iterations == 0
    assert t.useless_fraction == 0.0
    assert t.max_task_iterations == 0
    assert t.mean_task_iterations == 0.0
    assert t.execution_time is None
    assert t.restarts_from_zero == 0


def test_recovery_records():
    t = Telemetry()
    t.record_recovery(1.5, task_id=2, resumed_iteration=10, from_scratch=False)
    t.record_recovery(3.0, task_id=2, resumed_iteration=0, from_scratch=True)
    assert len(t.recoveries) == 2
    assert t.restarts_from_zero == 1
    assert t.recoveries[0] == RecoveryRecord(1.5, 2, 10, False)


def test_execution_time():
    t = Telemetry()
    t.launched_at = 2.0
    t.converged_at = 7.5
    assert t.execution_time == 5.5
