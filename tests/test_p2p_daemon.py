"""Tests for the Daemon: bootstrap, heartbeats, re-registration, task
assignment, data exchange and backup service (paper §5.1, §5.3, §5.4)."""

import pytest

from repro.checkpoint import Backup
from repro.des import Simulator
from repro.errors import TaskError
from repro.net import Address, Network, UniformLinkModel
from repro.p2p import Daemon, P2PConfig, SuperPeer
from repro.p2p.messages import ApplicationRegister
from repro.rmi import RmiRuntime, Stub
from repro.util.logging import EventLog
from repro.util.rng import RngTree

from tests.helpers import GeometricTask


CFG = P2PConfig(
    heartbeat_period=0.5,
    heartbeat_timeout=2.0,
    monitor_period=0.5,
    bootstrap_retry_delay=0.5,
    call_timeout=2.0,
    min_iteration_time=0.01,
)


def make_world(n_superpeers=2, n_daemons=1, cfg=CFG):
    sim = Simulator()
    net = Network(sim, link_model=UniformLinkModel(latency=1e-4, bandwidth=1e9))
    log = EventLog()
    sps = []
    for i in range(n_superpeers):
        host = net.new_host(f"sp-host-{i}")
        sps.append(SuperPeer(net, host, f"SP{i}", cfg, log=log))
    stubs = [sp.stub for sp in sps]
    for sp in sps:
        sp.link(stubs)
    addrs = [sp.stub.address for sp in sps]
    daemons = []
    for i in range(n_daemons):
        host = net.new_host(f"d-host-{i}")
        daemons.append(
            Daemon(net, host, f"d{i}", addrs, cfg, RngTree(100 + i), log=log)
        )
    return sim, net, sps, daemons, log


def total_registered(sps):
    return sum(len(sp.register) for sp in sps)


def test_daemon_bootstraps_to_some_superpeer():
    sim, net, sps, (d,), log = make_world()
    sim.run(until=2.0)
    assert d.registered
    assert total_registered(sps) == 1
    assert log.count("daemon_registered") == 1


def test_daemon_requires_superpeer_addresses():
    sim, net, sps, _, log = make_world(n_daemons=0)
    host = net.new_host("lonely")
    with pytest.raises(ValueError):
        Daemon(net, host, "d", [], CFG, RngTree(0))


def test_daemon_bootstrap_retries_until_superpeer_appears():
    sim = Simulator()
    net = Network(sim, link_model=UniformLinkModel(latency=1e-4, bandwidth=1e9))
    log = EventLog()
    sp_addr = Address("sp-host-0", CFG.superpeer_port)
    host = net.new_host("d-host")
    d = Daemon(net, host, "d0", [sp_addr], CFG, RngTree(1), log=log)
    sim.run(until=5.0)
    assert not d.registered  # nothing to register with yet
    sp_host = net.new_host("sp-host-0")
    sp = SuperPeer(net, sp_host, "SP0", CFG, log=log)
    sim.run(until=15.0)
    assert d.registered
    assert len(sp.register) == 1


def test_daemon_relocates_when_superpeer_dies():
    """§5.3: on Super-Peer failure, Daemons locate another Super-Peer."""
    sim, net, sps, (d,), log = make_world(n_superpeers=2)
    sim.run(until=2.0)
    original = d.sp_stub
    # kill the super-peer the daemon registered with
    victim = next(sp for sp in sps if sp.stub.address == original.address)
    victim.host.fail()
    sim.run(until=15.0)
    assert d.registered
    assert d.sp_stub.address != original.address
    assert log.count("daemon_superpeer_lost") >= 1


def test_daemon_reregisters_after_eviction():
    """If a Super-Peer forgot us (heartbeat returns False), re-register."""
    sim, net, sps, (d,), log = make_world(n_superpeers=1)
    sim.run(until=2.0)
    sp = sps[0]
    # simulate amnesia: drop the record without the daemon knowing
    sp.register.clear()
    sim.run(until=6.0)
    assert len(sp.register) == 1  # re-registered


def test_daemon_reboot_after_host_failure():
    sim, net, sps, (d,), log = make_world()
    reboots = []

    def on_rec(host):
        reboots.append(
            Daemon(net, host, "d0#2", [sp.stub.address for sp in sps], CFG,
                   RngTree(7), log=log)
        )

    d.host.on_recover(on_rec)
    sim.run(until=2.0)
    d.host.fail(cause="churn")
    sim.run(until=4.0)
    assert total_registered(sps) == 0  # evicted after silence
    d.host.recover()
    sim.run(until=10.0)
    assert len(reboots) == 1
    assert reboots[0].registered
    assert total_registered(sps) == 1


class _FakeSpawner:
    """Captures what a Daemon sends its Spawner."""

    def __init__(self, net, cfg):
        host = net.new_host("spawner-host")
        self.runtime = RmiRuntime(net, host, cfg.spawner_port, name="fake-spawner")
        from repro.rmi import RemoteObject, remote

        outer = self

        class Obj(RemoteObject):
            @remote
            def heartbeat_task(self, app_id, task_id, epoch, daemon_id,
                               stable=None, register_version=None):
                outer.heartbeats.append((app_id, task_id, epoch, daemon_id,
                                         stable))

            @remote
            def set_state(self, app_id, task_id, epoch, stable):
                outer.states.append((app_id, task_id, epoch, stable))

        self.heartbeats = []
        self.states = []
        self.stub = self.runtime.serve(Obj(), "spawner")


def assign(sim, net, daemon, spawner_stub, num_tasks=1, task_id=0, epoch=1,
           restart=False, threshold=1e-3, window=2, register=None):
    reg = register or ApplicationRegister.empty("app", num_tasks)
    reg.slot(task_id).daemon_id = daemon.daemon_id
    reg.slot(task_id).daemon_stub = daemon.stub
    reg.slot(task_id).epoch = epoch
    reg.version = 1
    client = RmiRuntime(net, net.new_host(f"caller-{id(daemon)%10_000}"), 4999,
                        name="caller")

    def script(env):
        ok = yield client.call(
            daemon.stub, "assign_task", "app", GeometricTask, task_id,
            num_tasks, {"rate": 0.5, "flops": 1e6}, reg, spawner_stub,
            epoch, restart, threshold, window,
        )
        return ok

    p = sim.process(script(sim))
    sim.run(until=p)
    return p.value, reg


def test_assign_task_runs_to_local_convergence():
    sim, net, sps, (d,), log = make_world()
    fake = _FakeSpawner(net, CFG)
    sim.run(until=1.0)
    ok, _ = assign(sim, net, d, fake.stub)
    assert ok
    sim.run(until=sim.now + 5.0)
    # the geometric task decays below 1e-3 after ~10 iterations, then the
    # stability window of 2 more, then reports stable=True
    assert ("app", 0, 1, True) in fake.states
    assert any(h[3] == "d0" for h in fake.heartbeats)
    assert d.runner is not None  # async tasks keep iterating until halted


def test_assign_busy_daemon_raises_taskerror():
    sim, net, sps, (d,), log = make_world()
    fake = _FakeSpawner(net, CFG)
    sim.run(until=1.0)
    assign(sim, net, d, fake.stub)
    client = RmiRuntime(net, net.new_host("second-caller"), 4998)
    reg = ApplicationRegister.empty("other", 1)

    def script(env):
        try:
            yield client.call(
                d.stub, "assign_task", "other", GeometricTask, 0, 1, {},
                reg, fake.stub, 1, False, 1e-3, 2,
            )
        except TaskError:
            return "busy"

    p = sim.process(script(sim))
    sim.run(until=p)
    assert p.value == "busy"


def test_halt_stops_task_and_daemon_rejoins_pool():
    sim, net, sps, (d,), log = make_world()
    fake = _FakeSpawner(net, CFG)
    sim.run(until=1.0)
    assign(sim, net, d, fake.stub)
    sim.run(until=sim.now + 2.0)
    client = RmiRuntime(net, net.new_host("halter"), 4997)

    def script(env):
        yield client.call(d.stub, "halt", "app")

    p = sim.process(script(sim))
    sim.run(until=p)
    sim.run(until=sim.now + 5.0)
    assert d.runner is None
    assert d.registered  # back in the idle pool
    assert total_registered(sps) == 1


def test_receive_data_reaches_runner_inbox_last_write_wins():
    sim, net, sps, (d,), log = make_world()
    fake = _FakeSpawner(net, CFG)
    sim.run(until=1.0)
    ok, _ = assign(sim, net, d, fake.stub, num_tasks=2, task_id=0)
    client = RmiRuntime(net, net.new_host("sender"), 4996)
    client.oneway(d.stub, "receive_data", "app", 0, 1, 7, [1.0])
    client.oneway(d.stub, "receive_data", "app", 0, 1, 8, [2.0])
    sim.run(until=sim.now + 1.0)
    assert d.runner.task.seen.get(1) == [2.0] or d.runner.inbox.get(1) == [2.0]


def test_receive_data_for_wrong_task_dropped():
    sim, net, sps, (d,), log = make_world()
    fake = _FakeSpawner(net, CFG)
    sim.run(until=1.0)
    assign(sim, net, d, fake.stub, num_tasks=2, task_id=0)
    client = RmiRuntime(net, net.new_host("sender"), 4996)
    client.oneway(d.stub, "receive_data", "app", 1, 0, 7, [9.0])   # wrong dst
    client.oneway(d.stub, "receive_data", "ghost", 0, 1, 7, [9.0])  # wrong app
    sim.run(until=sim.now + 1.0)
    assert 0 not in d.runner.task.seen
    assert d.runner.task.seen.get(1) != [9.0]


def test_backup_service_roundtrip():
    sim, net, sps, (d,), log = make_world()
    client = RmiRuntime(net, net.new_host("saver"), 4995)
    backup = Backup(task_id=3, iteration=10, state={"x": 0.5}, app_id="app")

    def script(env):
        stored = yield client.call(d.stub, "store_backup", backup)
        it = yield client.call(d.stub, "backup_iteration", "app", 3)
        missing = yield client.call(d.stub, "backup_iteration", "app", 4)
        loaded = yield client.call(d.stub, "load_backup", "app", 3)
        return stored, it, missing, loaded

    p = sim.process(script(sim))
    sim.run(until=p)
    stored, it, missing, loaded = p.value
    assert stored and it == 10 and missing is None
    assert loaded.state == {"x": 0.5}


def test_halt_drops_app_backups():
    sim, net, sps, (d,), log = make_world()
    client = RmiRuntime(net, net.new_host("saver"), 4995)

    def script(env):
        yield client.call(
            d.stub, "store_backup", Backup(1, 5, {"x": 1}, app_id="app")
        )
        yield client.call(d.stub, "halt", "app")
        it = yield client.call(d.stub, "backup_iteration", "app", 1)
        return it

    p = sim.process(script(sim))
    sim.run(until=p)
    assert p.value is None


def test_update_register_adopts_newer_version_only():
    sim, net, sps, (d,), log = make_world()
    fake = _FakeSpawner(net, CFG)
    sim.run(until=1.0)
    ok, reg = assign(sim, net, d, fake.stub, num_tasks=2, task_id=0)
    newer = reg.snapshot()
    newer.version = 5
    newer.slot(1).daemon_id = "other"
    older = reg.snapshot()
    older.version = 0
    client = RmiRuntime(net, net.new_host("updater"), 4994)

    def script(env):
        ok1 = yield client.call(d.stub, "update_register", newer)
        ok2 = yield client.call(d.stub, "update_register", older)
        return ok1, ok2

    p = sim.process(script(sim))
    sim.run(until=p)
    assert p.value == (True, True)
    assert d.runner.register.version == 5
    assert d.runner.register.slot(1).daemon_id == "other"


def test_fetch_solution_exposes_fragment():
    sim, net, sps, (d,), log = make_world()
    fake = _FakeSpawner(net, CFG)
    sim.run(until=1.0)
    assign(sim, net, d, fake.stub)
    sim.run(until=sim.now + 1.0)
    client = RmiRuntime(net, net.new_host("collector"), 4993)

    def script(env):
        frag = yield client.call(d.stub, "fetch_solution", "app")
        none = yield client.call(d.stub, "fetch_solution", "nope")
        return frag, none

    p = sim.process(script(sim))
    sim.run(until=p)
    frag, none = p.value
    assert frag[0] == 0 and 0 < frag[1] < 1.0
    assert none is None
