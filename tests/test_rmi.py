"""Tests for the RMI layer: stubs, calls, oneways, failures, timeouts."""

import pytest

from repro.des import Simulator
from repro.errors import NetworkError, RemoteError
from repro.net import Address, Network, UniformLinkModel
from repro.rmi import RemoteObject, RmiRuntime, Stub, remote
from repro.util.logging import EventLog


class Calculator(RemoteObject):
    """Test service with plain, generator, stateful and failing methods."""

    def __init__(self, host=None):
        self.host = host
        self.history = []

    @remote
    def add(self, a, b):
        self.history.append(("add", a, b))
        return a + b

    @remote
    def slow_square(self, x):
        # generator handler: charges simulated compute time before replying
        yield self.host.compute(self.host.speed * 250e6)  # exactly 1 second
        return x * x

    @remote
    def boom(self):
        raise ValueError("application error")

    @remote
    def slow_boom(self):
        yield self.host.sim.timeout(0.5)
        raise ValueError("late application error")

    @remote
    def note(self, tag):
        self.history.append(("note", tag))

    def private_helper(self):  # not @remote
        return "secret"


def make_world(n_hosts=2, latency=1e-3):
    sim = Simulator()
    net = Network(sim, link_model=UniformLinkModel(latency=latency, bandwidth=1e9))
    hosts = [net.new_host(f"h{i}") for i in range(n_hosts)]
    return sim, net, hosts


def test_basic_call_roundtrip():
    sim, net, (ha, hb) = make_world()
    server = RmiRuntime(net, hb, 5000, name="server")
    client = RmiRuntime(net, ha, 5000, name="client")
    stub = server.serve(Calculator(), "calc")

    def caller(env):
        result = yield client.call(stub, "add", 2, 3)
        return (result, env.now)

    p = sim.process(caller(sim))
    sim.run()
    value, t = p.value
    assert value == 5
    assert t >= 2e-3  # two link traversals
    assert server.calls_served == 1 and client.calls_sent == 1


def test_generator_handler_charges_compute_time():
    sim, net, (ha, hb) = make_world()
    server = RmiRuntime(net, hb, 5000)
    client = RmiRuntime(net, ha, 5000)
    stub = server.serve(Calculator(host=hb), "calc")

    def caller(env):
        result = yield client.call(stub, "slow_square", 7)
        return (result, env.now)

    p = sim.process(caller(sim))
    sim.run()
    value, t = p.value
    assert value == 49
    assert t == pytest.approx(1.0, abs=0.01)


def test_application_exception_propagates():
    sim, net, (ha, hb) = make_world()
    server = RmiRuntime(net, hb, 5000)
    client = RmiRuntime(net, ha, 5000)
    stub = server.serve(Calculator(), "calc")

    def caller(env):
        try:
            yield client.call(stub, "boom")
        except ValueError as e:
            return f"caught:{e}"

    p = sim.process(caller(sim))
    sim.run()
    assert p.value == "caught:application error"


def test_generator_handler_exception_propagates():
    sim, net, (ha, hb) = make_world()
    server = RmiRuntime(net, hb, 5000)
    client = RmiRuntime(net, ha, 5000)
    stub = server.serve(Calculator(host=hb), "calc")

    def caller(env):
        try:
            yield client.call(stub, "slow_boom")
        except ValueError as e:
            return f"caught:{e}"

    p = sim.process(caller(sim))
    sim.run()
    assert p.value == "caught:late application error"


def test_call_to_dead_host_times_out_with_remote_error():
    sim, net, (ha, hb) = make_world()
    server = RmiRuntime(net, hb, 5000)
    client = RmiRuntime(net, ha, 5000, call_timeout=2.0)
    stub = server.serve(Calculator(), "calc")
    hb.fail()

    def caller(env):
        try:
            yield client.call(stub, "add", 1, 1)
        except RemoteError:
            return ("remote-error", env.now)

    p = sim.process(caller(sim))
    sim.run()
    kind, t = p.value
    assert kind == "remote-error"
    assert t == pytest.approx(2.0)


def test_call_to_unexported_object_fails():
    sim, net, (ha, hb) = make_world()
    RmiRuntime(net, hb, 5000)
    client = RmiRuntime(net, ha, 5000)
    ghost = Stub("nothing", Address("h1", 5000))

    def caller(env):
        try:
            yield client.call(ghost, "add", 1, 1)
        except RemoteError as e:
            return str(e)

    p = sim.process(caller(sim))
    sim.run()
    assert "no object" in p.value


def test_non_remote_method_rejected():
    sim, net, (ha, hb) = make_world()
    server = RmiRuntime(net, hb, 5000)
    client = RmiRuntime(net, ha, 5000)
    stub = server.serve(Calculator(), "calc")

    def caller(env):
        for method in ["private_helper", "history", "no_such"]:
            try:
                yield client.call(stub, method)
                return f"{method} not rejected"
            except RemoteError:
                pass
        return "all-rejected"

    p = sim.process(caller(sim))
    sim.run()
    assert p.value == "all-rejected"


def test_oneway_executes_without_reply():
    sim, net, (ha, hb) = make_world()
    server = RmiRuntime(net, hb, 5000)
    client = RmiRuntime(net, ha, 5000)
    calc = Calculator()
    stub = server.serve(calc, "calc")
    client.oneway(stub, "note", "ping")
    client.oneway(stub, "note", "pong")
    sim.run()
    assert calc.history == [("note", "ping"), ("note", "pong")]
    assert client.oneways_sent == 2


def test_oneway_to_dead_peer_lost_silently():
    sim, net, (ha, hb) = make_world()
    server = RmiRuntime(net, hb, 5000)
    client = RmiRuntime(net, ha, 5000)
    calc = Calculator()
    stub = server.serve(calc, "calc")
    hb.fail()
    client.oneway(stub, "note", "into-the-void")
    sim.run()  # must not raise
    assert calc.history == []


def test_oneway_error_counted_not_raised():
    sim, net, (ha, hb) = make_world()
    log = EventLog()
    server = RmiRuntime(net, hb, 5000, log=log)
    client = RmiRuntime(net, ha, 5000)
    stub = server.serve(Calculator(), "calc")
    client.oneway(stub, "boom")
    sim.run()
    assert server.oneway_errors == 1
    assert log.count("rmi_oneway_error") == 1


def test_server_dies_mid_generator_handler_caller_times_out():
    sim, net, (ha, hb) = make_world()
    server = RmiRuntime(net, hb, 5000)
    client = RmiRuntime(net, ha, 5000, call_timeout=3.0)
    stub = server.serve(Calculator(host=hb), "calc")

    def killer(env):
        yield env.timeout(0.5)  # mid slow_square (takes 1s)
        hb.fail()

    def caller(env):
        try:
            yield client.call(stub, "slow_square", 3)
        except RemoteError:
            return ("timed-out", env.now)

    sim.process(killer(sim))
    p = sim.process(caller(sim))
    sim.run()
    assert p.value == ("timed-out", pytest.approx(3.0))


def test_late_reply_after_timeout_is_dropped():
    sim, net, (ha, hb) = make_world(latency=1.0)  # very slow link
    server = RmiRuntime(net, hb, 5000)
    client = RmiRuntime(net, ha, 5000, call_timeout=1.5)  # < 2s round trip
    stub = server.serve(Calculator(), "calc")

    def caller(env):
        try:
            yield client.call(stub, "add", 1, 1)
        except RemoteError:
            pass
        yield env.timeout(5)  # let the late reply arrive
        return "survived"

    p = sim.process(caller(sim))
    sim.run()
    assert p.value == "survived"
    assert not client._pending  # cleaned up


def test_per_call_timeout_override():
    sim, net, (ha, hb) = make_world()
    server = RmiRuntime(net, hb, 5000)
    client = RmiRuntime(net, ha, 5000, call_timeout=100.0)
    stub = server.serve(Calculator(), "calc")
    hb.fail()

    def caller(env):
        try:
            yield client.call(stub, "add", 1, 1, timeout=0.5)
        except RemoteError:
            return env.now

    p = sim.process(caller(sim))
    sim.run()
    assert p.value == pytest.approx(0.5)


def test_bound_stub_interface():
    sim, net, (ha, hb) = make_world()
    server = RmiRuntime(net, hb, 5000)
    client = RmiRuntime(net, ha, 5000)
    calc = Calculator()
    stub = server.serve(calc, "calc")
    bound = stub.bind(client)

    def caller(env):
        r = yield bound.call("add", 10, 20)
        bound.oneway("note", "done")
        return r

    p = sim.process(caller(sim))
    sim.run()
    assert p.value == 30
    assert ("note", "done") in calc.history


def test_duplicate_export_rejected():
    sim, net, (ha, hb) = make_world()
    server = RmiRuntime(net, hb, 5000)
    server.serve(Calculator(), "calc")
    with pytest.raises(NetworkError):
        server.serve(Calculator(), "calc")
    # but unserve frees the name
    server.unserve("calc")
    server.serve(Calculator(), "calc")


def test_stub_for_and_alive():
    sim, net, (ha, hb) = make_world()
    server = RmiRuntime(net, hb, 5000, name="srv")
    server.serve(Calculator(), "calc")
    assert server.stub_for("calc").address == Address("h1", 5000)
    with pytest.raises(NetworkError):
        server.stub_for("other")
    assert server.alive
    hb.fail()
    assert not server.alive


def test_stub_validation_and_repr():
    with pytest.raises(ValueError):
        Stub("", Address("h", 1))
    s = Stub("calc", Address("h", 1))
    assert str(s) == "calc@h:1"


def test_reliable_traffic_exempt_from_random_loss():
    """Calls/replies (TCP-like) and reliable oneways survive a network that
    drops every unreliable message; plain oneways all vanish."""
    from repro.net import Network, UniformLinkModel
    from repro.util.rng import RngTree

    sim = Simulator()
    net = Network(
        sim,
        link_model=UniformLinkModel(latency=1e-4, bandwidth=1e9),
        loss_rate=0.999999,  # effectively total loss for unreliable traffic
        rng=RngTree(0).child("loss"),
    )
    ha, hb = net.new_host("h0"), net.new_host("h1")
    server = RmiRuntime(net, hb, 5000)
    client = RmiRuntime(net, ha, 5000)
    calc = Calculator()
    stub = server.serve(calc, "calc")

    def caller(env):
        result = yield client.call(stub, "add", 1, 2)  # reliable both ways
        client.oneway(stub, "note", "lossy")           # dropped
        client.oneway(stub, "note", "safe", reliable=True)
        yield env.timeout(1.0)
        return result

    p = sim.process(caller(sim))
    sim.run(until=p)
    assert p.value == 3
    notes = [entry[1] for entry in calc.history if entry[0] == "note"]
    assert notes == ["safe"]
    assert net.dropped_loss >= 1


def test_exported_methods_lists_only_remote():
    calc = Calculator()
    exported = calc.exported_methods()
    assert "add" in exported and "slow_square" in exported
    assert "private_helper" not in exported
    assert "history" not in exported  # attributes are not methods


def test_is_remote_marker():
    from repro.rmi import is_remote, remote

    def plain():
        pass

    @remote
    def marked():
        pass

    assert not is_remote(plain)
    assert is_remote(marked)


def test_concurrent_calls_multiplex_on_one_runtime():
    sim, net, (ha, hb) = make_world()
    server = RmiRuntime(net, hb, 5000)
    client = RmiRuntime(net, ha, 5000)
    stub = server.serve(Calculator(host=hb), "calc")
    results = []

    def caller(env, x):
        r = yield client.call(stub, "add", x, x)
        results.append(r)

    for x in range(8):
        sim.process(caller(sim, x))
    sim.run()
    assert sorted(results) == [0, 2, 4, 6, 8, 10, 12, 14]
