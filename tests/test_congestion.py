"""Tests for the shared-medium congestion model."""

import pytest

from repro.des import Simulator
from repro.errors import NetworkError
from repro.net import Address, Network, UniformLinkModel


def make_net(congestion=None):
    sim = Simulator()
    net = Network(
        sim,
        link_model=UniformLinkModel(latency=1e-3, bandwidth=1e9),
        congestion=congestion,
    )
    a, b = net.new_host("a"), net.new_host("b")
    ep = b.open_endpoint(4000)
    return sim, net, ep


def test_no_congestion_by_default():
    sim, net, ep = make_net()
    arrivals = []

    def rx(env):
        while True:
            msg = yield ep.recv()
            arrivals.append(env.now)

    sim.process(rx(sim))
    for i in range(5):
        net.send(Address("a", 1), Address("b", 4000), i)
    sim.run(until=1.0)
    assert len(arrivals) == 5
    # all sent at t=0 with identical delay: identical arrival times
    assert max(arrivals) - min(arrivals) < 1e-9
    assert net.peak_in_flight == 5


def test_congestion_slows_concurrent_transfers():
    sim, net, ep = make_net(congestion=lambda n: 1.0 + 1.0 * n)
    arrivals = []

    def rx(env):
        while True:
            msg = yield ep.recv()
            arrivals.append((env.now, msg.payload))

    sim.process(rx(sim))
    for i in range(4):
        net.send(Address("a", 1), Address("b", 4000), i)
    sim.run(until=1.0)
    assert len(arrivals) == 4
    times = [t for t, _ in arrivals]
    # message i sees i prior in-flight transfers: delays 1x, 2x, 3x, 4x
    # (small additive term: the payload's transfer time)
    assert times[0] == pytest.approx(1e-3, rel=1e-3)
    assert times[1] == pytest.approx(2e-3, rel=1e-3)
    assert times[3] == pytest.approx(4e-3, rel=1e-3)


def test_congestion_drains_between_bursts():
    sim, net, ep = make_net(congestion=lambda n: 1.0 + n)

    def rx(env):
        while True:
            yield ep.recv()

    def bursts(env):
        net.send(Address("a", 1), Address("b", 4000), "x")
        yield env.timeout(0.5)  # first transfer long gone
        net.send(Address("a", 1), Address("b", 4000), "y")
        return env.now

    sim.process(rx(sim))
    p = sim.process(bursts(sim))
    sim.run(until=1.0)
    assert net.in_flight == 0
    assert net.peak_in_flight == 1  # never concurrent


def test_congestion_multiplier_below_one_rejected():
    sim, net, ep = make_net(congestion=lambda n: 0.5)
    with pytest.raises(NetworkError):
        net.send(Address("a", 1), Address("b", 4000), "x")
