"""Shared test utilities: a deterministic toy Task and run drivers."""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.p2p import AppSpec, IterationStep, Task, TaskContext


class GeometricTask(Task):
    """A toy SPMD task with fully predictable behaviour.

    State is one scalar decaying geometrically: ``x ← rate · x`` from 1.0.
    The (absolute) update distance after iteration k is ``(1-rate)·rate^k``,
    so with threshold t the task goes quiet after a known iteration count.
    Each iteration sends its value to the next task (ring) so messaging and
    freshness accounting are exercised.
    """

    def setup(self, ctx: TaskContext) -> None:
        super().setup(ctx)
        self.rate = float(ctx.params.get("rate", 0.5))
        self.flops = float(ctx.params.get("flops", 1e6))
        self.x = 1.0
        self.seen: dict[int, Any] = {}

    def initial_state(self) -> dict:
        return {"x": 1.0}

    def load_state(self, state: dict) -> None:
        self.x = float(state["x"])

    def dump_state(self) -> dict:
        return {"x": self.x}

    def iterate(self, inbox: dict[int, Any]) -> IterationStep:
        self.seen.update(inbox)
        old = self.x
        self.x *= self.rate
        nxt = (self.ctx.task_id + 1) % self.ctx.num_tasks
        outgoing = {nxt: np.array([self.x])} if self.ctx.num_tasks > 1 else {}
        return IterationStep(
            flops=self.flops,
            outgoing=outgoing,
            local_distance=abs(old - self.x),
        )

    def solution_fragment(self):
        return (self.ctx.task_id, self.x)


def make_geometric_app(
    app_id: str = "geo",
    num_tasks: int = 3,
    rate: float = 0.5,
    flops: float = 1e6,
    threshold: float = 1e-4,
    window: int = 2,
) -> AppSpec:
    return AppSpec(
        app_id=app_id,
        task_factory=GeometricTask,
        num_tasks=num_tasks,
        params={"rate": rate, "flops": flops},
        convergence_threshold=threshold,
        stability_window=window,
    )


def run_until_done(cluster, spawner, horizon: float = 1000.0) -> bool:
    """Drive the simulation until the app converges or the horizon passes."""
    sim = cluster.sim
    sim.run(until=sim.any_of([spawner.done, sim.timeout(horizon)]))
    return spawner.done.triggered


def collect_solution(cluster, spawner) -> dict:
    proc = cluster.sim.process(spawner.collect_solution())
    cluster.sim.run(until=proc)
    return proc.value


def assemble_strip_solution(fragments: dict, size: int) -> np.ndarray:
    """Stitch (offset, values) fragments into a global vector."""
    x = np.full(size, np.nan)
    for frag in fragments.values():
        if frag is None:
            continue
        offset, values = frag
        x[offset : offset + len(values)] = values
    return x
