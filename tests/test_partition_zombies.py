"""Network partitions and live zombies.

The hardest failure-detection case is a peer that is *not* dead: a network
partition makes a healthy Daemon unreachable, the Spawner declares it
failed and replaces its task, and then the partition heals — leaving two
live daemons computing the same task.  The epoch fencing must keep the
zombie's control messages out, and the application must still converge to
the right answer.
"""

import numpy as np
import pytest

from repro.apps import make_poisson_app
from repro.numerics import Poisson2D
from repro.checkpoint import FixedPolicy
from repro.p2p import P2PConfig, build_cluster, launch_application

from tests.helpers import (
    assemble_strip_solution,
    collect_solution,
    run_until_done,
)

FAST = P2PConfig(
    heartbeat_period=0.5, heartbeat_timeout=2.0, monitor_period=0.5,
    call_timeout=2.0, bootstrap_retry_delay=0.5, reserve_retry_period=0.5,
    min_iteration_time=0.01,
)
CKPT = FixedPolicy(count=3, frequency=5)


def test_partitioned_daemon_is_replaced_and_zombie_is_fenced():
    n, peers = 16, 3
    cluster = build_cluster(n_daemons=7, n_superpeers=2, seed=61, config=FAST, checkpoint=CKPT)
    app = make_poisson_app("p", n=n, num_tasks=peers,
                           convergence_threshold=1e-8)
    spawner = launch_application(cluster, app)
    sim = cluster.sim
    net = cluster.network
    sim.run(until=1.0)

    victim_slot = spawner.register.slot(1)
    victim_host = victim_slot.daemon_id.rsplit("#", 1)[0]
    victim_epoch = victim_slot.epoch
    # cut the victim off from EVERYONE (it stays alive and computing)
    others = [h.name for h in net.hosts.values() if h.name != victim_host]
    net.partition([[victim_host], others])

    # the spawner detects the silence and replaces the task
    while spawner.replacements == 0 and sim.now < 30.0:
        sim.run(until=sim.now + 0.25)
    assert spawner.replacements == 1
    assert spawner.register.slot(1).epoch > victim_epoch
    zombie = cluster.daemons[victim_host]
    assert zombie.runner is not None  # alive and still computing

    # heal: the zombie's stale heartbeats/set_state now reach the spawner
    net.heal_partition()
    assert run_until_done(cluster, spawner, horizon=900.0)

    frags = collect_solution(cluster, spawner)
    x = assemble_strip_solution(frags, n * n)
    assert Poisson2D.manufactured(n).residual_norm(x) < 1e-4
    # the zombie never regained the slot
    assert spawner.register.slot(1).daemon_id != zombie.daemon_id


def test_partition_of_superpeer_isolates_only_registration():
    """Cutting a Super-Peer away must not disturb a running application
    (computing peers talk to the Spawner and each other, not to SPs)."""
    cluster = build_cluster(n_daemons=6, n_superpeers=2, seed=67, config=FAST, checkpoint=CKPT)
    app = make_poisson_app("p", n=16, num_tasks=3, convergence_threshold=1e-8)
    spawner = launch_application(cluster, app)
    sim = cluster.sim
    net = cluster.network
    sim.run(until=1.0)
    sp_host = cluster.superpeers[0].host.name
    others = [h.name for h in net.hosts.values() if h.name != sp_host]
    net.partition([[sp_host], others])
    assert run_until_done(cluster, spawner, horizon=900.0)
    frags = collect_solution(cluster, spawner)
    x = assemble_strip_solution(frags, 256)
    assert Poisson2D.manufactured(16).residual_norm(x) < 1e-4


def test_partition_splitting_the_application_stalls_then_recovers():
    """Split the computing peers from the spawner side: tasks on the far
    side get replaced; after healing, the app still finishes correctly."""
    n, peers = 16, 3
    cluster = build_cluster(n_daemons=8, n_superpeers=2, seed=71, config=FAST, checkpoint=CKPT)
    app = make_poisson_app("p", n=n, num_tasks=peers,
                           convergence_threshold=1e-8)
    spawner = launch_application(cluster, app)
    sim = cluster.sim
    net = cluster.network
    sim.run(until=1.0)
    computing = {
        s.daemon_id.rsplit("#", 1)[0]
        for s in spawner.register.slots if s.assigned
    }
    far_side = sorted(computing)[:2]  # two of the three computing hosts
    near = [h.name for h in net.hosts.values() if h.name not in far_side]
    net.partition([list(far_side), near])
    sim.run(until=sim.now + 8.0)  # let detection + replacement happen
    net.heal_partition()
    assert run_until_done(cluster, spawner, horizon=900.0)
    frags = collect_solution(cluster, spawner)
    x = assemble_strip_solution(frags, n * n)
    assert Poisson2D.manufactured(n).residual_norm(x) < 1e-4
    assert spawner.replacements >= 2
