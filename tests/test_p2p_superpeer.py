"""Tests for the Super-Peer: registration, heartbeats, eviction, reservation
with forwarding (paper §5.1–§5.3, Figures 1, 2, 4)."""

import pytest

from repro.des import Simulator
from repro.net import Network, UniformLinkModel
from repro.p2p import P2PConfig, SuperPeer
from repro.p2p.superpeer import SUPERPEER_OBJECT
from repro.rmi import RmiRuntime, Stub
from repro.net.address import Address
from repro.util.logging import EventLog


CFG = P2PConfig(heartbeat_period=0.5, heartbeat_timeout=2.0, monitor_period=0.5)


def make_superpeers(n=2, cfg=CFG):
    sim = Simulator()
    net = Network(sim, link_model=UniformLinkModel(latency=1e-4, bandwidth=1e9))
    log = EventLog()
    sps = []
    for i in range(n):
        host = net.new_host(f"sp-host-{i}")
        sps.append(SuperPeer(net, host, sp_id=f"SP{i}", config=cfg, log=log))
    stubs = [sp.stub for sp in sps]
    for sp in sps:
        sp.link(stubs)
    return sim, net, sps, log


def make_client(net, name="client", port=4100):
    host = net.new_host(name)
    return RmiRuntime(net, host, port, name=name)


def dummy_stub(i):
    return Stub("daemon", Address(f"fake-daemon-{i}", 4100))


def test_register_and_count():
    sim, net, (sp0, sp1), log = make_superpeers()
    client = make_client(net)

    def script(env):
        ok = yield client.call(sp0.stub, "register_daemon", "d0", dummy_stub(0))
        assert ok
        count = yield client.call(sp0.stub, "registered_count")
        return count

    p = sim.process(script(sim))
    sim.run(until=p)
    assert p.value == 1
    assert log.count("sp_register") == 1


def test_linking_excludes_self():
    sim, net, (sp0, sp1), log = make_superpeers()
    assert len(sp0.neighbour_stubs) == 1
    assert sp0.neighbour_stubs[0].address == sp1.stub.address


def test_heartbeat_keeps_daemon_registered():
    sim, net, (sp0, sp1), log = make_superpeers()
    client = make_client(net)

    def script(env):
        yield client.call(sp0.stub, "register_daemon", "d0", dummy_stub(0))
        for _ in range(10):
            yield env.timeout(0.5)
            known = yield client.call(sp0.stub, "heartbeat", "d0")
            assert known
        count = yield client.call(sp0.stub, "registered_count")
        return count

    p = sim.process(script(sim))
    sim.run(until=p)
    assert p.value == 1
    assert sp0.evictions == 0


def test_silent_daemon_evicted_after_timeout():
    sim, net, (sp0, sp1), log = make_superpeers()
    client = make_client(net)

    def script(env):
        yield client.call(sp0.stub, "register_daemon", "d0", dummy_stub(0))
        yield env.timeout(5.0)  # never heartbeat
        count = yield client.call(sp0.stub, "registered_count")
        return count

    p = sim.process(script(sim))
    sim.run(until=p)
    assert p.value == 0
    assert sp0.evictions == 1
    assert log.count("sp_evict") == 1


def test_heartbeat_from_unknown_daemon_returns_false():
    sim, net, (sp0, sp1), log = make_superpeers()
    client = make_client(net)

    def script(env):
        known = yield client.call(sp0.stub, "heartbeat", "ghost")
        return known

    p = sim.process(script(sim))
    sim.run(until=p)
    assert p.value is False


def test_unregister_daemon():
    sim, net, (sp0, sp1), log = make_superpeers()
    client = make_client(net)

    def script(env):
        yield client.call(sp0.stub, "register_daemon", "d0", dummy_stub(0))
        removed = yield client.call(sp0.stub, "unregister_daemon", "d0")
        missing = yield client.call(sp0.stub, "unregister_daemon", "d0")
        count = yield client.call(sp0.stub, "registered_count")
        return removed, missing, count

    p = sim.process(script(sim))
    sim.run(until=p)
    assert p.value == (True, False, 0)


def test_reserve_local_removes_from_register():
    sim, net, (sp0, sp1), log = make_superpeers()
    client = make_client(net)

    def script(env):
        for i in range(3):
            yield client.call(sp0.stub, "register_daemon", f"d{i}", dummy_stub(i))
        picked = yield client.call(sp0.stub, "reserve_local", 2)
        count = yield client.call(sp0.stub, "registered_count")
        return picked, count

    p = sim.process(script(sim))
    sim.run(until=p)
    picked, count = p.value
    assert len(picked) == 2 and count == 1
    assert picked[0][0] == "d0"  # deterministic order


def test_reserve_forwards_to_neighbour():
    """Figure 2: SP1 has two daemons, the third is reserved on SP2."""
    sim, net, (sp0, sp1), log = make_superpeers()
    client = make_client(net)

    def script(env):
        yield client.call(sp0.stub, "register_daemon", "a0", dummy_stub(0))
        yield client.call(sp0.stub, "register_daemon", "a1", dummy_stub(1))
        yield client.call(sp1.stub, "register_daemon", "b0", dummy_stub(2))
        picked = yield client.call(sp0.stub, "reserve", 3, ())
        return picked

    p = sim.process(script(sim))
    sim.run(until=p)
    ids = sorted(d for d, _ in p.value)
    assert ids == ["a0", "a1", "b0"]
    assert sp0.forwarded_requests >= 1
    # both registers drained
    assert len(sp0.register) == 0 and len(sp1.register) == 0


def test_reserve_returns_short_when_network_exhausted():
    sim, net, (sp0, sp1), log = make_superpeers()
    client = make_client(net)

    def script(env):
        yield client.call(sp0.stub, "register_daemon", "a0", dummy_stub(0))
        picked = yield client.call(sp0.stub, "reserve", 5, ())
        return picked

    p = sim.process(script(sim))
    sim.run(until=p)
    assert len(p.value) == 1


def test_reserve_visited_prevents_forwarding_loops():
    sim, net, sps, log = make_superpeers(3)
    client = make_client(net)

    def script(env):
        picked = yield client.call(sps[0].stub, "reserve", 4, ())
        return picked

    p = sim.process(script(sim))
    sim.run(until=p)
    assert p.value == []  # nothing anywhere; returns without livelock
    sim.run(until=sim.now + 30)  # no runaway forwarding processes


def test_reserve_survives_dead_neighbour():
    sim, net, (sp0, sp1), log = make_superpeers()
    client = make_client(net)
    sp1.host.fail()

    def script(env):
        yield client.call(sp0.stub, "register_daemon", "a0", dummy_stub(0))
        picked = yield client.call(
            sp0.stub, "reserve", 2, (), timeout=30.0
        )
        return picked

    p = sim.process(script(sim))
    sim.run(until=p)
    assert len(p.value) == 1  # the local one; dead neighbour skipped


def test_reserve_zero_or_negative_count():
    sim, net, (sp0, sp1), log = make_superpeers()
    assert sp0.reserve_local(0) == []
    assert sp0.reserve_local(-3) == []
