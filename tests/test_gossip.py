"""Tests for the decentralized control plane (``repro.gossip`` + failover).

Covers the three robustness upgrades of docs/gossip.md — gossip-based
Super-Peer discovery, the epidemic convergence cross-check and the
warm-standby Spawner takeover — plus the bounded peer store they ride on,
and the bitwise-identity guarantee: with gossip disabled the quick
baseline run must not move by a single bit.
"""

import pytest

from repro.exec import RunSpec
from repro.faults import FaultInjector, FaultPlan, SpawnerCrash, scenario
from repro.gossip import GossipAgent, PeerStore
from repro.net.address import Address
from repro.checkpoint import FixedPolicy
from repro.p2p import (
    P2PConfig,
    StableStore,
    build_cluster,
    launch_application,
    launch_standby,
)
from repro.util.rng import RngTree

from tests.helpers import make_geometric_app, run_until_done

#: FAST-style timing (seconds-scale iterations) with the control plane on
GOSSIP_FAST = P2PConfig(
    heartbeat_period=0.5,
    heartbeat_timeout=2.0,
    monitor_period=0.5,
    call_timeout=2.0,
    bootstrap_retry_delay=0.5,
    reserve_retry_period=0.5,
    min_iteration_time=0.01,
    gossip_enabled=True,
    standby_enabled=True,
)
CKPT = FixedPolicy(count=3, frequency=5)


# -- the bounded peer store ----------------------------------------------------


def _addr(i: int) -> Address:
    return Address(f"h{i}", 4000)


def test_peer_store_is_bounded_and_rejects_when_healthy():
    store = PeerStore(limit=3, stale_after=10.0)
    for i in range(3):
        store.upsert(f"p{i}", "daemon", _addr(i), now=0.0, heard=True)
    assert len(store) == 3
    # every incumbent is fresh and probe-clean: the newcomer is rejected
    assert store.upsert("p9", "daemon", _addr(9), now=1.0, heard=True) is None
    assert _addr(9) not in store
    assert store.rejections == 1


def test_peer_store_evicts_the_failed_incumbent_first():
    store = PeerStore(limit=3, stale_after=10.0)
    for i in range(3):
        store.upsert(f"p{i}", "daemon", _addr(i), now=0.0, heard=True)
    store.mark_failed(_addr(1))
    evicted = store.upsert("p9", "daemon", _addr(9), now=1.0, heard=True)
    assert evicted is not None and evicted.address == _addr(1)
    assert _addr(9) in store and _addr(1) not in store
    assert store.evictions == 1


def test_peer_store_evicts_stale_over_fresh():
    store = PeerStore(limit=2, stale_after=5.0)
    store.upsert("old", "daemon", _addr(0), now=0.0, heard=True)
    store.upsert("new", "daemon", _addr(1), now=8.0, heard=True)
    evicted = store.upsert("p9", "daemon", _addr(9), now=9.0, heard=True)
    assert evicted is not None and evicted.peer_id == "old"


def test_peer_store_hearsay_never_refreshes_liveness():
    store = PeerStore(limit=4, stale_after=5.0)
    store.upsert("p0", "daemon", _addr(0), now=0.0, heard=True)
    store.mark_failed(_addr(0))
    # a peer-sample mention must not clear the probe failure
    store.upsert("p0", "daemon", _addr(0), now=3.0, heard=False)
    assert store.get(_addr(0)).fails == 1
    # a first-hand message does
    store.upsert("p0", "daemon", _addr(0), now=3.0, heard=True)
    assert store.get(_addr(0)).fails == 0


def test_peer_store_role_addresses_are_sorted():
    store = PeerStore(limit=8, stale_after=10.0)
    store.upsert("b", "superpeer", Address("sp-b", 4100), now=0.0, heard=True)
    store.upsert("a", "superpeer", Address("sp-a", 4100), now=0.0, heard=True)
    store.upsert("d", "daemon", _addr(0), now=0.0, heard=True)
    assert store.addresses_of_role("superpeer") == [
        Address("sp-a", 4100), Address("sp-b", 4100)
    ]


# -- discovery + backoff (§5.1 without the hardcoded roster) ------------------


def test_daemons_discover_superpeers_beyond_the_seed_list():
    """With gossip discovery on, Daemons are seeded with only TWO contact
    addresses but learn the rest of the Super-Peer roster over gossip."""
    cluster = build_cluster(n_daemons=5, n_superpeers=3, seed=2,
                            config=GOSSIP_FAST, checkpoint=CKPT)
    third = cluster.superpeer_addresses[2]
    assert all(d.gossip is not None for d in cluster.daemons.values())
    assert all(len(d.gossip.seeds) <= 2 for d in cluster.daemons.values())
    cluster.sim.run(until=10.0)
    learned = [d for d in cluster.daemons.values()
               if third in d._superpeer_candidates()]
    assert learned, "no Daemon discovered the unseeded Super-Peer"


def test_register_backoff_grows_is_bounded_and_deterministic():
    cluster = build_cluster(n_daemons=2, n_superpeers=1, seed=0,
                            config=GOSSIP_FAST, checkpoint=CKPT)
    daemon = next(iter(cluster.daemons.values()))
    delays = [daemon._retry_backoff() for _ in range(8)]
    config = cluster.config
    cap = config.bootstrap_retry_max * (1.0 + config.bootstrap_retry_jitter)
    assert all(0 < d <= cap for d in delays)
    # exponential growth until the cap (jitter only stretches, never shrinks)
    assert delays[1] > delays[0]
    assert delays[-1] >= config.bootstrap_retry_max
    # deterministic: a fresh daemon in a reseeded cluster replays the draws
    clone = build_cluster(n_daemons=2, n_superpeers=1, seed=0,
                          config=GOSSIP_FAST, checkpoint=CKPT)
    twin = next(iter(clone.daemons.values()))
    assert [twin._retry_backoff() for _ in range(8)] == delays
    # a successful registration resets the schedule
    daemon._retry_attempt = 0
    assert daemon._retry_backoff() == delays[0]


# -- the epidemic convergence cross-check (§5.5 decentralized) ----------------


def test_gossip_run_cross_checks_convergence():
    cluster = build_cluster(n_daemons=5, n_superpeers=2, seed=3,
                            config=GOSSIP_FAST, checkpoint=CKPT)
    spawner = launch_application(cluster, make_geometric_app(num_tasks=3))
    assert run_until_done(cluster, spawner, horizon=300.0)
    assert spawner.gossip is not None
    # the halt decision required BOTH detectors: the centralized array
    # and the epidemic aggregate agreed at least once
    assert spawner.crosscheck_agreements >= 1
    assert spawner._epidemic_agrees()
    bits = spawner._epidemic_bits
    assert set(bits) == {0, 1, 2}
    assert all(stable for (_, _, stable) in bits.values())


# -- warm-standby takeover ----------------------------------------------------


def _slow_app(num_tasks=3):
    # rate 0.99: ~460 iterations to quiet down — slow enough that a crash
    # a few simulated seconds in always lands mid-run
    return make_geometric_app(num_tasks=num_tasks, rate=0.99)


def test_spawner_crash_promotes_standby_and_run_converges():
    cluster = build_cluster(n_daemons=6, n_superpeers=2, seed=4,
                            config=GOSSIP_FAST, checkpoint=CKPT)
    app = _slow_app()
    store = StableStore()
    primary = launch_application(cluster, app, stable_store=store)
    standby = launch_standby(cluster, app, primary, stable_store=store)
    FaultInjector(cluster.sim, FaultPlan.of(SpawnerCrash(time=2.0)),
                  rng=RngTree(1).child("faults"), cluster=cluster)
    sim = cluster.sim
    sim.run(until=sim.any_of([standby.done, sim.timeout(300.0)]))
    assert standby.promoted
    assert standby.takeover_at is not None and standby.takeover_at > 2.0
    assert standby.done.triggered, "promoted standby never converged the app"
    assert standby.spawner is not None
    assert standby.spawner.reign > 1
    # the computation carried on: the promoted register is fully assigned
    assert all(s.assigned for s in standby.spawner.register.slots)


def test_spawner_crash_replay_is_pinned_and_bit_identical():
    """The injector's executed plan replays the takeover bit for bit."""

    def run_once():
        cluster = build_cluster(n_daemons=6, n_superpeers=2, seed=4,
                                config=GOSSIP_FAST, checkpoint=CKPT)
        app = _slow_app()
        store = StableStore()
        primary = launch_application(cluster, app, stable_store=store)
        standby = launch_standby(cluster, app, primary, stable_store=store)
        inj = FaultInjector(cluster.sim, FaultPlan.of(SpawnerCrash(time=2.0)),
                            rng=RngTree(1).child("faults"), cluster=cluster)
        sim = cluster.sim
        sim.run(until=sim.any_of([standby.done, sim.timeout(300.0)]))
        return inj, standby

    inj_a, standby_a = run_once()
    replay = inj_a.executed_plan()
    (action,) = replay.schedule()
    assert isinstance(action, SpawnerCrash)
    assert action.time == 2.0 and action.downtime is None
    inj_b, standby_b = run_once()
    assert inj_b.executed_plan() == replay
    assert standby_b.takeover_at == standby_a.takeover_at
    assert standby_b.spawner.execution_time == standby_a.spawner.execution_time


def test_ghost_runners_reattach_to_the_promoted_spawner():
    """A standby whose shadow predates the assignments must still inherit
    the live computation: ghosts adopt the new leader over gossip and
    reclaim their slots via ``reattach_task`` instead of heartbeating a
    dead address forever."""
    cluster = build_cluster(n_daemons=6, n_superpeers=2, seed=4,
                            config=GOSSIP_FAST, checkpoint=CKPT)
    app = _slow_app()
    store = StableStore()
    primary = launch_application(cluster, app, stable_store=store)
    standby = launch_standby(cluster, app, primary, stable_store=store)
    FaultInjector(cluster.sim, FaultPlan.of(SpawnerCrash(time=2.0)),
                  rng=RngTree(1).child("faults"), cluster=cluster)
    sim = cluster.sim
    sim.run(until=sim.any_of([standby.done, sim.timeout(300.0)]))
    assert standby.done.triggered
    promoted = standby.spawner
    # survivors re-pointed at the new leader (direct announce or epidemic)
    adopted = [d for d in cluster.daemons.values()
               if d.runner is None or d.runner.leader_reign == promoted.reign]
    assert len(adopted) == len(cluster.daemons)


def test_spawner_flap_keeps_exactly_one_leader():
    """The resurrected primary must abdicate to the promoted standby."""
    cluster = build_cluster(n_daemons=6, n_superpeers=2, seed=4,
                            config=GOSSIP_FAST, checkpoint=CKPT)
    app = _slow_app()
    store = StableStore()
    primary = launch_application(cluster, app, stable_store=store)
    standby = launch_standby(cluster, app, primary, stable_store=store)
    inj = FaultInjector(
        cluster.sim,
        FaultPlan.of(SpawnerCrash(time=2.0, downtime=8.0)),
        rng=RngTree(1).child("faults"), cluster=cluster)
    sim = cluster.sim
    sim.run(until=sim.any_of([standby.done, sim.timeout(300.0)]))
    assert standby.promoted and standby.done.triggered
    # the flap resurrected the host but no second Spawner was resumed:
    # only the original launch is registered with the cluster
    assert len(cluster.spawners) == 1
    assert inj.counts == {"spawner_crash": 1}
    assert standby.active_reign > primary.reign


# -- RunSpec surface + bitwise identity ---------------------------------------


def test_gossip_scenarios_round_trip_and_spawner_crash_validates():
    for name in ("spawner-down", "standby-flap", "discovery-storm"):
        plan = scenario(name)
        assert FaultPlan.from_dict(plan.to_dict()) == plan
    clone = FaultPlan.from_dict(
        FaultPlan.of(SpawnerCrash(time=0.1, downtime=0.5)).to_dict())
    (action,) = clone.schedule()
    assert isinstance(action, SpawnerCrash)
    assert action.downtime == 0.5
    with pytest.raises(Exception):
        SpawnerCrash(time=0.1, downtime=0.0)


def test_runspec_carries_gossip_flags_through_dict():
    spec = RunSpec(n=32, peers=4, seed=0, gossip=True, standby=True)
    clone = RunSpec.from_dict(spec.to_dict())
    assert clone.gossip and clone.standby
    assert clone.key() == spec.key()
    assert clone.key() != RunSpec(n=32, peers=4, seed=0).key()


def test_gossip_disabled_run_is_bitwise_identical_to_the_baseline():
    """The control plane must be free when off: the quick seeded run
    reproduces the pre-gossip golden numbers exactly."""
    result = RunSpec(n=32, peers=4, seed=0).run()
    assert result.simulated_time == 0.4053898679254421
    assert result.total_iterations == 2072
    assert result.residual == 2.8767635535998064e-06
    assert result.takeovers == 0 and result.takeover_at is None
