"""Tests for BiCGSTAB, the convection–diffusion operator, and its app."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.apps import make_convdiff_app
from repro.errors import ConvergenceError
from repro.numerics import BlockDecomposition, async_certificate
from repro.numerics.bicgstab import bicgstab
from repro.numerics.convdiff import (
    ConvectionDiffusion2D,
    convection_diffusion_matrix,
)
from repro.numerics.matrix import is_m_matrix, is_z_matrix
from repro.checkpoint import FixedPolicy
from repro.p2p import P2PConfig, build_cluster, launch_application

from tests.helpers import (
    assemble_strip_solution,
    collect_solution,
    run_until_done,
)

FAST = P2PConfig(
    heartbeat_period=0.5, heartbeat_timeout=2.0, monitor_period=0.5,
    call_timeout=2.0, bootstrap_retry_delay=0.5, reserve_retry_period=0.5,
    min_iteration_time=0.01,
)
CKPT = FixedPolicy(count=3, frequency=5)


# ------------------------------------------------------------------- bicgstab


def test_bicgstab_solves_nonsymmetric_system():
    problem = ConvectionDiffusion2D(12, eps=0.1, wx=2.0, wy=1.0)
    result = bicgstab(problem.A, problem.b, tol=1e-12)
    assert result.converged
    assert np.allclose(result.x, problem.u_star, atol=1e-6)
    assert result.flops > 0


def test_bicgstab_matches_cg_on_symmetric_system():
    from repro.numerics import Poisson2D, conjugate_gradient

    prob = Poisson2D.heat_plate(10)
    bi = bicgstab(prob.A, prob.b, tol=1e-11)
    cg = conjugate_gradient(prob.A, prob.b, tol=1e-11)
    assert bi.converged and cg.converged
    assert np.allclose(bi.x, cg.x, atol=1e-7)


def test_bicgstab_warm_start():
    problem = ConvectionDiffusion2D(10, eps=0.5, wx=1.0)
    ref = problem.solve_direct()
    warm = bicgstab(problem.A, problem.b, x0=ref, tol=1e-10)
    assert warm.converged and warm.iterations <= 1


def test_bicgstab_zero_rhs():
    A = convection_diffusion_matrix(6, eps=1.0, wx=1.0)
    result = bicgstab(A, np.zeros(36), tol=1e-12)
    assert result.converged and result.iterations == 0
    assert np.allclose(result.x, 0.0)


def test_bicgstab_budget_and_validation():
    problem = ConvectionDiffusion2D(10, eps=0.05, wx=3.0, wy=2.0)
    short = bicgstab(problem.A, problem.b, tol=1e-14, max_iter=2)
    assert not short.converged
    with pytest.raises(ConvergenceError):
        bicgstab(problem.A, problem.b, tol=1e-14, max_iter=2,
                 raise_on_fail=True)
    with pytest.raises(ValueError):
        bicgstab(problem.A, np.zeros(7))
    with pytest.raises(ValueError):
        bicgstab(sp.csr_matrix(np.ones((2, 3))), np.zeros(2))
    with pytest.raises(ValueError):
        bicgstab(problem.A, problem.b, x0=np.zeros(3))


# ------------------------------------------------------------------- operator


def test_convdiff_operator_structure():
    A = convection_diffusion_matrix(5, eps=1.0, wx=2.0, wy=-1.0)
    assert A.shape == (25, 25)
    assert is_z_matrix(A)
    assert is_m_matrix(A)
    # nonsymmetric as soon as there is convection
    assert (A != A.T).nnz > 0
    # pure diffusion with eps=1 reduces to the scaled Poisson matrix
    from repro.numerics import poisson_matrix

    D = convection_diffusion_matrix(5, eps=1.0)
    assert abs(D - poisson_matrix(5, scaled=True)).nnz == 0


def test_convdiff_upwind_stays_m_matrix_at_high_peclet():
    """The point of upwinding: even convection-dominated (tiny eps), the
    operator keeps the M-matrix sign pattern."""
    A = convection_diffusion_matrix(6, eps=1e-3, wx=5.0, wy=5.0)
    assert is_z_matrix(A)
    assert is_m_matrix(A)


def test_convdiff_validation():
    with pytest.raises(ValueError):
        convection_diffusion_matrix(0)
    with pytest.raises(ValueError):
        convection_diffusion_matrix(5, eps=0.0)


def test_convdiff_manufactured_solution_is_exact():
    problem = ConvectionDiffusion2D(8, eps=0.3, wx=1.5, wy=-0.5)
    x = problem.solve_direct()
    assert np.allclose(x, problem.u_star, atol=1e-10)
    assert problem.residual_norm(problem.u_star) < 1e-12


def test_convdiff_decomposition_is_async_certified():
    problem = ConvectionDiffusion2D(8, eps=0.5, wx=1.0, wy=0.5)
    d = BlockDecomposition(problem.A, problem.b, nblocks=4, line=8)
    cert = async_certificate(d)
    assert cert.m_matrix
    assert cert.async_convergent


# ------------------------------------------------------------------------ app


def test_convdiff_app_converges_on_runtime():
    n, peers = 12, 3
    cluster = build_cluster(n_daemons=5, n_superpeers=2, seed=43, config=FAST, checkpoint=CKPT)
    app = make_convdiff_app("cd", n=n, num_tasks=peers, eps=0.5, wx=1.0,
                            wy=0.5, convergence_threshold=1e-9)
    spawner = launch_application(cluster, app)
    assert run_until_done(cluster, spawner, horizon=900.0)
    frags = collect_solution(cluster, spawner)
    x = assemble_strip_solution(frags, n * n)
    problem = ConvectionDiffusion2D(n, eps=0.5, wx=1.0, wy=0.5)
    assert np.max(np.abs(x - problem.u_star)) < 1e-4


def test_convdiff_app_survives_failure():
    n, peers = 12, 3
    cluster = build_cluster(n_daemons=6, n_superpeers=2, seed=47, config=FAST, checkpoint=CKPT)
    app = make_convdiff_app("cd", n=n, num_tasks=peers, eps=0.3, wx=2.0,
                            convergence_threshold=1e-9)
    spawner = launch_application(cluster, app)
    sim = cluster.sim
    sim.run(until=0.5)
    victim_name = spawner.register.slot(0).daemon_id.rsplit("#", 1)[0]
    victim = next(h for h in cluster.testbed.daemon_hosts
                  if h.name == victim_name)
    victim.fail(cause="test")
    assert run_until_done(cluster, spawner, horizon=900.0)
    frags = collect_solution(cluster, spawner)
    x = assemble_strip_solution(frags, n * n)
    problem = ConvectionDiffusion2D(n, eps=0.3, wx=2.0, wy=0.5)
    assert np.max(np.abs(x - problem.u_star)) < 1e-4
