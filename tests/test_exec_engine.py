"""Tests for ``repro.exec``: spec identity, engine parity, run cache.

The contract under test: parallelism and caching are wall-clock
optimizations only.  A spec executed serially, on a process pool, or
recalled from cache must produce field-for-field identical results.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.exec import (
    RunCache,
    RunSpec,
    SweepEngine,
    code_fingerprint,
    default_cache_dir,
)
from repro.experiments import figure7_sweep
from repro.experiments.driver import RUN_COUNTER, RunResult, run_poisson_on_p2p
from repro.obs.report import RunReport
from repro.p2p.telemetry import RecoveryRecord

#: small enough to keep this module in tier-1 time budgets
TINY = dict(n=24, peers=3, seed=5)


# -- RunSpec identity ---------------------------------------------------------


def test_key_is_stable_under_normalization():
    spec = RunSpec(**TINY)
    assert spec.key() == spec.normalized().key()
    assert spec.key() == spec.normalized().normalized().key()


def test_key_separates_different_runs():
    base = RunSpec(**TINY)
    keys = {
        base.key(),
        dataclasses.replace(base, seed=6).key(),
        dataclasses.replace(base, n=32).key(),
        dataclasses.replace(base, disconnections=1).key(),
        dataclasses.replace(base, collect=False).key(),
    }
    assert len(keys) == 5


def test_key_covers_the_source_tree():
    # the fingerprint is part of the address: editing repro/ source must
    # change every key, silently invalidating stale cache entries
    import hashlib
    import json

    fp = code_fingerprint()
    assert len(fp) == 16
    spec = RunSpec(**TINY)
    payload = spec.normalized().to_dict()
    payload["__fingerprint__"] = fp
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    assert spec.key() == hashlib.sha256(blob.encode()).hexdigest()[:32]


def test_spec_roundtrips_through_dict():
    spec = RunSpec(n=32, peers=4, disconnections=2, seed=9).normalized()
    again = RunSpec.from_dict(spec.to_dict())
    assert again == spec
    assert again.key() == spec.key()


def test_calibration_spec_is_the_churn_free_sibling():
    spec = RunSpec(**TINY, disconnections=2)
    assert spec.needs_calibration()
    calib = spec.calibration_spec()
    assert calib.disconnections == 0
    assert not calib.needs_calibration()
    # an explicit window needs no calibration
    assert not dataclasses.replace(spec, churn_window=1.0).needs_calibration()


# -- RunResult transport ------------------------------------------------------


def _fake_result(**overrides) -> RunResult:
    fields = dict(
        n=24, peers=3, disconnections_requested=1, disconnections_executed=1,
        seed=5, overlap=2, converged=True, simulated_time=1.25,
        total_iterations=300, mean_iterations_per_task=100.0,
        useless_fraction=0.125, residual=3.7e-7, recoveries=1,
        restarts_from_zero=0, replacements=1, checkpoints_sent=42,
        data_messages=900, run_report=None,
    )
    fields.update(overrides)
    return RunResult(**fields)


def test_runresult_roundtrip_without_report_and_none_fields():
    # the unconverged shape: None residual and simulated_time, no report
    result = _fake_result(converged=False, simulated_time=None, residual=None)
    again = RunResult.from_dict(result.to_dict())
    assert again == result
    assert again.run_report is None
    assert again.simulated_time is None and again.residual is None


def test_runresult_roundtrip_with_full_report():
    report = RunReport(
        app_id="rt", converged=True, launched_at=0.5, converged_at=1.75,
        execution_time=1.25, total_iterations=300, useless_fraction=0.125,
        data_messages_sent=900, checkpoints_sent=42, convergence_messages=7,
        recoveries=[
            RecoveryRecord(time=0.9, task_id=1, resumed_iteration=40,
                           from_scratch=False),
            RecoveryRecord(time=1.1, task_id=2, resumed_iteration=0,
                           from_scratch=True),
        ],
        restarts_from_zero=1, heartbeat_misses=2, evictions=1, replacements=1,
        net_stats={"sent": 950, "dropped": 3},
        event_counts={("p2p", "heartbeat"): 88, ("net", "send"): 950},
    )
    result = _fake_result(run_report=report)
    data = result.to_dict()
    # the payload must be pure JSON (process transport + cache format)
    import json

    again = RunResult.from_dict(json.loads(json.dumps(data)))
    assert again == result
    assert again.run_report == report
    assert again.run_report.recoveries[1].from_scratch is True
    assert again.run_report.event_counts[("net", "send")] == 950


def test_real_run_roundtrips_exactly():
    result = run_poisson_on_p2p(**TINY)
    assert RunResult.from_dict(result.to_dict()) == result


# -- SweepEngine parity -------------------------------------------------------


def test_serial_engine_matches_direct_driver_call():
    direct = run_poisson_on_p2p(**TINY)
    engine = SweepEngine(workers=1)
    via_engine = engine.run(RunSpec(**TINY))
    assert via_engine == direct
    assert engine.stats["runs_executed"] == 1


def test_engine_memo_deduplicates_identical_specs():
    engine = SweepEngine(workers=1)
    a, b = engine.map([RunSpec(**TINY), RunSpec(**TINY)])
    assert a == b
    assert engine.stats["runs_executed"] == 1
    assert engine.stats["memo_hits"] == 1


def test_engine_shares_churn_calibration_across_levels():
    engine = SweepEngine(workers=1)
    specs = [RunSpec(**TINY, disconnections=d, collect=False) for d in (1, 2)]
    runs = engine.map(specs)
    # 1 shared calibration + 2 churn runs, not 2 + 2
    assert engine.stats["runs_executed"] == 3
    # and the result equals the driver's own calibrate-then-run path
    direct = run_poisson_on_p2p(**TINY, disconnections=1, collect=False)
    assert runs[0] == direct


def test_parallel_figure7_identical_to_serial():
    grid = dict(ns=(24,), disconnections=(0, 1), peers=3, repeats=1,
                base_seed=0)
    serial = figure7_sweep(engine=SweepEngine(workers=1), **grid)
    parallel = figure7_sweep(engine=SweepEngine(workers=4), **grid)
    assert len(serial.runs) == len(parallel.runs)
    for s, p in zip(serial.runs, parallel.runs):
        assert dataclasses.asdict(s) == dataclasses.asdict(p)
    assert serial.times == parallel.times


def test_engine_rejects_bad_worker_count():
    with pytest.raises(ValueError):
        SweepEngine(workers=0)


def test_engine_merges_run_telemetry_into_registry():
    engine = SweepEngine(workers=1)
    result = engine.run(RunSpec(**TINY))
    reg = engine.registry
    assert reg.counter("sweep_specs_requested").total == 1
    assert reg.counter("sweep_runs_executed").total == 1
    assert (reg.counter("sweep_iterations").total
            == result.total_iterations)
    assert (reg.counter("sweep_data_messages").total
            == result.data_messages)


# -- RunCache -----------------------------------------------------------------


def test_cache_hit_returns_identical_content_with_zero_work(tmp_path):
    cache_dir = tmp_path / "cache"
    first_engine = SweepEngine(workers=1, cache=RunCache(cache_dir))
    first = first_engine.run(RunSpec(**TINY))
    assert first_engine.stats["runs_executed"] == 1

    second_engine = SweepEngine(workers=1, cache=RunCache(cache_dir))
    before = RUN_COUNTER.count
    second = second_engine.run(RunSpec(**TINY))
    # zero simulation work: the driver never ran
    assert RUN_COUNTER.count == before
    assert second_engine.stats["runs_executed"] == 0
    assert second_engine.stats["disk_hits"] == 1
    assert second == first


def test_cache_stats_and_clear(tmp_path):
    cache = RunCache(tmp_path / "cache")
    engine = SweepEngine(workers=1, cache=cache)
    engine.run(RunSpec(**TINY))
    stats = cache.stats()
    assert stats["entries"] == 1
    assert stats["entries_current_code"] == 1
    assert stats["misses"] == 1  # the pre-execution lookup
    assert stats["bytes"] > 0
    assert cache.clear() == 1
    assert cache.stats()["entries"] == 0


def test_default_cache_dir_honours_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
    assert default_cache_dir() == tmp_path / "env-cache"
    # RunCache(None) routes through the same default
    assert RunCache(None).root == tmp_path / "env-cache"


def test_cache_stats_distinguish_foreign_entries(tmp_path):
    import json

    cache = RunCache(tmp_path / "cache")
    SweepEngine(workers=1, cache=cache).run(RunSpec(**TINY))
    # a leftover entry from an older source tree: its key can never be
    # addressed again (key() folds in the current fingerprint), it just
    # sits on disk until `cache clear`
    foreign = cache.root / ("f" * 32 + ".run.json")
    foreign.write_text(json.dumps(
        {"fingerprint": "0" * 16, "spec": {}, "result": {}}))
    stats = cache.stats()
    assert stats["entries"] == 2
    assert stats["entries_current_code"] == 1
    assert cache.clear() == 2
