"""Run-report tests, including the end-to-end churn acceptance run.

The integration test mirrors ``examples/churn_resilience.py``: a traced
churn run whose trace must contain heartbeat-miss, eviction, checkpoint
and recovery events, and whose rendered report must agree with the legacy
``Telemetry`` counters.
"""

import json

import pytest

from repro.obs import RunReport, Tracer, build_run_report, trace_to_jsonl
from repro.obs import RunTelemetry


def test_report_from_bare_telemetry():
    t = RunTelemetry()
    t.record_iteration(0, fresh=True)
    t.launched_at = 0.5
    t.converged_at = 2.5
    report = build_run_report(telemetry=t)
    assert report.converged
    assert report.execution_time == 2.0
    assert report.total_iterations == 1
    assert report.event_counts == {}
    assert "converged: True" in report.to_text()


def test_report_renders_without_convergence():
    report = build_run_report(telemetry=RunTelemetry())
    assert not report.converged
    assert "execution time" in report.to_text()
    assert "| converged | False |" in report.to_markdown()


def test_report_prefers_trace_counts():
    t = RunTelemetry()
    tr = Tracer()
    tr.emit(1.0, "p2p", "spawner:x", "hb_miss", task=0, daemon="D1#1")
    tr.emit(1.2, "p2p", "SP0", "evict", daemon="D2#1")
    tr.emit(1.3, "p2p", "SP1", "evict", daemon="D4#1")
    report = build_run_report(telemetry=t, tracer=tr)
    assert report.heartbeat_misses == 1
    assert report.evictions == 2
    assert report.event_counts[("p2p", "evict")] == 2


def test_markdown_contains_tables():
    report = RunReport(app_id="demo", converged=True, total_iterations=10,
                       event_counts={("net", "send"): 4})
    md = report.to_markdown()
    assert md.startswith("# Run report — `demo`")
    assert "| metric | value |" in md
    assert "| `net/send` | 4 |" in md


@pytest.fixture(scope="module")
def churn_run():
    """One traced churn run felling computing peers AND spare daemons."""
    from repro.apps import make_poisson_app
    from repro.churn import ChurnInjector, PaperChurn
    from repro.experiments.config import (
        EXPERIMENT_CONFIG,
        EXPERIMENT_LINK_SCALE,
        optimal_overlap,
    )
    from repro.p2p import build_cluster, launch_application
    from repro.util.rng import RngTree

    tracer = Tracer()
    cluster = build_cluster(
        n_daemons=12, n_superpeers=3, seed=4,
        config=EXPERIMENT_CONFIG, link_scale=EXPERIMENT_LINK_SCALE,
        tracer=tracer,
    )
    app = make_poisson_app("churny", n=48, num_tasks=6,
                           overlap=optimal_overlap(48, 6))
    spawner = launch_application(cluster, app)
    ChurnInjector(
        cluster.sim, cluster.testbed.daemon_hosts,
        PaperChurn(n_disconnections=4, reconnect_delay=1.0),
        RngTree(4).child("churn"), horizon=2.0, log=cluster.log,
    )
    sim = cluster.sim
    sim.run(until=sim.any_of([spawner.done, sim.timeout(900.0)]))
    assert spawner.done.triggered
    return cluster, spawner, tracer


def test_churn_trace_contains_acceptance_events(churn_run):
    _, _, tracer = churn_run
    for kind in ("hb_miss", "evict", "checkpoint_store", "recovery"):
        assert tracer.count("p2p", kind) > 0, f"no p2p/{kind} events"


def test_churn_trace_jsonl_dump_has_acceptance_events(churn_run):
    _, _, tracer = churn_run
    kinds = {json.loads(line)["kind"] for line in trace_to_jsonl(tracer)}
    assert {"hb_miss", "evict", "checkpoint_store", "recovery"} <= kinds


def test_churn_report_agrees_with_telemetry(churn_run):
    cluster, spawner, tracer = churn_run
    telemetry = cluster.telemetry
    report = build_run_report(
        telemetry=telemetry, network=cluster.network, tracer=tracer,
        spawner=spawner, superpeers=cluster.superpeers,
    )
    assert report.converged
    assert report.total_iterations == telemetry.total_iterations
    assert report.useless_fraction == telemetry.useless_fraction
    assert report.checkpoints_sent == telemetry.checkpoints_sent
    assert report.data_messages_sent == telemetry.data_messages_sent
    assert len(report.recoveries) == len(telemetry.recoveries)
    assert report.restarts_from_zero == telemetry.restarts_from_zero
    assert report.execution_time == spawner.execution_time
    # exact trace counts agree with the runtime's own counters
    assert report.heartbeat_misses == spawner.failures_detected
    assert report.evictions == sum(sp.evictions for sp in cluster.superpeers)
    assert report.replacements == spawner.replacements
    # trace-vs-telemetry cross-checks
    assert tracer.count("p2p", "checkpoint_store") == telemetry.checkpoints_sent
    assert tracer.count("p2p", "recovery") == len(telemetry.recoveries)
    text = report.to_text()
    assert f"recoveries: {len(telemetry.recoveries)}" in text
    assert "p2p/evict" in text


def test_driver_attaches_run_report():
    from repro.experiments.driver import run_poisson_on_p2p

    result = run_poisson_on_p2p(n=16, peers=2, seed=0)
    assert result.run_report is None  # untraced runs stay lightweight

    tracer = Tracer()
    result = run_poisson_on_p2p(n=16, peers=2, seed=0, tracer=tracer)
    report = result.run_report
    assert report is not None
    assert report.converged == result.converged
    assert report.total_iterations == result.total_iterations
    assert len(report.recoveries) == result.recoveries
    assert report.checkpoints_sent == result.checkpoints_sent
    assert report.event_counts == dict(tracer.counts)
