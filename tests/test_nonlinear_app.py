"""Tests for the nonlinear application (§8 future work: nonlinear apps)."""

import numpy as np
import pytest

from repro.apps import (
    NonlinearPoissonTask,
    make_nonlinear_app,
    nonlinear_reference,
)
from repro.apps.nonlinear_task import _manufactured_system
from repro.checkpoint import FixedPolicy
from repro.p2p import P2PConfig, TaskContext, build_cluster, launch_application

from tests.helpers import (
    assemble_strip_solution,
    collect_solution,
    run_until_done,
)

FAST = P2PConfig(
    heartbeat_period=0.5,
    heartbeat_timeout=2.0,
    monitor_period=0.5,
    call_timeout=2.0,
    bootstrap_retry_delay=0.5,
    reserve_retry_period=0.5,
    min_iteration_time=0.01,
)
CKPT = FixedPolicy(count=3, frequency=5)


def make_task(params, task_id=0, num_tasks=2):
    task = NonlinearPoissonTask()
    task.setup(TaskContext("nl", task_id, num_tasks, params))
    task.load_state(task.initial_state())
    return task


def test_manufactured_system_is_exact():
    A, b, u_star = _manufactured_system(10, c=2.0)
    assert np.allclose(A @ u_star + 2.0 * u_star**3, b)


def test_reference_newton_recovers_manufactured_solution():
    _, _, u_star = _manufactured_system(10, c=1.0)
    u = nonlinear_reference(10, c=1.0)
    assert np.allclose(u, u_star, atol=1e-9)


def test_reference_with_zero_c_matches_linear_solve():
    from scipy.sparse.linalg import spsolve

    A, b, _ = _manufactured_system(8, c=0.0)
    assert np.allclose(nonlinear_reference(8, c=0.0), spsolve(A.tocsc(), b),
                       atol=1e-9)


def test_task_local_newton_converges_on_isolated_block():
    task = make_task({"n": 8, "c": 1.0, "newton_iters": 6}, num_tasks=1)
    for _ in range(3):
        step = task.iterate({})
    # the single block IS the global problem: must match the reference
    _, values = task.solution_fragment()
    ref = nonlinear_reference(8, c=1.0)
    assert np.allclose(values, ref, atol=1e-8)
    assert step.flops > 0


def test_task_validation():
    with pytest.raises(ValueError):
        make_task({"n": 8, "c": -1.0})
    with pytest.raises(ValueError):
        make_task({"n": 8, "newton_iters": 0})


def test_nonlinear_app_converges_asynchronously_on_runtime():
    n, peers = 12, 3
    cluster = build_cluster(n_daemons=5, n_superpeers=2, seed=17, config=FAST, checkpoint=CKPT)
    app = make_nonlinear_app("nl", n=n, num_tasks=peers, c=1.0,
                             convergence_threshold=1e-9)
    spawner = launch_application(cluster, app)
    assert run_until_done(cluster, spawner, horizon=900.0)
    frags = collect_solution(cluster, spawner)
    x = assemble_strip_solution(frags, n * n)
    ref = nonlinear_reference(n, c=1.0)
    assert np.max(np.abs(x - ref)) < 1e-4


def test_nonlinear_app_survives_a_failure():
    n, peers = 12, 3
    cluster = build_cluster(n_daemons=7, n_superpeers=2, seed=19, config=FAST, checkpoint=CKPT)
    app = make_nonlinear_app("nl", n=n, num_tasks=peers, c=0.5,
                             convergence_threshold=1e-9)
    spawner = launch_application(cluster, app)
    sim = cluster.sim
    sim.run(until=0.5)  # mid-run (the app converges around t~1.4s)
    victim_name = spawner.register.slot(1).daemon_id.rsplit("#", 1)[0]
    victim = next(h for h in cluster.testbed.daemon_hosts
                  if h.name == victim_name)
    victim.fail(cause="test")
    assert run_until_done(cluster, spawner, horizon=900.0)
    frags = collect_solution(cluster, spawner)
    x = assemble_strip_solution(frags, n * n)
    ref = nonlinear_reference(n, c=0.5)
    assert np.max(np.abs(x - ref)) < 1e-4


def test_stronger_nonlinearity_still_converges():
    task = make_task({"n": 8, "c": 10.0, "newton_iters": 8}, num_tasks=1)
    for _ in range(4):
        task.iterate({})
    _, values = task.solution_fragment()
    assert np.allclose(values, nonlinear_reference(8, c=10.0), atol=1e-7)
