"""Tests for DES measurement probes and periodic samplers."""

import math

import pytest

from repro.des import PeriodicSampler, Probe, Simulator


def test_probe_records_series_and_stats():
    p = Probe("queue-depth")
    for t, v in [(0.0, 1.0), (1.0, 3.0), (2.0, 2.0)]:
        p.observe(t, v)
    assert len(p) == 3
    assert p.times == [0.0, 1.0, 2.0]
    assert p.last() == 2.0
    assert p.stats.mean == pytest.approx(2.0)
    d = p.as_dict()
    assert d["name"] == "queue-depth" and d["count"] == 3


def test_probe_summary_only_mode():
    p = Probe("big", keep_series=False)
    for i in range(1000):
        p.observe(float(i), float(i))
    assert p.times == [] and p.values == []
    assert p.stats.count == 1000
    # summary mode still knows the most recent observation
    assert p.last() == 999.0
    assert p.stats.mean == pytest.approx(499.5)


def test_probe_registers_with_metrics_registry():
    from repro.obs import MetricsRegistry

    reg = MetricsRegistry()
    p = Probe("depth", registry=reg)
    for v in (1.0, 2.0, 3.0):
        p.observe(0.0, v)
    hist = reg.get("probe_depth")
    assert hist is not None and hist.count == 3
    assert hist.stats.mean == pytest.approx(2.0)


def test_sampler_summary_only_mode_skips_series():
    # regression: the sampler used to ignore keep_series and store
    # the full series regardless
    sim = Simulator()
    sampler = PeriodicSampler(sim, lambda: 7.0, period=1.0,
                              keep_series=False, horizon=50.0)
    sim.run(until=100.0)
    assert sampler.probe.times == [] and sampler.probe.values == []
    assert sampler.probe.stats.count == 50
    assert sampler.probe.last() == 7.0


def test_sampler_forwards_registry():
    from repro.obs import MetricsRegistry

    sim = Simulator()
    reg = MetricsRegistry()
    PeriodicSampler(sim, lambda: sim.now, period=1.0, name="clock",
                    horizon=5.0, registry=reg)
    sim.run(until=10.0)
    assert reg.get("probe_clock").count == 5


def test_periodic_sampler_samples_on_schedule():
    sim = Simulator()
    counter = {"v": 0}

    def tick(env):
        while True:
            yield env.timeout(1.0)
            counter["v"] += 1

    sim.process(tick(sim))
    sampler = PeriodicSampler(sim, lambda: counter["v"], period=2.0,
                              name="ticks", horizon=10.0)
    sim.run(until=20.0)
    # samples at t=0,2,4,6,8 (horizon 10 exclusive of the t=10 sample)
    assert sampler.probe.times == [0.0, 2.0, 4.0, 6.0, 8.0]
    assert sampler.probe.values == [0.0, 1.0, 3.0, 5.0, 7.0]


def test_periodic_sampler_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        PeriodicSampler(sim, lambda: 0.0, period=0.0)


def test_sampler_runs_forever_without_horizon():
    sim = Simulator()
    sampler = PeriodicSampler(sim, lambda: 1.0, period=1.0)
    sim.run(until=100.5)
    assert sampler.probe.stats.count == 101
