"""Unit tests for the trace bus (repro.obs.trace)."""

import pytest

from repro.des import Simulator
from repro.obs import NULL_TRACER, NullTracer, TraceEvent, Tracer


def test_emit_records_event_with_sequence():
    tr = Tracer()
    ev = tr.emit(1.5, "net", "fabric", "send", msg_id=7)
    assert ev == TraceEvent(1.5, "net", "fabric", "send", {"msg_id": 7}, 1)
    assert len(tr) == 1
    assert list(tr) == [ev]


def test_counts_and_count_filters():
    tr = Tracer()
    tr.emit(0.0, "net", "fabric", "send")
    tr.emit(0.1, "net", "fabric", "send")
    tr.emit(0.2, "net", "fabric", "drop")
    tr.emit(0.3, "p2p", "SP0", "evict")
    assert tr.counts[("net", "send")] == 2
    assert tr.count("net") == 3
    assert tr.count(kind="send") == 2
    assert tr.count("net", "drop") == 1
    assert tr.count("p2p", "send") == 0
    assert tr.count() == 4


def test_select_filters():
    tr = Tracer()
    tr.emit(0.0, "net", "a", "send")
    tr.emit(1.0, "net", "b", "send")
    tr.emit(2.0, "rmi", "a", "call")
    assert len(tr.select(category="net")) == 2
    assert len(tr.select(entity="a")) == 2
    assert tr.select(category="net", entity="b")[0].time == 1.0
    assert len(tr.select(since=0.5, until=1.5)) == 1


def test_max_events_drops_oldest_half_but_counts_stay_exact():
    tr = Tracer(max_events=10)
    for i in range(11):
        tr.emit(float(i), "net", "fabric", "send", i=i)
    assert tr.dropped == 5
    assert len(tr) == 6
    assert tr.events[0].attrs["i"] == 5  # oldest half gone
    assert tr.count("net", "send") == 11  # counter unaffected


def test_null_tracer_is_inert():
    tr = NullTracer()
    assert not tr.enabled
    assert tr.emit(0.0, "net", "fabric", "send", big=list(range(100))) is None
    assert len(tr) == 0
    assert tr.counts == {}
    assert not NULL_TRACER.enabled


def test_event_as_dict_omits_empty_attrs():
    bare = TraceEvent(1.0, "des", "p", "process_spawn", {}, 3)
    assert "attrs" not in bare.as_dict()
    full = TraceEvent(1.0, "net", "f", "drop", {"reason": "loss"}, 4)
    assert full.as_dict()["attrs"] == {"reason": "loss"}


def test_simulator_default_tracer_is_null():
    sim = Simulator()
    assert sim.tracer is NULL_TRACER

    def proc(env):
        yield env.timeout(1.0)

    sim.process(proc(sim))
    sim.run()
    assert len(NULL_TRACER) == 0


def test_simultaneous_des_events_trace_in_deterministic_order():
    """Events at the same simulated time keep kernel dispatch order."""

    def run_once():
        sim = Simulator(tracer=Tracer())

        def worker(env, name):
            yield env.timeout(1.0)  # all wake at t=1.0 simultaneously
            env.tracer.emit(env.now, "test", name, "woke")

        for name in ("a", "b", "c", "d"):
            sim.process(worker(sim, name), label=name)
        sim.run()
        return [(e.entity, e.seq) for e in sim.tracer.select(category="test")]

    first, second = run_once(), run_once()
    assert first == second  # deterministic across runs
    assert [entity for entity, _ in first] == ["a", "b", "c", "d"]
    seqs = [seq for _, seq in first]
    assert seqs == sorted(seqs)  # seq increases monotonically


def test_traced_kernel_emits_spawn_and_interrupt():
    tr = Tracer()
    sim = Simulator(tracer=tr)

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Exception:
            pass

    p = sim.process(sleeper(sim), label="victim")

    def killer(env):
        yield env.timeout(1.0)
        p.interrupt("churn")

    sim.process(killer(sim), label="killer")
    sim.run()
    assert tr.count("des", "process_spawn") == 2
    [intr] = tr.select(category="des", kind="process_interrupt")
    assert intr.entity == "victim"
    assert "churn" in intr.attrs["cause"]


def test_identical_seeds_produce_identical_traces():
    """Same seed -> same events in the same order.

    (msg/call ids come from process-global counters, so the comparison
    projects them out; byte-identical dumps need a fresh interpreter.)
    """
    from repro.experiments.driver import run_poisson_on_p2p

    def run():
        tr = Tracer()
        run_poisson_on_p2p(n=16, peers=2, seed=3, tracer=tr)
        return [(e.time, e.category, e.kind, e.seq) for e in tr], tr.counts

    assert run() == run()


@pytest.mark.parametrize("value", [float("nan"), object()])
def test_tracer_accepts_any_attr_values(value):
    tr = Tracer()
    tr.emit(0.0, "test", "x", "weird", v=value)
    assert len(tr) == 1
