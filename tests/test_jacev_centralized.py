"""Tests for the JaceV-style centralized baseline topology."""

import pytest

from repro.baselines import build_centralized_cluster
from repro.checkpoint import FixedPolicy
from repro.p2p import P2PConfig, build_cluster, launch_application

from tests.helpers import make_geometric_app, run_until_done

FAST = P2PConfig(
    heartbeat_period=0.5,
    heartbeat_timeout=2.0,
    monitor_period=0.5,
    call_timeout=2.0,
    bootstrap_retry_delay=0.5,
    reserve_retry_period=0.5,
    min_iteration_time=0.01,
)
CKPT = FixedPolicy(count=2, frequency=5)


def test_centralized_cluster_runs_an_app():
    cluster = build_centralized_cluster(n_daemons=5, seed=3, config=FAST, checkpoint=CKPT)
    spawner = launch_application(cluster, make_geometric_app(num_tasks=3))
    assert run_until_done(cluster, spawner, horizon=120.0)
    assert len(cluster.superpeers) == 1
    assert cluster.superpeers[0].sp_id == "CENTRAL"


def test_central_server_handles_every_heartbeat():
    """The §2.2 bottleneck: one server carries the whole population's
    registry traffic; the hybrid topology spreads it."""
    pop = 12
    central = build_centralized_cluster(n_daemons=pop, seed=5, config=FAST, checkpoint=CKPT)
    central.sim.run(until=10.0)
    central_load = central.superpeers[0].runtime.calls_served

    hybrid = build_cluster(n_daemons=pop, n_superpeers=3, seed=5, config=FAST, checkpoint=CKPT)
    hybrid.sim.run(until=10.0)
    loads = [sp.runtime.calls_served for sp in hybrid.superpeers]
    assert central.registered_daemons() == pop
    assert hybrid.registered_daemons() == pop
    # every hybrid super-peer carries strictly less than the central server
    assert all(load < central_load for load in loads)
    assert sum(loads) == pytest.approx(central_load, rel=0.3)


def test_central_server_failure_kills_the_platform():
    """The single point of failure: after the central machine dies, the
    application can never finish and daemons cannot re-register."""
    cluster = build_centralized_cluster(n_daemons=6, seed=7, config=FAST, checkpoint=CKPT)
    app = make_geometric_app(num_tasks=3, rate=0.9999, threshold=1e-12,
                             flops=3e6)
    spawner = launch_application(cluster, app)
    sim = cluster.sim
    sim.run(until=3.0)
    assert spawner.register.assigned_count() == 3

    central_host = cluster.testbed.spawner_host
    central_host.fail(cause="central-failure")
    # ... and even bring the machine back: the Spawner's in-memory state
    # (register, convergence array) is gone with the process
    sim.run(until=10.0)
    central_host.recover()
    sim.run(until=60.0)
    assert not spawner.done.triggered
    # idle daemons are stuck: their bootstrap list has only the dead server
    # (a recovered host runs no registry process in JaceV-without-restart)
    assert all(not d.registered for d in cluster.daemons.values()
               if d.runner is None)


def test_hybrid_topology_survives_what_kills_centralized():
    """Contrast case: the same failure pattern against JaceP2P's hybrid
    topology — another Super-Peer takes over (§5.3)."""
    cluster = build_cluster(n_daemons=6, n_superpeers=3, seed=7, config=FAST, checkpoint=CKPT)
    app = make_geometric_app(num_tasks=3)
    spawner = launch_application(cluster, app)
    sim = cluster.sim
    sim.run(until=2.0)
    cluster.superpeers[0].host.fail(cause="sp-failure")
    assert run_until_done(cluster, spawner, horizon=120.0)
