"""Exporter tests, including golden-file checks for both trace formats.

The golden files live under ``tests/golden/``.  To regenerate after an
intentional format change::

    PYTHONPATH=src python tests/test_obs_exporters.py regen
"""

import json
import pathlib
import sys

from repro.obs import (
    MetricsRegistry,
    Tracer,
    trace_to_chrome,
    trace_to_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_metrics_json,
)

GOLDEN = pathlib.Path(__file__).parent / "golden"


def sample_trace() -> Tracer:
    """A small fixed trace touching every structural feature."""
    tr = Tracer()
    tr.emit(0.0, "des", "boot", "process_spawn")
    tr.emit(0.001, "net", "fabric", "send", msg_id=1, src="a", dst="b", size=128)
    tr.emit(0.002, "net", "fabric", "drop", msg_id=1, reason="partition")
    tr.emit(0.002, "rmi", "rmi:a:5000", "call", call_id=1, method="ping")
    tr.emit(0.25, "p2p", "SP0", "evict", daemon="D3#1")
    tr.emit(0.25, "p2p", "spawner:app", "recovery", task=2, iteration=40,
            from_scratch=False)
    return tr


def test_jsonl_round_trips():
    lines = trace_to_jsonl(sample_trace())
    assert len(lines) == 6
    parsed = [json.loads(line) for line in lines]
    assert parsed[0] == {"time": 0.0, "category": "des", "entity": "boot",
                         "kind": "process_spawn", "seq": 1}
    assert parsed[2]["attrs"]["reason"] == "partition"
    assert [p["seq"] for p in parsed] == [1, 2, 3, 4, 5, 6]


def test_jsonl_renders_non_json_values_via_repr():
    tr = Tracer()
    tr.emit(0.0, "test", "x", "weird", obj=object, exc=ValueError("boom"))
    [line] = trace_to_jsonl(tr)
    rec = json.loads(line)
    assert rec["attrs"]["obj"] == repr(object)
    assert "boom" in rec["attrs"]["exc"]


def test_jsonl_matches_golden(tmp_path):
    path = tmp_path / "trace.jsonl"
    assert write_jsonl(sample_trace(), path) == 6
    assert path.read_text() == (GOLDEN / "trace.jsonl").read_text()


def test_chrome_structure():
    doc = trace_to_chrome(sample_trace())
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    inst = [e for e in events if e["ph"] == "i"]
    assert len(inst) == 6
    # one process row per category, one thread row per (category, entity)
    names = {(m["name"], m["args"]["name"]) for m in meta}
    assert ("process_name", "net") in names
    assert ("thread_name", "fabric") in names
    # timestamps are microseconds
    evict = next(e for e in inst if e["name"] == "evict")
    assert evict["ts"] == 0.25 * 1e6
    assert evict["args"] == {"daemon": "D3#1"}
    # simultaneous events stay in emission order (stable seq sort)
    t250 = [e["name"] for e in inst if e["ts"] == 250000.0]
    assert t250 == ["evict", "recovery"]


def test_chrome_matches_golden(tmp_path):
    path = tmp_path / "trace_chrome.json"
    assert write_chrome_trace(sample_trace(), path) == 6
    assert json.loads(path.read_text()) == json.loads(
        (GOLDEN / "trace_chrome.json").read_text()
    )


def test_write_metrics_json(tmp_path):
    reg = MetricsRegistry()
    reg.counter("msgs").inc(5, task=1)
    reg.gauge("converged_at").set(1.25)
    path = tmp_path / "metrics.json"
    write_metrics_json(reg, path)
    data = json.loads(path.read_text())
    assert data["msgs"]["total"] == 5
    assert data["converged_at"]["values"][""] == 1.25


def test_exporters_accept_plain_event_lists():
    events = list(sample_trace())
    assert trace_to_jsonl(events) == trace_to_jsonl(sample_trace())
    assert trace_to_chrome(events) == trace_to_chrome(sample_trace())


def _regen() -> None:  # pragma: no cover - maintenance helper
    GOLDEN.mkdir(exist_ok=True)
    write_jsonl(sample_trace(), GOLDEN / "trace.jsonl")
    write_chrome_trace(sample_trace(), GOLDEN / "trace_chrome.json")
    print(f"regenerated golden files under {GOLDEN}")


if __name__ == "__main__" and "regen" in sys.argv:  # pragma: no cover
    _regen()
