"""The unified exception hierarchy: everything derives from ReproError."""

import inspect

import pytest

import repro.errors as errors
from repro.errors import (
    BootstrapError,
    CheckpointError,
    ConfigurationError,
    ConvergenceError,
    FaultError,
    HostDownError,
    LinkDownError,
    NetworkError,
    NoBackupAvailableError,
    NotSupportedError,
    RemoteError,
    ReproError,
    ReservationError,
    SimulationError,
    TaskError,
)


def test_every_library_exception_derives_from_reproerror():
    for name, obj in inspect.getmembers(errors, inspect.isclass):
        if issubclass(obj, BaseException) and obj is not ReproError:
            assert issubclass(obj, ReproError), name


def test_subsystem_hierarchy():
    assert issubclass(HostDownError, NetworkError)
    assert issubclass(LinkDownError, NetworkError)
    assert issubclass(NoBackupAvailableError, CheckpointError)
    for cls in (SimulationError, NetworkError, RemoteError, BootstrapError,
                ReservationError, CheckpointError, ConvergenceError,
                TaskError, NotSupportedError, FaultError):
        assert issubclass(cls, ReproError)


def test_configuration_error_is_still_a_valueerror():
    """Historical ``except ValueError`` call sites must keep working."""
    assert issubclass(ConfigurationError, ValueError)
    assert issubclass(ConfigurationError, ReproError)
    with pytest.raises(ValueError):
        raise ConfigurationError("bad")


def test_remote_error_carries_its_cause():
    inner = RuntimeError("boom")
    err = RemoteError("call failed", cause=inner)
    assert err.cause is inner


def test_api_misuse_raises_within_the_hierarchy():
    """Spot-check that live APIs actually raise hierarchy members."""
    from repro.exec import RunSpec
    from repro.experiments import run_poisson_on_p2p
    from repro.faults import FaultPlan, scenario

    with pytest.raises(ConfigurationError):
        run_poisson_on_p2p(n=24, peers=0)
    with pytest.raises(ConfigurationError):
        run_poisson_on_p2p(spec=RunSpec(n=24, peers=3), n=24)
    with pytest.raises(ConfigurationError):
        scenario("no-such-scenario")
    with pytest.raises(ConfigurationError):
        FaultPlan(actions=(1, 2, 3))  # not FaultActions
