"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def _hermetic_cache(tmp_path, monkeypatch):
    """Keep CLI runs (which cache by default) out of ~/.cache/repro."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "run-cache"))


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["nope"])


def test_cli_run_prints_table(capsys):
    rc = main(["run", "--n", "24", "--peers", "3"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "single run" in out
    assert "iters/task" in out


def test_cli_run_with_churn(capsys):
    rc = main(["run", "--n", "24", "--peers", "3", "--disconnections", "1",
               "--seed", "2"])
    assert rc == 0
    assert "disc" in capsys.readouterr().out


def test_cli_ablation_overlap(capsys):
    rc = main(["ablation", "overlap"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "A3" in out and "overlap" in out


def test_cli_ablation_bootstrap(capsys):
    rc = main(["ablation", "bootstrap"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "A4" in out


def test_cli_run_csv_export(tmp_path, capsys):
    target = tmp_path / "run.csv"
    rc = main(["run", "--n", "24", "--peers", "3", "--csv", str(target)])
    assert rc == 0
    text = target.read_text()
    assert text.startswith("n,size,peers")
    assert "24,576,3" in text


def test_cli_trace_writes_jsonl(tmp_path, capsys):
    import json

    target = tmp_path / "run.jsonl"
    rc = main(["trace", "--n", "24", "--peers", "3", "--disconnections", "1",
               "--seed", "2", "--out", str(target)])
    captured = capsys.readouterr()
    assert rc == 0
    assert f"wrote" in captured.out and str(target) in captured.out
    assert "events" in captured.err
    lines = target.read_text().splitlines()
    assert lines
    categories = {json.loads(line)["category"] for line in lines}
    assert {"des", "net", "rmi", "p2p"} <= categories


def test_cli_trace_writes_chrome(tmp_path, capsys):
    import json

    target = tmp_path / "run.json"
    rc = main(["trace", "--n", "24", "--peers", "3", "--seed", "0",
               "--chrome", str(target)])
    assert rc == 0
    doc = json.loads(target.read_text())
    assert doc["traceEvents"]
    assert any(rec["ph"] == "i" for rec in doc["traceEvents"])


def test_cli_report(capsys):
    rc = main(["report", "--n", "24", "--peers", "3", "--disconnections", "1",
               "--seed", "2"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "run report" in out
    assert "converged: True" in out
    assert "trace events:" in out


def test_cli_report_markdown(capsys):
    rc = main(["report", "--n", "24", "--peers", "3", "--seed", "0",
               "--markdown"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "# Run report" in out
    assert "| metric | value |" in out


def test_cli_run_populates_cache_and_cache_stats(tmp_path, capsys):
    cache_dir = tmp_path / "cli-cache"
    args = ["--n", "24", "--peers", "3", "--cache-dir", str(cache_dir)]
    assert main(["run", *args]) == 0
    capsys.readouterr()

    rc = main(["cache", "stats", "--cache-dir", str(cache_dir)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "entries: 1" in out
    assert str(cache_dir) in out

    rc = main(["cache", "clear", "--cache-dir", str(cache_dir)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "removed 1 cached run(s)" in out
    main(["cache", "stats", "--cache-dir", str(cache_dir)])
    assert "entries: 0" in capsys.readouterr().out


def test_cli_run_no_cache_writes_nothing(tmp_path, capsys):
    cache_dir = tmp_path / "cli-cache"
    rc = main(["run", "--n", "24", "--peers", "3", "--no-cache",
               "--cache-dir", str(cache_dir)])
    assert rc == 0
    assert not list(cache_dir.glob("*.run.json")) if cache_dir.exists() else True


def test_cli_run_workers_flag_parses(capsys):
    # workers > 1 with a single spec falls back to in-process execution
    rc = main(["run", "--n", "24", "--peers", "3", "--workers", "2",
               "--no-cache"])
    assert rc == 0
    assert "single run" in capsys.readouterr().out


def test_cli_timeline(capsys):
    rc = main(["timeline", "--n", "40", "--peers", "4",
               "--disconnections", "1", "--seed", "3"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "spawner_assigned" in out
    assert "legend" in out.lower() or "A=assigned" in out
    assert "converged: True" in out


def test_every_sweep_subcommand_shares_the_exec_flags():
    """--workers/--cache-dir/--no-cache are one parent parser, everywhere."""
    parser = build_parser()
    cases = [
        ["run", "--n", "24"],
        ["figure7"],
        ["iterations"],
        ["syncasync"],
        ["ablation", "overlap"],
        ["faults", "run", "churn-burst"],
    ]
    for base in cases:
        args = parser.parse_args(
            base + ["--workers", "4", "--cache-dir", "/tmp/x", "--no-cache"]
        )
        assert args.workers == 4
        assert args.cache_dir == "/tmp/x"
        assert args.no_cache is True


def test_cli_faults_list(capsys):
    rc = main(["faults", "list"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "perfect-storm" in out
    assert "superpeer_crash" in out


def test_cli_faults_run_quick(capsys):
    rc = main(["faults", "run", "perfect-storm", "--quick", "--no-cache"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "fault scenario" in out
    assert "faults" in out and "corrupted" in out


def test_cli_faults_run_report(capsys):
    rc = main(["faults", "run", "superpeer-outage", "--quick", "--no-cache",
               "--report"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "fault history:" in out
    assert "superpeer_crash" in out


def test_cli_faults_rejects_unknown_scenario():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["faults", "run", "nope"])


def test_every_run_subcommand_shares_the_policy_flags():
    """--checkpoint-policy and its tuning flags are one parent parser."""
    parser = build_parser()
    cases = [
        ["run", "--n", "24"],
        ["figure7"],
        ["iterations"],
        ["syncasync"],
        ["faults", "run", "churn-burst"],
    ]
    for base in cases:
        args = parser.parse_args(
            base + ["--checkpoint-policy", "adaptive", "--max-replicas", "2",
                    "--checkpoint-frequency", "3"]
        )
        assert args.checkpoint_policy == "adaptive"
        assert args.max_replicas == 2
        assert args.checkpoint_frequency == 3


def test_policy_from_flags_builds_the_right_policy():
    from repro.checkpoint import AdaptivePolicy, FixedPolicy
    from repro.cli import _policy_from

    parser = build_parser()
    assert _policy_from(parser.parse_args(["run"])) is None
    args = parser.parse_args(["run", "--checkpoint-policy", "fixed",
                              "--checkpoint-count", "7"])
    assert _policy_from(args) == FixedPolicy(count=7)
    # tuning flags alone imply the fixed policy
    args = parser.parse_args(["run", "--checkpoint-frequency", "3"])
    assert _policy_from(args) == FixedPolicy(frequency=3)
    args = parser.parse_args(["run", "--checkpoint-policy", "adaptive",
                              "--max-replicas", "2", "--max-frequency", "16"])
    assert _policy_from(args) == AdaptivePolicy(max_replicas=2,
                                                max_frequency=16)


def test_cli_run_with_adaptive_policy(capsys):
    rc = main(["run", "--n", "24", "--peers", "3", "--no-cache",
               "--checkpoint-policy", "adaptive"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "single run" in out


def test_cli_faults_list_shows_requirements(capsys):
    rc = main(["faults", "list"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "poisoned-channel" in out
    assert "requires: reject_corruption=True" in out
    assert "requires: gossip=True, standby=True" in out
