"""Tests for the synchronous (BSP) engine and the master–slave baseline."""

import numpy as np
import pytest

from repro.apps import make_poisson_app
from repro.baselines import MasterSlaveScheduler, SynchronousEngine
from repro.churn import ChurnEvent, ChurnInjector, TraceChurn
from repro.des import Simulator
from repro.errors import NotSupportedError
from repro.net import Network, UniformLinkModel
from repro.numerics import Poisson2D
from repro.p2p import AppSpec, IterationStep, Task, TaskContext
from repro.util.rng import RngTree

from tests.helpers import assemble_strip_solution, make_geometric_app


class IndependentTask(Task):
    """A communication-free work unit (valid for the master–slave model)."""

    def setup(self, ctx):
        super().setup(ctx)
        self.x = 1.0
        self.rate = float(ctx.params.get("rate", 0.5))

    def initial_state(self):
        return {"x": 1.0}

    def load_state(self, state):
        self.x = float(state["x"])

    def dump_state(self):
        return {"x": self.x}

    def iterate(self, inbox):
        old = self.x
        self.x *= self.rate
        return IterationStep(flops=1e6, local_distance=abs(old - self.x))

    def solution_fragment(self):
        return self.x


def make_independent_app(num_tasks=4):
    return AppSpec(
        app_id="bag",
        task_factory=IndependentTask,
        num_tasks=num_tasks,
        params={"rate": 0.5},
        convergence_threshold=1e-4,
        stability_window=2,
    )


def make_world(n_hosts):
    sim = Simulator()
    net = Network(sim, link_model=UniformLinkModel(latency=1e-4, bandwidth=1e9))
    hosts = [net.new_host(f"h{i}", speed=1.0 + 0.2 * i) for i in range(n_hosts)]
    return sim, net, hosts


# ------------------------------------------------------------------- sync BSP


def test_sync_engine_solves_poisson():
    sim, net, hosts = make_world(4)
    app = make_poisson_app("p", n=12, num_tasks=4, convergence_threshold=1e-8)
    engine = SynchronousEngine(sim, hosts, app)
    result = sim.run(until=engine.done)
    assert result.converged
    x = assemble_strip_solution(result.fragments, 144)
    assert Poisson2D.manufactured(12).residual_norm(x) < 1e-5
    assert result.supersteps > 1
    assert result.rollbacks == 0 and result.stall_time == 0.0


def test_sync_engine_stalls_until_host_returns():
    sim, net, hosts = make_world(3)
    app = make_geometric_app(num_tasks=3, rate=0.99, threshold=1e-8, flops=5e6)
    engine = SynchronousEngine(sim, hosts, app)
    trace = TraceChurn((ChurnEvent(0.05, 3.0, "h1"),))
    ChurnInjector(sim, hosts, trace, RngTree(0), horizon=100.0)
    result = sim.run(until=engine.done)
    assert result.converged
    assert result.stall_time >= 2.0  # waited out most of the 3s outage
    assert result.rollbacks >= 1
    assert result.lost_iterations > 0


def test_sync_rollback_costs_everyone():
    """One disconnection discards ALL tasks' progress since the last
    coordinated checkpoint (lost >= tasks * 1 sweeps)."""
    sim, net, hosts = make_world(4)
    app = make_geometric_app(num_tasks=4, rate=0.999, threshold=1e-9, flops=5e6)
    engine = SynchronousEngine(sim, hosts, app, checkpoint_frequency=10)
    trace = TraceChurn((ChurnEvent(0.2, 1.0, "h2"),))
    ChurnInjector(sim, hosts, trace, RngTree(0), horizon=100.0)
    result = sim.run(until=engine.done)
    assert result.converged
    assert result.rollbacks >= 1
    assert result.lost_iterations >= 4  # num_tasks * >=1 superstep each


def test_sync_engine_superstep_paced_by_slowest_host():
    app = make_geometric_app(num_tasks=2, rate=0.5, threshold=1e-4, flops=250e6)
    # fast pair
    sim1, _, hosts1 = make_world(2)
    fast = SynchronousEngine(
        sim1, [hosts1[1], hosts1[1]], app
    )  # both on speed-1.2 host
    r1 = sim1.run(until=fast.done)
    # one slow host drags the barrier
    sim2, net2, _ = make_world(0)
    slow_host = net2.new_host("slow", speed=0.25)
    fast_host = net2.new_host("fast", speed=2.0)
    slow = SynchronousEngine(sim2, [fast_host, slow_host], app)
    r2 = sim2.run(until=slow.done)
    assert r2.converged and r1.converged
    assert r2.converged_at > r1.converged_at


def test_sync_engine_validation():
    sim, net, hosts = make_world(2)
    app = make_geometric_app(num_tasks=3)
    with pytest.raises(ValueError):
        SynchronousEngine(sim, hosts, app)  # not enough hosts
    with pytest.raises(ValueError):
        SynchronousEngine(sim, hosts + hosts, app, checkpoint_frequency=0)


def test_sync_engine_max_supersteps_guard():
    sim, net, hosts = make_world(2)
    app = make_geometric_app(num_tasks=2, rate=0.999999, threshold=1e-15)
    engine = SynchronousEngine(sim, hosts, app, max_supersteps=5)
    result = sim.run(until=engine.done)
    assert not result.converged
    assert result.supersteps == 5


# ------------------------------------------------------------- master-slave


def test_master_slave_runs_independent_bag():
    sim, net, hosts = make_world(3)
    ms = MasterSlaveScheduler(sim, hosts, make_independent_app(6))
    result = sim.run(until=ms.done)
    assert result.completed
    assert len(result.results) == 6
    assert all(abs(v) < 1e-3 for v in result.results.values())
    assert result.retries == 0


def test_master_slave_retries_failed_units():
    sim, net, hosts = make_world(2)
    ms = MasterSlaveScheduler(sim, hosts, make_independent_app(4))
    trace = TraceChurn((ChurnEvent(0.01, 1.0, "h0"),))
    ChurnInjector(sim, hosts, trace, RngTree(0), horizon=50.0)
    result = sim.run(until=ms.done)
    assert result.completed
    assert len(result.results) == 4
    assert result.retries >= 1


def test_master_slave_rejects_communicating_tasks():
    """The paper's §1 claim: iterative apps with dependencies cannot run on
    the master-slave model."""
    sim, net, hosts = make_world(3)
    app = make_geometric_app(num_tasks=3)  # GeometricTask sends on a ring
    ms = MasterSlaveScheduler(sim, hosts, app)
    with pytest.raises(NotSupportedError, match="inter-task communication"):
        sim.run(until=ms.done)


def test_master_slave_rejects_poisson_app():
    sim, net, hosts = make_world(4)
    app = make_poisson_app("p", n=8, num_tasks=4)
    ms = MasterSlaveScheduler(sim, hosts, app)
    with pytest.raises(NotSupportedError):
        sim.run(until=ms.done)


def test_master_slave_needs_slaves():
    sim, net, hosts = make_world(1)
    with pytest.raises(ValueError):
        MasterSlaveScheduler(sim, [], make_independent_app(1))


def test_master_slave_more_tasks_than_slaves():
    sim, net, hosts = make_world(2)
    ms = MasterSlaveScheduler(sim, hosts, make_independent_app(7))
    result = sim.run(until=ms.done)
    assert result.completed and len(result.results) == 7
