"""Tests for the bounded/streaming trace sinks (repro.obs.sinks).

Ring-buffer capacity and drop accounting, JSONL spill + segment rotation
round-trips, the ``make_tracer`` factory behind RunSpec's ``trace_sink``
knob, and the end-to-end plumbing: a traced run on a bounded sink still
produces a full :class:`RunReport`.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.exec import RunSpec
from repro.obs import (
    JsonlTracer,
    RingTracer,
    Tracer,
    make_tracer,
    read_jsonl_trace,
)


def fill(tracer, n, kind="k"):
    for i in range(n):
        tracer.emit(float(i), "cat", f"e{i}", kind, i=i)


# -- ring sink ---------------------------------------------------------------


def test_ring_keeps_newest_window():
    tr = RingTracer(capacity=10)
    fill(tr, 25)
    assert len(tr.events) == 10
    assert [ev.time for ev in tr.events] == [float(t) for t in range(15, 25)]
    assert tr.dropped == 15
    # counts stay exact over the WHOLE run, not just the window
    assert tr.counts[("cat", "k")] == 25


def test_ring_under_capacity_drops_nothing():
    tr = RingTracer(capacity=10)
    fill(tr, 7)
    assert len(tr.events) == 7
    assert tr.dropped == 0


def test_ring_select_works_on_window():
    tr = RingTracer(capacity=5)
    fill(tr, 8, kind="a")
    tr.emit(99.0, "cat", "x", "b")
    assert [ev.kind for ev in tr.select(kind="b")] == ["b"]
    assert len(list(tr.select(kind="a"))) == 4  # the 4 "a"s still in window


def test_ring_rejects_bad_capacity():
    with pytest.raises(ConfigurationError):
        RingTracer(capacity=0)


# -- jsonl sink --------------------------------------------------------------


def test_jsonl_round_trip(tmp_path):
    path = tmp_path / "trace.jsonl"
    tr = JsonlTracer(path, flush_every=4)
    fill(tr, 10)
    tr.close()
    events = read_jsonl_trace(path)
    assert len(events) == 10
    assert [ev.time for ev in events] == [float(i) for i in range(10)]
    assert events[3].attrs == {"i": 3}
    assert tr.written == 10


def test_jsonl_close_flushes_partial_batch(tmp_path):
    path = tmp_path / "trace.jsonl"
    tr = JsonlTracer(path, flush_every=1000)
    fill(tr, 3)
    assert tr.written == 0  # still buffered
    tr.close()
    assert tr.written == 3
    assert len(read_jsonl_trace(path)) == 3


def test_jsonl_rotation_round_trip(tmp_path):
    path = tmp_path / "trace.jsonl"
    # tiny max_bytes: every flushed batch forces a rotation
    tr = JsonlTracer(path, flush_every=5, max_bytes=64)
    fill(tr, 25)
    tr.close()
    assert tr.segments >= 2
    for piece in tr.segment_paths():
        assert piece.exists()
    # chronological reassembly across all segments, no loss, no reorder
    events = read_jsonl_trace(path)
    assert [ev.time for ev in events] == [float(i) for i in range(25)]
    assert [ev.seq for ev in events] == sorted(ev.seq for ev in events)


def test_jsonl_tail_ring_is_bounded(tmp_path):
    tr = JsonlTracer(tmp_path / "t.jsonl", flush_every=10, tail_events=8)
    fill(tr, 50)
    assert len(tr.events) == 8
    assert tr.counts[("cat", "k")] == 50


def test_jsonl_lines_are_valid_json(tmp_path):
    path = tmp_path / "trace.jsonl"
    tr = JsonlTracer(path, flush_every=1)
    tr.emit(1.5, "rmi", "SP0", "call", method="reserve", count=3)
    tr.close()
    rec = json.loads(path.read_text().strip())
    assert rec["kind"] == "call"
    assert rec["attrs"] == {"method": "reserve", "count": 3}


# -- factory -----------------------------------------------------------------


def test_make_tracer_dispatch(tmp_path):
    assert type(make_tracer("memory")) is Tracer
    assert isinstance(make_tracer("ring", capacity=5), RingTracer)
    jt = make_tracer("jsonl", capacity=7, path=tmp_path / "t.jsonl")
    assert isinstance(jt, JsonlTracer)
    assert jt.events.maxlen == 7  # capacity maps to the tail ring


def test_make_tracer_rejects_unknown_and_pathless(tmp_path):
    with pytest.raises(ConfigurationError):
        make_tracer("sqlite")
    with pytest.raises(ConfigurationError):
        make_tracer("jsonl")  # no path


def test_base_tracer_close_is_noop():
    tr = Tracer()
    tr.emit(0.0, "c", "e", "k")
    tr.close()  # drivers close every sink unconditionally
    assert len(tr.events) == 1


# -- RunSpec plumbing --------------------------------------------------------


def test_runspec_traced_run_on_ring_sink():
    result = RunSpec(n=12, peers=2, traced=True, trace_sink="ring",
                     trace_capacity=500).execute()
    assert result.converged
    report = result.run_report
    assert report is not None
    assert report.event_counts  # counts survived the bounded window


def test_runspec_traced_run_on_jsonl_sink(tmp_path):
    path = tmp_path / "run.jsonl"
    result = RunSpec(n=12, peers=2, traced=True, trace_sink="jsonl",
                     trace_path=str(path)).execute()
    assert result.converged
    assert result.run_report is not None
    events = read_jsonl_trace(path)
    assert events  # the run streamed to disk and closed cleanly
    kinds = {ev.kind for ev in events}
    assert "register" in kinds


def test_runspec_key_covers_sink_fields(tmp_path):
    base = RunSpec(n=12, peers=2, traced=True)
    ring = RunSpec(n=12, peers=2, traced=True, trace_sink="ring")
    assert base.key() != ring.key()
