"""Kernel & message-plane throughput overhaul: correctness guarantees.

Covers the pooled :class:`ScheduledCall` fast lane, the float-keyed batch
contract, TimerWheel × cancellation interactions, the oneway RMI fast
path's bitwise A/B identity against the reference object pipeline, and
the profiling harness' report schema.
"""

import json

import pytest

from repro.des import Simulator
from repro.des.kernel import ScheduledCall
from repro.errors import SimulationError
from repro.util.hotpath import HOTPATH, hotpath_disabled


# ------------------------------------------------------------ ScheduledCall


def test_call_later_returns_cancellable_handle():
    sim = Simulator()
    fired = []
    handle = sim.call_later(1.0, fired.append, "a")
    assert isinstance(handle, ScheduledCall)
    sim.call_later(2.0, fired.append, "b")
    handle.cancel()
    sim.run()
    assert fired == ["b"]
    assert sim.now == 2.0


def test_cancel_after_fire_is_harmless():
    sim = Simulator()
    fired = []
    handle = sim.call_later(1.0, fired.append, "x")
    sim.run()
    handle.cancel()  # late cancel of an already-fired handle: no-op
    sim.run()
    assert fired == ["x"]


def test_call_later_rejects_negative_delay():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_later(-0.1, lambda: None)
    with pytest.raises(SimulationError):
        sim.call_later_batched(-0.1, lambda: None)


def test_lazy_cancellation_keeps_heap_bounded_under_churn():
    """Tombstoned entries are reclaimed at their fire time — the heap never
    accumulates more than one generation of cancelled timers."""
    sim = Simulator()
    for round_ in range(50):
        handles = [sim.call_later(0.5, lambda: None) for _ in range(100)]
        for h in handles:
            h.cancel()
        sim.run()  # drains the tombstones of this generation
        assert len(sim._heap) == 0
    assert sim.now == 50 * 0.5  # cancelled timers still advance to fire time


def test_pooled_entries_are_recycled():
    sim = Simulator()
    fired = []
    sim._call_later_pooled(1.0, fired.append, (1,))
    sim.run()
    assert fired == [1]
    assert len(sim._call_pool) == 1
    recycled = sim._call_pool[0]
    assert recycled.fn is None  # no dangling reference to the last callback
    sim._call_later_pooled(1.0, fired.append, (2,))
    assert not sim._call_pool  # the free list was reused, not regrown
    sim.run()
    assert fired == [1, 2]
    assert sim._call_pool[0] is recycled


def test_public_handles_are_never_recycled():
    """A caller may hold a call_later handle indefinitely; firing must not
    push it onto the pool (a later cancel() would corrupt a recycled
    entry)."""
    sim = Simulator()
    handle = sim.call_later(1.0, lambda: None)
    sim.run()
    assert handle not in sim._call_pool
    assert handle.fn is not None


def test_event_count_is_live_during_callbacks():
    """Deterministic consumers (the Spawner's reserve shuffle) read
    ``event_count`` mid-run; the drained fast loop must keep it exact at
    every callback, not flush it at exit."""
    sim = Simulator()
    seen = []
    for i in range(5):
        sim.call_later(float(i), lambda: seen.append(sim.event_count))
    sim.run()
    # step N's callback observes N processed events before itself
    assert seen == [0, 1, 2, 3, 4]
    assert sim.event_count == 5


# -------------------------------------------------- float-keyed batch hazard


def test_batched_calls_coalesce_only_on_bit_equal_times():
    """Regression for the ``_batches`` float-keying contract: fire times
    that are mathematically equal but differ in the last ulp land in
    separate batches (each with its own heap entry) and run in batch
    creation order."""
    sim = Simulator()
    order = []
    # 0.1 + 0.2 != 0.3 in binary: two distinct keys
    sim.call_later_batched(0.1 + 0.2, order.append, "ulp")
    sim.call_later_batched(0.3, order.append, "exact")
    assert len(sim._batches) == 2
    sim.run()
    assert order == ["exact", "ulp"]  # 0.3 < 0.1+0.2 by one ulp
    assert sim.batched_calls == 0  # nothing actually shared an entry

    sim2 = Simulator()
    order2 = []
    sim2.call_later_batched(0.25, order2.append, "a")
    sim2.call_later_batched(0.25, order2.append, "b")  # bit-equal: coalesces
    assert len(sim2._batches) == 1
    sim2.run()
    assert order2 == ["a", "b"]
    assert sim2.batched_calls == 1


def test_batched_and_unbatched_interleave_deterministically():
    """An unbatched call at the same fire time orders against the *batch's*
    single sequence number: everything scheduled before the batch was
    created runs first, everything after runs last — regardless of when
    members joined the batch."""
    sim = Simulator()
    order = []
    sim.call_later(1.0, order.append, "pre")       # seq 1
    sim.call_later_batched(1.0, order.append, "b1")  # batch entry: seq 2
    sim.call_later(1.0, order.append, "post")      # seq 3
    sim.call_later_batched(1.0, order.append, "b2")  # joins seq-2 batch
    sim.run()
    assert order == ["pre", "b1", "b2", "post"]


# ------------------------------------------------- TimerWheel × cancellation


def test_wheel_entry_cancelled_before_boundary_never_fires():
    sim = Simulator()
    wheel = sim.timer_wheel(1.0)
    fired = []
    entry = wheel.every(fired.append, "dead")
    wheel.every(fired.append, "alive")
    entry.cancel()
    sim.run(until=3.5)
    assert "dead" not in fired
    assert fired == ["alive"] * 3
    assert len(wheel) == 1  # the cancelled entry was swept


def test_wheel_cancel_from_sibling_callback_suppresses_same_slot_fire():
    """A callback cancelling a later entry in the *same* slot must win:
    the sweep re-checks the tombstone right before invoking."""
    sim = Simulator()
    wheel = sim.timer_wheel(1.0)
    fired = []
    entries = {}

    def killer():
        fired.append("killer")
        entries["victim"].cancel()

    wheel.every(killer)
    entries["victim"] = wheel.every(fired.append, "victim")
    sim.run(until=1.5)
    assert fired == ["killer"]


def test_interrupted_daemon_heartbeat_does_not_fire():
    """Wheel-mode Daemon whose host dies mid-run: its periodic tick must
    deregister (return False) instead of heartbeating from beyond the
    grave — and the wheel sweeps it, bounding entry growth under churn."""
    from repro.p2p.cluster import build_cluster
    from repro.p2p.config import P2PConfig

    config = P2PConfig(heartbeat_mode="wheel")
    cluster = build_cluster(n_daemons=4, n_superpeers=1, seed=3, config=config)
    sim = cluster.sim
    sim.run(until=5.0)
    wheel = cluster.wheel
    assert wheel is not None and len(wheel) == 4
    victim = cluster.testbed.daemon_hosts[0]
    victim_ids = {
        d.daemon_id for d in cluster.daemons.values() if d.host is victim
    }
    victim.fail()
    # two boundaries later the dead daemon's entry must be swept
    sim.run(until=sim.now + 2 * config.heartbeat_period + 0.1)
    assert len(wheel) == 3
    # the corpse's last_seen froze while survivors keep beating
    sp = cluster.superpeers[0]
    frozen = {d: sp.register[d].last_seen for d in victim_ids if d in sp.register}
    sim.run(until=sim.now + 5 * config.heartbeat_period)
    for daemon_id, last_seen in frozen.items():
        if daemon_id in sp.register:
            assert sp.register[daemon_id].last_seen == last_seen
    live = [d for d in sp.register if d not in victim_ids]
    assert live
    assert all(
        sp.register[d].last_seen > 5.0 for d in live
    )


# ------------------------------------------------------ oneway fast path A/B


def _poisson_run(**kw):
    from repro.experiments.driver import run_poisson_on_p2p

    return run_poisson_on_p2p(**kw)


def test_fastpath_bitwise_identical_poisson():
    kw = dict(n=16, peers=3, seed=11, convergence_threshold=1e-6)
    assert HOTPATH.oneway_fastpath  # on by default
    fast = _poisson_run(**kw)
    with hotpath_disabled():
        assert not HOTPATH.oneway_fastpath
        reference = _poisson_run(**kw)
    assert fast.converged and reference.converged
    assert fast.simulated_time == reference.simulated_time
    assert fast.total_iterations == reference.total_iterations
    assert fast.residual == reference.residual
    assert fast == reference


@pytest.mark.parametrize("scenario_name", ["superpeer-outage", "dirty-channel"])
def test_fastpath_bitwise_identical_under_faults(scenario_name):
    """The fault plane exercises the dynamic fallbacks: host death between
    send and delivery, and a corruption window opening mid-run (which must
    force eligible transfers back through the object pipeline)."""
    from repro.faults import scenario

    kw = dict(n=16, peers=3, seed=11, convergence_threshold=1e-6)
    fast = _poisson_run(faults=scenario(scenario_name), **kw)
    with hotpath_disabled():
        reference = _poisson_run(faults=scenario(scenario_name), **kw)
    assert fast.converged and reference.converged
    assert fast == reference


def test_fast_dispatch_preserves_fifo_behind_backlog():
    """A fast delivery must not overtake messages already buffered in the
    mailbox: with no live getter (dispatcher busy) it falls back to the
    mailbox and drains in arrival order."""
    from repro.net.host import Host
    from repro.net.network import Network

    sim = Simulator()
    net = Network(sim)
    a = Host(sim, "a")
    b = Host(sim, "b")
    net.add_host(a)
    net.add_host(b)
    ep = b.open_endpoint(9)
    seen = []
    ep.fast_handler = seen.append

    got = []

    def consumer():
        # take one mailbox message, then go busy (no live getter), then
        # drain whatever queued up behind the busy window
        msg = yield ep.recv()
        got.append(msg.payload)
        yield sim.timeout(10.0)
        while True:
            msg = yield ep.recv()
            got.append(msg.payload)

    b.spawn(consumer())
    src = a.open_endpoint(1).address
    # m1 arrives while a getter waits and the mailbox is empty → coalesced
    # into the fast handler (the pending getter is left armed)
    net.send(src, ep.address, "m1", fast=True)
    # w1 is not fast-eligible → mailbox → wakes the consumer into its busy
    # window (same payload size as m1, so delivery order follows send order)
    net.send(src, ep.address, "w1", fast=False)
    sim.run(until=1.0)
    assert seen == ["m1"]
    assert got == ["w1"]
    # consumer is mid-timeout: no live getter → fast sends must fall back
    # to the mailbox and drain strictly in arrival order
    net.send(src, ep.address, "m2", fast=True)
    net.send(src, ep.address, "m3", fast=True)
    sim.run()
    assert seen == ["m1"]  # only the idle-endpoint delivery was coalesced
    assert got == ["w1", "m2", "m3"]


def test_fast_dispatch_counts_the_absorbed_mailbox_hop():
    """Coalescing must keep ``event_count`` identical to the object path:
    the Spawner seeds RNG draws from it, so the two A/B arms would
    otherwise diverge."""
    from repro.net.host import Host
    from repro.net.network import Network

    def run(fast):
        sim = Simulator()
        net = Network(sim)
        a, b = Host(sim, "a"), Host(sim, "b")
        net.add_host(a)
        net.add_host(b)
        src = a.open_endpoint(1).address
        ep = b.open_endpoint(9)
        ep.fast_handler = lambda payload: None

        def consumer():
            while True:
                yield ep.recv()

        b.spawn(consumer())
        for _ in range(10):
            net.send(src, ep.address, "hb", fast=fast)
        sim.run()
        return sim.event_count, net.delivered

    assert run(fast=True) == run(fast=False)


def test_jitter_stream_bitwise_matches_scalar_draws():
    """The block-buffered jitter factors must reproduce the exact scalar
    ``uniform(low, high)`` sequence, across block boundaries."""
    from repro.net.link import _JitterStream
    from repro.util.rng import RngTree

    jitter = 0.07
    stream = _JitterStream(RngTree(123), jitter)
    scalar = RngTree(123)
    n = _JitterStream._BLOCK * 2 + 17  # cross two refills
    for _ in range(n):
        assert stream.factor() == 1.0 + scalar.uniform(-jitter, jitter)


def test_envelope_size_memo_charges_identical_bytes():
    """The per-neighbour boundary-envelope memo and the reaffirm-call memo
    must charge exactly the bytes ``measured_size`` would: identical
    traffic accounting with the memos on and off."""
    from repro.apps import make_poisson_app
    from repro.p2p import build_cluster, launch_application
    from repro.p2p.config import P2PConfig

    def run():
        config = P2PConfig(heartbeat_mode="wheel")
        cluster = build_cluster(n_daemons=6, n_superpeers=1, seed=9,
                                config=config)
        app = make_poisson_app("poisson", n=12, num_tasks=3, overlap=1,
                               convergence_threshold=1e-5)
        spawner = launch_application(cluster, app)
        sim = cluster.sim
        sim.run(until=sim.any_of([spawner.done, sim.timeout(60.0)]))
        net = cluster.testbed.network
        assert spawner.done.triggered
        return (net.sent, net.delivered, net.bytes_sent, net.bytes_delivered)

    memoized = run()
    with hotpath_disabled():
        reference = run()
    assert memoized == reference


# ------------------------------------------------------- profiling harness


PROFILE_TOP_KEYS = {"function", "file", "line", "ncalls", "tottime_s", "cumtime_s"}


def test_profile_report_schema():
    from repro.obs.profile import profile_callable

    report, value = profile_callable(
        lambda: _poisson_run(n=8, peers=2, seed=1, convergence_threshold=1e-4),
        top_n=10,
    )
    assert value.converged
    data = report.as_dict()
    assert set(data) == {"total_time_s", "total_calls", "layers", "top"}
    assert data["total_time_s"] > 0
    assert data["total_calls"] > 0
    for entry in data["layers"].values():
        assert set(entry) == {"time_s", "fraction"}
    # exclusive time partitions the total: fractions sum to ~1
    assert abs(sum(e["fraction"] for e in data["layers"].values()) - 1.0) < 1e-3
    # a simulator run must attribute time to the core layers
    for layer in ("kernel", "network", "rmi", "p2p", "numerics"):
        assert layer in data["layers"], layer
    assert 0 < len(data["top"]) <= 10
    for row in data["top"]:
        assert set(row) == PROFILE_TOP_KEYS
    # sorted by cumulative time, descending
    cums = [row["cumtime_s"] for row in data["top"]]
    assert cums == sorted(cums, reverse=True)
    text = report.to_text()
    assert "per-layer attribution" in text


def test_layer_mapping():
    from repro.obs.profile import layer_of

    assert layer_of("/x/src/repro/des/kernel.py") == "kernel"
    assert layer_of("/x/src/repro/net/network.py") == "network"
    assert layer_of("/x/src/repro/numerics/cg.py") == "numerics"
    assert layer_of("/usr/lib/python3.11/heapq.py") == "other"
    assert layer_of("~") == "other"


def test_cli_profile_json(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "prof.json"
    rc = main(["profile", "--n", "8", "--peers", "2", "--seed", "1",
               "--top", "5", "--json", str(out)])
    assert rc == 0
    captured = capsys.readouterr()
    assert "per-layer attribution" in captured.out
    data = json.loads(out.read_text())
    assert set(data) == {"total_time_s", "total_calls", "layers", "top"}
    assert len(data["top"]) <= 5


# ------------------------------------------------------------- slots audit


def test_slots_audit_passes():
    import subprocess
    import sys
    from pathlib import Path

    repo = Path(__file__).resolve().parents[1]
    proc = subprocess.run(
        [sys.executable, str(repo / "scripts" / "check_slots.py")],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(repo / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_hot_classes_reject_stray_attributes():
    from repro.net.network import Message
    from repro.rmi.invocation import OnewayMessage

    msg = OnewayMessage("o", "m", (), {})
    with pytest.raises((AttributeError, TypeError)):
        msg.stray = 1
    wrapped = Message.__new__(Message)
    with pytest.raises((AttributeError, TypeError)):
        wrapped.stray = 1
