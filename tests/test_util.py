"""Tests for repro.util: RNG trees, stats, serialization sizing, logging."""

import math

import numpy as np
import pytest

from repro.util import (
    EventLog,
    Histogram,
    OnlineStats,
    RngTree,
    WallTimer,
    clone_state,
    derive_seed,
    measured_size,
    summarize,
)


# ------------------------------------------------------------------------ rng


def test_derive_seed_is_deterministic():
    assert derive_seed(42, "churn") == derive_seed(42, "churn")
    assert derive_seed(42, "churn") != derive_seed(43, "churn")
    assert derive_seed(42, "churn") != derive_seed(42, "links")


def test_derive_seed_path_sensitivity():
    # ("a", "bc") must differ from ("ab", "c")
    assert derive_seed(1, "a", "bc") != derive_seed(1, "ab", "c")


def test_rng_tree_children_independent_of_draw_order():
    t1 = RngTree(7)
    _ = t1.uniform()  # consume parent randomness
    c1 = t1.child("x")
    t2 = RngTree(7)
    c2 = t2.child("x")  # no parent draw
    assert c1.uniform() == c2.uniform()


def test_rng_tree_same_path_same_stream():
    a = RngTree(5).child("net", 3)
    b = RngTree(5).child("net", 3)
    assert [a.integers(0, 100) for _ in range(5)] == [
        b.integers(0, 100) for _ in range(5)
    ]


def test_rng_tree_choice_and_shuffle():
    t = RngTree(1)
    seq = list(range(10))
    assert t.child("c").choice(seq) in seq
    shuffled = t.child("s").shuffled(seq)
    assert sorted(shuffled) == seq
    with pytest.raises(ValueError):
        t.choice([])
    with pytest.raises(ValueError):
        t.child()


def test_rng_exponential_positive():
    t = RngTree(3)
    assert all(t.exponential(5.0) > 0 for _ in range(20))


# ----------------------------------------------------------------------- stats


def test_online_stats_matches_numpy():
    rng = np.random.default_rng(0)
    xs = rng.normal(3.0, 2.0, size=1000)
    st = OnlineStats()
    st.extend(xs)
    assert st.count == 1000
    assert st.mean == pytest.approx(xs.mean(), rel=1e-12)
    assert st.std == pytest.approx(xs.std(ddof=1), rel=1e-10)
    assert st.min == xs.min() and st.max == xs.max()


def test_online_stats_empty_and_single():
    st = OnlineStats()
    assert math.isnan(st.mean)
    st.add(4.0)
    assert st.mean == 4.0
    assert math.isnan(st.variance)


def test_online_stats_merge_equals_union():
    rng = np.random.default_rng(1)
    xs, ys = rng.random(100), rng.random(57)
    a, b, u = OnlineStats(), OnlineStats(), OnlineStats()
    a.extend(xs)
    b.extend(ys)
    u.extend(np.concatenate([xs, ys]))
    m = a.merge(b)
    assert m.count == u.count
    assert m.mean == pytest.approx(u.mean)
    assert m.variance == pytest.approx(u.variance)
    assert m.min == u.min and m.max == u.max


def test_online_stats_merge_with_empty():
    a, b = OnlineStats(), OnlineStats()
    a.add(1.0)
    m = a.merge(b)
    assert m.count == 1 and m.mean == 1.0
    assert a.merge(OnlineStats()).as_dict()["count"] == 1
    assert OnlineStats().merge(OnlineStats()).count == 0


def test_histogram_binning_and_overflow():
    h = Histogram(0.0, 10.0, bins=10)
    for x in [0.5, 1.5, 1.6, 9.99, -1, 10.0, 25]:
        h.add(x)
    assert h.counts[0] == 1 and h.counts[1] == 2 and h.counts[9] == 1
    assert h.underflow == 1 and h.overflow == 2
    assert h.total == 7


def test_histogram_quantile():
    h = Histogram(0.0, 100.0, bins=100)
    for x in range(100):
        h.add(x + 0.5)
    assert h.quantile(0.5) == pytest.approx(49.5, abs=1.0)
    with pytest.raises(ValueError):
        h.quantile(1.5)


def test_histogram_validation():
    with pytest.raises(ValueError):
        Histogram(5, 5)
    with pytest.raises(ValueError):
        Histogram(0, 1, bins=0)


def test_summarize():
    s = summarize([1.0, 2.0, 3.0, 4.0])
    assert s["count"] == 4 and s["mean"] == 2.5 and s["min"] == 1.0
    assert summarize([]) == {"count": 0}


# -------------------------------------------------------------- serialization


def test_measured_size_scales_with_array():
    small = measured_size(np.zeros(10))
    large = measured_size(np.zeros(10_000))
    assert large - small == pytest.approx((10_000 - 10) * 8, abs=8)


def test_measured_size_handles_plain_types():
    assert measured_size(None) > 0
    assert measured_size("hello") > measured_size("")
    assert measured_size({"k": [1, 2, 3]}) > measured_size({})
    assert measured_size(b"x" * 100) >= 100


def test_clone_state_isolates_arrays():
    state = {"x": np.arange(5.0), "meta": [1, {"deep": np.ones(3)}]}
    snap = clone_state(state)
    state["x"][0] = 999
    state["meta"][1]["deep"][0] = 999
    assert snap["x"][0] == 0.0
    assert snap["meta"][1]["deep"][0] == 1.0


def test_clone_state_tuples_and_scalars():
    snap = clone_state((1, "a", np.float64(2.5)))
    assert snap == (1, "a", 2.5)


# -------------------------------------------------------------------- logging


def test_event_log_emit_and_select():
    log = EventLog()
    log.emit(1.0, "daemon-0", "iteration", k=1)
    log.emit(2.0, "daemon-1", "iteration", k=1)
    log.emit(3.0, "daemon-0", "checkpoint", iter=5)
    assert log.count("iteration") == 2
    assert len(log.select(kind="iteration", entity="daemon-0")) == 1
    assert len(log.select(since=2.5)) == 1
    assert len(log) == 3


def test_event_log_truncation_keeps_counters_exact():
    log = EventLog(max_records=100)
    for i in range(250):
        log.emit(float(i), "e", "tick")
    assert log.count("tick") == 250
    assert len(log.records) <= 100
    assert log.dropped > 0


def test_event_log_subscription():
    log = EventLog()
    seen = []
    log.subscribe(lambda r: seen.append(r.kind))
    log.emit(0.0, "x", "alpha")
    log.emit(0.0, "x", "beta")
    assert seen == ["alpha", "beta"]


def test_wall_timer():
    with WallTimer() as t:
        assert t.lap() >= 0.0
    assert t.elapsed >= 0.0
    with pytest.raises(RuntimeError):
        WallTimer().lap()
