"""Unit tests for the discrete-event kernel (events, processes, run modes)."""

import pytest

from repro.des import Simulator, Interrupt
from repro.errors import SimulationError


def test_empty_run_terminates():
    sim = Simulator()
    sim.run()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()

    def proc(env):
        yield env.timeout(2.5)
        return env.now

    p = sim.process(proc(sim))
    sim.run()
    assert sim.now == 2.5
    assert p.value == 2.5


def test_timeout_value_passthrough():
    sim = Simulator()

    def proc(env):
        got = yield env.timeout(1.0, value="payload")
        return got

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == "payload"


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1)


def test_processes_interleave_deterministically():
    sim = Simulator()
    order = []

    def worker(env, name, delay):
        yield env.timeout(delay)
        order.append((env.now, name))
        yield env.timeout(delay)
        order.append((env.now, name))

    sim.process(worker(sim, "a", 1.0))
    sim.process(worker(sim, "b", 1.5))
    sim.run()
    assert order == [(1.0, "a"), (1.5, "b"), (2.0, "a"), (3.0, "b")]


def test_simultaneous_events_fire_in_creation_order():
    sim = Simulator()
    order = []

    def w(env, name):
        yield env.timeout(1.0)
        order.append(name)

    for name in ["p0", "p1", "p2", "p3"]:
        sim.process(w(sim, name))
    sim.run()
    assert order == ["p0", "p1", "p2", "p3"]


def test_run_until_deadline_stops_clock_exactly():
    sim = Simulator()

    def ticker(env):
        while True:
            yield env.timeout(1.0)

    sim.process(ticker(sim))
    sim.run(until=5.5)
    assert sim.now == 5.5


def test_run_until_event_returns_value():
    sim = Simulator()

    def proc(env):
        yield env.timeout(3)
        return 42

    p = sim.process(proc(sim))
    assert sim.run(until=p) == 42


def test_run_until_event_deadlock_detected():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run(until=ev)


def test_run_until_past_deadline_rejected():
    sim = Simulator()
    sim.run(until=10)
    with pytest.raises(SimulationError):
        sim.run(until=5)


def test_process_joins_another_process():
    sim = Simulator()

    def child(env):
        yield env.timeout(2)
        return "child-result"

    def parent(env):
        c = env.process(child(env))
        result = yield c
        return ("parent-saw", result, env.now)

    p = sim.process(parent(sim))
    sim.run()
    assert p.value == ("parent-saw", "child-result", 2.0)


def test_joining_finished_process_resumes_immediately():
    sim = Simulator()

    def child(env):
        return "done"
        yield  # pragma: no cover

    def parent(env):
        c = env.process(child(env))
        yield env.timeout(5)
        result = yield c  # already processed
        return (result, env.now)

    p = sim.process(parent(sim))
    sim.run()
    assert p.value == ("done", 5.0)


def test_event_succeed_delivers_value():
    sim = Simulator()
    gate = sim.event("gate")

    def waiter(env):
        v = yield gate
        return v

    def opener(env):
        yield env.timeout(1)
        gate.succeed("open-sesame")

    w = sim.process(waiter(sim))
    sim.process(opener(sim))
    sim.run()
    assert w.value == "open-sesame"


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    gate = sim.event()

    def waiter(env):
        try:
            yield gate
        except ValueError as e:
            return f"caught:{e}"

    def failer(env):
        yield env.timeout(1)
        gate.fail(ValueError("boom"))

    w = sim.process(waiter(sim))
    sim.process(failer(sim))
    sim.run()
    assert w.value == "caught:boom"


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError())


def test_event_value_before_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value
    with pytest.raises(SimulationError):
        _ = ev.ok


def test_process_crash_propagates_in_strict_mode():
    sim = Simulator(strict=True)

    def bad(env):
        yield env.timeout(1)
        raise RuntimeError("kaboom")

    sim.process(bad(sim))
    with pytest.raises(SimulationError, match="crashed"):
        sim.run()


def test_process_crash_tolerated_in_lenient_mode():
    sim = Simulator(strict=False)

    def bad(env):
        yield env.timeout(1)
        raise RuntimeError("kaboom")

    p = sim.process(bad(sim))
    sim.run()
    assert not p.ok
    assert isinstance(p.value, RuntimeError)


def test_yielding_non_event_fails_process():
    sim = Simulator(strict=False)

    def bad(env):
        yield 17

    p = sim.process(bad(sim))
    sim.run()
    assert not p.ok
    assert isinstance(p.value, SimulationError)


def test_interrupt_wakes_sleeping_process():
    sim = Simulator()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100)
            log.append("overslept")
        except Interrupt as i:
            log.append(("interrupted", env.now, i.cause))

    def killer(env, victim):
        yield env.timeout(3)
        victim.interrupt(cause="churn")

    victim = sim.process(sleeper(sim))
    sim.process(killer(sim, victim))
    sim.run()
    assert log == [("interrupted", 3.0, "churn")]


def test_unhandled_interrupt_terminates_process_cleanly():
    sim = Simulator(strict=True)

    def sleeper(env):
        yield env.timeout(100)

    def killer(env, victim):
        yield env.timeout(1)
        victim.interrupt(cause="off-switch")

    victim = sim.process(sleeper(sim))
    sim.process(killer(sim, victim))
    sim.run()  # must not raise: unhandled Interrupt is a normal death
    assert victim.processed
    assert isinstance(victim.value, Interrupt)
    # the stale 100s timeout still drains from the schedule, but resumes
    # nobody — the victim stays dead
    assert sim.now == 100.0


def test_interrupted_process_does_not_wake_on_stale_timeout():
    sim = Simulator()
    wakeups = []

    def sleeper(env):
        try:
            yield env.timeout(10)
            wakeups.append("t10")
        except Interrupt:
            yield env.timeout(1)  # survives, goes back to sleep briefly
            wakeups.append("recovered")

    def killer(env, victim):
        yield env.timeout(5)
        victim.interrupt()

    victim = sim.process(sleeper(sim))
    sim.process(killer(sim, victim))
    sim.run()
    # the original t=10 timeout still fires at the kernel level but must not
    # resume the process a second time
    assert wakeups == ["recovered"]
    assert victim.processed


def test_interrupt_dead_process_rejected():
    sim = Simulator()

    def quick(env):
        yield env.timeout(1)

    p = sim.process(quick(sim))
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_self_interrupt_rejected():
    sim = Simulator(strict=False)

    def suicidal(env, me):
        yield env.timeout(0)
        me[0].interrupt()

    holder = []
    p = sim.process(suicidal(sim, holder))
    holder.append(p)
    sim.run()
    assert not p.ok
    assert isinstance(p.value, SimulationError)


def test_interrupt_cause_roundtrip():
    exc = Interrupt(cause={"reason": "maintenance"})
    assert exc.cause == {"reason": "maintenance"}


def test_event_count_increments():
    sim = Simulator()

    def proc(env):
        for _ in range(10):
            yield env.timeout(1)

    sim.process(proc(sim))
    sim.run()
    assert sim.event_count >= 10


def test_step_on_empty_schedule_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.step()


def test_nonzero_start_time():
    sim = Simulator(start=100.0)

    def proc(env):
        yield env.timeout(1)
        return env.now

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == 101.0
