"""End-to-end integration tests of the full JaceP2P stack.

Each test builds a cluster (Super-Peers + Daemons + Spawner over the
simulated heterogeneous network), launches an application and drives the
simulation — exercising bootstrap, reservation, asynchronous iteration,
checkpointing, failure detection, replacement, rollback recovery and
centralized convergence detection together.
"""

import numpy as np
import pytest

from repro.apps import make_heat_app, make_jacobi_app, make_poisson_app
from repro.checkpoint import FixedPolicy
from repro.churn import ChurnEvent, ChurnInjector, PaperChurn, TraceChurn
from repro.numerics import Poisson2D
from repro.p2p import P2PConfig, build_cluster, launch_application
from repro.util.rng import RngTree

from tests.helpers import (
    assemble_strip_solution,
    collect_solution,
    make_geometric_app,
    run_until_done,
)

FAST = P2PConfig(
    heartbeat_period=0.5,
    heartbeat_timeout=2.0,
    monitor_period=0.5,
    call_timeout=2.0,
    bootstrap_retry_delay=0.5,
    reserve_retry_period=0.5,
    min_iteration_time=0.01,
)
CKPT = FixedPolicy(count=3, frequency=5)


def poisson_accuracy(cluster, spawner, n):
    frags = collect_solution(cluster, spawner)
    x = assemble_strip_solution(frags, n * n)
    assert not np.isnan(x).any(), "missing solution fragments"
    return Poisson2D.manufactured(n).residual_norm(x)


# ------------------------------------------------------------------ happy path


def test_geometric_app_converges():
    cluster = build_cluster(n_daemons=4, n_superpeers=2, seed=3, config=FAST, checkpoint=CKPT)
    spawner = launch_application(cluster, make_geometric_app(num_tasks=3))
    assert run_until_done(cluster, spawner, horizon=120.0)
    assert spawner.execution_time is not None
    assert cluster.telemetry.total_iterations > 0
    # after halt, daemons drift back to the idle pool
    cluster.sim.run(until=cluster.sim.now + 10.0)
    assert cluster.registered_daemons() == 4


def test_poisson_app_accuracy_no_churn():
    cluster = build_cluster(n_daemons=5, n_superpeers=2, seed=5, config=FAST, checkpoint=CKPT)
    app = make_poisson_app("poisson", n=16, num_tasks=4, convergence_threshold=1e-8)
    spawner = launch_application(cluster, app)
    assert run_until_done(cluster, spawner, horizon=600.0)
    assert poisson_accuracy(cluster, spawner, 16) < 1e-5


def test_poisson_app_with_overlap_converges():
    cluster = build_cluster(n_daemons=5, n_superpeers=2, seed=6, config=FAST, checkpoint=CKPT)
    app = make_poisson_app(
        "poisson", n=16, num_tasks=4, overlap=1, convergence_threshold=1e-8
    )
    spawner = launch_application(cluster, app)
    assert run_until_done(cluster, spawner, horizon=600.0)
    assert poisson_accuracy(cluster, spawner, 16) < 1e-5


def test_jacobi_app_converges():
    cluster = build_cluster(n_daemons=4, n_superpeers=2, seed=7, config=FAST, checkpoint=CKPT)
    app = make_jacobi_app(
        "jac", n=10, num_tasks=3, sweeps=8, convergence_threshold=1e-9,
    )
    spawner = launch_application(cluster, app)
    assert run_until_done(cluster, spawner, horizon=900.0)
    frags = collect_solution(cluster, spawner)
    x = assemble_strip_solution(frags, 100)
    assert Poisson2D.manufactured(10).residual_norm(x) < 1e-4


def test_heat_app_reaches_steady_state():
    cluster = build_cluster(n_daemons=4, n_superpeers=2, seed=8, config=FAST, checkpoint=CKPT)
    app = make_heat_app(
        "heat", n=10, num_tasks=3, steps_per_iteration=40,
        convergence_threshold=1e-10,
    )
    spawner = launch_application(cluster, app)
    assert run_until_done(cluster, spawner, horizon=900.0)
    frags = collect_solution(cluster, spawner)
    x = assemble_strip_solution(frags, 100)
    prob = Poisson2D.heat_plate(10)
    assert prob.residual_norm(x) < 1e-3


def test_single_task_application():
    cluster = build_cluster(n_daemons=2, n_superpeers=1, seed=9, config=FAST, checkpoint=CKPT)
    app = make_poisson_app("solo", n=8, num_tasks=1, convergence_threshold=1e-9)
    spawner = launch_application(cluster, app)
    assert run_until_done(cluster, spawner, horizon=300.0)
    assert poisson_accuracy(cluster, spawner, 8) < 1e-6


def test_run_is_deterministic():
    results = []
    for _ in range(2):
        cluster = build_cluster(n_daemons=5, n_superpeers=2, seed=11, config=FAST, checkpoint=CKPT)
        app = make_poisson_app("p", n=12, num_tasks=3, convergence_threshold=1e-7)
        spawner = launch_application(cluster, app)
        assert run_until_done(cluster, spawner, horizon=600.0)
        results.append(
            (spawner.execution_time, cluster.telemetry.total_iterations)
        )
    assert results[0] == results[1]


def test_spawner_waits_for_daemons_to_appear():
    """Launch with too few Daemons; the maintenance loop fills slots as
    machines bootstrap later."""
    cluster = build_cluster(n_daemons=3, n_superpeers=1, seed=13, config=FAST, checkpoint=CKPT)
    # ask for more tasks than daemons initially available
    app = make_geometric_app(num_tasks=3, threshold=1e-3)
    # take one daemon host down before it can be reserved
    victim = cluster.testbed.daemon_hosts[0]
    victim.fail()
    spawner = launch_application(cluster, app)
    cluster.sim.run(until=5.0)
    assert spawner.register.assigned_count() < 3
    victim.recover()  # a fresh daemon boots and registers
    assert run_until_done(cluster, spawner, horizon=120.0)


# ----------------------------------------------------------------------- churn


def test_poisson_survives_disconnections_with_recovery():
    cluster = build_cluster(n_daemons=8, n_superpeers=2, seed=21, config=FAST, checkpoint=CKPT)
    app = make_poisson_app("poisson", n=16, num_tasks=4, convergence_threshold=1e-8)
    spawner = launch_application(cluster, app)
    trace = TraceChurn((
        ChurnEvent(0.4, 5.0, None),
        ChurnEvent(0.9, 5.0, None),
        ChurnEvent(1.5, 5.0, None),
    ))
    inj = ChurnInjector(
        cluster.sim, cluster.testbed.daemon_hosts, trace,
        RngTree(99), horizon=1000.0, log=cluster.log,
    )
    assert run_until_done(cluster, spawner, horizon=900.0)
    assert inj.disconnections == 3
    assert poisson_accuracy(cluster, spawner, 16) < 1e-5


def test_churn_slows_execution_but_preserves_result():
    times = {}
    for label, n_disc in [("calm", 0), ("stormy", 4)]:
        cluster = build_cluster(n_daemons=10, n_superpeers=2, seed=31, config=FAST, checkpoint=CKPT)
        app = make_poisson_app("p", n=16, num_tasks=4, convergence_threshold=1e-8)
        spawner = launch_application(cluster, app)
        if n_disc:
            # horizon sized so the churn window overlaps the calm run
            # (~2 s now that a reserve sweep accumulates partial grants
            # across Super-Peers instead of under-filling the slots)
            ChurnInjector(
                cluster.sim, cluster.testbed.daemon_hosts,
                PaperChurn(n_disc, reconnect_delay=5.0, start_fraction=0.1,
                           end_fraction=0.5),
                RngTree(7), horizon=5.0, log=cluster.log,
            )
        assert run_until_done(cluster, spawner, horizon=900.0)
        assert poisson_accuracy(cluster, spawner, 16) < 1e-5
        times[label] = spawner.execution_time
    assert times["stormy"] > times["calm"]


def test_recovery_resumes_from_checkpoint_not_zero():
    cluster = build_cluster(n_daemons=8, n_superpeers=2, seed=41, config=FAST, checkpoint=CKPT)
    app = make_poisson_app("p", n=16, num_tasks=4, convergence_threshold=1e-9)
    spawner = launch_application(cluster, app)
    sim = cluster.sim
    # let it iterate well past several checkpoints, then kill a computing host
    sim.run(until=1.0)
    computing_hosts = {
        s.daemon_id.rsplit("#", 1)[0]
        for s in spawner.register.slots if s.assigned
    }
    victim = next(h for h in cluster.testbed.daemon_hosts
                  if h.name in computing_hosts)
    victim.fail(cause="test")
    assert run_until_done(cluster, spawner, horizon=900.0)
    recs = cluster.telemetry.recoveries
    assert len(recs) == 1
    assert not recs[0].from_scratch
    assert recs[0].resumed_iteration > 0
    assert recs[0].resumed_iteration % CKPT.frequency == 0


def test_all_backups_lost_restarts_from_zero():
    """Kill the computing daemon AND all of its backup-peers: §5.4 says the
    task must restart from the beginning."""
    cluster = build_cluster(n_daemons=10, n_superpeers=2, seed=43, config=FAST,
                            checkpoint=FixedPolicy(count=1, frequency=2))
    app = make_geometric_app(num_tasks=3, rate=0.9, threshold=1e-7, flops=5e6)
    spawner = launch_application(cluster, app)
    sim = cluster.sim
    sim.run(until=2.0)
    # find hosts of task 1 and its sole backup-peer (task 2), kill both
    hosts_by_task = {
        s.task_id: s.daemon_id.rsplit("#", 1)[0]
        for s in spawner.register.slots if s.assigned
    }
    host_map = {h.name: h for h in cluster.testbed.daemon_hosts}
    host_map[hosts_by_task[2]].fail(cause="test")  # backup-peer first
    host_map[hosts_by_task[1]].fail(cause="test")
    assert run_until_done(cluster, spawner, horizon=600.0)
    scratch = [r for r in cluster.telemetry.recoveries if r.task_id == 1]
    assert scratch and scratch[-1].from_scratch


def test_superpeer_failure_does_not_stop_application():
    cluster = build_cluster(n_daemons=6, n_superpeers=3, seed=47, config=FAST, checkpoint=CKPT)
    app = make_poisson_app("p", n=12, num_tasks=3, convergence_threshold=1e-8)
    spawner = launch_application(cluster, app)
    sim = cluster.sim
    sim.run(until=0.5)
    cluster.superpeers[0].host.fail(cause="test")
    assert run_until_done(cluster, spawner, horizon=600.0)
    assert poisson_accuracy(cluster, spawner, 12) < 1e-5


def test_alive_peers_never_stop_during_failure():
    """The asynchronous property: other peers keep iterating while a failed
    task is being replaced."""
    cluster = build_cluster(n_daemons=8, n_superpeers=2, seed=53, config=FAST, checkpoint=CKPT)
    app = make_geometric_app(num_tasks=4, rate=0.999, threshold=1e-9, flops=3e6)
    spawner = launch_application(cluster, app)
    sim = cluster.sim
    sim.run(until=2.0)
    victim_slot = spawner.register.slot(0)
    victim_host_name = victim_slot.daemon_id.rsplit("#", 1)[0]
    victim = next(h for h in cluster.testbed.daemon_hosts
                  if h.name == victim_host_name)
    before = {t: cluster.telemetry.iterations[t] for t in range(4)}
    victim.fail(cause="test")
    sim.run(until=sim.now + FAST.heartbeat_timeout)  # during detection window
    after = {t: cluster.telemetry.iterations[t] for t in range(4)}
    for t in range(1, 4):
        assert after[t] > before[t], f"task {t} stalled during failure handling"


# ----------------------------------------------------------- multiple apps


def test_two_applications_run_concurrently():
    cluster = build_cluster(n_daemons=8, n_superpeers=2, seed=61, config=FAST, checkpoint=CKPT)
    app1 = make_geometric_app("first", num_tasks=3, threshold=1e-4)
    app2 = make_geometric_app("second", num_tasks=3, threshold=1e-4)
    s1 = launch_application(cluster, app1)
    s2 = launch_application(cluster, app2)
    sim = cluster.sim
    both = sim.all_of([s1.done, s2.done])
    sim.run(until=sim.any_of([both, sim.timeout(300.0)]))
    assert s1.done.triggered and s2.done.triggered
    # distinct daemons served each app
    d1 = {s.daemon_id for s in s1.register.slots}
    d2 = {s.daemon_id for s in s2.register.slots}
    assert d1.isdisjoint(d2)
