"""Tests for condition events (AllOf/AnyOf), stores and resources."""

import pytest

from repro.des import Simulator, Store, PriorityStore, Resource
from repro.errors import SimulationError


# ---------------------------------------------------------------- conditions


def test_all_of_waits_for_every_event():
    sim = Simulator()

    def proc(env):
        t1, t2, t3 = env.timeout(1, "a"), env.timeout(2, "b"), env.timeout(3, "c")
        result = yield env.all_of([t1, t2, t3])
        return (env.now, sorted(result.values()))

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == (3.0, ["a", "b", "c"])


def test_any_of_fires_on_first():
    sim = Simulator()

    def proc(env):
        t1, t2 = env.timeout(5, "slow"), env.timeout(1, "fast")
        result = yield env.any_of([t1, t2])
        assert t2 in result and t1 not in result
        return (env.now, result[t2])

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == (1.0, "fast")


def test_all_of_empty_fires_immediately():
    sim = Simulator()

    def proc(env):
        result = yield env.all_of([])
        return (env.now, len(result))

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == (0.0, 0)


def test_condition_fails_fast_on_subevent_failure():
    sim = Simulator()

    def proc(env):
        good = env.timeout(5)
        bad = env.event()
        bad.fail(ValueError("sub failed"))
        try:
            yield env.all_of([good, bad])
        except ValueError as e:
            return ("caught", str(e), env.now)

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == ("caught", "sub failed", 0.0)


def test_condition_value_keyerror_for_missing_event():
    sim = Simulator()

    def proc(env):
        fast, slow = env.timeout(1), env.timeout(9)
        result = yield env.any_of([fast, slow])
        with pytest.raises(KeyError):
            result[slow]
        return True

    p = sim.process(proc(sim))
    sim.run()
    assert p.value is True


def test_condition_with_already_processed_events():
    sim = Simulator()

    def proc(env):
        t = env.timeout(1, "early")
        yield env.timeout(2)  # t is now processed
        result = yield env.all_of([t])
        return result[t]

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == "early"


# -------------------------------------------------------------------- stores


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer(env):
        for i in range(3):
            yield env.timeout(1)
            store.put(i)

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            got.append((env.now, item))

    sim.process(producer(sim))
    sim.process(consumer(sim))
    sim.run()
    assert got == [(1.0, 0), (2.0, 1), (3.0, 2)]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)

    def consumer(env):
        item = yield store.get()
        return (env.now, item)

    def producer(env):
        yield env.timeout(7)
        store.put("late")

    c = sim.process(consumer(sim))
    sim.process(producer(sim))
    sim.run()
    assert c.value == (7.0, "late")


def test_store_multiple_getters_served_fifo():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(env, name):
        item = yield store.get()
        got.append((name, item))

    def producer(env):
        yield env.timeout(1)
        store.put("x")
        store.put("y")

    sim.process(consumer(sim, "c0"))
    sim.process(consumer(sim, "c1"))
    sim.process(producer(sim))
    sim.run()
    assert got == [("c0", "x"), ("c1", "y")]


def test_store_capacity_drop():
    sim = Simulator()
    store = Store(sim, capacity=2)
    assert store.try_put(1) and store.try_put(2)
    assert not store.try_put(3)
    assert store.dropped == 1
    assert store.put_count == 3
    with pytest.raises(SimulationError):
        store.put(4)


def test_store_nonblocking_helpers():
    sim = Simulator()
    store = Store(sim)
    assert store.get_nowait() is None
    store.put("a")
    store.put("b")
    assert store.get_nowait() == "a"
    assert store.drain() == ["b"]
    assert len(store) == 0


def test_store_invalid_capacity():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Store(sim, capacity=0)


def test_priority_store_orders_items():
    sim = Simulator()
    store = PriorityStore(sim)
    got = []

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    store.put((2, "low"))
    store.put((0, "urgent"))
    store.put((1, "mid"))
    sim.process(consumer(sim))
    sim.run()
    assert got == [(0, "urgent"), (1, "mid"), (2, "low")]


# ----------------------------------------------------------------- resources


def test_resource_serializes_users():
    sim = Simulator()
    res = Resource(sim, slots=1)
    spans = []

    def user(env, name):
        yield res.acquire()
        start = env.now
        yield env.timeout(2)
        res.release()
        spans.append((name, start, env.now))

    sim.process(user(sim, "u0"))
    sim.process(user(sim, "u1"))
    sim.run()
    assert spans == [("u0", 0.0, 2.0), ("u1", 2.0, 4.0)]


def test_resource_parallel_slots():
    sim = Simulator()
    res = Resource(sim, slots=2)
    done = []

    def user(env, name):
        yield res.acquire()
        yield env.timeout(2)
        res.release()
        done.append((name, env.now))

    for i in range(3):
        sim.process(user(sim, f"u{i}"))
    sim.run()
    assert done == [("u0", 2.0), ("u1", 2.0), ("u2", 4.0)]


def test_resource_release_without_acquire_rejected():
    sim = Simulator()
    res = Resource(sim)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_available_accounting():
    sim = Simulator()
    res = Resource(sim, slots=3)

    def user(env):
        yield res.acquire()

    sim.process(user(sim))
    sim.process(user(sim))
    sim.run()
    assert res.available == 1


def test_resource_bad_slots_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, slots=0)
