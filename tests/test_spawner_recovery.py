"""Tests for Spawner fault tolerance — the paper's §4.2 future work.

"The Spawner is the only entity of the system to be stable.  In future
work, we plan to study how to make it tolerant to failures."

The extension: the Spawner persists its Application Register to stable
storage; after the spawner machine fails and recovers, a replacement
Spawner resumes from the snapshot, the surviving Daemons' heartbeats reach
it unchanged (same address), the convergence array refills from the
heartbeat piggybacks, and the application completes correctly.
"""

import numpy as np
import pytest

from repro.apps import make_poisson_app
from repro.numerics import Poisson2D
from repro.checkpoint import FixedPolicy
from repro.p2p import (
    P2PConfig,
    StableStore,
    build_cluster,
    launch_application,
    resume_application,
)

from tests.helpers import (
    assemble_strip_solution,
    make_geometric_app,
    run_until_done,
)

FAST = P2PConfig(
    heartbeat_period=0.5, heartbeat_timeout=2.0, monitor_period=0.5,
    call_timeout=2.0, bootstrap_retry_delay=0.5, reserve_retry_period=0.5,
    min_iteration_time=0.01,
)
CKPT = FixedPolicy(count=3, frequency=5)


def test_stable_store_snapshot_isolation():
    from repro.p2p.messages import ApplicationRegister

    store = StableStore()
    reg = ApplicationRegister.empty("app", 2)
    store.save("app", reg, spawner_port=4200, now=1.0)
    reg.version = 99  # later mutation must not leak into the store
    snap = store.load("app")
    assert snap.register.version == 0
    assert snap.spawner_port == 4200
    assert "app" in store
    store.forget("app")
    assert store.load("app") is None


def test_resume_requires_a_snapshot():
    cluster = build_cluster(n_daemons=3, n_superpeers=1, seed=95, config=FAST, checkpoint=CKPT)
    with pytest.raises(ValueError, match="no stable snapshot"):
        resume_application(cluster, make_geometric_app(num_tasks=2),
                           StableStore())


def test_resume_rejects_mismatched_app():
    from repro.p2p.messages import ApplicationRegister

    store = StableStore()
    store.save("geo", ApplicationRegister.empty("geo", 5), 4200, 0.0)
    cluster = build_cluster(n_daemons=3, n_superpeers=1, seed=96, config=FAST, checkpoint=CKPT)
    with pytest.raises(ValueError, match="does not match"):
        resume_application(cluster, make_geometric_app(num_tasks=2), store)


def test_spawner_failure_and_resume_completes_application():
    """The headline scenario: spawner machine dies mid-run, comes back,
    the resumed Spawner finishes the job with the surviving daemons."""
    n, peers = 16, 3
    cluster = build_cluster(n_daemons=7, n_superpeers=2, seed=97, config=FAST, checkpoint=CKPT)
    store = StableStore()
    app = make_poisson_app("p", n=n, num_tasks=peers,
                           convergence_threshold=1e-8)
    spawner = launch_application(cluster, app, stable_store=store)
    sim = cluster.sim
    sim.run(until=1.0)
    assert spawner.register.assigned_count() == peers
    assert store.saves >= 1

    spawner_host = cluster.testbed.spawner_host
    spawner_host.fail(cause="spawner-crash")
    sim.run(until=4.0)  # daemons keep computing into the void
    assert not spawner.done.triggered
    spawner_host.recover()
    replacement = resume_application(cluster, app, store)
    assert replacement.resumed
    assert run_until_done(cluster, replacement, horizon=900.0)

    proc = sim.process(replacement.collect_solution())
    sim.run(until=proc)
    x = assemble_strip_solution(proc.value, n * n)
    assert Poisson2D.manufactured(n).residual_norm(x) < 1e-4
    # the original spawner object never finished; the replacement did
    assert not spawner.done.triggered
    # completion cleaned the snapshot up
    assert store.load("p") is None


def test_resumed_spawner_replaces_daemons_that_died_during_outage():
    """A computing daemon AND the spawner both fail; after resume the
    replacement spawner detects the silent slot and repairs it."""
    n, peers = 16, 3
    cluster = build_cluster(n_daemons=8, n_superpeers=2, seed=101, config=FAST, checkpoint=CKPT)
    store = StableStore()
    app = make_poisson_app("p", n=n, num_tasks=peers,
                           convergence_threshold=1e-8)
    spawner = launch_application(cluster, app, stable_store=store)
    sim = cluster.sim
    sim.run(until=1.0)
    victim_name = spawner.register.slot(1).daemon_id.rsplit("#", 1)[0]
    victim = next(h for h in cluster.testbed.daemon_hosts
                  if h.name == victim_name)

    cluster.testbed.spawner_host.fail(cause="spawner-crash")
    sim.run(until=2.0)
    victim.fail(cause="double-trouble")  # dies while nobody is watching
    sim.run(until=4.0)
    cluster.testbed.spawner_host.recover()
    replacement = resume_application(cluster, app, store)
    assert run_until_done(cluster, replacement, horizon=900.0)
    assert replacement.replacements >= 1  # the dead slot was repaired
    proc = sim.process(replacement.collect_solution())
    sim.run(until=proc)
    x = assemble_strip_solution(proc.value, n * n)
    assert Poisson2D.manufactured(n).residual_norm(x) < 1e-4


def test_resume_preserves_epoch_fencing():
    """Epochs carried through stable storage keep increasing, so a zombie
    from before the crash is still fenced after the resume."""
    cluster = build_cluster(n_daemons=6, n_superpeers=2, seed=103, config=FAST, checkpoint=CKPT)
    store = StableStore()
    app = make_geometric_app(num_tasks=2, rate=0.9999, threshold=1e-12,
                             flops=3e6)
    spawner = launch_application(cluster, app, stable_store=store)
    sim = cluster.sim
    sim.run(until=2.0)
    epochs_before = [s.epoch for s in spawner.register.slots]
    cluster.testbed.spawner_host.fail(cause="crash")
    sim.run(until=3.0)
    cluster.testbed.spawner_host.recover()
    replacement = resume_application(cluster, app, store)
    sim.run(until=6.0)
    for before, slot in zip(epochs_before, replacement.register.slots):
        assert slot.epoch >= before
    # stale-epoch messages are still rejected by the replacement
    replacement.set_state("geo", 0, 0, True)
    assert not replacement.tracker.states[0] or (
        replacement.register.slot(0).epoch == 0
    )
