"""Tests for corruption-resilient iteration (arXiv:2206.08479).

The :class:`~repro.p2p.task.ComponentFilter` screens incoming boundary
components against a contraction bound; the Daemon screens restored
checkpoints with :meth:`Task.state_plausible`.  The ``poisoned-channel``
scenario is the acceptance case: whole-run silent corruption that breaks
the solver without the filter and is survived with it.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.exec import RunSpec
from repro.faults import scenario
from repro.faults.scenarios import scenario_overrides
from repro.p2p.task import ComponentFilter, Task, TaskContext


def make_task(reject=True, **params):
    t = Task()
    if reject:
        params["reject_corruption"] = True
    t.setup(TaskContext("app", 0, 2, params))
    return t


# ----------------------------------------------------------- unit: filter


def test_filter_accepts_contracting_sequence():
    f = ComponentFilter()
    x = np.linspace(1.0, 2.0, 8)
    for k in range(10):
        out = f.filter(1, x * (1.0 - 0.1 * k))
        assert out is not None
    assert f.rejected == 0


def test_filter_rejects_poisoned_component_and_reuses_last():
    f = ComponentFilter()
    clean = np.linspace(1.0, 2.0, 8)
    f.filter(1, clean)            # establishes the reference scale
    f.filter(1, clean * 0.95)
    poisoned = clean * 0.90
    poisoned[3] = 1e3             # the injector's single-index perturbation
    out = f.filter(1, poisoned)
    assert f.rejected == 1
    assert out[3] == pytest.approx(clean[3] * 0.95)  # last accepted value
    ok = np.delete(np.arange(8), 3)
    assert np.allclose(out[ok], poisoned[ok])


def test_filter_accepts_wholesale_regime_change():
    """All components implausible at once = a legitimate restart, not the
    single-component corruption the adversary injects."""
    f = ComponentFilter()
    f.filter(1, np.ones(8))
    f.filter(1, np.ones(8) * 0.9)
    out = f.filter(1, np.ones(8) * 1e4)
    assert f.rejected == 0
    assert np.allclose(out, 1e4)


def test_filter_patience_prevents_permanent_freeze_out():
    f = ComponentFilter(patience=3)
    base = np.linspace(1.0, 2.0, 8)
    f.filter(1, base)
    f.filter(1, base * 0.95)
    drift = base.copy()
    drift[0] = 500.0
    for _ in range(3):
        f.filter(1, drift)
    out = f.filter(1, drift)      # patience exhausted: accepted wholesale
    assert out[0] == 500.0


def test_filter_tracks_sources_independently():
    f = ComponentFilter()
    f.filter(1, np.ones(4))
    f.filter(1, np.ones(4) * 0.9)
    # src 2 has no history: its first huge payload is a baseline, not
    # corruption
    out = f.filter(2, np.ones(4) * 1e6)
    assert np.allclose(out, 1e6)
    assert f.rejected == 0


def test_filter_validation():
    with pytest.raises(ConfigurationError):
        ComponentFilter(safety=0.0)
    with pytest.raises(ConfigurationError):
        ComponentFilter(decay=1.5)
    with pytest.raises(ConfigurationError):
        ComponentFilter(patience=0)


# -------------------------------------------------------- unit: task hooks


def test_task_guard_payload_is_passthrough_without_flag():
    t = make_task(reject=False)
    x = np.array([1.0, 1e30])
    assert t.guard_payload(1, x) is x
    assert t.components_rejected == 0


def test_task_guard_payload_filters_with_flag():
    t = make_task()
    clean = np.linspace(1.0, 2.0, 8)
    t.guard_payload(1, clean)
    t.guard_payload(1, clean * 0.95)
    poisoned = clean * 0.9
    poisoned[2] = 1e9
    out = t.guard_payload(1, poisoned)
    assert t.components_rejected == 1
    assert out[2] == pytest.approx(clean[2] * 0.95)


def test_state_plausible_rejects_nan_and_blowup():
    t = make_task()
    assert t.state_plausible({"x": np.ones(4), "iteration": 3})
    assert not t.state_plausible({"x": np.array([1.0, np.nan])})
    assert not t.state_plausible({"x": np.array([1.0, 1e12])})
    # ceiling is a parameter
    loose = make_task(reject_ceiling=1e15)
    assert loose.state_plausible({"x": np.array([1.0, 1e12])})


# --------------------------------------------------- end-to-end acceptance


def test_poisoned_channel_breaks_unfiltered_run():
    """Whole-run corruption, no filter: the run must NOT converge within a
    horizon several times the clean convergence time (~0.42 s)."""
    r = RunSpec(n=32, peers=4, seed=0, faults=scenario("poisoned-channel"),
                horizon=2.0, use_cache=False).run()
    assert not (r.converged and r.residual is not None and r.residual < 1e-3)


def test_poisoned_channel_survived_with_filter():
    r = RunSpec(n=32, peers=4, seed=0, faults=scenario("poisoned-channel"),
                reject_corruption=True, use_cache=False).run()
    assert r.converged
    assert r.residual is not None and r.residual < 1e-3
    assert r.components_rejected > 0


def test_poisoned_channel_scenario_declares_requirement():
    assert scenario_overrides("poisoned-channel") == {
        "reject_corruption": True
    }
