"""Tests for CSV export of experiment results."""

import csv
import io

import pytest

from repro.experiments.driver import RunResult
from repro.experiments.export import (
    figure7_to_csv,
    ratio_to_csv,
    rows_to_csv,
    runs_to_csv,
    write_csv,
)
from repro.experiments.figure7 import Figure7Result
from repro.experiments.ratio import RatioResult


def parse(text):
    return list(csv.reader(io.StringIO(text)))


def make_run(**overrides):
    base = dict(
        n=48, peers=8, disconnections_requested=2, disconnections_executed=2,
        seed=0, overlap=3, converged=True, simulated_time=1.5,
        total_iterations=1000, mean_iterations_per_task=125.0,
        useless_fraction=0.2, residual=1e-5, recoveries=2,
        restarts_from_zero=0, replacements=2, checkpoints_sent=100,
        data_messages=5000,
    )
    base.update(overrides)
    return RunResult(**base)


def test_rows_to_csv_quoting_and_none():
    text = rows_to_csv(["a", "b"], [[1, None], ["x,y", 2.5]])
    rows = parse(text)
    assert rows[0] == ["a", "b"]
    assert rows[1] == ["1", ""]
    assert rows[2] == ["x,y", "2.5"]


def test_runs_to_csv_roundtrip():
    text = runs_to_csv([make_run(), make_run(n=64, converged=False,
                                             simulated_time=None,
                                             residual=None)])
    rows = parse(text)
    assert len(rows) == 3
    header = rows[0]
    assert header[0] == "n" and "residual" in header
    assert rows[1][header.index("size")] == "2304"
    assert rows[2][header.index("converged")] == "False"
    assert rows[2][header.index("simulated_time")] == ""


def test_figure7_to_csv():
    result = Figure7Result(ns=(40, 64), disconnections=(0, 2), peers=8,
                           repeats=1)
    result.times = {(40, 0): 1.0, (40, 2): 2.0, (64, 0): 1.5, (64, 2): 2.4}
    rows = parse(figure7_to_csv(result))
    assert rows[0] == ["n", "size", "disc_0", "disc_2", "slowdown"]
    assert rows[1] == ["40", "1600", "1.0", "2.0", "2.0"]
    assert float(rows[2][4]) == pytest.approx(1.6)


def test_ratio_to_csv():
    result = RatioResult(ns=(40,), peers=8)
    result.rows.append((40, 1700.0, 100, 17.0, 0.16, 0.97))
    rows = parse(ratio_to_csv(result))
    assert rows[0][2] == "async_iters_per_task"
    assert rows[1] == ["40", "1600", "1700.0", "100", "17.0", "0.16", "0.97"]


def test_write_csv_creates_dirs(tmp_path):
    target = tmp_path / "a" / "b" / "out.csv"
    path = write_csv("x,y\n1,2\n", target)
    assert path.read_text() == "x,y\n1,2\n"
