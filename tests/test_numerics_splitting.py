"""Tests for the block decomposition with overlap and the reference solvers."""

import numpy as np
import pytest

from repro.errors import ConvergenceError
from repro.numerics import (
    BlockDecomposition,
    Poisson2D,
    block_jacobi,
    chaotic_block_jacobi,
)
from repro.util.rng import RngTree


def make_problem(n=8):
    return Poisson2D.manufactured(n)


# ----------------------------------------------------------------- decomposition


def test_decomposition_partitions_ownership():
    prob = make_problem(8)
    d = BlockDecomposition(prob.A, prob.b, nblocks=3, line=8, overlap=0)
    covered = np.zeros(prob.size, dtype=bool)
    for blk in d.blocks:
        assert blk.own_start % 8 == 0 and blk.own_end % 8 == 0
        assert not covered[blk.own_start : blk.own_end].any()
        covered[blk.own_start : blk.own_end] = True
    assert covered.all()


def test_decomposition_extended_ranges_with_overlap():
    prob = make_problem(9)
    d = BlockDecomposition(prob.A, prob.b, nblocks=3, line=9, overlap=1)
    first, mid, last = d.blocks
    assert first.ext_start == 0 and first.ext_end == first.own_end + 9
    assert mid.ext_start == mid.own_start - 9 and mid.ext_end == mid.own_end + 9
    assert last.ext_end == prob.size and last.ext_start == last.own_start - 9


def test_exchange_volume_constant_in_overlap():
    """The paper's claim: exchanged data per neighbour stays n components."""
    prob = make_problem(12)
    volumes = []
    for o in [0, 1, 2]:
        d = BlockDecomposition(prob.A, prob.b, nblocks=4, line=12, overlap=o)
        volumes.append([d.exchange_volume(k) for k in range(4)])
    assert volumes[0] == volumes[1] == volumes[2]
    # inner blocks send one grid line (n=12) to each of two neighbours
    assert volumes[0][1] == 24 and volumes[0][2] == 24
    # end blocks have a single neighbour
    assert volumes[0][0] == 12 and volumes[0][3] == 12


def test_ext_cols_are_one_grid_line_per_side():
    prob = make_problem(10)
    d = BlockDecomposition(prob.A, prob.b, nblocks=2, line=10, overlap=2)
    top, bottom = d.blocks
    # block 0 extended region ends at own_end+2 lines; it needs the line below
    assert top.ext_cols.size == 10
    assert np.array_equal(top.ext_cols, np.arange(top.ext_end, top.ext_end + 10))
    assert bottom.ext_cols.size == 10
    assert np.array_equal(
        bottom.ext_cols, np.arange(bottom.ext_start - 10, bottom.ext_start)
    )


def test_send_map_matches_ext_sources():
    prob = make_problem(10)
    d = BlockDecomposition(prob.A, prob.b, nblocks=5, line=10, overlap=0)
    for blk in d.blocks:
        for nb, positions in blk.ext_sources.items():
            needed = blk.ext_cols[positions]
            sent = d.blocks[nb].send_map[blk.index]
            assert np.array_equal(np.sort(needed), np.sort(sent))
            own = d.blocks[nb]
            assert np.all((sent >= own.own_start) & (sent < own.own_end))


def test_neighbours_are_adjacent_blocks():
    prob = make_problem(10)
    d = BlockDecomposition(prob.A, prob.b, nblocks=5, line=10, overlap=0)
    assert d.neighbours(0) == [1]
    assert d.neighbours(2) == [1, 3]
    assert d.neighbours(4) == [3]


def test_single_block_has_no_neighbours():
    prob = make_problem(6)
    d = BlockDecomposition(prob.A, prob.b, nblocks=1, line=6)
    assert d.neighbours(0) == []
    assert d.blocks[0].ext_cols.size == 0
    assert d.exchange_volume(0) == 0


def test_values_to_send_extracts_owned_line():
    prob = make_problem(6)
    d = BlockDecomposition(prob.A, prob.b, nblocks=2, line=6, overlap=0)
    blk = d.blocks[0]
    x_local = np.arange(blk.n_ext, dtype=float)
    vals = blk.values_to_send(x_local, 1)
    # block 1 needs block 0's last grid line
    expect = x_local[(blk.own_end - 6 - blk.ext_start):(blk.own_end - blk.ext_start)]
    assert np.array_equal(vals, expect)


def test_assemble_roundtrip_with_overlap():
    prob = make_problem(8)
    d = BlockDecomposition(prob.A, prob.b, nblocks=2, line=8, overlap=2)
    ref = prob.solve_direct()
    locals_ = [ref[blk.ext_start : blk.ext_end].copy() for blk in d.blocks]
    assert np.allclose(d.assemble(locals_), ref)


def test_local_rhs_consistency_at_solution():
    """At the exact solution, every local system is satisfied."""
    prob = make_problem(8)
    ref = prob.solve_direct()
    for o in [0, 1]:
        d = BlockDecomposition(prob.A, prob.b, nblocks=4, line=8, overlap=o)
        for blk in d.blocks:
            ext_vals = ref[blk.ext_cols]
            rhs = d.local_rhs(blk.index, ext_vals)
            x_local = ref[blk.ext_start : blk.ext_end]
            assert np.allclose(blk.A_local @ x_local, rhs, atol=1e-8)


def test_decomposition_validation():
    prob = make_problem(6)
    with pytest.raises(ValueError):  # not multiple of line
        BlockDecomposition(prob.A, prob.b, nblocks=2, line=5)
    with pytest.raises(ValueError):  # too many blocks
        BlockDecomposition(prob.A, prob.b, nblocks=7, line=6)
    with pytest.raises(ValueError):  # negative overlap
        BlockDecomposition(prob.A, prob.b, nblocks=2, line=6, overlap=-1)
    with pytest.raises(ValueError):  # overlap too large for strip width
        BlockDecomposition(prob.A, prob.b, nblocks=3, line=6, overlap=2)
    with pytest.raises(ValueError):  # b shape
        BlockDecomposition(prob.A, np.zeros(5), nblocks=2, line=6)
    import scipy.sparse as sp

    with pytest.raises(ValueError):  # non-square
        BlockDecomposition(sp.csr_matrix(np.ones((4, 6))), np.zeros(4), nblocks=1)


def test_assemble_validation():
    prob = make_problem(6)
    d = BlockDecomposition(prob.A, prob.b, nblocks=2, line=6)
    with pytest.raises(ValueError):
        d.assemble([np.zeros(3)])
    with pytest.raises(ValueError):
        d.assemble([np.zeros(3), np.zeros(3)])


def test_local_rhs_shape_validation():
    prob = make_problem(6)
    d = BlockDecomposition(prob.A, prob.b, nblocks=2, line=6)
    with pytest.raises(ValueError):
        d.local_rhs(0, np.zeros(99))


# --------------------------------------------------------------- block jacobi


def test_block_jacobi_converges_to_direct_solution():
    prob = make_problem(10)
    d = BlockDecomposition(prob.A, prob.b, nblocks=4, line=10, overlap=0)
    result = block_jacobi(d, tol=1e-9)
    assert result.converged
    ref = prob.solve_direct()
    assert np.allclose(result.x, ref, atol=1e-6)
    assert result.inner_iterations_total > 0
    assert result.flops_total > 0
    assert result.residual_history[-1] <= 1e-9


def test_block_jacobi_single_block_is_direct_solve():
    prob = make_problem(8)
    d = BlockDecomposition(prob.A, prob.b, nblocks=1, line=8)
    result = block_jacobi(d, tol=1e-10)
    assert result.converged
    assert result.outer_iterations <= 2


def test_overlap_reduces_outer_iterations():
    """Paper §6: overlapping may dramatically reduce iteration count."""
    prob = make_problem(16)
    iters = {}
    for o in [0, 2]:
        d = BlockDecomposition(prob.A, prob.b, nblocks=4, line=16, overlap=o)
        result = block_jacobi(d, tol=1e-8)
        assert result.converged
        iters[o] = result.outer_iterations
    assert iters[2] < iters[0]


def test_more_blocks_means_more_outer_iterations():
    prob = make_problem(16)
    iters = []
    for nb in [2, 8]:
        d = BlockDecomposition(prob.A, prob.b, nblocks=nb, line=16)
        iters.append(block_jacobi(d, tol=1e-8).outer_iterations)
    assert iters[0] < iters[1]


def test_block_jacobi_budget_exhaustion():
    prob = make_problem(12)
    d = BlockDecomposition(prob.A, prob.b, nblocks=6, line=12)
    result = block_jacobi(d, tol=1e-12, max_outer=2)
    assert not result.converged
    assert result.outer_iterations == 2
    with pytest.raises(ConvergenceError):
        block_jacobi(d, tol=1e-12, max_outer=2, raise_on_fail=True)


# ------------------------------------------------------------ chaotic jacobi


def test_chaotic_relaxation_converges_to_same_fixed_point():
    prob = make_problem(10)
    d = BlockDecomposition(prob.A, prob.b, nblocks=4, line=10, overlap=0)
    result = chaotic_block_jacobi(
        d, rng=RngTree(7), tol=1e-9, activation_probability=0.5, max_delay=3
    )
    assert result.converged
    ref = prob.solve_direct()
    assert np.allclose(result.x, ref, atol=1e-6)


def test_chaotic_relaxation_with_overlap_converges():
    prob = make_problem(12)
    d = BlockDecomposition(prob.A, prob.b, nblocks=3, line=12, overlap=1)
    result = chaotic_block_jacobi(d, rng=RngTree(3), tol=1e-8)
    assert result.converged
    assert np.allclose(result.x, prob.solve_direct(), atol=1e-5)


def test_chaotic_needs_more_steps_than_sync():
    prob = make_problem(10)
    d1 = BlockDecomposition(prob.A, prob.b, nblocks=4, line=10)
    sync = block_jacobi(d1, tol=1e-8)
    d2 = BlockDecomposition(prob.A, prob.b, nblocks=4, line=10)
    chaotic = chaotic_block_jacobi(
        d2, rng=RngTree(11), tol=1e-8, activation_probability=0.4, max_delay=4
    )
    assert chaotic.converged
    assert chaotic.outer_iterations >= sync.outer_iterations


def test_chaotic_determinism_given_seed():
    prob = make_problem(8)
    runs = []
    for _ in range(2):
        d = BlockDecomposition(prob.A, prob.b, nblocks=4, line=8)
        r = chaotic_block_jacobi(d, rng=RngTree(5), tol=1e-8)
        runs.append((r.outer_iterations, r.residual_norm))
    assert runs[0] == runs[1]


def test_chaotic_validation():
    prob = make_problem(6)
    d = BlockDecomposition(prob.A, prob.b, nblocks=2, line=6)
    with pytest.raises(ValueError):
        chaotic_block_jacobi(d, rng=RngTree(0), activation_probability=0.0)
    with pytest.raises(ValueError):
        chaotic_block_jacobi(d, rng=RngTree(0), max_delay=-1)
    with pytest.raises(ConvergenceError):
        chaotic_block_jacobi(d, rng=RngTree(0), tol=1e-14, max_steps=1, raise_on_fail=True)
