"""Tests for the batched compute plane (:mod:`repro.compute`): kernel
bitwise identity, cohort mechanics, memo replay, zero-copy payload views —
and the run-level A/B guarantee that the plane is invisible to simulated
time."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.compute import (DIRECT_CHUNK, ComputePlane, batched_cg,
                           chunked_direct_solve, csr_matmat_into,
                           panel_probe)
from repro.numerics import BlockDecomposition, CgOperator, Poisson2D
from repro.numerics.cg import csr_matvec_into
from repro.p2p.task import StepPlan
from repro.util.hotpath import HOTPATH, clear_caches, hotpath_disabled
from repro.util.serialization import NDARRAY_HEADER_BYTES, measured_size


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


def _assert_same_result(res_a, res_b):
    assert np.array_equal(res_a.x, res_b.x)
    assert res_a.converged == res_b.converged
    assert res_a.iterations == res_b.iterations
    assert res_a.residual_norm == res_b.residual_norm
    assert res_a.flops == res_b.flops


def _spd(n, seed=0):
    prob = Poisson2D.manufactured(n)
    return prob.A, prob.b


# ------------------------------------------------------------ fused matvec


@pytest.mark.parametrize("n,k", [(5, 1), (9, 3), (12, 8), (16, 5)])
def test_csr_matmat_into_bitwise_per_column(n, k):
    A, _ = _spd(n)
    rng = np.random.default_rng(n * 31 + k)
    X = np.ascontiguousarray(rng.standard_normal((A.shape[0], k)))
    out = np.empty_like(X)
    csr_matmat_into(A, X, out)
    col = np.empty(A.shape[0])
    for j in range(k):
        csr_matvec_into(A, np.ascontiguousarray(X[:, j]), col)
        assert out[:, j].tobytes() == col.tobytes()


# ------------------------------------------------------------- batched CG


def test_batched_cg_bitwise_matches_scalar_solves():
    A, b = _spd(10)
    op = CgOperator(A)
    n = op.n
    rng = np.random.default_rng(3)
    requests = [
        (b, None, 1e-8, None),                       # cold start
        (rng.standard_normal(n), None, 1e-10, None), # different rhs
        (b, rng.standard_normal(n), 1e-10, None),    # warm start
        (b, None, 1e-10, 3),                         # iteration cap
        (np.zeros(n), None, 1e-10, None),            # converged at entry
    ]
    batch = batched_cg(op, requests, {})
    for (rhs, x0, tol, max_iter), got in zip(requests, batch):
        ref = op.solve(rhs, x0=x0, tol=tol, max_iter=max_iter)
        _assert_same_result(got, ref)


def test_batched_cg_singleton_and_workspace_reuse():
    A, b = _spd(8)
    op = CgOperator(A)
    ws = {}
    first = batched_cg(op, [(b, None, 1e-9, None)], ws)[0]
    # second call through the now-pooled workspace must not see stale state
    second = batched_cg(op, [(b, None, 1e-9, None)], ws)[0]
    ref = op.solve(b, tol=1e-9)
    _assert_same_result(first, ref)
    _assert_same_result(second, ref)
    assert 1 in ws


def test_batched_cg_breakdown_matches_scalar():
    # An indefinite matrix drives pAp <= 0: the batch must exit exactly
    # where the scalar loop does, before the x update.
    A = sp.csr_matrix(np.diag([1.0, -1.0, 2.0]))
    b = np.array([1.0, 1.0, 1.0])
    op = CgOperator(A)
    got = batched_cg(op, [(b, None, 1e-12, None)], {})[0]
    ref = op.solve(b, tol=1e-12)
    _assert_same_result(got, ref)
    assert not got.converged


def test_batched_cg_mixed_convergence_deactivates_individually():
    # Members with wildly different tolerances stop at their own iteration
    # count; late iterations of the survivor are unaffected by the stopped
    # member's stale direction column.
    A, _ = _spd(12)
    op = CgOperator(A)
    b = np.random.default_rng(12).standard_normal(op.n)
    requests = [(b, None, 1e-2, None), (b, None, 1e-11, None)]
    loose, tight = batched_cg(op, requests, {})
    _assert_same_result(loose, op.solve(b, tol=1e-2))
    _assert_same_result(tight, op.solve(b, tol=1e-11))
    assert loose.iterations < tight.iterations


# ------------------------------------------------------------ direct panels


def test_chunked_direct_solve_padding_independent():
    A, b = _spd(9)
    op = CgOperator(A)
    lu = op.factorization()
    rng = np.random.default_rng(5)
    rhs = [rng.standard_normal(op.n) for _ in range(11)]  # > one chunk
    panel = np.empty((op.n, DIRECT_CHUNK))
    xs = chunked_direct_solve(lu, rhs, panel)
    assert len(xs) == 11
    # per-column results do not depend on batch composition: solving each
    # rhs alone in its own zero-padded panel gives the same bytes
    for r, x in zip(rhs, xs):
        alone = chunked_direct_solve(lu, [r], panel)[0]
        assert x.tobytes() == alone.tobytes()
        assert x.flags["C_CONTIGUOUS"] and x.flags.owndata
    # the unpadded throughput path solves the same systems (no bitwise
    # claim, but the arithmetic is the same factorization)
    fast = chunked_direct_solve(lu, rhs, panel, pad=False)
    assert len(fast) == len(rhs)
    for x, y in zip(xs, fast):
        assert np.allclose(x, y, atol=1e-12)


def test_panel_probe_certifies_safe_regime():
    # small blocks: SuperLU's stacked path is the 1-D kernel per column
    A, b = _spd(8)
    op = CgOperator(A)
    lu = op.factorization()
    panel = np.empty((op.n, DIRECT_CHUNK))
    assert panel_probe(lu, op.n, panel)
    # probe passing implies stacked == 1-D for arbitrary mixed values
    rng = np.random.default_rng(8)
    rhs = [b] + [rng.standard_normal(op.n) for _ in range(6)]
    for r, x in zip(rhs, chunked_direct_solve(lu, rhs, panel)):
        assert x.tobytes() == lu.solve(r).tobytes()


def test_panel_probe_rejects_value_dependent_regime():
    # large strip blocks: stacked per-column results depend on the values
    # sharing the panel, so the probe must refuse them (the plane then
    # falls back to the 1-D loop through the shared factorization)
    prob = Poisson2D.manufactured(96)
    d = BlockDecomposition(prob.A, prob.b, nblocks=8, line=96, overlap=4)
    op = CgOperator(d.blocks[4].A_local)
    lu = op.factorization()
    panel = np.empty((op.n, DIRECT_CHUNK))
    assert not panel_probe(lu, op.n, panel)


# ---------------------------------------------------------------- cohorts


def _plan_direct(op, rhs, tol=1e-10, extra=0.0):
    return StepPlan(solver="direct", operator=op, rhs=rhs, tol=tol,
                    flops_extra=extra)


def _plan_cg(op, rhs, x0=None, tol=1e-10, max_iter=None, extra=0.0):
    return StepPlan(solver="cg", operator=op, rhs=rhs, x0=x0, tol=tol,
                    max_iter=max_iter, flops_extra=extra)


RATE = 250e6  # flops per simulated second, as a host of speed 1.0


def test_cohorts_share_by_matrix_bytes():
    A, _ = _spd(8)
    A_twin = A.copy()          # equal bytes, distinct object
    B = (A * 2.0).tocsr()      # different matrix
    plane = ComputePlane()
    m1 = plane.member_for(CgOperator(A))
    m2 = plane.member_for(CgOperator(A_twin))
    m3 = plane.member_for(CgOperator(B))
    assert m1.cohort is m2.cohort
    assert m3.cohort is not m1.cohort
    assert m1.cohort.member_count == 2
    assert plane.stats()["cohorts"] == 2


def test_direct_deferral_duration_and_collect():
    A, b = _spd(8)
    op = CgOperator(A)
    plane = ComputePlane()
    member = plane.member_for(op)
    plan = _plan_direct(op, b, extra=50.0)
    duration, result = plane.begin(member, plan, rate=RATE,
                                   overhead=2e-4, floor=5e-4)
    assert result is None and duration is not None
    # analytic duration: known before the solve runs
    from repro.numerics.cg import direct_flops_estimate
    expect = max((direct_flops_estimate(op.lu_nnz, op.n) + 50.0) / RATE
                 + 2e-4, 5e-4)
    assert duration == expect
    got = plane.collect(member)
    _assert_same_result(got, op.solve_direct(b, tol=plan.tol))
    assert plane.stats()["deferred"] == 1
    assert plane.stats()["flushes"] == 1


def test_cohort_flush_batches_siblings_bitwise():
    A, b = _spd(9)
    plane = ComputePlane()
    ops = [CgOperator(A) for _ in range(3)]
    members = [plane.member_for(op) for op in ops]
    rng = np.random.default_rng(9)
    rhss = [b] + [rng.standard_normal(ops[0].n) for _ in range(2)]
    for m, op, rhs in zip(members, ops, rhss):
        d, r = plane.begin(m, _plan_direct(op, rhs), rate=RATE,
                           overhead=2e-4, floor=5e-4)
        assert r is None
    # first collect flushes the whole cohort in one batched call
    for m, rhs in zip(members, rhss):
        got = plane.collect(m)
        ref = members[0].cohort.op.solve_direct(rhs, tol=1e-10)
        _assert_same_result(got, ref)
    assert plane.stats()["flushes"] == 1


def test_cg_pinned_defers_and_matches_eager():
    A, b = _spd(6)
    op = CgOperator(A)
    plane = ComputePlane()
    member = plane.member_for(op)
    plan = _plan_cg(op, b, tol=1e-10)
    # a floor so large that even the worst-case CG cost is pinned to it
    duration, result = plane.begin(member, plan, rate=RATE,
                                   overhead=2e-4, floor=10.0)
    assert result is None and duration == 10.0
    got = plane.collect(member)
    _assert_same_result(got, op.solve(b, tol=1e-10))


def test_cg_unpinned_solves_eagerly():
    A, b = _spd(12)
    op = CgOperator(A)
    plane = ComputePlane()
    member = plane.member_for(op)
    # a tight floor: worst-case CG cost exceeds it, so no deferral
    duration, result = plane.begin(member, _plan_cg(op, b), rate=RATE,
                                   overhead=2e-4, floor=1e-9)
    assert duration is None and result is not None
    _assert_same_result(result, op.solve(b, tol=1e-10))
    assert plane.stats()["immediate"] == 1


def test_cg_defer_disabled_by_flag():
    A, b = _spd(6)
    op = CgOperator(A)
    plane = ComputePlane()
    member = plane.member_for(op)
    old = HOTPATH.compute_batch_cg
    HOTPATH.compute_batch_cg = False
    try:
        duration, result = plane.begin(member, _plan_cg(op, b), rate=RATE,
                                       overhead=2e-4, floor=10.0)
    finally:
        HOTPATH.compute_batch_cg = old
    assert duration is None and result is not None


def test_solve_memo_replays_identical_requests():
    A, b = _spd(8)
    op = CgOperator(A)
    plane = ComputePlane()
    member = plane.member_for(op)
    kw = dict(rate=RATE, overhead=2e-4, floor=1e-9)
    _, first = plane.begin(member, _plan_cg(op, b), **kw)
    _, replay = plane.begin(member, _plan_cg(op, b.copy()), **kw)
    _assert_same_result(replay, first)
    assert plane.stats()["memo_hits"] == 1
    # the replayed x is a private copy: mutating it must not poison the memo
    replay.x[0] = 1e9
    _, again = plane.begin(member, _plan_cg(op, b), **kw)
    _assert_same_result(again, first)
    # a different rhs is a miss
    other = b * 2.0
    _, fresh = plane.begin(member, _plan_cg(op, other), **kw)
    _assert_same_result(fresh, op.solve(other, tol=1e-10))
    assert plane.stats()["memo_hits"] == 2


def test_discard_mid_defer_leaves_siblings_intact():
    A, b = _spd(9)
    plane = ComputePlane()
    op1, op2 = CgOperator(A), CgOperator(A)
    m1, m2 = plane.member_for(op1), plane.member_for(op2)
    plane.begin(m1, _plan_direct(op1, b), rate=RATE, overhead=2e-4,
                floor=5e-4)
    rhs2 = b * 3.0
    plane.begin(m2, _plan_direct(op2, rhs2), rate=RATE, overhead=2e-4,
                floor=5e-4)
    plane.discard(m1)  # crashed mid-defer
    assert m1.cohort.member_count == 1
    got = plane.collect(m2)
    _assert_same_result(got, m2.cohort.op.solve_direct(rhs2, tol=1e-10))
    with pytest.raises(RuntimeError):
        plane.collect(m1)


def test_collect_without_deferred_solve_raises():
    A, _ = _spd(6)
    plane = ComputePlane()
    member = plane.member_for(CgOperator(A))
    with pytest.raises(RuntimeError):
        plane.collect(member)


def test_panel_mode_always_stacks():
    A, b = _spd(8)
    op = CgOperator(A)
    plane = ComputePlane(direct_mode="panel")
    member = plane.member_for(op)
    plane.begin(member, _plan_direct(op, b), rate=RATE, overhead=2e-4,
                floor=5e-4)
    plane.collect(member)
    assert plane.stats()["batched_columns"] == 1
    assert plane.stats()["loop_columns"] == 0
    with pytest.raises(ValueError):
        ComputePlane(direct_mode="bogus")


# ----------------------------------------------------- zero-copy payloads


def test_outgoing_payloads_are_frozen_views_matching_copies():
    prob = Poisson2D.manufactured(10)
    d = BlockDecomposition(prob.A, prob.b, nblocks=3, line=10, overlap=1)
    rng = np.random.default_rng(4)
    for blk in d.blocks:
        x = rng.standard_normal(blk.n_ext)
        views = blk.outgoing_payloads(x)
        with hotpath_disabled():
            copies = blk.outgoing_payloads(x)
        assert sorted(views) == sorted(copies)
        for nb, v in views.items():
            assert np.array_equal(v, copies[nb])
            assert not v.flags.writeable  # frozen: aliasing fails loudly
            with pytest.raises(ValueError):
                v[0] = 123.0
            assert copies[nb].flags.writeable


# ------------------------------------------------- ndarray header constant


def test_ndarray_header_constant_matches_measured_charge():
    # daemon.py subtracts NDARRAY_HEADER_BYTES from measured payload sizes;
    # if the sizing model drifts, this pin fails rather than silently
    # miscounting simulated bytes on the wire.
    for n in (1, 17, 1024):
        arr = np.zeros(n)
        assert measured_size(arr) == arr.nbytes + NDARRAY_HEADER_BYTES + 256
        with hotpath_disabled():
            assert measured_size(arr) == \
                arr.nbytes + NDARRAY_HEADER_BYTES + 256


# ------------------------------------------------- repo-relative profiles


def test_profile_top_paths_are_repo_relative():
    # committed baselines embed profile_top paths: they must not leak the
    # recording machine's checkout prefix
    import pathlib

    from repro.obs.profile import profile_callable

    repo = str(pathlib.Path(__file__).resolve().parents[1])
    A, b = _spd(8)
    report, _ = profile_callable(lambda: CgOperator(A).solve(b), top_n=10)
    rows = report.as_dict()["top"]
    repro_rows = [r for r in rows if "repro" in r["file"]]
    assert repro_rows, "profiled run should surface repro frames"
    for row in rows:
        assert not row["file"].startswith(repo + "/"), row["file"]
    assert any(r["file"].startswith("src/repro/") for r in repro_rows)


# ------------------------------------------------------ run-level identity


def _ab(kw):
    from repro.experiments.driver import run_poisson_on_p2p

    clear_caches()
    on = run_poisson_on_p2p(**kw)
    with hotpath_disabled():
        off = run_poisson_on_p2p(**kw)
    return on, off


def test_run_flat_bitwise_plane_on_vs_off():
    on, off = _ab(dict(n=16, peers=4, seed=3, convergence_threshold=1e-6))
    assert on == off
    assert on.converged


def test_run_tiered_wheel_bitwise_plane_on_vs_off():
    from repro.p2p.config import P2PConfig

    cfg = P2PConfig(superpeer_tiers=2, superpeer_fanout=4,
                    heartbeat_mode="wheel")
    on, off = _ab(dict(n=16, peers=4, seed=1, config=cfg, n_daemons=12,
                       n_superpeers=4, convergence_threshold=1e-5))
    assert on == off


def test_run_churn_with_recoveries_bitwise_plane_on_vs_off():
    on, off = _ab(dict(n=16, peers=3, seed=7, disconnections=2,
                       convergence_threshold=1e-4))
    assert on == off
    assert on.recoveries >= 1


def test_run_fault_scenario_bitwise_plane_on_vs_off():
    from repro.faults.scenarios import scenario

    on, off = _ab(dict(n=16, peers=4, seed=2, faults=scenario("dirty-channel"),
                       n_daemons=12, convergence_threshold=1e-5,
                       horizon=60.0))
    assert on == off
    assert on.faults_executed > 0
