"""Tests for Poisson assembly, M-matrix theory and the CG solver."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import ConvergenceError
from repro.numerics import (
    Poisson2D,
    async_convergence_radius,
    conjugate_gradient,
    is_m_matrix,
    is_weak_regular_splitting,
    jacobi_iteration_matrix,
    poisson_matrix,
    poisson_rhs,
    relative_residual,
    spectral_radius,
    update_distance,
)
from repro.numerics.matrix import block_jacobi_iteration_matrix, is_z_matrix


# --------------------------------------------------------------------- poisson


def test_poisson_matrix_structure():
    n = 4
    A = poisson_matrix(n, scaled=False).toarray()
    assert A.shape == (16, 16)
    assert np.allclose(np.diag(A), 4.0)
    # 5-diagonal: nonzeros only on offsets 0, ±1, ±n
    for offset in range(-15, 16):
        diag = np.diag(A, offset)
        if offset in (0, 1, -1, n, -n):
            continue
        assert np.all(diag == 0.0), f"unexpected nonzeros at offset {offset}"
    # no horizontal wrap-around between grid rows
    assert A[n - 1, n] == 0.0
    assert A[n, n - 1] == 0.0


def test_poisson_matrix_symmetry_and_scaling():
    A = poisson_matrix(6, scaled=True)
    assert (A - A.T).nnz == 0
    h2 = (6 + 1.0) ** 2
    assert A[0, 0] == pytest.approx(4.0 * h2)


def test_poisson_matrix_is_m_matrix():
    A = poisson_matrix(4, scaled=False)
    assert is_z_matrix(A)
    assert is_m_matrix(A)


def test_poisson_matrix_validation():
    with pytest.raises(ValueError):
        poisson_matrix(0)


def test_manufactured_solution_convergence_order():
    """Discretization error of the manufactured problem shrinks like h^2."""
    errors = []
    for n in [8, 16, 32]:
        prob = Poisson2D.manufactured(n)
        x = prob.solve_direct()
        errors.append(prob.discretization_error(x))
    # halving h should cut the error by ~4
    assert errors[0] / errors[1] == pytest.approx(4.0, rel=0.3)
    assert errors[1] / errors[2] == pytest.approx(4.0, rel=0.3)


def test_direct_solution_residual_tiny():
    prob = Poisson2D.manufactured(10)
    x = prob.solve_direct()
    assert prob.residual_norm(x) < 1e-12


def test_heat_plate_solution_positive_interior():
    prob = Poisson2D.heat_plate(8, source=1.0)
    x = prob.solve_direct()
    assert (x > 0).all()  # M-matrix inverse positivity: heat stays positive
    assert prob.u_exact_grid is None
    with pytest.raises(ValueError):
        prob.discretization_error(x)


def test_poisson_rhs_boundary_folding():
    """Nonzero Dirichlet data must enter b only at edge-adjacent nodes."""
    n = 5
    b0 = poisson_rhs(n, lambda x, y: np.zeros_like(x))
    b1 = poisson_rhs(
        n, lambda x, y: np.zeros_like(x), boundary=lambda x, y: np.ones_like(x)
    )
    delta = (b1 - b0).reshape(n, n)
    interior = delta[1:-1, 1:-1]
    assert np.all(interior == 0.0)
    assert np.all(delta[0, :] > 0) and np.all(delta[-1, :] > 0)
    assert np.all(delta[:, 0] > 0) and np.all(delta[:, -1] > 0)


def test_poisson_rhs_constant_boundary_solution():
    """With f=0 and u=1 on the boundary, the discrete solution is u=1."""
    n = 6
    A = poisson_matrix(n, scaled=True)
    b = poisson_rhs(n, lambda x, y: np.zeros_like(x),
                    boundary=lambda x, y: np.ones_like(x))
    from scipy.sparse.linalg import spsolve

    x = spsolve(A.tocsc(), b)
    assert np.allclose(x, 1.0, atol=1e-10)


def test_problem_size_matches_paper_definition():
    # paper: n=2000 -> problem size 4,000,000 (n^2)
    prob = Poisson2D.manufactured(7)
    assert prob.size == 49


# --------------------------------------------------------------- matrix theory


def test_is_m_matrix_counterexamples():
    assert not is_m_matrix(np.array([[1.0, 2.0], [0.0, 1.0]]))  # positive off-diag
    assert not is_m_matrix(np.array([[0.0, -1.0], [-1.0, 0.0]]))  # zero diagonal
    assert not is_m_matrix(np.array([[1.0, -3.0], [-3.0, 1.0]]))  # inverse negative
    assert not is_m_matrix(np.ones((2, 3)))  # not square
    singular = np.array([[1.0, -1.0], [-1.0, 1.0]])
    assert not is_m_matrix(singular)


def test_jacobi_splitting_is_weak_regular_for_poisson():
    A = poisson_matrix(5, scaled=False)
    M = sp.diags(A.diagonal()).toarray()
    assert is_weak_regular_splitting(A, M)


def test_weak_regular_splitting_counterexample():
    A = np.array([[2.0, -1.0], [-1.0, 2.0]])
    M = np.array([[1.0, 1.0], [1.0, -1.0]])  # M^{-1} has negative entries
    assert not is_weak_regular_splitting(A, M)
    with pytest.raises(ValueError):
        is_weak_regular_splitting(A, np.eye(3))


def test_jacobi_iteration_matrix_radius_below_one():
    A = poisson_matrix(6, scaled=False)
    T = jacobi_iteration_matrix(A)
    rho = spectral_radius(T)
    assert 0.9 < rho < 1.0  # classic: cos(pi*h), close to but below 1
    # async condition: rho(|T|) = rho(T) here since T >= 0 off-diagonal
    assert async_convergence_radius(T) == pytest.approx(rho, rel=1e-8)


def test_jacobi_iteration_matrix_needs_nonzero_diagonal():
    with pytest.raises(ValueError):
        jacobi_iteration_matrix(np.array([[0.0, 1.0], [1.0, 1.0]]))


def test_block_jacobi_radius_beats_point_jacobi():
    """Bigger blocks -> smaller spectral radius -> fewer iterations."""
    n = 6
    A = poisson_matrix(n, scaled=False)
    T_point = jacobi_iteration_matrix(A)
    half = n * n // 2
    T_block = block_jacobi_iteration_matrix(
        A, [np.arange(0, half), np.arange(half, n * n)]
    )
    assert spectral_radius(T_block) < spectral_radius(T_point)


def test_block_jacobi_iteration_matrix_validation():
    A = poisson_matrix(3, scaled=False)
    with pytest.raises(ValueError, match="overlap"):
        block_jacobi_iteration_matrix(A, [np.arange(0, 5), np.arange(4, 9)])
    with pytest.raises(ValueError, match="cover"):
        block_jacobi_iteration_matrix(A, [np.arange(0, 5)])


def test_spectral_radius_power_method_matches_dense():
    A = poisson_matrix(5, scaled=False)
    T = np.abs(jacobi_iteration_matrix(A))
    exact = float(np.abs(np.linalg.eigvals(T)).max())
    sparse_T = sp.csr_matrix(T)
    assert spectral_radius(sparse_T) == pytest.approx(exact, rel=1e-6)


def test_spectral_radius_zero_matrix():
    assert spectral_radius(sp.csr_matrix((5, 5))) == 0.0


# -------------------------------------------------------------------------- cg


def test_cg_solves_poisson_exactly():
    prob = Poisson2D.manufactured(12)
    result = conjugate_gradient(prob.A, prob.b, tol=1e-12)
    assert result.converged
    ref = prob.solve_direct()
    assert np.allclose(result.x, ref, atol=1e-8)
    assert result.iterations > 0
    assert result.flops > 0


def test_cg_one_step_on_eigenvector_rhs():
    """The manufactured RHS is a discrete Laplacian eigenvector, so CG must
    converge in a single iteration — a sharp correctness check."""
    prob = Poisson2D.manufactured(12)
    result = conjugate_gradient(prob.A, prob.b, tol=1e-10)
    assert result.converged and result.iterations == 1


def test_cg_warm_start_converges_faster():
    # heat_plate's constant source is NOT an eigenvector: CG takes many steps
    prob = Poisson2D.heat_plate(12)
    ref = prob.solve_direct()
    cold = conjugate_gradient(prob.A, prob.b, tol=1e-10)
    warm = conjugate_gradient(prob.A, prob.b, x0=ref + 1e-8, tol=1e-10)
    assert cold.iterations > 5
    assert warm.iterations < cold.iterations


def test_cg_jacobi_preconditioning_works():
    prob = Poisson2D.manufactured(10)
    result = conjugate_gradient(prob.A, prob.b, tol=1e-10, jacobi_precondition=True)
    assert result.converged
    assert relative_residual(prob.A, result.x, prob.b) <= 1e-9


def test_cg_zero_rhs_returns_zero():
    A = poisson_matrix(5)
    result = conjugate_gradient(A, np.zeros(25), tol=1e-12)
    assert result.converged
    assert np.allclose(result.x, 0.0)
    assert result.iterations == 0


def test_cg_max_iter_and_raise():
    prob = Poisson2D.heat_plate(16)
    result = conjugate_gradient(prob.A, prob.b, tol=1e-14, max_iter=2)
    assert not result.converged
    assert result.iterations == 2
    with pytest.raises(ConvergenceError):
        conjugate_gradient(prob.A, prob.b, tol=1e-14, max_iter=2, raise_on_fail=True)


def test_cg_validation_errors():
    A = poisson_matrix(4)
    with pytest.raises(ValueError):
        conjugate_gradient(A, np.zeros(7))
    with pytest.raises(ValueError):
        conjugate_gradient(A, np.zeros(16), x0=np.zeros(3))
    rect = sp.csr_matrix(np.ones((3, 4)))
    with pytest.raises(ValueError):
        conjugate_gradient(rect, np.zeros(3))
    bad_diag = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 2.0]]))
    with pytest.raises(ValueError):
        conjugate_gradient(bad_diag, np.zeros(2), jacobi_precondition=True)


def test_cg_residual_history_monotone_tail():
    prob = Poisson2D.manufactured(8)
    result = conjugate_gradient(prob.A, prob.b, tol=1e-12, keep_history=True)
    hist = result.residual_history
    assert len(hist) == result.iterations + 1
    assert hist[-1] < hist[0]


def test_cg_dense_input_accepted():
    A = poisson_matrix(4).toarray()
    b = np.ones(16)
    result = conjugate_gradient(A, b, tol=1e-10)
    assert result.converged


def test_cg_non_spd_breakdown_detected():
    A = sp.csr_matrix(np.array([[1.0, 2.0], [2.0, 1.0]]))  # indefinite
    b = np.array([1.0, -1.0])
    result = conjugate_gradient(A, b, tol=1e-12)
    # either it happens to solve it or it reports breakdown; never diverge
    assert np.all(np.isfinite(result.x))


# ------------------------------------------------------------------- residuals


def test_relative_residual_and_update_distance():
    A = sp.identity(3, format="csr")
    b = np.array([1.0, 2.0, 2.0])
    assert relative_residual(A, b, b) == 0.0
    assert relative_residual(A, np.zeros(3), b) == pytest.approx(1.0)
    assert update_distance(np.array([1.0, 2.0]), np.array([1.0, 1.0])) == pytest.approx(0.5)
    assert update_distance(np.array([0.0]), np.array([0.0])) == 0.0
    assert update_distance(np.array([2.0]), np.array([1.0]), relative=False) == 1.0


def test_spectral_radius_general_sparse_uses_arpack():
    """A large sparse matrix with negative entries takes the ARPACK path."""
    rng = np.random.default_rng(3)
    n = 2000
    # sparse random matrix with mixed signs, scaled to a known radius regime
    density_rows = rng.integers(0, n, size=6000)
    density_cols = rng.integers(0, n, size=6000)
    values = rng.normal(size=6000)
    T = sp.coo_matrix((values, (density_rows, density_cols)),
                      shape=(n, n)).tocsr()
    T = T * (0.3 / np.abs(values).max())
    rho = spectral_radius(T)
    assert np.isfinite(rho) and rho >= 0
    # cross-check against ARPACK directly, pinning the start vector so the
    # reference does not depend on ARPACK's process-global random state
    from scipy.sparse.linalg import eigs

    v0 = np.random.default_rng(0).random(n) + 0.1
    ref = float(np.abs(
        eigs(T, k=1, which="LM", return_eigenvectors=False, v0=v0)
    ).max())
    assert rho == pytest.approx(ref, rel=1e-6)


def test_spectral_radius_tiny_general_matrix_dense_fallback():
    T = sp.csr_matrix(np.array([[0.0, -0.5], [0.5, 0.0]]))
    assert spectral_radius(T) == pytest.approx(0.5, rel=1e-9)


def test_spectral_radius_rejects_nonsquare():
    with pytest.raises(ValueError):
        spectral_radius(sp.csr_matrix(np.ones((2, 3))))
