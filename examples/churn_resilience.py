#!/usr/bin/env python
"""Churn resilience: the paper's §7 experiment, narrated and traced.

Runs the Poisson application on 6 peers while the churn injector randomly
powers machines off mid-computation (reconnecting them a second later, the
scaled stand-in for the paper's ≈20 s), then prints the full failure
timeline: disconnections, Spawner detections, Super-Peer evictions,
replacements, and Backup recoveries — ending with proof that the answer is
still right.

The whole run is recorded on a :class:`repro.obs.Tracer`: every layer
(kernel, network, RMI, protocol) emits structured events, the script dumps
them as JSON Lines next to this file, and closes with the
:class:`repro.obs.RunReport` summary.  Churn here hits spare Daemons too
(not only computing peers), so the trace shows the Super-Peer eviction
path alongside Backup recovery.

Run:  python examples/churn_resilience.py
"""

import numpy as np

from repro.apps import make_poisson_app
from repro.churn import ChurnInjector, PaperChurn
from repro.experiments.config import (
    EXPERIMENT_CONFIG,
    EXPERIMENT_LINK_SCALE,
    optimal_overlap,
)
from repro.numerics import Poisson2D
from repro.obs import Tracer, build_run_report, write_jsonl
from repro.p2p import build_cluster, launch_application
from repro.util.rng import RngTree


def main() -> None:
    # seed 4 deterministically fells both computing peers (-> Backup
    # recovery) and spare Daemons (-> Super-Peer eviction)
    n, peers, disconnections, seed = 48, 6, 4, 4

    tracer = Tracer()
    cluster = build_cluster(
        n_daemons=12, n_superpeers=3, seed=seed,
        config=EXPERIMENT_CONFIG, link_scale=EXPERIMENT_LINK_SCALE,
        tracer=tracer,
    )
    app = make_poisson_app(
        "churny", n=n, num_tasks=peers, overlap=optimal_overlap(n, peers),
    )
    spawner = launch_application(cluster, app)

    injector = ChurnInjector(
        cluster.sim,
        cluster.testbed.daemon_hosts,
        PaperChurn(n_disconnections=disconnections, reconnect_delay=1.0),
        RngTree(seed).child("churn"),
        horizon=2.0,
        log=cluster.log,
    )

    sim = cluster.sim
    sim.run(until=sim.any_of([spawner.done, sim.timeout(900.0)]))
    assert spawner.done.triggered, "did not converge"

    print(f"converged at t={spawner.execution_time:.3f}s with "
          f"{injector.disconnections} disconnections\n")
    print("failure timeline:")
    interesting = (
        "disconnect", "reconnect", "spawner_failure_detected",
        "sp_evict", "spawner_assigned", "task_recovered",
    )
    for record in cluster.log.records:
        if record.kind in interesting:
            print(f"  {record}")

    print("\nrecovery summary:")
    for rec in cluster.telemetry.recoveries:
        source = "scratch (all backups lost)" if rec.from_scratch else "Backup"
        print(f"  t={rec.time:.3f}s task {rec.task_id} resumed at "
              f"iteration {rec.resumed_iteration} from {source}")

    collector = sim.process(spawner.collect_solution())
    sim.run(until=collector)
    x = np.zeros(n * n)
    for fragment in collector.value.values():
        offset, values = fragment
        x[offset : offset + len(values)] = values
    print(f"\nrelative residual after all that churn: "
          f"{Poisson2D.manufactured(n).residual_norm(x):.2e}")

    path = "churn_resilience_trace.jsonl"
    n_events = write_jsonl(tracer, path)
    print(f"\nwrote {n_events} trace events to {path}")

    report = build_run_report(
        telemetry=cluster.telemetry, network=cluster.network, tracer=tracer,
        spawner=spawner, superpeers=cluster.superpeers, app_id=app.app_id,
    )
    print()
    print(report.to_text())


if __name__ == "__main__":
    main()
