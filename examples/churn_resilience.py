#!/usr/bin/env python
"""Churn resilience: the paper's §7 experiment, narrated.

Runs the Poisson application on 6 peers while the churn injector randomly
powers machines off mid-computation (reconnecting them a second later, the
scaled stand-in for the paper's ≈20 s), then prints the full failure
timeline: disconnections, Spawner detections, replacements, and Backup
recoveries — ending with proof that the answer is still right.

Run:  python examples/churn_resilience.py
"""

import numpy as np

from repro.apps import make_poisson_app
from repro.churn import ChurnInjector, PaperChurn
from repro.experiments.config import (
    EXPERIMENT_CONFIG,
    EXPERIMENT_LINK_SCALE,
    optimal_overlap,
)
from repro.numerics import Poisson2D
from repro.p2p import build_cluster, launch_application
from repro.util.rng import RngTree


def main() -> None:
    n, peers, disconnections, seed = 48, 6, 3, 7

    cluster = build_cluster(
        n_daemons=12, n_superpeers=3, seed=seed,
        config=EXPERIMENT_CONFIG, link_scale=EXPERIMENT_LINK_SCALE,
    )
    app = make_poisson_app(
        "churny", n=n, num_tasks=peers, overlap=optimal_overlap(n, peers),
    )
    spawner = launch_application(cluster, app)

    injector = ChurnInjector(
        cluster.sim,
        cluster.testbed.daemon_hosts,
        PaperChurn(n_disconnections=disconnections, reconnect_delay=1.0),
        RngTree(seed).child("churn"),
        horizon=2.0,
        log=cluster.log,
        victim_filter=lambda h: (
            (d := cluster.daemons.get(h.name)) is not None
            and d.runner is not None
        ),
    )

    sim = cluster.sim
    sim.run(until=sim.any_of([spawner.done, sim.timeout(900.0)]))
    assert spawner.done.triggered, "did not converge"

    print(f"converged at t={spawner.execution_time:.3f}s with "
          f"{injector.disconnections} disconnections\n")
    print("failure timeline:")
    interesting = (
        "disconnect", "reconnect", "spawner_failure_detected",
        "spawner_assigned", "task_recovered",
    )
    for record in cluster.log.records:
        if record.kind in interesting:
            print(f"  {record}")

    print("\nrecovery summary:")
    for rec in cluster.telemetry.recoveries:
        source = "scratch (all backups lost)" if rec.from_scratch else "Backup"
        print(f"  t={rec.time:.3f}s task {rec.task_id} resumed at "
              f"iteration {rec.resumed_iteration} from {source}")

    collector = sim.process(spawner.collect_solution())
    sim.run(until=collector)
    x = np.zeros(n * n)
    for fragment in collector.value.values():
        offset, values = fragment
        x[offset : offset + len(values)] = values
    print(f"\nrelative residual after all that churn: "
          f"{Poisson2D.manufactured(n).residual_norm(x):.2e}")


if __name__ == "__main__":
    main()
