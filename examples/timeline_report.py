#!/usr/bin/env python
"""Timeline reporting: watch a stormy run as a narrative and a strip chart.

Runs the Poisson application under heavy churn, then renders the run three
ways from its event log: the chronological protocol narrative, an ASCII
activity chart (one row per machine), and the headline counters.

Run:  python examples/timeline_report.py
"""

from repro.apps import make_poisson_app
from repro.churn import ChurnInjector, PaperChurn
from repro.experiments.config import (
    EXPERIMENT_CONFIG,
    EXPERIMENT_LINK_SCALE,
    optimal_overlap,
)
from repro.experiments.timeline import activity_chart, event_timeline, run_summary
from repro.p2p import build_cluster, launch_application
from repro.util.rng import RngTree


def main() -> None:
    n, peers, seed = 64, 6, 13
    cluster = build_cluster(
        n_daemons=12, n_superpeers=3, seed=seed,
        config=EXPERIMENT_CONFIG, link_scale=EXPERIMENT_LINK_SCALE,
    )
    app = make_poisson_app(
        "storm", n=n, num_tasks=peers, overlap=optimal_overlap(n, peers),
    )
    spawner = launch_application(cluster, app)
    ChurnInjector(
        cluster.sim,
        cluster.testbed.daemon_hosts,
        PaperChurn(n_disconnections=4, reconnect_delay=1.0),
        RngTree(seed).child("churn"),
        horizon=1.2,
        log=cluster.log,
        victim_filter=lambda h: (
            (d := cluster.daemons.get(h.name)) is not None
            and d.runner is not None
        ),
    )

    sim = cluster.sim
    sim.run(until=sim.any_of([spawner.done, sim.timeout(900.0)]))

    print("== narrative ==")
    print(event_timeline(cluster.log))
    print("\n== activity chart ==")
    print(activity_chart(cluster.log, width=70))
    print("\n== summary ==")
    for key, value in run_summary(cluster.log).items():
        print(f"  {key:>18}: {value}")
    if spawner.execution_time is not None:
        print(f"  {'execution time':>18}: {spawner.execution_time:.3f}s")


if __name__ == "__main__":
    main()
