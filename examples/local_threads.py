#!/usr/bin/env python
"""Real threads, no simulator: asynchronous vs synchronous execution.

Runs the same Poisson application on the ``repro.local`` backend — one
genuine Python thread per task, last-write-wins channels between them —
first free-running (asynchronous), then barriered (BSP).  Both must reach
the same solution; the iteration profiles show the asynchronous schedule's
skew (threads advance at different rates) versus the lockstep profile.

Note: CPython's GIL limits parallel *speedup* for this workload; the point
of this backend is demonstrating the chaotic execution semantics on real
concurrency (see DESIGN.md).

Run:  python examples/local_threads.py
"""

import numpy as np

from repro.apps import make_poisson_app
from repro.local import ThreadedEngine
from repro.numerics import Poisson2D


def stitched_residual(fragments: dict, n: int) -> float:
    x = np.zeros(n * n)
    for fragment in fragments.values():
        offset, values = fragment
        x[offset : offset + len(values)] = values
    return Poisson2D.manufactured(n).residual_norm(x)


def main() -> None:
    n, tasks = 24, 3
    app = make_poisson_app(
        "threads", n=n, num_tasks=tasks, overlap=2,
        convergence_threshold=1e-8, warm_start=True,
    )

    for mode in ("async", "sync"):
        engine = ThreadedEngine(app, mode=mode)
        result = engine.run()
        profile = [result.iterations[k] for k in range(tasks)]
        print(f"{mode:>5}: converged={result.converged} "
              f"wall={result.wall_time:.2f}s iterations={profile} "
              f"useless={[result.useless_iterations[k] for k in range(tasks)]} "
              f"residual={stitched_residual(result.fragments, n):.2e}")


if __name__ == "__main__":
    main()
