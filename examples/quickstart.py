#!/usr/bin/env python
"""Quickstart: solve the paper's Poisson problem on a simulated P2P network.

Builds a 10-machine heterogeneous testbed with 3 Super-Peers, launches the
block-Jacobi Poisson application on 4 computing peers, waits for the
Spawner's centralized convergence detection, and checks the stitched
solution against a sparse direct solve.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.apps import make_poisson_app
from repro.numerics import Poisson2D
from repro.p2p import build_cluster, launch_application


def main() -> None:
    n = 32          # grid size: the linear system has n^2 = 1024 unknowns
    peers = 4       # computing peers (the paper uses 80; scale to taste)

    cluster = build_cluster(n_daemons=10, n_superpeers=3, seed=42)
    app = make_poisson_app(
        "quickstart", n=n, num_tasks=peers, overlap=2,
        convergence_threshold=1e-8,
    )
    spawner = launch_application(cluster, app)

    sim = cluster.sim
    sim.run(until=sim.any_of([spawner.done, sim.timeout(600.0)]))
    if not spawner.done.triggered:
        raise SystemExit("did not converge within the horizon")

    print(f"converged in {spawner.execution_time:.2f} simulated seconds")
    telemetry = cluster.telemetry
    print(f"iterations per task : {dict(telemetry.iterations)}")
    print(f"checkpoints shipped : {telemetry.checkpoints_sent}")
    print(f"data messages sent  : {telemetry.data_messages_sent}")

    # collect the owned fragments and compare against a direct solve
    collector = sim.process(spawner.collect_solution())
    sim.run(until=collector)
    x = np.zeros(n * n)
    for fragment in collector.value.values():
        offset, values = fragment
        x[offset : offset + len(values)] = values

    problem = Poisson2D.manufactured(n)
    print(f"relative residual   : {problem.residual_norm(x):.2e}")
    print(f"error vs direct     : "
          f"{np.max(np.abs(x - problem.solve_direct())):.2e}")


if __name__ == "__main__":
    main()
