#!/usr/bin/env python
"""Beyond the paper's linear Poisson: the §8 future-work applications.

Runs two more problem classes on the unchanged runtime:

* the semilinear problem  −Δu + c·u³ = f   (nonlinear, inner Newton+CG);
* upwind convection–diffusion  −εΔu + w·∇u = f   (nonsymmetric M-matrix,
  inner BiCGSTAB);

checks both against sequential references, and prints each decomposition's
asynchronous-convergence certificate ρ(|T|) — the §6 condition that is the
mathematical licence for running them chaotically at all.

Run:  python examples/beyond_linear.py
"""

import numpy as np

from repro.apps import (
    make_convdiff_app,
    make_nonlinear_app,
    nonlinear_reference,
)
from repro.numerics import BlockDecomposition, async_certificate
from repro.numerics.convdiff import ConvectionDiffusion2D
from repro.p2p import build_cluster, launch_application


def run_app(app, size):
    cluster = build_cluster(n_daemons=8, n_superpeers=2, seed=5)
    spawner = launch_application(cluster, app)
    sim = cluster.sim
    sim.run(until=sim.any_of([spawner.done, sim.timeout(900.0)]))
    assert spawner.done.triggered, f"{app.app_id} did not converge"
    collector = sim.process(spawner.collect_solution())
    sim.run(until=collector)
    x = np.zeros(size)
    for fragment in collector.value.values():
        offset, values = fragment
        x[offset : offset + len(values)] = values
    return x, spawner.execution_time


def main() -> None:
    n, tasks = 16, 4

    # -- nonlinear -----------------------------------------------------------
    c = 1.0
    app = make_nonlinear_app("nonlinear", n=n, num_tasks=tasks, c=c,
                             convergence_threshold=1e-9)
    x, t = run_app(app, n * n)
    ref = nonlinear_reference(n, c=c)
    print(f"nonlinear  (-Δu + {c}·u³ = f):    t={t:.2f}s  "
          f"max error vs Newton reference = {np.max(np.abs(x - ref)):.2e}")

    # -- convection-diffusion --------------------------------------------------
    eps, wx, wy = 0.3, 1.5, 0.5
    problem = ConvectionDiffusion2D(n, eps=eps, wx=wx, wy=wy)
    decomp = BlockDecomposition(problem.A, problem.b, nblocks=tasks, line=n)
    cert = async_certificate(decomp)
    print(f"convdiff certificate: {cert}")
    app = make_convdiff_app("convdiff", n=n, num_tasks=tasks, eps=eps,
                            wx=wx, wy=wy, convergence_threshold=1e-9)
    x, t = run_app(app, n * n)
    print(f"convdiff   (-{eps}Δu + w·∇u = f): t={t:.2f}s  "
          f"max error vs direct solve     = "
          f"{np.max(np.abs(x - problem.u_star)):.2e}")


if __name__ == "__main__":
    main()
