#!/usr/bin/env python
"""Writing your own application: an asynchronous PageRank-style task.

The paper's API contract (§4.2): "A user application is a SPMD Java program
which uses JaceP2P methods by extending the Task class."  This example does
the Python equivalent — subclass :class:`repro.p2p.Task`, implement the
state and iteration hooks, and launch it on the runtime, with a machine
failure thrown in to show checkpoint/rollback working for *custom* state.

The computation: power iteration for the PageRank vector of a ring-of-
cliques graph, partitioned by node ranges.  Each task owns a slice of the
rank vector; boundary contributions flow asynchronously between neighbour
slices.  The damping makes every update a contraction, so the chaotic
(asynchronous) execution converges to the same fixed point.
"""

import numpy as np

from repro.p2p import (
    AppSpec,
    IterationStep,
    Task,
    TaskContext,
    build_cluster,
    launch_application,
)


def ring_of_cliques(num_cliques: int, clique_size: int) -> np.ndarray:
    """Column-stochastic link matrix of a ring of cliques."""
    n = num_cliques * clique_size
    A = np.zeros((n, n))
    for c in range(num_cliques):
        base = c * clique_size
        for i in range(clique_size):
            for j in range(clique_size):
                if i != j:
                    A[base + i, base + j] = 1.0
        # one edge to the next clique closes the ring
        nxt = ((c + 1) % num_cliques) * clique_size
        A[nxt, base] = 1.0
    return A / np.maximum(A.sum(axis=0), 1.0)


class PageRankTask(Task):
    """One slice of the damped power iteration ``r ← d·M r + (1-d)/N``."""

    def setup(self, ctx: TaskContext) -> None:
        super().setup(ctx)
        cliques = int(ctx.params["cliques"])
        size = int(ctx.params["clique_size"])
        self.damping = float(ctx.params.get("damping", 0.85))
        M = ring_of_cliques(cliques, size)
        self.N = M.shape[0]
        per = self.N // ctx.num_tasks
        self.lo = ctx.task_id * per
        self.hi = self.N if ctx.task_id == ctx.num_tasks - 1 else self.lo + per
        self.M_rows = M[self.lo : self.hi, :]  # my rows need ALL columns
        self.r_global = np.full(self.N, 1.0 / self.N)

    def initial_state(self) -> dict:
        return {"r_global": np.full(self.N, 1.0 / self.N)}

    def load_state(self, state: dict) -> None:
        self.r_global = np.array(state["r_global"], copy=True)

    def dump_state(self) -> dict:
        return {"r_global": self.r_global.copy()}

    def iterate(self, inbox: dict) -> IterationStep:
        # fold in the freshest slices the neighbours published
        for _, (lo, hi, values) in inbox.items():
            self.r_global[lo:hi] = values
        mine_old = self.r_global[self.lo : self.hi].copy()
        mine = self.damping * (self.M_rows @ self.r_global) + (1 - self.damping) / self.N
        self.r_global[self.lo : self.hi] = mine
        distance = float(np.max(np.abs(mine - mine_old)))
        payload = (self.lo, self.hi, mine.copy())
        outgoing = {
            k: payload for k in range(self.ctx.num_tasks) if k != self.ctx.task_id
        }
        return IterationStep(
            flops=2.0 * self.M_rows.size,
            outgoing=outgoing,
            local_distance=distance,
        )

    def solution_fragment(self):
        return (self.lo, self.r_global[self.lo : self.hi].copy())


def main() -> None:
    cliques, clique_size, tasks = 6, 5, 3
    app = AppSpec(
        app_id="pagerank",
        task_factory=PageRankTask,
        num_tasks=tasks,
        params={"cliques": cliques, "clique_size": clique_size},
        convergence_threshold=1e-10,
        stability_window=5,
    )
    cluster = build_cluster(n_daemons=8, n_superpeers=2, seed=11)
    spawner = launch_application(cluster, app)

    sim = cluster.sim
    # sabotage: power off a computing machine mid-run
    def saboteur(env):
        yield env.timeout(0.12)
        victims = [
            h for h in cluster.testbed.daemon_hosts
            if (d := cluster.daemons.get(h.name)) is not None
            and d.runner is not None
        ]
        victims[0].fail(cause="example")
        yield env.timeout(1.0)
        victims[0].recover()

    sim.process(saboteur(sim))
    sim.run(until=sim.any_of([spawner.done, sim.timeout(600.0)]))
    assert spawner.done.triggered, "did not converge"

    collector = sim.process(spawner.collect_solution())
    sim.run(until=collector)
    N = cliques * clique_size
    r = np.zeros(N)
    for fragment in collector.value.values():
        lo, values = fragment
        r[lo : lo + len(values)] = values

    # reference: dense damped power iteration
    M = ring_of_cliques(cliques, clique_size)
    ref = np.full(N, 1.0 / N)
    for _ in range(500):
        ref = 0.85 * (M @ ref) + 0.15 / N

    print(f"converged at t={spawner.execution_time:.3f}s "
          f"(recoveries: {len(cluster.telemetry.recoveries)})")
    print(f"max |pagerank - reference| = {np.max(np.abs(r - ref)):.2e}")
    top = np.argsort(r)[::-1][:5]
    print("top nodes:", ", ".join(f"{i} ({r[i]:.4f})" for i in top))


if __name__ == "__main__":
    main()
