"""Figure 7 + claim C2 — the paper's headline result.

Paper (§7, Fig. 7): Poisson execution time vs n (2000…5000) for 0…50 random
disconnections on 80 peers; the maximum slowdown is ×2 at n = 2000 and ×2.5
at n = 5000, and "although there are a large amount of disconnections, this
factor does not increase much".

Scaled replica: n ∈ {40…128} on 8 peers, 0…6 disconnections (same per-peer
disconnection density), optimal overlap per n, checkpoint every 5
iterations, 20 backup-peers (clamped), reconnect after the scaled delay.

Shape assertions (not absolute numbers):
* execution time grows with the number of disconnections for every n;
* the max-churn slowdown stays within a small factor (< 4) for every n;
* the slowdown factor varies only mildly across n (max/min < 2.5).
"""

import pytest

from repro.experiments import figure7_sweep
from repro.experiments.plotting import figure7_chart


@pytest.mark.benchmark(group="figure7")
def test_figure7_execution_times(benchmark, record_table, sweep_engine):
    result = benchmark.pedantic(
        lambda: figure7_sweep(
            ns=(40, 64, 96, 128),
            disconnections=(0, 2, 4, 6),
            peers=8,
            repeats=1,
            engine=sweep_engine,
        ),
        rounds=1,
        iterations=1,
    )
    record_table("figure7", result.format_table() + "\n\n" + figure7_chart(result))

    for n in result.ns:
        base = result.times[(n, 0)]
        worst = result.times[(n, result.disconnections[-1])]
        assert base > 0
        # churn slows things down, but bounded: the paper's "supports
        # disconnections rather well"
        assert worst > base, f"n={n}: churn did not slow execution"
        assert worst / base < 4.0, f"n={n}: slowdown {worst/base:.2f} too large"
    slowdowns = [result.slowdown(n) for n in result.ns]
    assert max(slowdowns) / min(slowdowns) < 2.5, (
        "slowdown factor should vary only mildly with n (paper: x2 vs x2.5)"
    )
    # every run converged (the asynchronous algorithm tolerates the churn)
    assert all(r.converged for r in result.runs)
