"""Decentralized-control-plane benchmarks: disabled cost + takeover latency.

The gossip layer promises two numbers (``docs/gossip.md``):

1. **The substrate is free when off.**  With ``gossip_enabled=False``
   (the default) no agent constructs and every hot site reduces to an
   ``if self.gossip is not None:`` check.  Results are bitwise-identical
   (``tests/test_gossip.py``); this file bounds the *wall-clock* cost the
   same way ``bench_obs_overhead.py`` bounds the disabled tracer: the
   measured per-check cost of a ``None`` guard, multiplied by a generous
   upper bound on guarded-site crossings per kernel event, must stay
   under 5% of the measured per-event workload cost.  Ratio of two
   in-process medians — machine-independent.

2. **A dead Spawner is survived in bounded time.**  The ``spawner-down``
   scenario at quick scale must converge through a warm-standby
   takeover; the simulated latency from the crash to the standby's
   promotion is deterministic (same seed → same beats, probes, reign),
   so the recorded value doubles as a replay pin for
   ``scripts/check_bench_regression.py``.
"""

from __future__ import annotations

import time

import pytest

from repro.apps import make_poisson_app
from repro.exec import RunSpec
from repro.experiments.config import optimal_overlap
from repro.faults import scenario, scenario_overrides
from repro.p2p import build_cluster, launch_application

REPEATS = 5
OVERHEAD_BUDGET = 0.05
#: generous upper bound on disabled-gossip guard sites crossed per kernel
#: event (spawner maintenance, daemon heartbeat/adoption, convergence
#: check — no event path crosses more than a handful)
GUARDS_PER_EVENT = 4


def _median(samples: list[float]) -> float:
    ordered = sorted(samples)
    return ordered[len(ordered) // 2]


def _disabled_run() -> tuple[float, int]:
    """One gossip-off quick solve; returns (wall seconds, kernel events)."""
    cluster = build_cluster(n_daemons=6, n_superpeers=2, seed=0)
    app = make_poisson_app("bench", n=32, num_tasks=4,
                           overlap=optimal_overlap(32, 4))
    spawner = launch_application(cluster, app)
    sim = cluster.sim
    start = time.perf_counter()
    sim.run(until=spawner.done)
    wall = time.perf_counter() - start
    assert spawner.done.triggered
    return wall, sim.event_count


def _guard_cost_per_check() -> float:
    """Measured cost of one disabled-path ``is not None`` check."""
    gossip = None
    n = 200_000
    samples = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        for _ in range(n):
            if gossip is not None:  # pragma: no cover - never true
                raise AssertionError
        samples.append(time.perf_counter() - start)
    return _median(samples) / n


@pytest.mark.gossip_bench
def test_record_gossip_baseline(record_json):
    """Emit ``BENCH_gossip.json`` for ``scripts/check_bench_regression.py``."""
    # -- arm 1: disabled-path overhead bound
    walls, events = [], 0
    for _ in range(REPEATS):
        wall, events = _disabled_run()
        walls.append(wall)
    disabled_wall = _median(walls)
    guard = _guard_cost_per_check()
    per_event = disabled_wall / events
    overhead_fraction = GUARDS_PER_EVENT * guard / per_event
    assert overhead_fraction < OVERHEAD_BUDGET, (
        f"guard check {guard * 1e9:.1f} ns vs {per_event * 1e9:.1f} ns/event"
    )

    # -- arm 2: warm-standby takeover latency (simulated, deterministic)
    plan = scenario("spawner-down")
    crash_time = plan.schedule()[0].time
    start = time.perf_counter()
    result = RunSpec(n=32, peers=4, seed=0, faults=plan,
                     **scenario_overrides("spawner-down")).run()
    takeover_wall = time.perf_counter() - start
    assert result.converged and result.residual < 1e-4
    assert result.takeovers == 1 and result.takeover_at is not None
    latency = result.takeover_at - crash_time

    record_json("BENCH_gossip", {
        "disabled_wall_s": round(disabled_wall, 4),
        "events": events,
        "guard_ns": round(guard * 1e9, 3),
        "guards_per_event": GUARDS_PER_EVENT,
        "overhead_fraction": round(overhead_fraction, 5),
        "overhead_budget": OVERHEAD_BUDGET,
        "takeover_converged": result.converged,
        "takeover_crash_time": crash_time,
        "takeover_at": result.takeover_at,
        "takeover_latency_s": round(latency, 6),
        "takeover_wall_s": round(takeover_wall, 3),
        "takeover_residual": result.residual,
    })
