"""Ablation A4 — bootstrap & failure-detection scaling (§5.1–§5.3).

The hybrid topology exists to keep joins and reservations cheap at scale:
Daemons spread over the Super-Peers, and a silent peer is evicted within
the heartbeat timeout.

Shape assertions:
* a whole population registers within a few heartbeat periods, at every
  population size (no pile-up at one coordinator);
* Daemon load is spread over the Super-Peers (max load ≪ population);
* the Spawner detects a computing-peer failure within
  heartbeat_timeout + 2·monitor_period (+ messaging slack).
"""

import pytest

from repro.experiments.ablations import bootstrap_scaling
from repro.experiments.config import EXPERIMENT_CONFIG, EXPERIMENT_LINK_SCALE
from repro.p2p import build_cluster, launch_application
from repro.apps import make_poisson_app


@pytest.mark.benchmark(group="protocols")
def test_bootstrap_population_scaling(benchmark, record_table):
    table = benchmark.pedantic(
        lambda: bootstrap_scaling(populations=(10, 25, 50, 100)),
        rounds=1,
        iterations=1,
    )
    record_table("bootstrap_scaling", table.format_table())

    for pop, registered_by, max_load in table.rows:
        assert registered_by is not None, f"population {pop} never registered"
        assert registered_by < 5.0
        assert max_load < pop, "one Super-Peer swallowed the whole population"


@pytest.mark.benchmark(group="protocols")
def test_failure_detection_delay(benchmark, record_table):
    cfg = EXPERIMENT_CONFIG

    def measure():
        cluster = build_cluster(
            n_daemons=10, n_superpeers=3, seed=5, config=cfg,
            link_scale=EXPERIMENT_LINK_SCALE,
        )
        app = make_poisson_app("p", n=48, num_tasks=6, overlap=2)
        spawner = launch_application(cluster, app)
        sim = cluster.sim
        sim.run(until=0.6)  # everyone assigned and iterating
        assert spawner.register.assigned_count() == 6
        victim_name = spawner.register.slot(2).daemon_id.rsplit("#", 1)[0]
        victim = next(
            h for h in cluster.testbed.daemon_hosts if h.name == victim_name
        )
        fail_at = sim.now
        victim.fail(cause="bench")
        while spawner.failures_detected == 0 and sim.now < fail_at + 10:
            sim.run(until=sim.now + 0.02)
        return sim.now - fail_at

    delay = benchmark.pedantic(measure, rounds=1, iterations=1)
    bound = cfg.heartbeat_timeout + 2 * cfg.monitor_period + 0.1
    record_table(
        "failure_detection",
        f"A4: spawner failure-detection delay = {delay:.3f}s "
        f"(bound {bound:.3f}s; heartbeat_timeout={cfg.heartbeat_timeout}s)",
    )
    assert delay <= bound
