"""Batched compute plane benchmark: cohort-vectorized direct solves.

Two arms, one committed artifact (``BENCH_compute.json``):

* **speedup** — a compute-heavy 16-peer Poisson run with cached-LU inner
  solves (``inner_solver="direct"``), timed plane-on in ``"panel"`` mode
  (always-stacked multi-RHS solves; interior strip blocks are
  byte-identical, so one cohort factorizes once for all of them) against
  the full bypass under :func:`repro.util.hotpath.hotpath_disabled` (legacy
  per-task decomposition, per-task factorization, single-vector solves,
  eager copies).  Panel mode is the throughput arm and is *not* claimed
  bitwise against the 1-D path, so this arm asserts convergence, not
  equality.  The committed ``speedup`` is gated (>= ``MIN_SPEEDUP``) by
  ``scripts/check_bench_regression.py``.

* **identity** — the default ``"auto"`` plane (probe-gated panels, lazy
  deferral, solve memo, zero-copy payload/checkpoint paths) against the
  same bypass at a smaller scale, asserting the run is **bitwise
  identical**: same simulated convergence time, same iteration count, same
  assembled solution bytes.  Recorded as ``bitwise_identical``, which the
  regression gate requires to be present and true.

``REPRO_COMPUTE_SMOKE=1`` runs the identity arm only — the
machine-independent half — and records to
``benchmarks/results/compute_smoke.json`` instead of the committed
baseline; CI uses it as a fast A/B-equivalence check without timing noise.
"""

from __future__ import annotations

import os
import time

from repro.apps import make_poisson_app
from repro.experiments.config import EXPERIMENT_LINK_SCALE, optimal_overlap
from repro.p2p import P2PConfig, build_cluster, launch_application
from repro.util.hotpath import clear_caches, hotpath_disabled

#: required plane-on vs bypass wall-clock ratio for the speedup arm
MIN_SPEEDUP = 1.8

#: best-of-k wall-clock measurement per arm
REPS = 2

#: quiet protocol layer (as bench_hotpath): the run measures inner-solve
#: and payload hot paths, not failure detection
QUIET_CONFIG = P2PConfig(
    heartbeat_period=30.0,
    heartbeat_timeout=95.0,
    monitor_period=30.0,
    standby_takeover_timeout=95.0,
    checkpoint_frequency=10_000,
    stability_window=3,
)

SPEEDUP_KW = dict(n=320, peers=16, seed=0, threshold=1e-3, horizon=3600.0)
#: identity scale chosen inside the probe-certified regime (block size
#: ~1k rows), so the stacked panel path itself is exercised bitwise
IDENTITY_KW = dict(n=64, peers=8, seed=0, threshold=1e-6, horizon=3600.0)


def _run(n: int, peers: int, seed: int, threshold: float, horizon: float,
         direct_mode: str = "auto"):
    """One hand-assembled direct-solver Poisson run (mirrors
    bench_swarm's harness so the cluster's compute plane stays
    reachable).  Returns ``(signature, plane_stats, wall_seconds)``."""
    cluster = build_cluster(
        n_daemons=peers,
        n_superpeers=3,
        seed=seed,
        config=QUIET_CONFIG,
        link_scale=EXPERIMENT_LINK_SCALE,
    )
    cluster.compute.direct_mode = direct_mode
    app = make_poisson_app(
        "poisson",
        n=n,
        num_tasks=peers,
        overlap=optimal_overlap(n, peers),
        inner_solver="direct",
        convergence_threshold=threshold,
    )
    t0 = time.perf_counter()
    spawner = launch_application(cluster, app)
    sim = cluster.sim
    sim.run(until=sim.any_of([spawner.done, sim.timeout(horizon)]))
    assert spawner.done.triggered, "direct-solver run did not converge"
    proc = sim.process(spawner.collect_solution())
    sim.run(until=proc)
    wall = time.perf_counter() - t0
    fragments = tuple(
        (tid, None if frag is None else (frag[0], frag[1].tobytes()))
        for tid, frag in sorted(proc.value.items())
    )
    signature = (spawner.execution_time,
                 cluster.telemetry.total_iterations, fragments)
    return signature, cluster.compute.stats(), wall


def _best_of(direct_mode: str, bypass: bool, **kw):
    def once():
        if bypass:
            with hotpath_disabled():
                return _run(direct_mode=direct_mode, **kw)
        clear_caches()  # the plane arm pays its own builds: no pre-warming
        return _run(direct_mode=direct_mode, **kw)

    signature, stats, best = once()
    for _ in range(REPS - 1):
        again, stats, elapsed = once()
        assert again == signature  # every repetition is deterministic
        best = min(best, elapsed)
    return signature, stats, best


def test_compute_plane_speedup(record_json):
    smoke = os.environ.get("REPRO_COMPUTE_SMOKE") == "1"

    # -- identity arm: auto mode must be invisible to the simulation
    plane_sig, plane_stats, _ = _best_of("auto", bypass=False, **IDENTITY_KW)
    bypass_sig, _, _ = _best_of("auto", bypass=True, **IDENTITY_KW)
    bitwise_identical = plane_sig == bypass_sig
    assert bitwise_identical, (
        "auto-mode compute plane perturbed the simulation: "
        f"{plane_sig[:2]} != {bypass_sig[:2]}"
    )
    assert plane_stats["deferred"] > 0  # the lazy path actually ran
    assert plane_stats["batched_columns"] > 0  # panels engaged (probe passed)

    if smoke:
        # identity only: no wall-clock arm, no baseline overwrite
        record_json("compute_smoke", {
            **{f"identity_{k}": v for k, v in IDENTITY_KW.items()},
            "bitwise_identical": bitwise_identical,
            "identity_deferred": plane_stats["deferred"],
            "identity_memo_hits": plane_stats["memo_hits"],
            "smoke": True,
        })
        return

    # -- speedup arm: panel mode vs the full bypass
    _, panel_stats, t_plane = _best_of("panel", bypass=False, **SPEEDUP_KW)
    _, _, t_bypass = _best_of("panel", bypass=True, **SPEEDUP_KW)
    speedup = t_bypass / t_plane

    record_json("BENCH_compute", {
        **{f"speedup_{k}": v for k, v in SPEEDUP_KW.items()},
        **{f"identity_{k}": v for k, v in IDENTITY_KW.items()},
        "reps": REPS,
        "wall_seconds_plane": round(t_plane, 3),
        "wall_seconds_bypass": round(t_bypass, 3),
        "speedup": round(speedup, 2),
        "min_speedup": MIN_SPEEDUP,
        "bitwise_identical": bitwise_identical,
        "identity_deferred": plane_stats["deferred"],
        "identity_memo_hits": plane_stats["memo_hits"],
        "cohorts": panel_stats["cohorts"],
        "flushes": panel_stats["flushes"],
        "batched_columns": panel_stats["batched_columns"],
        "loop_columns": panel_stats["loop_columns"],
    })
    assert speedup >= MIN_SPEEDUP, (
        f"compute-plane speedup regressed: {speedup:.2f}x < {MIN_SPEEDUP}x "
        f"(bypass {t_bypass:.2f}s, plane {t_plane:.2f}s)"
    )
