"""Hot-path regression benchmark: cached vs cache-bypass wall clock.

One 16-task Poisson run (setup + solve) is timed on identical parameters
and seed under both arms:

* **cached** — the default fast path: shared frozen decomposition, cached
  per-block CG operators with preallocated work vectors, memoized message
  sizes;
* **bypass** — ``use_cache=False`` under
  :func:`repro.util.hotpath.hotpath_disabled`, which forces the original
  allocating code on every layer (per-task legacy CSC decomposition
  build, allocating CG loop, isinstance-cascade size walk).

The configuration is the cache-sensitive regime: a large grid split over
16 peers — so the bypass arm rebuilds a 400k-unknown decomposition
sixteen times — with warm-started, tightly capped inner solves and a
loose outer threshold, so the (cache-independent) numerical work stays
small relative to setup.

Both arms must produce **bitwise-identical** simulated results (time,
iteration counts, residual) — the caches are a wall-clock optimization
only — and the cached arm must be at least ``MIN_SPEEDUP`` faster.  Each
arm is timed best-of-``REPS`` to suppress scheduler noise.  The measured
numbers are written to ``BENCH_hotpath.json`` (repo root + results/),
which CI uses as the regression baseline.
"""

from __future__ import annotations

import time

from repro.experiments.driver import run_poisson_on_p2p
from repro.p2p import P2PConfig
from repro.util.hotpath import clear_caches, hotpath_disabled

#: required cached-vs-bypass wall-clock ratio
MIN_SPEEDUP = 3.0

#: best-of-k wall-clock measurement per arm
REPS = 3

RUN_KW = dict(
    n=640,
    peers=16,
    seed=0,
    overlap=6,
    warm_start=True,
    inner_max_iter=1,
    convergence_threshold=3e-1,
    horizon=3600.0,
    # quiet protocol layer: no checkpoint traffic, slow heartbeats — the
    # run measures numerics + messaging hot paths, not failure detection
    config=P2PConfig(
        heartbeat_period=30.0,
        heartbeat_timeout=95.0,
        monitor_period=30.0,
        standby_takeover_timeout=95.0,
        checkpoint_frequency=10_000,
        stability_window=3,
    ),
)


def _run_arm(use_cache: bool):
    if use_cache:
        clear_caches()  # the cached arm pays its own build: no pre-warming
        t0 = time.perf_counter()
        result = run_poisson_on_p2p(use_cache=True, **RUN_KW)
        elapsed = time.perf_counter() - t0
    else:
        with hotpath_disabled():
            t0 = time.perf_counter()
            result = run_poisson_on_p2p(use_cache=False, **RUN_KW)
            elapsed = time.perf_counter() - t0
    return result, elapsed


def _best_of(use_cache: bool):
    result, best = _run_arm(use_cache)
    for _ in range(REPS - 1):
        again, elapsed = _run_arm(use_cache)
        assert again == result  # every repetition is bitwise-deterministic
        best = min(best, elapsed)
    return result, best


def test_hotpath_speedup(record_json):
    bypass, t_bypass = _best_of(use_cache=False)
    cached, t_cached = _best_of(use_cache=True)

    assert cached.converged and bypass.converged

    # The caches must be invisible to the simulation: bitwise-equal results.
    assert cached.simulated_time == bypass.simulated_time
    assert cached.total_iterations == bypass.total_iterations
    assert cached.residual == bypass.residual

    speedup = t_bypass / t_cached
    record_json("BENCH_hotpath", {
        "n": RUN_KW["n"],
        "peers": RUN_KW["peers"],
        "overlap": RUN_KW["overlap"],
        "seed": RUN_KW["seed"],
        "inner_max_iter": RUN_KW["inner_max_iter"],
        "convergence_threshold": RUN_KW["convergence_threshold"],
        "reps": REPS,
        "wall_seconds_bypass": round(t_bypass, 3),
        "wall_seconds_cached": round(t_cached, 3),
        "speedup": round(speedup, 2),
        "min_speedup": MIN_SPEEDUP,
        "simulated_time": cached.simulated_time,
        "total_iterations": cached.total_iterations,
        "residual": cached.residual,
        "bitwise_identical": True,
    })
    assert speedup >= MIN_SPEEDUP, (
        f"hot-path speedup regressed: {speedup:.2f}x < {MIN_SPEEDUP}x "
        f"(bypass {t_bypass:.2f}s, cached {t_cached:.2f}s)"
    )
