"""Ablation A8 — machine heterogeneity drives the useless iterations.

§7's testbed spans a ~2.4× CPU-speed spread (P-III 1.26 GHz … P4 3 GHz).
In the asynchronous model a fast peer iterates ~speed-ratio times for each
iteration of its slow neighbour, so most of its extra iterations receive
no fresh dependency — heterogeneity, not just problem size, manufactures
useless iterations.  The control: the same problem on a homogeneous
population.

Shape assertions:
* the heterogeneous run wastes a larger fraction of iterations;
* both converge to the correct answer (asynchrony absorbs the speed
  spread — the paper's №1 selling point for heterogeneous networks);
* the heterogeneous run is NOT proportionally slower than its slowest
  machine would suggest (nobody waits for the stragglers).
"""

import pytest

from repro.apps import make_poisson_app
from repro.experiments.config import (
    EXPERIMENT_CONFIG,
    EXPERIMENT_LINK_SCALE,
    optimal_overlap,
)
from repro.experiments.report import format_table
from repro.p2p import build_cluster, launch_application


def run_once(homogeneous: bool, n: int = 96, peers: int = 8, seed: int = 9):
    cluster = build_cluster(
        n_daemons=peers + 4, n_superpeers=3, seed=seed,
        config=EXPERIMENT_CONFIG, homogeneous=homogeneous,
        link_scale=EXPERIMENT_LINK_SCALE,
    )
    app = make_poisson_app(
        "p", n=n, num_tasks=peers, overlap=optimal_overlap(n, peers),
    )
    spawner = launch_application(cluster, app)
    sim = cluster.sim
    sim.run(until=sim.any_of([spawner.done, sim.timeout(600.0)]))
    assert spawner.done.triggered
    telemetry = cluster.telemetry
    spread = cluster.testbed.speed_spread()
    return {
        "speed_spread": round(spread[1] / spread[0], 2),
        "time": round(spawner.execution_time, 3),
        "iters_per_task": round(telemetry.mean_task_iterations, 1),
        "useless_fraction": round(telemetry.useless_fraction, 3),
    }


@pytest.mark.benchmark(group="ablation")
def test_heterogeneity_manufactures_useless_iterations(benchmark, record_table):
    def pair():
        return {
            "homogeneous": run_once(True),
            "heterogeneous": run_once(False),
        }

    results = benchmark.pedantic(pair, rounds=1, iterations=1)
    rows = [
        [name, r["speed_spread"], r["time"], r["iters_per_task"],
         r["useless_fraction"]]
        for name, r in results.items()
    ]
    record_table(
        "heterogeneity",
        format_table(
            ["population", "speed spread", "time", "iters/task",
             "useless frac"],
            rows,
            title="A8: homogeneous vs heterogeneous machines (n=96, 8 peers)",
        ),
    )
    homo, hetero = results["homogeneous"], results["heterogeneous"]
    # the speed spread shows up both as a higher no-fresh-message fraction
    # and, above all, as many more (cheap, unproductive) iterations burned
    # by the fast machines
    assert hetero["useless_fraction"] > homo["useless_fraction"] * 1.2
    assert hetero["iters_per_task"] > homo["iters_per_task"] * 1.5
    # nobody waits for the stragglers: the slowdown stays well below the
    # slowest machine's 1/speed factor
    assert hetero["time"] < homo["time"] * 2.4
