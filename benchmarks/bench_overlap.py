"""Ablation A3 — component overlapping (§6).

"this method allows to use overlapping techniques that may dramatically
reduce the number of iterations required to reach the convergence" while
"whatever the size of the overlapped components, the exchanged data are
constant".

Shape assertions:
* sweep count decreases monotonically in the overlap, by >2x from o=0 to
  o=4 (the paper's "dramatically");
* exchanged components per iteration are IDENTICAL for every overlap;
* the distributed runtime shows the same direction (async run, o=0 vs o>0).
"""

import pytest

from repro.experiments import run_poisson_on_p2p
from repro.experiments.ablations import overlap_ablation


@pytest.mark.benchmark(group="ablation")
def test_overlap_reduces_iterations_constant_exchange(benchmark, record_table):
    table = benchmark.pedantic(
        lambda: overlap_ablation(overlaps=(0, 1, 2, 3, 4), n=64, peers=8),
        rounds=1,
        iterations=1,
    )
    record_table("overlap", table.format_table())

    sweeps = [row[1] for row in table.rows]
    assert all(a > b for a, b in zip(sweeps, sweeps[1:])), (
        f"sweeps {sweeps} must decrease with overlap"
    )
    assert sweeps[0] / sweeps[-1] > 2.0, "overlap gain should be 'dramatic'"
    exchanged = {row[2] for row in table.rows}
    assert len(exchanged) == 1, "exchanged data must be constant in the overlap"


@pytest.mark.benchmark(group="ablation")
def test_overlap_helps_on_the_runtime_too(benchmark, record_table):
    def run_pair():
        no_overlap = run_poisson_on_p2p(n=48, peers=8, overlap=0, collect=False)
        with_overlap = run_poisson_on_p2p(n=48, peers=8, overlap=2, collect=False)
        return no_overlap, with_overlap

    no_overlap, with_overlap = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    record_table(
        "overlap_runtime",
        "A3 on the P2P runtime (n=48, 8 peers):\n"
        f"  overlap=0: time={no_overlap.simulated_time:.3f}s "
        f"iters/task={no_overlap.mean_iterations_per_task:.0f}\n"
        f"  overlap=2: time={with_overlap.simulated_time:.3f}s "
        f"iters/task={with_overlap.mean_iterations_per_task:.0f}",
    )
    assert no_overlap.converged and with_overlap.converged
    assert (
        with_overlap.mean_iterations_per_task
        < no_overlap.mean_iterations_per_task
    )
