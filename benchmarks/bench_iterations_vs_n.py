"""Claims C1 & C3 — iteration counts vs problem size.

Paper (§7): without disconnections the problem "for n = 2000 needs on
average about 100 iterations to reach the global convergence, whereas for
n = 5000, about 40 iterations are necessary", explained by ratio (4)
(compute-per-iteration / communication-per-iteration): small problems burn
many iterations that receive no update.

Shape assertions:
* asynchronous iterations per task strictly DECREASE as n grows (C1);
* the inflation over the synchronous sweep count (iterations that did not
  advance global convergence) decreases as n grows (C3);
* the synchronous sweep count itself is roughly flat (the optimal-overlap
  rule keeps the physical overlap constant), so the decrease is an
  asynchrony effect, not a numerics artifact.
"""

import pytest

from repro.experiments import iterations_vs_n


@pytest.mark.benchmark(group="iterations")
def test_iterations_decrease_with_n(benchmark, record_table, sweep_engine):
    result = benchmark.pedantic(
        lambda: iterations_vs_n(ns=(40, 64, 96, 128), peers=8,
                                engine=sweep_engine),
        rounds=1,
        iterations=1,
    )
    record_table("iterations_vs_n", result.format_table())

    async_iters = result.async_iters()
    assert all(
        a > b for a, b in zip(async_iters, async_iters[1:])
    ), f"C1 violated: iterations {async_iters} must decrease with n"
    # paper's magnitude: 2.5x fewer iterations over a 2.5x size range;
    # require at least a 2x drop over our 3.2x range
    assert async_iters[0] / async_iters[-1] > 2.0

    inflations = result.inflations()
    assert inflations[0] > inflations[-1] * 1.5, (
        f"C3 violated: inflation {inflations} must shrink as n grows"
    )

    sweeps = [r[2] for r in result.rows]
    assert max(sweeps) / min(sweeps) < 1.5, (
        "sync sweep count should be roughly flat under the optimal-overlap rule"
    )
