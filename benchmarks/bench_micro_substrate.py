"""M1 — substrate micro-benchmarks (true pytest-benchmark loops).

These are not from the paper; they characterise the simulator itself so
experiment wall-times are explainable: DES event throughput, RMI round-trip
cost, CG solve cost, message-size accounting.
"""

import numpy as np
import pytest

from repro.des import Simulator, Store
from repro.net import Network, UniformLinkModel
from repro.numerics import Poisson2D, conjugate_gradient
from repro.rmi import RemoteObject, RmiRuntime, remote
from repro.util.serialization import measured_size


@pytest.mark.benchmark(group="micro")
def test_des_event_throughput(benchmark):
    def run():
        sim = Simulator()

        def ticker(env):
            for _ in range(10_000):
                yield env.timeout(1.0)

        sim.process(ticker(sim))
        sim.run()
        return sim.event_count

    events = benchmark(run)
    assert events >= 10_000


@pytest.mark.benchmark(group="micro")
def test_des_store_handoff_throughput(benchmark):
    def run():
        sim = Simulator()
        store = Store(sim)
        got = []

        def producer(env):
            for i in range(5_000):
                store.put(i)
                yield env.timeout(0.001)

        def consumer(env):
            for _ in range(5_000):
                item = yield store.get()
                got.append(item)

        sim.process(producer(sim))
        sim.process(consumer(sim))
        sim.run()
        return len(got)

    assert benchmark(run) == 5_000


class Echo(RemoteObject):
    @remote
    def echo(self, x):
        return x


@pytest.mark.benchmark(group="micro")
def test_rmi_roundtrip_cost(benchmark):
    def run():
        sim = Simulator()
        net = Network(sim, link_model=UniformLinkModel(latency=1e-4))
        a, b = net.new_host("a"), net.new_host("b")
        server = RmiRuntime(net, b, 5000)
        client = RmiRuntime(net, a, 5000)
        stub = server.serve(Echo(), "echo")

        def caller(env):
            for i in range(500):
                yield client.call(stub, "echo", i)

        p = sim.process(caller(sim))
        sim.run(until=p)
        return server.calls_served

    assert benchmark(run) == 500


@pytest.mark.benchmark(group="micro")
def test_cg_solve_cost(benchmark):
    prob = Poisson2D.heat_plate(48)

    def run():
        return conjugate_gradient(prob.A, prob.b, tol=1e-8)

    result = benchmark(run)
    assert result.converged


@pytest.mark.benchmark(group="micro")
def test_message_size_accounting_cost(benchmark):
    payload = {"x": np.zeros(4096), "meta": [1, 2.0, "three"] * 10}
    size = benchmark(measured_size, payload)
    assert size > 4096 * 8
