"""Shared benchmark utilities.

Every benchmark regenerates one table/figure/claim from the paper's
evaluation (see DESIGN.md §4).  Tables are printed to stdout (run with
``-s`` to watch live) and written under ``benchmarks/results/`` so
EXPERIMENTS.md can quote exact regenerated numbers.
"""

from __future__ import annotations

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).parent.parent


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record_table(results_dir):
    """Print a result table and persist it under benchmarks/results/."""

    def _record(name: str, text: str) -> None:
        print("\n" + text)
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _record


@pytest.fixture()
def record_json(results_dir):
    """Persist machine-readable results next to the text tables.

    Writes ``benchmarks/results/<name>.json``; names starting with
    ``BENCH_`` are additionally written to the repo root, where CI and the
    regression checker look for committed baselines.
    """

    def _record(name: str, payload: dict) -> None:
        text = json.dumps(payload, indent=2, sort_keys=True)
        print("\n" + text)
        (results_dir / f"{name}.json").write_text(text + "\n")
        if name.startswith("BENCH_"):
            (REPO_ROOT / f"{name}.json").write_text(text + "\n")

    return _record
