"""Shared benchmark utilities.

Every benchmark regenerates one table/figure/claim from the paper's
evaluation (see DESIGN.md §4).  Tables are printed to stdout (run with
``-s`` to watch live) and written under ``benchmarks/results/`` so
EXPERIMENTS.md can quote exact regenerated numbers.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).parent.parent


def bench_workers() -> int:
    """Worker count for sweep-shaped benchmarks.

    ``REPRO_SWEEP_WORKERS`` overrides; the default saturates the
    machine up to 4 processes.  Results are identical for any value —
    only wall-clock changes.
    """
    env = os.environ.get("REPRO_SWEEP_WORKERS")
    if env:
        return max(1, int(env))
    return min(4, len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity")
               else (os.cpu_count() or 1))


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record_table(results_dir):
    """Print a result table and persist it under benchmarks/results/."""

    def _record(name: str, text: str) -> None:
        print("\n" + text)
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _record


@pytest.fixture()
def record_json(results_dir):
    """Persist machine-readable results.

    ``BENCH_*`` names are committed regression baselines: they go to ONE
    canonical location, the repo root, where CI and
    ``scripts/check_bench_regression.py`` read them.  Everything else
    lands next to the text tables under ``benchmarks/results/``.
    """

    def _record(name: str, payload: dict) -> None:
        text = json.dumps(payload, indent=2, sort_keys=True)
        print("\n" + text)
        target = REPO_ROOT if name.startswith("BENCH_") else results_dir
        (target / f"{name}.json").write_text(text + "\n")

    return _record


@pytest.fixture()
def sweep_engine():
    """A parallel, uncached SweepEngine for the sweep-shaped benchmarks.

    No disk cache: a benchmark must measure fresh runs.  Parallelism does
    not change any result (the engine's arms are bitwise-identical; see
    ``bench_parallel_sweep.py``), it only shortens the wait.
    """
    from repro.exec import SweepEngine

    return SweepEngine(workers=bench_workers())
