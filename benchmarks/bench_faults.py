"""Fault-plane overhead guard: an armed-but-idle plan must be ~free.

Wiring the :class:`repro.faults.FaultInjector` into the experiment driver
put one extra process on the simulator and one ``corruptor`` branch on the
network's delivery path.  Fault-free runs — the entire existing benchmark
and experiment surface — must not pay for the machinery they do not use.

The measurement is ratio-based so it is machine-independent: the same
spec runs twice in-process, once plain and once with a fault plan whose
only action sits far beyond the convergence horizon (the injector arms,
sleeps, and is cancelled — the worst fault-free case).  Both runs must
produce identical results, and the armed run's median wall-clock may
exceed the plain run's by at most 5%.
"""

from __future__ import annotations

import time

import pytest

from repro.exec import RunSpec
from repro.faults import DaemonCrash, FaultPlan

REPEATS = 5
OVERHEAD_BUDGET = 0.05

#: one action far past convergence (t≈0.4 simulated): never fires
IDLE_PLAN = FaultPlan.of(DaemonCrash(time=500.0), name="idle")


def _median(samples: list[float]) -> float:
    ordered = sorted(samples)
    return ordered[len(ordered) // 2]


def _spec(faults: FaultPlan | None) -> RunSpec:
    return RunSpec(n=32, peers=4, seed=0, faults=faults)


@pytest.mark.fault_overhead
def test_armed_idle_plan_changes_nothing():
    plain = _spec(None).run()
    armed = _spec(IDLE_PLAN).run()
    assert armed.faults_executed == 0
    assert armed.converged == plain.converged
    assert armed.residual == plain.residual
    assert armed.total_iterations == plain.total_iterations
    assert armed.simulated_time == plain.simulated_time


@pytest.mark.fault_overhead
def test_record_fault_overhead_baseline(record_json):
    """Emit ``BENCH_faults.json`` for ``scripts/check_bench_regression.py``.

    Interleaved timing (plain, armed, plain, armed, …) with medians keeps
    the ratio stable on loaded machines; the gate reads
    ``overhead_fraction``.
    """
    plain_times, armed_times = [], []
    for _ in range(REPEATS):
        start = time.perf_counter()
        _spec(None).run()
        plain_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        _spec(IDLE_PLAN).run()
        armed_times.append(time.perf_counter() - start)
    plain = _median(plain_times)
    armed = _median(armed_times)
    overhead = armed / plain - 1.0
    record_json("BENCH_faults", {
        "plain_s": round(plain, 4),
        "armed_s": round(armed, 4),
        "overhead_fraction": round(overhead, 5),
        "overhead_budget": OVERHEAD_BUDGET,
    })
    assert overhead < OVERHEAD_BUDGET
