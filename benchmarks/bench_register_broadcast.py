"""Ablation A7 — register-broadcast traffic: full vs delta (§8).

§8 names "broadcast of register" among the aspects "probably needing to be
improved": every membership change re-ships the whole Application Register
(O(num_tasks) stubs) to every computing peer — O(num_tasks²) bytes per
change.  The delta mode ships only the changed slots, with a pull-based
full resync on version gaps.

Measured: total broadcast bytes for the same churny execution, both modes,
at two application sizes.  Shape: delta saves bytes, and its advantage
grows with the task count; both modes stay correct.
"""

import pytest

from repro.apps import make_poisson_app
from repro.churn import ChurnInjector, PaperChurn
from repro.experiments.config import EXPERIMENT_CONFIG, EXPERIMENT_LINK_SCALE
from repro.experiments.report import format_table
from repro.p2p import build_cluster, launch_application
from repro.util.rng import RngTree


def run_once(mode: str, peers: int, seed: int = 6):
    cluster = build_cluster(
        n_daemons=peers + 6, n_superpeers=3, seed=seed,
        config=EXPERIMENT_CONFIG.with_(broadcast_mode=mode),
        link_scale=EXPERIMENT_LINK_SCALE,
    )
    app = make_poisson_app("p", n=64, num_tasks=peers, overlap=2)
    spawner = launch_application(cluster, app)
    ChurnInjector(
        cluster.sim, cluster.testbed.daemon_hosts,
        PaperChurn(4, reconnect_delay=1.0),
        RngTree(seed).child("churn"), horizon=1.2, log=cluster.log,
        victim_filter=lambda h: (
            (d := cluster.daemons.get(h.name)) is not None
            and d.runner is not None
        ),
    )
    sim = cluster.sim
    sim.run(until=sim.any_of([spawner.done, sim.timeout(600.0)]))
    return spawner


@pytest.mark.benchmark(group="ablation")
def test_delta_broadcast_saves_bytes(benchmark, record_table):
    def sweep():
        rows = []
        for peers in (8, 16):
            byte_counts = {}
            for mode in ("full", "delta"):
                spawner = run_once(mode, peers)
                assert spawner.done.triggered, f"{mode}@{peers} did not finish"
                byte_counts[mode] = spawner.broadcast_bytes
            rows.append([
                peers,
                byte_counts["full"],
                byte_counts["delta"],
                round(byte_counts["full"] / max(byte_counts["delta"], 1), 2),
            ])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_table(
        "register_broadcast",
        format_table(
            ["peers", "full bytes", "delta bytes", "full/delta"],
            rows,
            title="A7: register-broadcast traffic under 4 disconnections",
        ),
    )
    for peers, full_bytes, delta_bytes, ratio in rows:
        assert delta_bytes < full_bytes, f"{peers} peers: delta did not save"
    # the advantage grows with the application size
    assert rows[1][3] >= rows[0][3] * 0.9
