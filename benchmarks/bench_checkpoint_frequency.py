"""Ablation A1 — the JaceSave checkpoint frequency (§5.4; paper uses 5).

"According to the considered scientific problem, it can be interesting to
checkpoint tasks at each given number of iterations (and not at each
iteration)."

Shape assertions:
* checkpoint traffic scales inversely with k;
* every frequency still converges to the correct solution under churn;
* recoveries resume from a checkpoint whose age is bounded by k.
"""

import pytest

from repro.experiments.ablations import checkpoint_frequency_ablation


@pytest.mark.benchmark(group="ablation")
def test_checkpoint_frequency_tradeoff(benchmark, record_table, sweep_engine):
    table = benchmark.pedantic(
        lambda: checkpoint_frequency_ablation(
            frequencies=(1, 2, 5, 10, 20), n=64, peers=8, disconnections=3,
            engine=sweep_engine,
        ),
        rounds=1,
        iterations=1,
    )
    record_table("checkpoint_frequency", table.format_table())

    ks = [row[0] for row in table.rows]
    traffic = {row[0]: row[2] for row in table.rows}
    # checkpoint traffic must drop as k grows (roughly inverse)
    assert traffic[1] > traffic[5] > traffic[20]
    assert traffic[1] > 3 * traffic[20]
    # all runs converged with a correct solution
    assert all(row[1] is not None for row in table.rows)
    assert all(row[5] for row in table.rows), "a frequency broke correctness"
