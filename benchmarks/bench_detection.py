"""Ablation A5 — convergence-detection soundness (§5.5 weakness, §8 fix).

The paper names its centralized detection as needing improvement (§8).
This bench quantifies why, and what the fix costs: across seeds, with a
quiet window shorter than the message RTT,

* the paper's **immediate** protocol frequently halts on a wrong answer;
* the **dwell** hardening (hold all-stable for a verification period)
  always produces the correct answer, for a bounded time overhead.
"""

import numpy as np
import pytest

from repro.apps import make_poisson_app
from repro.experiments.config import EXPERIMENT_CONFIG, EXPERIMENT_LINK_SCALE
from repro.experiments.report import format_table
from repro.numerics import Poisson2D
from repro.p2p import build_cluster, launch_application


def run_one(mode: str, seed: int):
    cfg = EXPERIMENT_CONFIG.with_(
        stability_window=3, detection_mode=mode, verification_dwell=0.05
    )
    cluster = build_cluster(
        n_daemons=12, n_superpeers=3, seed=seed, config=cfg,
        link_scale=EXPERIMENT_LINK_SCALE,
    )
    app = make_poisson_app("p", n=48, num_tasks=8, overlap=3)
    spawner = launch_application(cluster, app)
    sim = cluster.sim
    sim.run(until=sim.any_of([spawner.done, sim.timeout(300.0)]))
    if not spawner.done.triggered:
        return None, None
    proc = sim.process(spawner.collect_solution())
    sim.run(until=proc)
    x = np.zeros(48 * 48)
    for frag in proc.value.values():
        offset, values = frag
        x[offset : offset + len(values)] = values
    return spawner.execution_time, Poisson2D.manufactured(48).residual_norm(x)


@pytest.mark.benchmark(group="ablation")
def test_detection_mode_soundness(benchmark, record_table):
    seeds = (0, 1, 2, 3, 4)

    def sweep():
        rows = []
        for mode in ("immediate", "dwell"):
            times, residuals, wrong = [], [], 0
            for seed in seeds:
                t, res = run_one(mode, seed)
                if t is None:
                    wrong += 1
                    continue
                times.append(t)
                residuals.append(res)
                if res > 1e-3:
                    wrong += 1
            rows.append([
                mode,
                round(sum(times) / len(times), 3) if times else None,
                f"{max(residuals):.2e}" if residuals else "-",
                f"{wrong}/{len(seeds)}",
            ])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_table(
        "detection_modes",
        format_table(
            ["mode", "mean time", "worst residual", "wrong answers"],
            rows,
            title=(
                "A5: detection soundness with quiet window < message RTT "
                f"(n=48, 8 peers, {len(seeds)} seeds)"
            ),
        ),
    )
    immediate, dwell = rows
    # the paper's protocol must show at least one premature halt here...
    assert int(immediate[3].split("/")[0]) >= 1
    # ...while the dwell hardening never accepts a wrong answer
    assert int(dwell[3].split("/")[0]) == 0
