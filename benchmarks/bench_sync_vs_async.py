"""Claim C4 — synchronous iterations collapse under churn; async does not.

Paper (§1): "due to the synchronizations ... all the nodes involved in the
computation of an application would stop computing when a single
disconnection occurs"; (§8): "synchronous iterations would dramatically
slow down the execution in a dynamic and heterogeneous P2P network".

Protocol: run JaceP2P (async) under the paper's churn, capture the exact
disconnection trace, replay it against the BSP engine on an identical host
population.  Shape assertions:

* with NO churn, both models converge and sync is not dramatically slower
  (barriers cost something, but the same math runs);
* under churn, the synchronous run stalls (nonzero stall time), rolls the
  whole computation back, and its time degrades relative to async.
"""

import pytest

from repro.experiments import sync_vs_async


@pytest.mark.benchmark(group="sync-vs-async")
def test_sync_vs_async_no_churn(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: sync_vs_async(n=48, peers=8, disconnections=0),
        rounds=1,
        iterations=1,
    )
    record_table("sync_vs_async_calm", result.format_table())
    assert result.async_time is not None
    assert result.sync_time is not None
    assert result.sync_stall_time == 0.0
    assert result.sync_rollbacks == 0


@pytest.mark.benchmark(group="sync-vs-async")
def test_sync_vs_async_under_churn(benchmark, record_table):
    calm = sync_vs_async(n=48, peers=8, disconnections=0)
    stormy = benchmark.pedantic(
        lambda: sync_vs_async(n=48, peers=8, disconnections=3),
        rounds=1,
        iterations=1,
    )
    record_table("sync_vs_async_churn", stormy.format_table())
    assert stormy.async_time is not None
    assert stormy.disconnections >= 1
    assert stormy.sync_time is not None, "sync run did not finish in the horizon"
    # the sync model stalls while machines are away and pays global rollbacks
    assert stormy.sync_stall_time > 0.0
    assert stormy.sync_rollbacks >= 1
    assert stormy.sync_lost_iterations > 0
    # degradation: sync loses MORE time to the same churn than async does
    sync_degradation = stormy.sync_time - calm.sync_time
    async_degradation = stormy.async_time - calm.async_time
    assert sync_degradation > async_degradation, (
        f"sync lost {sync_degradation:.2f}s vs async {async_degradation:.2f}s "
        "to identical churn — the paper's C4 claim expects sync to lose more"
    )
