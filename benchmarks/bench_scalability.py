"""Extension bench — toward "several hundreds of peers" (§8).

The paper's future work asks how the platform behaves "in a very large
scale P2P network composed of several hundreds of peers".  Two probes:

* the management plane: a 300-Daemon population bootstrapping into 5
  Super-Peers — registration must stay fast and load stay spread;
* the compute plane: the same Poisson problem on 4…16 peers — more peers
  means thinner strips, a worse multisplitting and more boundary traffic,
  so *iteration counts* rise with the peer count at fixed n (the classic
  strong-scaling tension the paper's §7 setup quietly avoids by fixing 80
  peers).
"""

import pytest

from repro.apps import make_poisson_app
from repro.experiments.config import (
    EXPERIMENT_CONFIG,
    EXPERIMENT_LINK_SCALE,
    optimal_overlap,
)
from repro.experiments.report import format_table
from repro.p2p import build_cluster, launch_application


@pytest.mark.benchmark(group="scalability")
def test_bootstrap_three_hundred_daemons(benchmark, record_table):
    def measure():
        cluster = build_cluster(
            n_daemons=300, n_superpeers=5, seed=3, config=EXPERIMENT_CONFIG,
            link_scale=EXPERIMENT_LINK_SCALE,
        )
        sim = cluster.sim
        while sim.now < 30.0 and cluster.registered_daemons() < 300:
            sim.run(until=sim.now + 0.05)
        loads = sorted(len(sp.register) for sp in cluster.superpeers)
        return sim.now, cluster.registered_daemons(), loads

    at, registered, loads = benchmark.pedantic(measure, rounds=1, iterations=1)
    record_table(
        "scalability_bootstrap",
        f"§8 scale probe: 300 daemons over 5 super-peers\n"
        f"  all registered by t={at:.3f}s; per-SP loads {loads}",
    )
    assert registered == 300
    assert at < 5.0
    assert max(loads) < 150  # spread, not piled on one super-peer


@pytest.mark.benchmark(group="scalability")
def test_strong_scaling_peer_sweep(benchmark, record_table):
    n = 96

    def sweep():
        rows = []
        for peers in (4, 8, 16):
            cluster = build_cluster(
                n_daemons=peers + 6, n_superpeers=3, seed=4,
                config=EXPERIMENT_CONFIG, link_scale=EXPERIMENT_LINK_SCALE,
            )
            app = make_poisson_app(
                "p", n=n, num_tasks=peers, overlap=optimal_overlap(n, peers),
            )
            spawner = launch_application(cluster, app)
            sim = cluster.sim
            sim.run(until=sim.any_of([spawner.done, sim.timeout(600.0)]))
            telemetry = cluster.telemetry
            rows.append([
                peers,
                round(spawner.execution_time, 3) if spawner.done.triggered else None,
                round(telemetry.mean_task_iterations, 1),
                round(telemetry.useless_fraction, 3),
            ])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_table(
        "scalability_peers",
        format_table(
            ["peers", "time", "iters/task", "no-msg frac"],
            rows,
            title=f"§8 scale probe: strong scaling at n={n}",
        ),
    )
    assert all(row[1] is not None for row in rows)
    iters = [row[2] for row in rows]
    # thinner strips -> weaker multisplitting -> more iterations per task
    assert iters[0] < iters[-1]
