"""Ablation A6 — hybrid P2P topology vs the JaceV centralized topology.

§2.2: "centralization may generate bottlenecks and can present some
scalability limits"; §4.1 positions JaceP2P as the decentralized successor
of the fully-centralized JaceV.

Measured, per population size:

* registry message load — the centralized server carries everything; the
  hybrid topology splits it across Super-Peers (max per-SP load well below
  the central load);
* survivability — the same application completes under a Super-Peer
  failure on the hybrid topology, and cannot complete under the central
  server's failure.
"""

import pytest

from repro.baselines import build_centralized_cluster
from repro.experiments.config import EXPERIMENT_CONFIG, EXPERIMENT_LINK_SCALE
from repro.experiments.report import format_table
from repro.p2p import build_cluster

from repro.apps import make_poisson_app
from repro.p2p.cluster import launch_application


@pytest.mark.benchmark(group="topology")
def test_registry_load_central_vs_hybrid(benchmark, record_table):
    populations = (10, 25, 50)

    def sweep():
        rows = []
        for pop in populations:
            central = build_centralized_cluster(
                n_daemons=pop, seed=1, config=EXPERIMENT_CONFIG,
                link_scale=EXPERIMENT_LINK_SCALE,
            )
            central.sim.run(until=10.0)
            central_load = central.superpeers[0].runtime.calls_served

            hybrid = build_cluster(
                n_daemons=pop, n_superpeers=3, seed=1,
                config=EXPERIMENT_CONFIG, link_scale=EXPERIMENT_LINK_SCALE,
            )
            hybrid.sim.run(until=10.0)
            max_sp_load = max(
                sp.runtime.calls_served for sp in hybrid.superpeers
            )
            rows.append([pop, central_load, max_sp_load,
                         round(central_load / max(max_sp_load, 1), 2)])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_table(
        "topology_load",
        format_table(
            ["daemons", "central server msgs", "max per-SP msgs (hybrid)",
             "ratio"],
            rows,
            title="A6: registry message load, centralized vs hybrid (10 s idle)",
        ),
    )
    for pop, central_load, max_sp, ratio in rows:
        assert max_sp < central_load, (
            f"population {pop}: hybrid did not spread the load"
        )
    # the bottleneck grows with the population
    assert rows[-1][1] > rows[0][1] * 3


@pytest.mark.benchmark(group="topology")
def test_survivability_central_vs_hybrid(benchmark, record_table):
    def run_pair():
        outcomes = {}
        # centralized: kill the central machine mid-run
        central = build_centralized_cluster(
            n_daemons=8, seed=2, config=EXPERIMENT_CONFIG,
            link_scale=EXPERIMENT_LINK_SCALE,
        )
        app = make_poisson_app("p", n=40, num_tasks=4, overlap=2)
        spawner = launch_application(central, app)
        sim = central.sim
        sim.run(until=0.2)
        central.testbed.spawner_host.fail(cause="bench")
        sim.run(until=sim.any_of([spawner.done, sim.timeout(30.0)]))
        outcomes["centralized"] = spawner.done.triggered

        # hybrid: kill a Super-Peer mid-run (the Spawner is a separate,
        # stable machine — the paper's only stability assumption, §5.5)
        hybrid = build_cluster(
            n_daemons=8, n_superpeers=3, seed=2, config=EXPERIMENT_CONFIG,
            link_scale=EXPERIMENT_LINK_SCALE,
        )
        app2 = make_poisson_app("p", n=40, num_tasks=4, overlap=2)
        spawner2 = launch_application(hybrid, app2)
        sim2 = hybrid.sim
        sim2.run(until=0.2)
        hybrid.superpeers[0].host.fail(cause="bench")
        sim2.run(until=sim2.any_of([spawner2.done, sim2.timeout(30.0)]))
        outcomes["hybrid"] = spawner2.done.triggered
        return outcomes

    outcomes = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    record_table(
        "topology_survivability",
        "A6: registry-machine failure mid-run\n"
        f"  centralized (JaceV-style): finished = {outcomes['centralized']}\n"
        f"  hybrid (JaceP2P):          finished = {outcomes['hybrid']}",
    )
    assert outcomes["hybrid"] is True
    assert outcomes["centralized"] is False
