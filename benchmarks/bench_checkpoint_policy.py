"""Adaptive-vs-fixed checkpointing sweep over the fault-scenario catalogue.

Every named scenario runs twice on the quick experiment size (``n=32``,
4 peers, seed 0): once under the paper's :class:`~repro.checkpoint.
FixedPolicy` defaults and once under :class:`~repro.checkpoint.
AdaptivePolicy`.  The cost model is *wasted work*, expressed in simulated
seconds so iterations and bytes share a unit:

    ``wasted_seconds = wasted_iterations · tau + checkpoint_bytes / B``

where ``tau`` is the fixed arm's mean per-task iteration time for that
scenario (both arms priced at the same work rate) and ``B`` is the
adaptive policy's bandwidth estimate.  ``wasted_iterations`` is the
telemetry frontier deficit: iterations executed but re-executed after a
rollback or restart-from-zero.

The headline metric, gated by ``scripts/check_bench_regression.py``, is
the aggregate reduction over the churn scenarios (the ones whose faults
actually destroy compute state):

    ``wasted_work_reduction = 1 - sum(adaptive) / sum(fixed)``

Everything here is simulated-time accounting, so the measurement is
deterministic and machine-independent.
"""

from __future__ import annotations

import pytest

from repro.checkpoint import AdaptivePolicy
from repro.exec import RunSpec
from repro.faults import scenario
from repro.faults.scenarios import scenario_names, scenario_overrides

#: scenarios whose faults roll tasks back / restart them from scratch —
#: where checkpoint strategy moves the wasted-work needle
CHURN_SCENARIOS = ("churn-burst", "rack-down", "discovery-storm")

ADAPTIVE = AdaptivePolicy()


def _run(name: str, policy):
    spec = RunSpec(
        n=32, peers=4, seed=0, faults=scenario(name), checkpoint=policy,
        use_cache=False, collect=False, **scenario_overrides(name),
    )
    return spec.run()


def _cost(result, tau: float) -> float:
    return (result.wasted_iterations * tau
            + result.checkpoint_bytes / ADAPTIVE.bandwidth)


@pytest.mark.checkpoint_bench
def test_record_checkpoint_policy_tradeoff(record_json, record_table):
    """Emit ``BENCH_checkpoint.json`` (+ a human-readable table)."""
    rows, scenarios = [], {}
    fixed_total = adaptive_total = 0.0
    for name in scenario_names():
        fixed = _run(name, None)
        adaptive = _run(name, ADAPTIVE)
        assert fixed.converged, f"{name}: fixed arm did not converge"
        assert adaptive.converged, f"{name}: adaptive arm did not converge"
        tau = (fixed.simulated_time * 4 / fixed.total_iterations
               if fixed.total_iterations else 0.0)
        fc, ac = _cost(fixed, tau), _cost(adaptive, tau)
        scenarios[name] = {
            "fixed": {
                "wasted_iterations": fixed.wasted_iterations,
                "checkpoint_bytes": fixed.checkpoint_bytes,
                "checkpoints_sent": fixed.checkpoints_sent,
                "wasted_seconds": fc,
            },
            "adaptive": {
                "wasted_iterations": adaptive.wasted_iterations,
                "checkpoint_bytes": adaptive.checkpoint_bytes,
                "checkpoints_sent": adaptive.checkpoints_sent,
                "wasted_seconds": ac,
            },
            "churn": name in CHURN_SCENARIOS,
        }
        if name in CHURN_SCENARIOS:
            fixed_total += fc
            adaptive_total += ac
        rows.append(
            f"{name:18s} fixed={fc:8.4f}s adaptive={ac:8.4f}s "
            f"(bytes {fixed.checkpoint_bytes:>8d} -> "
            f"{adaptive.checkpoint_bytes:>8d})"
        )

    assert fixed_total > 0.0
    reduction = 1.0 - adaptive_total / fixed_total
    record_table(
        "checkpoint_policy",
        "adaptive vs fixed wasted work per scenario\n" + "\n".join(rows)
        + f"\nchurn aggregate: fixed={fixed_total:.4f}s "
          f"adaptive={adaptive_total:.4f}s reduction={reduction:.3f}",
    )
    record_json("BENCH_checkpoint", {
        "scenarios": scenarios,
        "churn_scenarios": list(CHURN_SCENARIOS),
        "fixed_wasted_seconds": fixed_total,
        "adaptive_wasted_seconds": adaptive_total,
        "wasted_work_reduction": reduction,
    })
    # the acceptance floor, asserted here as well as in the gate script
    assert reduction >= 0.20
