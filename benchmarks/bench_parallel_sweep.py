"""Parallel sweep-engine benchmark: process-pool fan-out + run cache.

The quick Figure-7 grid (2 sizes x 3 churn levels, the ``repro-cli
figure7 --quick`` workload) is executed three times:

* **serial** — ``SweepEngine(workers=1)``, no cache: the reference arm,
  byte-for-byte the historical serial loop;
* **parallel** — ``workers=4`` over a fresh on-disk :class:`RunCache`:
  measures the process-pool speedup while populating the cache;
* **cached** — the same sweep again against the now-warm cache: every
  cell is a content-address hit, zero simulation work.

Assertions:

* all three arms return field-for-field identical ``RunResult`` lists and
  aggregate tables — parallelism and caching are wall-clock optimizations
  only;
* the cached rerun does zero simulation work (run counter + engine stats)
  and completes in under ``MAX_CACHED_FRACTION`` of the serial time;
* on a machine with >= ``WORKERS`` usable CPUs the parallel arm is at
  least ``MIN_PARALLEL_SPEEDUP`` x faster than serial.  On smaller
  machines the target scales down (there is nothing to overlap on one
  core); the CPU count is recorded in the emitted JSON either way.

Results go to ``BENCH_parallel_sweep.json`` (repo root), the committed
baseline gated by ``scripts/check_bench_regression.py`` in CI.
"""

from __future__ import annotations

import os
import time

from repro.exec import RunCache, SweepEngine
from repro.experiments import figure7_sweep
from repro.experiments.driver import RUN_COUNTER

#: the quick Figure-7 grid (matches ``repro-cli figure7 --quick``)
GRID = dict(ns=(40, 64), disconnections=(0, 2, 4), peers=8, repeats=1,
            base_seed=0)

WORKERS = 4
MIN_PARALLEL_SPEEDUP = 2.0
#: a fully-cached rerun must cost less than this fraction of serial time
MAX_CACHED_FRACTION = 0.10


def _cpus() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _timed(engine):
    start = time.perf_counter()
    result = figure7_sweep(engine=engine, **GRID)
    return result, time.perf_counter() - start


def test_parallel_sweep_speedup_and_cache(record_json, tmp_path):
    cache_dir = tmp_path / "run-cache"

    serial, t_serial = _timed(SweepEngine(workers=1))
    parallel, t_parallel = _timed(
        SweepEngine(workers=WORKERS, cache=RunCache(cache_dir)))

    cached_engine = SweepEngine(workers=WORKERS, cache=RunCache(cache_dir))
    runs_before = RUN_COUNTER.count
    cached, t_cached = _timed(cached_engine)

    # parallelism and caching must be invisible in the results
    assert parallel.runs == serial.runs, "parallel arm diverged from serial"
    assert cached.runs == serial.runs, "cached arm diverged from serial"
    assert parallel.times == serial.times == cached.times
    assert all(r.converged for r in serial.runs)

    # the cached arm did zero simulation work: no driver calls in this
    # process, nothing executed by the engine — disk hits only
    assert RUN_COUNTER.count == runs_before
    assert cached_engine.stats["runs_executed"] == 0
    assert cached_engine.stats["disk_hits"] == len(cached.runs)

    cpus = _cpus()
    speedup = t_serial / t_parallel
    cached_fraction = t_cached / t_serial
    record_json("BENCH_parallel_sweep", {
        "grid": {k: list(v) if isinstance(v, tuple) else v
                 for k, v in GRID.items()},
        "workers": WORKERS,
        "cpus": cpus,
        "runs_in_grid": len(serial.runs),
        "wall_seconds_serial": round(t_serial, 3),
        "wall_seconds_parallel": round(t_parallel, 3),
        "wall_seconds_cached": round(t_cached, 3),
        "parallel_speedup": round(speedup, 2),
        "cached_fraction": round(cached_fraction, 4),
        "min_parallel_speedup": MIN_PARALLEL_SPEEDUP,
        "max_cached_fraction": MAX_CACHED_FRACTION,
        "speedup_gated": cpus >= WORKERS,
        "bitwise_identical": True,
    })

    assert cached_fraction < MAX_CACHED_FRACTION, (
        f"cached rerun cost {cached_fraction:.1%} of serial "
        f"({t_cached:.2f}s vs {t_serial:.2f}s)"
    )
    if cpus >= WORKERS:
        assert speedup >= MIN_PARALLEL_SPEEDUP, (
            f"parallel sweep speedup regressed: {speedup:.2f}x < "
            f"{MIN_PARALLEL_SPEEDUP}x at {WORKERS} workers "
            f"(serial {t_serial:.2f}s, parallel {t_parallel:.2f}s)"
        )
    elif cpus >= 2:
        assert speedup >= 1.25, (
            f"parallel sweep speedup {speedup:.2f}x on {cpus} CPUs"
        )
    else:
        # single core: nothing to overlap — require bounded pool overhead
        assert t_parallel <= 1.6 * t_serial, (
            f"pool overhead too high on 1 CPU: {t_parallel:.2f}s vs "
            f"serial {t_serial:.2f}s"
        )
