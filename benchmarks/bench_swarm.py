"""Swarm-scale benchmark: a 10,000+-Daemon run must stay tractable.

The tentpole claim of docs/scaling.md, measured: one Poisson application
(16 computing peers) deployed on a **10,500-Daemon** population under a
three-tier Super-Peer hierarchy, with every idle heartbeat riding the
kernel's slotted :class:`~repro.des.TimerWheel` instead of a dedicated DES
process.  The run must converge on CI-class hardware; the committed
``BENCH_swarm.json`` records

* ``daemons`` / ``events`` / ``wall_seconds`` / ``events_per_sec`` — the
  throughput of the swarm run (machine-dependent; gated with a wide
  allowance plus an absolute floor),
* ``peak_rss_mb`` — memory ceiling (the point of partitioned registers
  and the wheel: no O(cluster) actor state, no per-Daemon process stacks),
* ``heartbeat_collapse_ratio`` — a **deterministic, machine-independent**
  arm: kernel events processed by an idle 1,000-Daemon cluster in process
  mode divided by the same cluster in wheel mode over the same simulated
  window.  This is the kernel-level cost collapse itself, immune to
  runner speed,
* ``profile_top`` — the top-10 functions by cumulative time from a
  profiled smoke-scale run (:mod:`repro.obs.profile`): the committed
  baseline doubles as a where-does-the-time-go ledger, so a future
  regression can be diffed against it function by function.

``scripts/check_bench_regression.py`` gates all of the above against the
committed baseline.  Environment knobs:

* ``REPRO_SWARM_DAEMONS`` — override the swarm population (default 10500);
* ``REPRO_SWARM_SMOKE=1`` — CI smoke mode: a 1,000-Daemon run recorded to
  ``benchmarks/results/swarm_smoke.json`` (the committed baseline is NOT
  overwritten by smoke runs).
"""

from __future__ import annotations

import gc
import os
import resource
import time

from repro.apps import make_poisson_app
from repro.experiments.config import (
    EXPERIMENT_CONFIG,
    EXPERIMENT_LINK_SCALE,
    optimal_overlap,
)
from repro.p2p import build_cluster, launch_application

#: the committed baseline's population (acceptance floor: >= 10,000)
SWARM_DAEMONS = 10_500
#: CI smoke population
SMOKE_DAEMONS = 1_000

#: the swarm topology: 32 leaf Super-Peers under fanout-8 interior tiers
#: (tier sizes 32 / 4 / 1 — ~330 Daemons per leaf Register at full scale)
LEAF_SUPERPEERS = 32
SWARM_CONFIG = EXPERIMENT_CONFIG.with_(
    superpeer_tiers=3,
    superpeer_fanout=8,
    heartbeat_mode="wheel",
)

#: the application riding on the swarm (identical to the repo's standard
#: 16-peer run; the other ~10,484 Daemons heartbeat idle)
APP_KW = dict(n=40, peers=16, seed=0, horizon=120.0)

#: idle-cluster population for the deterministic collapse-ratio arm
RATIO_DAEMONS = 1_000
RATIO_WINDOW = 5.0  # simulated seconds of pure heartbeating


def _peak_rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _run_swarm(n_daemons: int):
    """One application run on an ``n_daemons`` swarm, mirroring
    :func:`repro.experiments.driver.execute_spec` (assembled by hand so
    the kernel's event counter and the wheel stats stay reachable)."""
    cluster = build_cluster(
        n_daemons=n_daemons,
        n_superpeers=LEAF_SUPERPEERS,
        seed=APP_KW["seed"],
        config=SWARM_CONFIG,
        link_scale=EXPERIMENT_LINK_SCALE,
    )
    app = make_poisson_app(
        "poisson",
        n=APP_KW["n"],
        num_tasks=APP_KW["peers"],
        overlap=optimal_overlap(APP_KW["n"], APP_KW["peers"]),
        convergence_threshold=1e-6,
    )
    spawner = launch_application(cluster, app)
    sim = cluster.sim
    # timeit-style GC isolation: the kernel's event churn is cycle-free
    # (refcounting reclaims everything promptly — RSS does not grow with
    # the collector off), but generational collections scan the whole
    # 10,500-Daemon object graph and cost ~10% of wall, with run-to-run
    # jitter depending on how collection thresholds align with the run
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        sim.run(until=sim.any_of([spawner.done,
                                  sim.timeout(APP_KW["horizon"])]))
        wall = time.perf_counter() - t0
    finally:
        gc.enable()
    return cluster, spawner, wall


def _idle_events(heartbeat_mode: str) -> int:
    """Kernel events processed by an idle RATIO_DAEMONS cluster over
    RATIO_WINDOW simulated seconds — the deterministic collapse arm."""
    cluster = build_cluster(
        n_daemons=RATIO_DAEMONS,
        n_superpeers=LEAF_SUPERPEERS,
        seed=1,
        config=SWARM_CONFIG.with_(heartbeat_mode=heartbeat_mode),
        link_scale=EXPERIMENT_LINK_SCALE,
    )
    cluster.sim.run(until=RATIO_WINDOW)
    return cluster.sim.event_count


def _profile_top(top_n: int = 10) -> list:
    """Per-function attribution of a profiled smoke-scale swarm run.

    Profiled *separately* from the timed arm (cProfile's tracing hook
    would poison ``wall_seconds``), at SMOKE scale so full-scale baseline
    recording stays tractable."""
    from repro.obs.profile import profile_callable

    report, _ = profile_callable(
        lambda: _run_swarm(SMOKE_DAEMONS), top_n=top_n
    )
    return report.as_dict()["top"]


def test_swarm_scale(record_json):
    smoke = os.environ.get("REPRO_SWARM_SMOKE") == "1"
    daemons = int(os.environ.get(
        "REPRO_SWARM_DAEMONS", SMOKE_DAEMONS if smoke else SWARM_DAEMONS
    ))

    # -- the swarm run: the wall-clock arm runs FIRST, on a fresh heap —
    # the auxiliary arms below allocate two 1,000-Daemon clusters and a
    # cProfile capture, and the resulting allocator fragmentation slows
    # the timed arm measurably when it runs last
    cluster, spawner, wall = _run_swarm(daemons)

    # -- deterministic collapse ratio (machine-independent: event counts)
    events_process = _idle_events("process")
    events_wheel = _idle_events("wheel")
    collapse = events_process / events_wheel

    # -- where-does-the-time-go ledger (separate profiled smoke run)
    profile_top = _profile_top()
    sim = cluster.sim
    assert spawner.done.triggered, (
        f"{daemons}-Daemon swarm run did not converge within "
        f"{APP_KW['horizon']} simulated seconds"
    )
    events_per_sec = sim.event_count / wall

    wheel = cluster.wheel
    payload = {
        "daemons": daemons,
        "leaf_superpeers": LEAF_SUPERPEERS,
        "superpeer_tiers": SWARM_CONFIG.superpeer_tiers,
        "superpeers_total": len(cluster.superpeers),
        "n": APP_KW["n"],
        "peers": APP_KW["peers"],
        "seed": APP_KW["seed"],
        "converged": spawner.done.triggered,
        "simulated_time": spawner.execution_time,
        "events": sim.event_count,
        "wall_seconds": round(wall, 3),
        "events_per_sec": round(events_per_sec, 1),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
        "batched_calls": sim.batched_calls,
        "wheel_slots_fired": wheel.slots_fired,
        "wheel_timers_fired": wheel.timers_fired,
        "ratio_daemons": RATIO_DAEMONS,
        "ratio_window": RATIO_WINDOW,
        "idle_events_process": events_process,
        "idle_events_wheel": events_wheel,
        "heartbeat_collapse_ratio": round(collapse, 2),
        "profile_top": profile_top,
        "smoke": smoke,
    }
    record_json("swarm_smoke" if smoke else "BENCH_swarm", payload)

    # the wheel must actually collapse heartbeat cost, at any scale
    assert collapse >= 1.5, (
        f"timer wheel no longer collapses heartbeat cost: process-mode "
        f"events / wheel-mode events = {collapse:.2f} < 1.5"
    )
    if not smoke:
        assert daemons >= 10_000, "the committed baseline must be swarm-scale"
