"""Ablation A2 — the number of backup-peers (§5.4; paper uses 20).

"it is convenient to choose a sufficient number of backup-peers in order to
ensure that at least one Backup is available ... If not, computations for
this task should restart from the beginning."

Shape assertions:
* with 0 backup-peers every recovery is a restart-from-zero;
* the restart-from-zero rate falls as the count grows;
* every configuration still converges (from-zero restarts cost time, not
  correctness).
"""

import pytest

from repro.experiments.ablations import backup_count_ablation


@pytest.mark.benchmark(group="ablation")
def test_backup_peer_count_survival(benchmark, record_table, sweep_engine):
    table = benchmark.pedantic(
        lambda: backup_count_ablation(
            counts=(0, 1, 4, 7), n=48, peers=8, disconnections=5,
            seeds=(0, 1, 2), engine=sweep_engine,
        ),
        rounds=1,
        iterations=1,
    )
    record_table("backup_peers", table.format_table())

    rate = {row[0]: row[4] for row in table.rows}
    recoveries = {row[0]: row[2] for row in table.rows}
    if recoveries[0]:
        assert rate[0] == 1.0, "without guardians every restart is from zero"
    # more guardians -> fewer from-zero restarts
    assert rate[7] <= rate[1] <= rate[0]
    assert rate[7] < 0.5
    # everything converged regardless
    assert all(row[1] is not None for row in table.rows)
