"""Observability overhead guard (runs in the tier-1 suite).

The trace bus promises a *zero-overhead disabled path*: every hot call
site guards with ``if tracer.enabled:`` before building event kwargs, and
the default :data:`repro.obs.NULL_TRACER` makes that guard false.  These
tests pin the promise down:

- the guard checks themselves must account for <5% of the substrate
  workloads they protect (the ``bench_micro_substrate`` shapes: DES event
  dispatch and networked RMI traffic);
- a disabled run must never be slower than a traced run (catches a
  regression where attr-dict construction escapes the guard);
- the null tracer must record nothing at all.

Timing compares the guard's measured per-check cost against the measured
per-event workload cost — a ratio of two in-process medians — rather than
two absolute wall-clocks, so the assertion is stable on loaded machines.
"""

from __future__ import annotations

import time

import pytest

from repro.des import Simulator
from repro.net import Network, UniformLinkModel
from repro.obs import NULL_TRACER, Tracer
from repro.rmi import RemoteObject, RmiRuntime, remote

REPEATS = 5
OVERHEAD_BUDGET = 0.05


def _median(samples: list[float]) -> float:
    ordered = sorted(samples)
    return ordered[len(ordered) // 2]


def _time(fn, repeats: int = REPEATS) -> float:
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return _median(samples)


def _des_workload(tracer: Tracer | None) -> int:
    """The bench_micro_substrate DES-throughput shape, optionally traced."""
    sim = Simulator(tracer=tracer)

    def ticker(env):
        for _ in range(10_000):
            yield env.timeout(1.0)

    sim.process(ticker(sim))
    sim.run()
    return sim.event_count


class _Echo(RemoteObject):
    @remote
    def echo(self, x):
        return x


def _rmi_workload(tracer: Tracer | None) -> int:
    """The bench_micro_substrate RMI-roundtrip shape, optionally traced."""
    sim = Simulator(tracer=tracer)
    net = Network(sim, link_model=UniformLinkModel(latency=1e-4))
    a, b = net.new_host("a"), net.new_host("b")
    server = RmiRuntime(net, b, 5000)
    client = RmiRuntime(net, a, 5000)
    stub = server.serve(_Echo(), "echo")

    def caller(env):
        for i in range(300):
            yield client.call(stub, "echo", i)

    p = sim.process(caller(sim))
    sim.run(until=p)
    return server.calls_served


def _guard_cost_per_check() -> float:
    """Measured cost of one ``if tracer.enabled:`` disabled-path check."""
    tracer = NULL_TRACER
    n = 200_000

    def loop():
        for _ in range(n):
            if tracer.enabled:  # pragma: no cover - never true
                raise AssertionError
    return _time(loop) / n


@pytest.mark.obs_overhead
def test_null_tracer_records_nothing():
    before = len(NULL_TRACER)
    events = _des_workload(tracer=None)
    assert events >= 10_000
    assert len(NULL_TRACER) == before == 0
    assert NULL_TRACER.counts == {}


@pytest.mark.obs_overhead
def test_disabled_guard_under_overhead_budget_des():
    events = 10_001  # one spawn + 10k timeouts
    per_event = _time(lambda: _des_workload(tracer=None)) / events
    guard = _guard_cost_per_check()
    # each DES event crosses at most ~2 guarded sites (spawn + dispatch)
    assert 2 * guard < OVERHEAD_BUDGET * per_event, (
        f"guard check {guard * 1e9:.1f} ns vs {per_event * 1e9:.1f} ns/event"
    )


@pytest.mark.obs_overhead
def test_disabled_guard_under_overhead_budget_rmi():
    calls = 300
    per_call = _time(lambda: _rmi_workload(tracer=None)) / calls
    guard = _guard_cost_per_check()
    # a traced RMI round trip crosses ~6 guarded sites
    # (call, 2x send, 2x deliver, reply)
    assert 6 * guard < OVERHEAD_BUDGET * per_call, (
        f"guard check {guard * 1e9:.1f} ns vs {per_call * 1e9:.1f} ns/call"
    )


@pytest.mark.obs_overhead
def test_disabled_run_not_slower_than_traced_run():
    # interleave the two variants so machine-load drift hits both equally
    disabled, enabled = [], []
    for _ in range(REPEATS):
        start = time.perf_counter()
        _rmi_workload(tracer=None)
        disabled.append(time.perf_counter() - start)
        start = time.perf_counter()
        _rmi_workload(tracer=Tracer())
        enabled.append(time.perf_counter() - start)
    assert _median(disabled) <= _median(enabled) * (1 + OVERHEAD_BUDGET)


@pytest.mark.obs_overhead
def test_record_obs_overhead_baseline(record_json):
    """Emit ``BENCH_obs_overhead.json`` with the two guard-cost ratios.

    The budget tests above assert the hard <5% bound; this records the
    measured ratios so ``scripts/check_bench_regression.py`` can flag a
    slow drift toward the budget long before it trips.
    """
    guard = _guard_cost_per_check()
    per_event = _time(lambda: _des_workload(tracer=None)) / 10_001
    per_call = _time(lambda: _rmi_workload(tracer=None)) / 300
    record_json("BENCH_obs_overhead", {
        "guard_ns": round(guard * 1e9, 3),
        "des_event_ns": round(per_event * 1e9, 1),
        "rmi_call_ns": round(per_call * 1e9, 1),
        # guarded sites per unit of work, as in the budget tests above
        "des_guard_over_event": round(2 * guard / per_event, 5),
        "rmi_guard_over_call": round(6 * guard / per_call, 5),
        "overhead_budget": OVERHEAD_BUDGET,
    })


@pytest.mark.obs_overhead
def test_traced_run_actually_traces():
    tracer = Tracer()
    calls = _rmi_workload(tracer=tracer)
    assert calls == 300
    assert tracer.count("rmi", "call") == 300
    assert tracer.count("rmi", "reply") == 300
    assert tracer.count("net", "send") >= 600
