"""Legacy setup shim.

The execution environment has no network and no ``wheel`` package, so PEP 660
editable installs fail; ``python setup.py develop`` (or ``pip install -e .``
on newer toolchains) installs the package from ``pyproject.toml`` metadata.
"""
from setuptools import setup

setup()
