"""Typed fault actions: the vocabulary of the fault plane.

Each :class:`FaultAction` subclass is one thing that can go wrong in a
JaceP2P deployment, at a given simulated time:

* :class:`DaemonCrash` — a computing peer powers off (and, with a
  ``downtime``, reconnects later): the paper's §7 disconnection protocol,
  previously the only fault axis (:mod:`repro.churn`);
* :class:`SuperPeerCrash` — an entry-point node dies; idle Daemons whose
  heartbeats fail must relocate to a surviving Super-Peer (§5.3's "if a
  Super-Peer fails, the Daemons ... register to another Super-Peer");
* :class:`PartitionAction` / :class:`HealAction` — the network splits into
  groups that cannot exchange messages (partial connectivity, the regime
  studied by Sens et al.'s failure detectors);
* :class:`MessageCorruption` — a window during which asynchronous data
  payloads are perturbed in transit (silent data corruption, the axis of
  Vogl et al.'s corruption-resilient asynchronous Jacobi);
* :class:`RackFailure` — a correlated failure: a victim peer *and* the
  backup-peers guarding its checkpoints go down together, stressing §5.4's
  multi-backup strategy at its weakest point;
* :class:`SpawnerCrash` — the "one stable entity" itself dies (§4.2's
  future-work direction): with a warm standby the run fails over mid-run
  (docs/gossip.md); with a ``downtime`` the machine also returns later and
  must either resume from stable storage or abdicate to a promoted standby.

Actions are frozen, hashable and JSON-round-trippable (``to_dict`` /
:func:`action_from_dict`), so a :class:`~repro.faults.plan.FaultPlan` can
live inside a content-addressed :class:`~repro.exec.spec.RunSpec`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import ClassVar

from repro.errors import ConfigurationError

__all__ = [
    "FaultAction",
    "DaemonCrash",
    "SuperPeerCrash",
    "PartitionAction",
    "HealAction",
    "MessageCorruption",
    "RackFailure",
    "SpawnerCrash",
    "action_from_dict",
]


@dataclass(frozen=True)
class FaultAction:
    """Base class: something goes wrong at simulated ``time``."""

    time: float
    kind: ClassVar[str] = ""

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError("fault time must be >= 0")

    def to_dict(self) -> dict:
        """JSON-ready dump, tagged with the action ``kind``."""
        return {"kind": self.kind, **asdict(self)}


@dataclass(frozen=True)
class DaemonCrash(FaultAction):
    """Power off one computing peer; reconnect ``downtime`` seconds later.

    ``host=None`` picks a random alive victim at fire time (preferring
    currently-computing Daemons, like the paper's protocol); a host name
    pins the victim for trace replay.  ``downtime=None`` makes the crash
    permanent.
    """

    host: str | None = None
    downtime: float | None = None
    kind: ClassVar[str] = "daemon_crash"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.downtime is not None and self.downtime <= 0:
            raise ConfigurationError("downtime must be positive (or None)")


@dataclass(frozen=True)
class SuperPeerCrash(FaultAction):
    """Kill a Super-Peer; reboot it ``downtime`` seconds later.

    Daemons registered to (or bootstrapping against) the dead Super-Peer
    observe failed heartbeats and re-register with a surviving one (§5.3).
    ``sp_id=None`` picks a random alive Super-Peer at fire time;
    ``downtime=None`` leaves it down for good.
    """

    sp_id: str | None = None
    downtime: float | None = None
    kind: ClassVar[str] = "superpeer_crash"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.downtime is not None and self.downtime <= 0:
            raise ConfigurationError("downtime must be positive (or None)")


@dataclass(frozen=True)
class PartitionAction(FaultAction):
    """Split the network into ``groups`` of host names (§5.3 reachability).

    Hosts not named in any group form one implicit extra group (the
    semantics of :meth:`repro.net.network.Network.partition`).  With a
    ``duration`` the partition heals itself; otherwise it lasts until a
    :class:`HealAction` fires.
    """

    groups: tuple[tuple[str, ...], ...] = ()
    duration: float | None = None
    kind: ClassVar[str] = "partition"

    def __post_init__(self) -> None:
        super().__post_init__()
        # tolerate lists (e.g. straight out of JSON) by freezing them
        object.__setattr__(
            self, "groups", tuple(tuple(group) for group in self.groups)
        )
        if not self.groups:
            raise ConfigurationError("partition needs at least one group")
        if self.duration is not None and self.duration <= 0:
            raise ConfigurationError("duration must be positive (or None)")


@dataclass(frozen=True)
class HealAction(FaultAction):
    """Remove the current partition (no-op when none is active)."""

    kind: ClassVar[str] = "heal"


@dataclass(frozen=True)
class MessageCorruption(FaultAction):
    """Corrupt asynchronous data payloads in transit for ``duration`` s.

    While active, each delivered ``receive_data`` message is independently
    corrupted with probability ``rate``: one entry of the boundary-value
    payload is overwritten with a value scaled by ``magnitude`` — the
    silent-data-corruption model of Vogl et al.  Control traffic (RMI
    calls, heartbeats, register broadcasts, checkpoints) is never touched:
    the claim under test is that the *asynchronous iteration* absorbs bad
    data, not that the protocols survive malformed control messages.
    """

    duration: float = 0.0
    rate: float = 0.05
    magnitude: float = 1e3
    kind: ClassVar[str] = "corruption"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration <= 0:
            raise ConfigurationError("corruption duration must be positive")
        if not 0.0 < self.rate <= 1.0:
            raise ConfigurationError("corruption rate must be in (0, 1]")
        if self.magnitude == 0:
            raise ConfigurationError("corruption magnitude must be non-zero")


@dataclass(frozen=True)
class RackFailure(FaultAction):
    """Correlated crash: a victim peer plus the guardians of its checkpoints.

    The victim's task names its backup-peers through the §5.4
    :class:`~repro.checkpoint.policy.BackupPolicy`; every Daemon currently
    running one of those tasks is powered off in the same instant as the
    victim.  With every Backup of the victim's task gone, recovery must
    restart from iteration 0 — the worst case of Fig. 6.
    """

    host: str | None = None
    downtime: float | None = None
    kind: ClassVar[str] = "rack_failure"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.downtime is not None and self.downtime <= 0:
            raise ConfigurationError("downtime must be positive (or None)")


@dataclass(frozen=True)
class SpawnerCrash(FaultAction):
    """Kill the Spawner machine — the system's single stable entity (§4.2).

    Computing Daemons keep iterating (asynchronous tasks need no Spawner
    to make progress); a warm :class:`~repro.p2p.standby.StandbySpawner`
    detects the leadership-beat silence over gossip and takes over the
    run.  With a ``downtime`` the machine later recovers and either
    resumes from stable storage or — if a standby already promoted under
    a higher reign — abdicates, keeping exactly one leader.
    ``downtime=None`` leaves it down for good.
    """

    downtime: float | None = None
    kind: ClassVar[str] = "spawner_crash"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.downtime is not None and self.downtime <= 0:
            raise ConfigurationError("downtime must be positive (or None)")


_ACTION_TYPES: dict[str, type[FaultAction]] = {
    cls.kind: cls
    for cls in (
        DaemonCrash,
        SuperPeerCrash,
        PartitionAction,
        HealAction,
        MessageCorruption,
        RackFailure,
        SpawnerCrash,
    )
}


def action_from_dict(data: dict) -> FaultAction:
    """Inverse of :meth:`FaultAction.to_dict`."""
    data = dict(data)
    kind = data.pop("kind", None)
    cls = _ACTION_TYPES.get(kind)
    if cls is None:
        raise ConfigurationError(f"unknown fault action kind {kind!r}")
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ConfigurationError(
            f"unknown field(s) {sorted(unknown)} for fault action {kind!r}"
        )
    return cls(**data)
