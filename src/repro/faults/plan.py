"""Composable fault plans.

A :class:`FaultPlan` is a frozen, content-addressable schedule of
:class:`~repro.faults.actions.FaultAction`\\ s.  It is *data*, not
behaviour: execution belongs to
:class:`~repro.faults.injector.FaultInjector`, and every random choice the
injector makes (victim picks, corruption draws) derives from the run's
seed, so the same plan against the same :class:`~repro.exec.spec.RunSpec`
replays bit-for-bit — serially, in a worker pool, or out of the run cache.

Plans compose with ``+`` (schedules merge and sort), so scenarios build up
from small pieces::

    plan = superpeer_outage + FaultPlan.of(MessageCorruption(0.1, duration=0.2))
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.faults.actions import FaultAction, action_from_dict

__all__ = ["FaultPlan", "FaultRecord"]


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, immutable schedule of fault actions.

    ``name`` is cosmetic (scenario display); two plans with the same
    actions and different names are different specs on purpose, so a named
    scenario never aliases an ad-hoc plan in the run cache.
    """

    actions: tuple[FaultAction, ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "actions", tuple(self.actions))
        for action in self.actions:
            if not isinstance(action, FaultAction):
                raise ConfigurationError(
                    f"FaultPlan actions must be FaultActions, got {action!r}"
                )

    @classmethod
    def of(cls, *actions: FaultAction, name: str = "") -> "FaultPlan":
        """Convenience constructor: ``FaultPlan.of(a, b, c)``."""
        return cls(actions=tuple(actions), name=name)

    # -- composition ----------------------------------------------------------

    def __add__(self, other: "FaultPlan") -> "FaultPlan":
        if not isinstance(other, FaultPlan):
            return NotImplemented
        name = self.name or other.name
        return FaultPlan(actions=self.actions + other.actions, name=name)

    def __bool__(self) -> bool:
        return bool(self.actions)

    def __len__(self) -> int:
        return len(self.actions)

    def schedule(self) -> list[FaultAction]:
        """The actions in firing order (stable for equal times)."""
        return sorted(self.actions, key=lambda a: a.time)

    # -- transport ------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready dump (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "actions": [action.to_dict() for action in self.schedule()],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(
            actions=tuple(
                action_from_dict(entry) for entry in data.get("actions", ())
            ),
            name=data.get("name", ""),
        )


@dataclass(frozen=True)
class FaultRecord:
    """One *executed* fault: what the injector actually did, for replay.

    ``detail`` carries the resolved choices (victim host names, Super-Peer
    ids, corruption counts) that the plan left open.
    """

    time: float
    kind: str
    detail: dict

    def to_dict(self) -> dict:
        return {"time": self.time, "kind": self.kind, "detail": dict(self.detail)}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultRecord":
        return cls(
            time=data["time"], kind=data["kind"], detail=dict(data.get("detail", {}))
        )
