"""Named fault scenarios: curated plans for the CLI and smoke tests.

Each scenario is a ready-made :class:`~repro.faults.plan.FaultPlan` whose
action times fit the quick experiment sizes (a ``n=32 / peers=4`` run
converges around ``t≈0.4`` simulated seconds under the default
:data:`~repro.experiments.config.EXPERIMENT_CONFIG`), so every scenario
actually *fires* before convergence.  ``repro-cli faults list`` prints this
catalogue; ``repro-cli faults run <name>`` executes one end-to-end.

Scenarios are data (frozen plans), so they are content-addressable: a named
scenario inside a :class:`~repro.exec.spec.RunSpec` caches and replays like
any other spec field.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.faults.actions import (
    DaemonCrash,
    MessageCorruption,
    PartitionAction,
    RackFailure,
    SpawnerCrash,
    SuperPeerCrash,
)
from repro.faults.plan import FaultPlan

__all__ = [
    "SCENARIOS",
    "SCENARIO_REQUIRES",
    "scenario",
    "scenario_names",
    "scenario_overrides",
]


#: name -> (description, plan).  Descriptions cite the paper section each
#: scenario stresses.
SCENARIOS: dict[str, tuple[str, FaultPlan]] = {
    "churn-burst": (
        "three computing peers crash in quick succession and reconnect "
        "(§7 disconnection protocol)",
        FaultPlan.of(
            DaemonCrash(time=0.05, downtime=0.10),
            DaemonCrash(time=0.08, downtime=0.10),
            DaemonCrash(time=0.11, downtime=0.10),
            name="churn-burst",
        ),
    ),
    "superpeer-outage": (
        "one Super-Peer dies and reboots; idle Daemons re-register with a "
        "survivor (§5.3)",
        FaultPlan.of(
            SuperPeerCrash(time=0.05, downtime=0.15),
            name="superpeer-outage",
        ),
    ),
    "split-brain": (
        "two computing peers are partitioned away and healed; asynchronous "
        "iteration rides through the message loss (§5.3)",
        FaultPlan.of(
            PartitionAction(
                time=0.10,
                groups=(("daemon-host-0", "daemon-host-1"),),
                duration=0.08,
            ),
            name="split-brain",
        ),
    ),
    "dirty-channel": (
        "a window of silent data corruption on the asynchronous boundary "
        "exchange (loss-tolerance claim of §5.3, corruption variant)",
        FaultPlan.of(
            MessageCorruption(time=0.02, duration=0.25, rate=0.05, magnitude=1e3),
            name="dirty-channel",
        ),
    ),
    "rack-down": (
        "a victim peer and the guardians of its checkpoints fail together; "
        "recovery restarts from scratch (§5.4 worst case)",
        FaultPlan.of(
            RackFailure(time=0.12, downtime=0.20),
            name="rack-down",
        ),
    ),
    "perfect-storm": (
        "Super-Peer crash + two-group partition/heal + corruption window in "
        "one run: the acceptance scenario for the fault plane",
        FaultPlan.of(
            SuperPeerCrash(time=0.05, downtime=0.15),
            PartitionAction(
                time=0.10,
                groups=(("daemon-host-0", "daemon-host-1"),),
                duration=0.08,
            ),
            MessageCorruption(time=0.02, duration=0.25, rate=0.10, magnitude=1e3),
            name="perfect-storm",
        ),
    ),
    "spawner-down": (
        "the Spawner machine dies for good mid-run; the warm standby "
        "detects the leadership-beat silence, promotes under a fenced "
        "reign and the run converges without restarting (docs/gossip.md)",
        FaultPlan.of(
            SpawnerCrash(time=0.08),
            name="spawner-down",
        ),
    ),
    "standby-flap": (
        "the Spawner dies AND resurrects from stable storage after the "
        "standby already promoted: the resurrected primary must abdicate "
        "to the higher reign — exactly one leader survives the flap",
        FaultPlan.of(
            SpawnerCrash(time=0.08, downtime=1.0),
            name="standby-flap",
        ),
    ),
    "discovery-storm": (
        "both seed Super-Peers die while computing peers churn: rebooting "
        "Daemons must discover surviving entry points over gossip (no "
        "hardcoded roster) and re-register with exponential backoff",
        FaultPlan.of(
            SuperPeerCrash(time=0.05, sp_id="SP0", downtime=0.20),
            SuperPeerCrash(time=0.07, sp_id="SP1", downtime=0.20),
            DaemonCrash(time=0.10, downtime=0.10),
            DaemonCrash(time=0.12, downtime=0.10),
            name="discovery-storm",
        ),
    ),
    "poisoned-channel": (
        "whole-run silent data corruption: without the contraction-bound "
        "rejection filter the solver chases poisoned components and stalls "
        "or converges wrong; with it on, the run converges correctly "
        "(arXiv:2206.08479)",
        FaultPlan.of(
            MessageCorruption(time=0.02, duration=30.0, rate=0.05,
                              magnitude=1e3),
            name="poisoned-channel",
        ),
    ),
}

#: RunSpec fields a scenario needs switched on to be meaningful; the CLI's
#: ``faults run`` applies these automatically (``spawner-down`` without a
#: standby would simply never converge).
SCENARIO_REQUIRES: dict[str, dict[str, bool]] = {
    "spawner-down": {"gossip": True, "standby": True},
    "standby-flap": {"gossip": True, "standby": True},
    "discovery-storm": {"gossip": True},
    "poisoned-channel": {"reject_corruption": True},
}


def scenario(name: str) -> FaultPlan:
    """Look up a named scenario plan."""
    try:
        return SCENARIOS[name][1]
    except KeyError:
        raise ConfigurationError(
            f"unknown fault scenario {name!r}; known: {', '.join(scenario_names())}"
        ) from None


def scenario_names() -> list[str]:
    return sorted(SCENARIOS)


def scenario_overrides(name: str) -> dict[str, bool]:
    """RunSpec field overrides a named scenario depends on."""
    return dict(SCENARIO_REQUIRES.get(name, {}))
