"""The fault plane: scenario-driven failures for JaceP2P experiments.

This package turns "what can go wrong" into data: a
:class:`~repro.faults.plan.FaultPlan` is a frozen, seeded, JSON-round-trip
schedule of typed :class:`~repro.faults.actions.FaultAction`\\ s — daemon
crashes (the historical churn axis), Super-Peer outages with Daemon
re-registration, network partitions, in-transit corruption of asynchronous
data payloads and correlated rack failures.  The
:class:`~repro.faults.injector.FaultInjector` executes a plan as a
simulation process, records what it did for replay, and emits ``faults``
trace events plus ``fault_*`` metrics.

Plans ride inside :class:`~repro.exec.spec.RunSpec` (the ``faults`` field),
so fault scenarios flow through the parallel sweep engine and the run cache
like any other experiment parameter, and through ``repro-cli faults``.
"""

from repro.faults.actions import (
    DaemonCrash,
    FaultAction,
    HealAction,
    MessageCorruption,
    PartitionAction,
    RackFailure,
    SpawnerCrash,
    SuperPeerCrash,
    action_from_dict,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultRecord
from repro.faults.scenarios import (
    SCENARIO_REQUIRES,
    SCENARIOS,
    scenario,
    scenario_names,
    scenario_overrides,
)

__all__ = [
    "FaultAction",
    "DaemonCrash",
    "SuperPeerCrash",
    "PartitionAction",
    "HealAction",
    "MessageCorruption",
    "RackFailure",
    "SpawnerCrash",
    "action_from_dict",
    "FaultPlan",
    "FaultRecord",
    "FaultInjector",
    "SCENARIOS",
    "SCENARIO_REQUIRES",
    "scenario",
    "scenario_names",
    "scenario_overrides",
]
