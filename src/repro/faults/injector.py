"""The fault-plane executor: a DES process that carries out a FaultPlan.

The :class:`FaultInjector` generalises the original churn injector from
"daemon crashes on a stochastic schedule" to *any* composition of typed
:class:`~repro.faults.actions.FaultAction`\\ s: Super-Peer outages, network
partitions, in-transit message corruption and correlated rack failures.

Design invariants:

* **Determinism** — every open choice (random victim, corruption draws)
  comes from ``rng.child(...)`` with an index derived from the injector's
  own progress, never from wall clock or iteration order of a set.  The
  same plan + seed therefore replays bit-for-bit, which is what lets fault
  scenarios flow through the content-addressed run cache and the process
  pool without arms diverging.

* **Churn compatibility** — for a plan consisting purely of
  :class:`~repro.faults.actions.DaemonCrash` actions, victim selection
  consumes ``rng.child("victim", <events so far>)`` exactly like the
  historical ``ChurnInjector``, so the churn front-end
  (:mod:`repro.churn.injector`) reproduces seed-for-seed the victims of
  every pre-fault-plane experiment.

* **Replayability** — everything the injector *actually did* (resolved
  victims, Super-Peer ids, group memberships) is recorded as
  :class:`~repro.faults.plan.FaultRecord`\\ s; :meth:`executed_plan` turns
  the record back into a pinned plan.
"""

from __future__ import annotations

import numpy as np

from repro.des import Interrupt, Simulator
from repro.errors import FaultError
from repro.faults.actions import (
    DaemonCrash,
    FaultAction,
    HealAction,
    MessageCorruption,
    PartitionAction,
    RackFailure,
    SpawnerCrash,
    SuperPeerCrash,
)
from repro.faults.plan import FaultPlan, FaultRecord
from repro.net.host import Host
from repro.rmi.invocation import OnewayMessage
from repro.util.rng import RngTree

__all__ = ["FaultInjector"]


class FaultInjector:
    """Executes a :class:`FaultPlan` against a running deployment.

    Parameters
    ----------
    sim:
        The simulation kernel.
    plan:
        The schedule of fault actions to carry out.
    rng:
        Seeded randomness for every open choice the plan leaves to fire
        time (victim picks, corruption draws).
    cluster:
        A :class:`~repro.p2p.cluster.Cluster`; required for Super-Peer and
        rack actions, and the default source of hosts/network/log/metrics.
    hosts:
        Candidate victims for daemon crashes (default: the cluster's
        daemon hosts).
    network:
        The message fabric, for partitions and corruption (default: the
        cluster's network).
    log:
        Optional :class:`~repro.util.logging.EventLog`; daemon-crash
        entries keep the historical ``disconnect`` / ``reconnect`` kinds
        the timeline renderer understands.
    log_entity:
        Entity tag for log records (the churn front-end passes
        ``"churn"``).
    victim_filter:
        ``victim_filter(host) -> bool`` narrows random victim selection
        (e.g. to hosts currently computing); falls back to any alive host
        when nothing passes.
    registry:
        Optional :class:`~repro.obs.MetricsRegistry` receiving
        ``fault_actions`` / ``fault_skipped`` / ``fault_corrupted_messages``
        counters.
    """

    def __init__(
        self,
        sim: Simulator,
        plan: FaultPlan,
        *,
        rng: RngTree,
        cluster=None,
        hosts: list[Host] | None = None,
        network=None,
        log=None,
        log_entity: str = "faults",
        victim_filter=None,
        registry=None,
    ):
        self.sim = sim
        self.plan = plan
        self.rng = rng
        self.cluster = cluster
        if hosts is None and cluster is not None:
            hosts = cluster.testbed.daemon_hosts
        self.hosts = list(hosts or ())
        self.network = network if network is not None else (
            cluster.network if cluster is not None else None
        )
        self.log = log if log is not None else (
            cluster.log if cluster is not None else None
        )
        self.log_entity = log_entity
        self.victim_filter = victim_filter
        self.registry = registry if registry is not None else (
            cluster.metrics if cluster is not None else None
        )
        self._validate(plan)

        self.executed: list[FaultRecord] = []
        self.skipped = 0       # actions with no viable target at fire time
        self.corrupted = 0     # messages corrupted across all windows
        #: active corruption windows: (action, rng child) tuples
        self._corruptions: list[tuple[MessageCorruption, RngTree]] = []
        self._corruptor_installed = False
        self.process = sim.process(self._run(), label="fault-injector")

    # -- validation -----------------------------------------------------------

    def _validate(self, plan: FaultPlan) -> None:
        for action in plan.actions:
            if isinstance(action, (SuperPeerCrash, RackFailure, SpawnerCrash)) \
                    and self.cluster is None:
                raise FaultError(
                    f"{action.kind!r} actions require a cluster to act on"
                )
            if isinstance(action, DaemonCrash) and not self.hosts:
                raise FaultError("daemon_crash actions require victim hosts")
            if (
                isinstance(action, (PartitionAction, HealAction, MessageCorruption))
                and self.network is None
            ):
                raise FaultError(f"{action.kind!r} actions require a network")

    # -- bookkeeping -----------------------------------------------------------

    def _record(self, action: FaultAction, **detail) -> FaultRecord:
        rec = FaultRecord(time=self.sim.now, kind=action.kind, detail=detail)
        self.executed.append(rec)
        if self.registry is not None:
            self.registry.counter(
                "fault_actions", "fault-plane actions executed"
            ).inc(kind=action.kind)
        tr = self.sim.tracer
        if tr.enabled:
            tr.emit(self.sim.now, "faults", self.log_entity, action.kind, **detail)
        return rec

    def _skip(self, action: FaultAction, reason: str) -> None:
        self.skipped += 1
        if self.registry is not None:
            self.registry.counter(
                "fault_skipped", "fault actions with no viable target"
            ).inc(kind=action.kind)
        if self.log is not None:
            # the historical kind, so churn-era log consumers keep counting
            kind = "churn_skipped" if isinstance(action, DaemonCrash) else "fault_skipped"
            self.log.emit(self.sim.now, self.log_entity, kind, reason=reason)
        tr = self.sim.tracer
        if tr.enabled:
            tr.emit(self.sim.now, "faults", self.log_entity, "skip",
                    action=action.kind, reason=reason)

    def _log(self, kind: str, **detail) -> None:
        if self.log is not None:
            self.log.emit(self.sim.now, self.log_entity, kind, **detail)

    # -- main loop --------------------------------------------------------------

    def _run(self):
        try:
            for action in self.plan.schedule():
                delay = action.time - self.sim.now
                if delay > 0:
                    yield self.sim.timeout(delay)
                self._dispatch(action)
        except Interrupt:
            return  # cancelled (e.g. the run converged); stop injecting

    def cancel(self) -> None:
        """Stop executing further actions (in-flight recoveries complete)."""
        if self.process.is_alive and self.sim._active_process is not self.process:
            self.process.interrupt(cause="fault-plan-cancelled")

    def _dispatch(self, action: FaultAction) -> None:
        if isinstance(action, DaemonCrash):
            self._daemon_crash(action)
        elif isinstance(action, SuperPeerCrash):
            self._superpeer_crash(action)
        elif isinstance(action, PartitionAction):
            self._partition(action)
        elif isinstance(action, HealAction):
            self._heal(action)
        elif isinstance(action, MessageCorruption):
            self.sim.process(self._corruption_window(action),
                             label="fault-corruption")
        elif isinstance(action, RackFailure):
            self._rack_failure(action)
        elif isinstance(action, SpawnerCrash):
            self._spawner_crash(action)
        else:  # pragma: no cover - registry and dispatch kept in sync
            raise FaultError(f"no handler for fault action {action.kind!r}")

    # -- daemon crash (the churn axis) -----------------------------------------

    def _pick_victim(self, pinned: str | None) -> Host | None:
        if pinned is not None:
            host = next((h for h in self.hosts if h.name == pinned), None)
            return host if host is not None and host.online else None
        alive = [h for h in self.hosts if h.online]
        if not alive:
            return None
        if self.victim_filter is not None:
            preferred = [h for h in alive if self.victim_filter(h)]
            if preferred:
                alive = preferred
        # Index = events so far: bit-for-bit the ChurnInjector draw, so the
        # churn front-end replays historical victim sequences exactly.
        index = len(self.executed) + self.skipped
        return self.rng.child("victim", index).choice(alive)

    def _daemon_crash(self, action: DaemonCrash) -> None:
        victim = self._pick_victim(action.host)
        if victim is None:
            self._skip(action, "no alive victim")
            return
        victim.fail(cause="churn")
        self._record(action, host=victim.name, downtime=action.downtime)
        self._log("disconnect", host=victim.name, duration=action.downtime)
        if action.downtime is not None:
            self.sim.process(self._recover_hosts([victim], action.downtime),
                             label=f"fault-recover:{victim.name}")

    def _recover_hosts(self, hosts: list[Host], downtime: float):
        yield self.sim.timeout(downtime)
        for host in hosts:
            if not host.online:
                host.recover()
                self._log("reconnect", host=host.name)
                tr = self.sim.tracer
                if tr.enabled:
                    tr.emit(self.sim.now, "faults", self.log_entity,
                            "recover", host=host.name)

    # -- super-peer crash -------------------------------------------------------

    def _superpeer_crash(self, action: SuperPeerCrash) -> None:
        alive = [sp for sp in self.cluster.superpeers if sp.host.online]
        if action.sp_id is not None:
            sp = next((s for s in alive if s.sp_id == action.sp_id), None)
        elif alive:
            index = len(self.executed) + self.skipped
            sp = self.rng.child("superpeer", index).choice(alive)
        else:
            sp = None
        if sp is None:
            self._skip(action, "no alive super-peer")
            return
        sp.host.fail(cause="superpeer_fault")
        self._record(action, sp_id=sp.sp_id, host=sp.host.name,
                     downtime=action.downtime)
        self._log("superpeer_crash", sp_id=sp.sp_id, host=sp.host.name)
        if action.downtime is not None:
            self.sim.process(self._reboot_superpeer(sp.host, action.downtime),
                             label=f"fault-sp-reboot:{sp.host.name}")

    def _reboot_superpeer(self, host: Host, downtime: float):
        yield self.sim.timeout(downtime)
        if not host.online:
            host.recover()
            sp = self.cluster.boot_superpeer(host)
            self._log("superpeer_reboot", sp_id=sp.sp_id, host=host.name)
            tr = self.sim.tracer
            if tr.enabled:
                tr.emit(self.sim.now, "faults", self.log_entity,
                        "superpeer_reboot", sp_id=sp.sp_id, host=host.name)

    # -- partitions --------------------------------------------------------------

    def _partition(self, action: PartitionAction) -> None:
        self.network.partition([list(g) for g in action.groups])
        self._record(action, groups=[list(g) for g in action.groups],
                     duration=action.duration)
        self._log("partition", groups=[list(g) for g in action.groups])
        if action.duration is not None:
            self.sim.process(self._heal_later(action.duration),
                             label="fault-heal")

    def _heal_later(self, duration: float):
        yield self.sim.timeout(duration)
        self.network.heal_partition()
        self._log("heal")
        tr = self.sim.tracer
        if tr.enabled:
            tr.emit(self.sim.now, "faults", self.log_entity, "heal")

    def _heal(self, action: HealAction) -> None:
        self.network.heal_partition()
        self._record(action)
        self._log("heal")

    # -- message corruption ------------------------------------------------------

    def _corruption_window(self, action: MessageCorruption):
        index = len(self.executed) + self.skipped
        window = (action, self.rng.child("corrupt", index))
        self._corruptions.append(window)
        self._sync_corruptor()
        self._record(action, rate=action.rate, magnitude=action.magnitude,
                     duration=action.duration)
        self._log("corruption_on", rate=action.rate, duration=action.duration)
        yield self.sim.timeout(action.duration)
        self._corruptions.remove(window)
        self._sync_corruptor()
        self._log("corruption_off", corrupted=self.corrupted)

    def _sync_corruptor(self) -> None:
        want = bool(self._corruptions)
        if want and not self._corruptor_installed:
            self.network.corruptor = self._corrupt
            self._corruptor_installed = True
        elif not want and self._corruptor_installed:
            self.network.corruptor = None
            self._corruptor_installed = False

    def _corrupt(self, msg) -> None:
        """Network delivery hook: maybe perturb an asynchronous data payload.

        Only ``receive_data`` oneways are eligible — the model is silent
        corruption of boundary values in flight, not malformed control
        traffic.  Draws are sequential on the window's own rng child, so
        the corruption pattern is a pure function of (seed, delivery
        order), which the kernel makes deterministic.
        """
        payload = msg.payload
        if not isinstance(payload, OnewayMessage) or payload.method != "receive_data":
            return
        for action, rng in self._corruptions:
            if rng.uniform() >= action.rate:
                continue
            args = payload.args  # (app_id, dst_task, src_task, iteration, values)
            values = np.array(args[4], dtype=float, copy=True)
            if values.size == 0:
                continue
            idx = int(rng.integers(0, values.size))
            clean = float(values[idx])
            values[idx] = action.magnitude if clean == 0.0 else clean * action.magnitude
            payload.args = args[:4] + (values,)
            self.corrupted += 1
            if self.registry is not None:
                self.registry.counter(
                    "fault_corrupted_messages", "data payloads corrupted in transit"
                ).inc()
            tr = self.sim.tracer
            if tr.enabled:
                tr.emit(self.sim.now, "faults", self.log_entity, "corrupt",
                        msg_id=msg.msg_id, dst_task=args[1], src_task=args[2],
                        index=idx)

    # -- rack failure -------------------------------------------------------------

    def _rack_failure(self, action: RackFailure) -> None:
        victim = self._pick_victim(action.host)
        if victim is None:
            self._skip(action, "no alive victim")
            return
        doomed = [victim]
        daemon = self.cluster.daemons.get(victim.name)
        runner = daemon.runner if daemon is not None else None
        if runner is not None:
            for peer_task in runner.policy.backup_peers(runner.task_id):
                stub = runner.register.stub_of(peer_task)
                if stub is None:
                    continue
                guardian = self.network.hosts.get(stub.address.host)
                if (
                    guardian is not None
                    and guardian.online
                    and guardian not in doomed
                ):
                    doomed.append(guardian)
        for host in doomed:
            host.fail(cause="rack_fault")
        self._record(action, hosts=[h.name for h in doomed],
                     downtime=action.downtime)
        self._log("rack_failure", hosts=[h.name for h in doomed])
        if action.downtime is not None:
            self.sim.process(self._recover_hosts(doomed, action.downtime),
                             label=f"fault-rack-recover:{victim.name}")

    # -- spawner crash (the §4.2 stable entity; docs/gossip.md failover) ---------

    def _spawner_crash(self, action: SpawnerCrash) -> None:
        host = self.cluster.testbed.spawner_host
        if host is None or not host.online:
            self._skip(action, "no alive spawner host")
            return
        host.fail(cause="spawner_fault")
        self._record(action, host=host.name, downtime=action.downtime)
        self._log("spawner_crash", host=host.name)
        if action.downtime is not None:
            self.sim.process(self._resurrect_spawner(host, action.downtime),
                             label="fault-spawner-resurrect")

    def _resurrect_spawner(self, host: Host, downtime: float):
        """Recover the spawner machine; per application, either resume from
        stable storage or abdicate to an already-promoted standby whose
        reign outranks the snapshot's (exactly-one-leader fencing)."""
        from repro.p2p.cluster import resume_application

        yield self.sim.timeout(downtime)
        if host.online:
            return
        host.recover()
        store = self.cluster.stable_store
        standby = self.cluster.standby
        tr = self.sim.tracer
        for app in self.cluster.apps:
            snap = store.load(app.app_id) if store is not None else None
            if snap is None:
                continue  # converged (snapshot forgotten) or never persisted
            # >= not >: the promoted standby persists snapshots under its
            # OWN reign, so a tie means the snapshot is the standby's — a
            # live promoted leader always beats its own stored state
            if (standby is not None and standby.promoted
                    and standby.active_reign >= snap.reign):
                self._log("spawner_abdicated", app=app.app_id,
                          standby_reign=standby.active_reign,
                          snapshot_reign=snap.reign)
                if tr.enabled:
                    tr.emit(self.sim.now, "faults", self.log_entity,
                            "spawner_abdicated", app=app.app_id,
                            standby_reign=standby.active_reign)
                continue
            spawner = resume_application(self.cluster, app, store)
            self._log("spawner_resumed", app=app.app_id, reign=spawner.reign)
            if tr.enabled:
                tr.emit(self.sim.now, "faults", self.log_entity,
                        "spawner_resumed", app=app.app_id, reign=spawner.reign)

    # -- replay -------------------------------------------------------------------

    @property
    def counts(self) -> dict[str, int]:
        """Executed-action tally by kind."""
        out: dict[str, int] = {}
        for rec in self.executed:
            out[rec.kind] = out.get(rec.kind, 0) + 1
        return out

    def executed_plan(self) -> FaultPlan:
        """The plan that would replay what actually happened.

        Victims and Super-Peers are pinned to the recorded choices; rack
        failures become simultaneous pinned :class:`DaemonCrash`\\ es (a
        replay does not need the correlation to be re-derived).  Corruption
        windows keep their stochastic form — the draws replay from the
        seed, not the record.
        """
        actions: list[FaultAction] = []
        for rec in self.executed:
            if rec.kind == "daemon_crash":
                actions.append(DaemonCrash(time=rec.time, host=rec.detail["host"],
                                           downtime=rec.detail.get("downtime")))
            elif rec.kind == "superpeer_crash":
                actions.append(SuperPeerCrash(time=rec.time,
                                              sp_id=rec.detail["sp_id"],
                                              downtime=rec.detail.get("downtime")))
            elif rec.kind == "partition":
                actions.append(PartitionAction(
                    time=rec.time,
                    groups=tuple(tuple(g) for g in rec.detail["groups"]),
                    duration=rec.detail.get("duration")))
            elif rec.kind == "heal":
                actions.append(HealAction(time=rec.time))
            elif rec.kind == "corruption":
                actions.append(MessageCorruption(
                    time=rec.time, duration=rec.detail["duration"],
                    rate=rec.detail["rate"], magnitude=rec.detail["magnitude"]))
            elif rec.kind == "rack_failure":
                for name in rec.detail["hosts"]:
                    actions.append(DaemonCrash(time=rec.time, host=name,
                                               downtime=rec.detail.get("downtime")))
            elif rec.kind == "spawner_crash":
                actions.append(SpawnerCrash(time=rec.time,
                                            downtime=rec.detail.get("downtime")))
        return FaultPlan(actions=tuple(actions),
                         name=f"{self.plan.name or 'plan'}@executed")
