"""repro — a from-scratch reproduction of **JaceP2P** (Bahi, Couturier,
Vuillemin; IEEE CLUSTER 2006): an environment for *asynchronous iterative
computations on peer-to-peer networks*.

The package layers, bottom-up:

* :mod:`repro.des` — deterministic discrete-event simulation kernel.
* :mod:`repro.net` — simulated hosts, links and transport (the substitute
  for the paper's ~100 heterogeneous PCs on mixed Ethernet).
* :mod:`repro.rmi` — Java-RMI-style remote invocation over the transport.
* :mod:`repro.p2p` — the JaceP2P runtime: Daemons, Super-Peers, Spawner,
  bootstrap, heartbeats, reservation, Task lifecycle.
* :mod:`repro.checkpoint` — Backup objects and rollback recovery.
* :mod:`repro.convergence` — local/global convergence detection.
* :mod:`repro.churn` — disconnection/reconnection models.
* :mod:`repro.numerics` — sparse Poisson assembly, block-Jacobi
  multisplitting with overlap, conjugate gradient, async-iteration theory.
* :mod:`repro.apps` — SPMD Task implementations (PoissonTask et al.).
* :mod:`repro.local` — a *real* threaded asynchronous-iteration backend.
* :mod:`repro.baselines` — synchronous (BSP) and master-slave baselines.
* :mod:`repro.experiments` — the harness that regenerates the paper's
  figure and claims.
* :mod:`repro.obs` — cross-cutting observability: the structured trace
  bus every layer emits into, the metrics registry behind ``Telemetry``,
  and the JSONL / Chrome-trace / run-report exporters.

Quickstart::

    from repro.experiments import run_poisson_on_p2p
    result = run_poisson_on_p2p(n=40, peers=4, disconnections=2, seed=1)
    print(result.simulated_time, result.residual)
"""

from repro.version import __version__

__all__ = ["__version__"]
