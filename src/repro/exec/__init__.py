"""``repro.exec`` — the sweep-execution engine.

The paper's evaluation (§7) is a grid of *independent* runs: Figure 7
alone is sizes x churn levels x repeats.  This package turns that fan-out
from a serial Python loop into a schedulable workload:

* :class:`RunSpec` (:mod:`repro.exec.spec`) — a frozen, hashable record of
  every argument of :func:`repro.experiments.driver.run_poisson_on_p2p`,
  normalized (defaults filled in) and content-addressed: its :meth:`key`
  is a stable SHA-256 over the normalized fields **plus a fingerprint of
  the repro source tree**, so a code change invalidates old results
  automatically.
* :class:`RunCache` (:mod:`repro.exec.cache`) — an on-disk,
  content-addressed memo of completed runs (JSON under ``~/.cache/repro``
  by default).  Re-running a sweep with one changed axis only computes
  the delta.
* :class:`SweepEngine` (:mod:`repro.exec.engine`) — executes batches of
  specs, serially (``workers=1``, the bitwise reference arm) or on a
  ``ProcessPoolExecutor``.  Churn-window calibration pre-runs are
  content-addressed too, so one churn-free run per (n, seed) is shared by
  every churn level instead of being recomputed.  Worker-side telemetry
  is merged back into the parent's :class:`repro.obs.MetricsRegistry`.

Results are identical — field for field, bit for bit — across the serial,
parallel and cached arms: every stochastic decision in a run derives from
the spec's integer seed via the SHA-based :class:`repro.util.rng.RngTree`,
never from process state (``benchmarks/bench_parallel_sweep.py`` asserts
this on every run).
"""

from repro.exec.spec import RunSpec, code_fingerprint
from repro.exec.cache import RunCache, default_cache_dir
from repro.exec.engine import SweepEngine

__all__ = [
    "RunSpec",
    "code_fingerprint",
    "RunCache",
    "default_cache_dir",
    "SweepEngine",
]
