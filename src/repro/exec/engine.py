"""The sweep engine: process-pool execution of independent runs.

:class:`SweepEngine.map` takes a batch of :class:`RunSpec`\\ s and returns
their :class:`~repro.experiments.driver.RunResult`\\ s in order.  Three
execution tiers, cheapest first:

1. **memo** — an in-engine dict keyed by spec content address.  This is
   what shares the churn-window calibration pre-run across churn levels
   (and deduplicates identical cells) even when no disk cache is set;
2. **disk** — the optional :class:`~repro.exec.cache.RunCache`;
3. **execute** — in-process when ``workers == 1`` (the bitwise reference
   arm, byte-for-byte today's serial loops) or on a
   ``ProcessPoolExecutor`` otherwise.

Churn specs with an unset window are resolved in two waves exactly like
the driver does it: the engine first executes each distinct churn-free
calibration spec, then re-submits the churn runs with
``churn_window=calibration.simulated_time`` (or returns the unconverged
calibration itself, mirroring :func:`run_poisson_on_p2p`).  Because every
stochastic choice in a run derives from the spec's seed through the
SHA-based :class:`~repro.util.rng.RngTree`, results are identical across
tiers, worker counts and processes.

Workers transport results as :meth:`RunResult.to_dict` payloads (the
lossless round-trip is pinned by ``tests/test_exec_engine.py``), and the
parent folds each run's telemetry — iterations, messages, checkpoints,
wall seconds, trace event counts of ``traced`` specs — into its own
:class:`~repro.obs.MetricsRegistry`, so sweep-level dashboards and
:class:`~repro.obs.RunReport`\\ s keep working under parallelism.

The pool uses the ``fork`` start method where available: children inherit
the parent's interpreter state (import cost ≈ 0, identical
``PYTHONHASHSEED``).  On platforms without ``fork`` the default method is
used; determinism still holds because nothing in a run depends on hash
randomization.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace

from repro.exec.cache import RunCache
from repro.exec.spec import RunSpec
from repro.obs.metrics import MetricsRegistry

__all__ = ["SweepEngine"]


def _pool_context():
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _execute_in_worker(spec_dict: dict) -> dict:
    """Pool entry point: run one spec, return a picklable payload."""
    spec = RunSpec.from_dict(spec_dict)
    start = time.perf_counter()
    result = spec.execute()
    return {
        "result": result.to_dict(),
        "wall_seconds": time.perf_counter() - start,
    }


class SweepEngine:
    """Executes :class:`RunSpec` batches with caching and parallelism.

    Parameters
    ----------
    workers:
        Process count.  ``1`` (the default) executes in-process, serially,
        in submission order — the reference arm.
    cache:
        Optional :class:`RunCache`; completed runs are read from and
        written to it.  The in-memory memo is always on.
    registry:
        Optional :class:`MetricsRegistry` to merge run telemetry into;
        a private one is created by default (see :attr:`registry`).
    """

    def __init__(
        self,
        workers: int = 1,
        cache: RunCache | None = None,
        registry: MetricsRegistry | None = None,
    ):
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        self.workers = int(workers)
        self.cache = cache
        self.registry = registry if registry is not None else MetricsRegistry()
        self._memo: dict[str, object] = {}
        r = self.registry
        self._m_requested = r.counter(
            "sweep_specs_requested", "specs handed to SweepEngine.map")
        self._m_executed = r.counter(
            "sweep_runs_executed", "specs that actually ran a simulation")
        self._m_hits = r.counter(
            "sweep_cache_hits", "specs answered without running, by source")
        self._m_wall = r.histogram(
            "sweep_run_wall_seconds", "wall-clock seconds per executed run")
        self._m_iterations = r.counter(
            "sweep_iterations", "total task iterations across executed runs")
        self._m_data_msgs = r.counter(
            "sweep_data_messages", "data messages across executed runs")
        self._m_checkpoints = r.counter(
            "sweep_checkpoints", "checkpoints sent across executed runs")
        self._m_trace = r.counter(
            "sweep_trace_events", "trace events of traced runs, by category/kind")

    # -- public API -----------------------------------------------------------

    def run(self, spec: RunSpec):
        """Execute (or recall) a single spec."""
        return self.map([spec])[0]

    def map(self, specs) -> list:
        """Execute (or recall) every spec; results in submission order."""
        specs = [spec.normalized() for spec in specs]
        self._m_requested.inc(len(specs))

        # wave 1: every distinct churn-window calibration pre-run
        calibrations: dict[str, RunSpec] = {}
        for spec in specs:
            if spec.needs_calibration():
                calib = spec.calibration_spec()
                calibrations.setdefault(calib.key(), calib)
        if calibrations:
            self._execute_batch(list(calibrations.values()))

        # wave 2: the runs themselves, windows filled in
        resolved: list[tuple[str, object]] = []
        batch: list[RunSpec] = []
        for spec in specs:
            if spec.needs_calibration():
                calibration = self._memo[spec.calibration_spec().key()]
                if not calibration.converged:
                    # mirror the driver: an unconverged calibration IS the
                    # run's result
                    resolved.append(("done", calibration))
                    continue
                spec = replace(spec, churn_window=calibration.simulated_time)
            resolved.append(("spec", spec))
            batch.append(spec)
        self._execute_batch(batch)

        return [
            payload if tag == "done" else self._memo[payload.key()]
            for tag, payload in resolved
        ]

    @property
    def stats(self) -> dict:
        """Execution counters (also queryable via :attr:`registry`)."""
        return {
            "workers": self.workers,
            "specs_requested": int(self._m_requested.total),
            "runs_executed": int(self._m_executed.total),
            "memo_hits": int(self._m_hits.value(source="memory")),
            "disk_hits": int(self._m_hits.value(source="disk")),
        }

    # -- internals ------------------------------------------------------------

    def _execute_batch(self, specs: list[RunSpec]) -> None:
        """Bring every spec's result into the memo."""
        pending: dict[str, RunSpec] = {}
        for spec in specs:
            key = spec.key()
            if key in self._memo:
                self._m_hits.inc(source="memory")
                continue
            if key in pending:
                self._m_hits.inc(source="memory")
                continue
            if self.cache is not None:
                cached = self.cache.get(spec)
                if cached is not None:
                    self._memo[key] = cached
                    self._m_hits.inc(source="disk")
                    continue
            pending[key] = spec

        if not pending:
            return
        if self.workers == 1 or len(pending) == 1:
            for key, spec in pending.items():
                start = time.perf_counter()
                result = spec.execute()
                self._absorb(key, spec, result, time.perf_counter() - start)
            return

        from repro.experiments.driver import RunResult

        items = list(pending.items())
        with ProcessPoolExecutor(
            max_workers=min(self.workers, len(items)),
            mp_context=_pool_context(),
        ) as pool:
            futures = [
                pool.submit(_execute_in_worker, spec.to_dict())
                for _, spec in items
            ]
            # collect in submission order so metric merges are deterministic
            for (key, spec), future in zip(items, futures):
                payload = future.result()
                result = RunResult.from_dict(payload["result"])
                self._absorb(key, spec, result, payload["wall_seconds"])

    def _absorb(self, key: str, spec: RunSpec, result, wall: float) -> None:
        """Record an executed run: memo, disk cache, parent metrics."""
        self._memo[key] = result
        if self.cache is not None:
            self.cache.put(spec, result)
        self._m_executed.inc()
        self._m_wall.observe(wall)
        self._m_iterations.inc(result.total_iterations)
        self._m_data_msgs.inc(result.data_messages)
        self._m_checkpoints.inc(result.checkpoints_sent)
        if result.run_report is not None:
            for (category, kind), count in result.run_report.event_counts.items():
                self._m_trace.inc(count, category=category, kind=kind)
