"""The content-addressed on-disk run cache.

One JSON file per completed run, named by :meth:`RunSpec.key`.  Because
the key already folds in the source-tree fingerprint, a stale entry (from
older code) can never be *served* — it simply stops being addressed and
sits on disk until ``repro-cli cache clear``.

Entries store the normalized spec alongside the result, so ``repro-cli
cache stats`` can describe what is cached and a human can audit any entry
with a text editor.  Writes are atomic (tempfile + ``os.replace``) so a
killed sweep never leaves a truncated entry behind.
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.exec.spec import RunSpec, code_fingerprint

__all__ = ["RunCache", "default_cache_dir"]

_SUFFIX = ".run.json"


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else
    ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = pathlib.Path(xdg).expanduser() if xdg else pathlib.Path.home() / ".cache"
    return base / "repro"


class RunCache:
    """Directory of completed :class:`RunResult`\\ s, addressed by spec key."""

    def __init__(self, root: str | os.PathLike | None = None):
        self.root = pathlib.Path(root) if root is not None else default_cache_dir()
        #: lookups answered from disk / total lookups, for this instance
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> pathlib.Path:
        return self.root / f"{key}{_SUFFIX}"

    def get(self, spec: RunSpec):
        """The cached :class:`RunResult` for ``spec``, or None."""
        from repro.experiments.driver import RunResult

        try:
            payload = json.loads(self._path(spec.key()).read_text())
            result = RunResult.from_dict(payload["result"])
        except (OSError, KeyError, TypeError, ValueError):
            # missing entry or an unreadable/foreign file: a plain miss
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, spec: RunSpec, result) -> None:
        spec = spec.normalized()
        payload = {
            "fingerprint": code_fingerprint(),
            "spec": spec.to_dict(),
            "result": result.to_dict(),
        }
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(spec.key())
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=1) + "\n")
        os.replace(tmp, path)

    # -- maintenance ----------------------------------------------------------

    def _entries(self) -> list[pathlib.Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob(f"*{_SUFFIX}"))

    def stats(self) -> dict:
        """Entry count / size on disk plus this instance's hit counters."""
        entries = self._entries()
        current = 0
        fingerprint = code_fingerprint()
        for path in entries:
            try:
                if json.loads(path.read_text()).get("fingerprint") == fingerprint:
                    current += 1
            except (OSError, ValueError):
                pass
        return {
            "dir": str(self.root),
            "entries": len(entries),
            "entries_current_code": current,
            "bytes": sum(p.stat().st_size for p in entries),
            "hits": self.hits,
            "misses": self.misses,
        }

    def clear(self) -> int:
        """Delete every cache entry; returns how many were removed."""
        removed = 0
        for path in self._entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
