"""Content-addressed run specifications.

A :class:`RunSpec` freezes one :func:`~repro.experiments.driver.run_poisson_on_p2p`
call: same fields, same defaults, same semantics.  Two things make it more
than a kwargs bundle:

* :meth:`RunSpec.normalized` resolves every derived default (optimal
  overlap, daemon population, the experiment config) exactly the way the
  driver would, so specs that *mean* the same run *are* the same record;
* :meth:`RunSpec.key` is a stable SHA-256 content address over the
  normalized fields plus :func:`code_fingerprint` — a digest of the
  ``repro`` source tree — so results cached on disk are never served
  across a code change.

``tracer`` deliberately has no field: a live :class:`~repro.obs.Tracer`
cannot cross a process boundary.  ``traced=True`` instead makes the worker
build its own tracer and ship the condensed
:class:`~repro.obs.RunReport` back inside the :class:`RunResult`.
"""

from __future__ import annotations

import functools
import hashlib
import json
import pathlib
from dataclasses import asdict, dataclass, fields, replace

from repro.checkpoint.policy import (CheckpointPolicy, FixedPolicy,
                                     policy_from_dict)
from repro.faults.plan import FaultPlan
from repro.p2p.config import P2PConfig, _quiet_checkpoint_knobs

# NOTE: repro.experiments.config is imported lazily (inside normalized())
# because the experiments package itself imports repro.exec — the None
# sentinels below mean "the driver's default", resolved at normalization.

__all__ = ["RunSpec", "code_fingerprint"]


@functools.lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """SHA-256 digest (16 hex chars) of every ``.py`` file under ``repro``.

    Computed once per process; baked into every :meth:`RunSpec.key` so a
    source change silently invalidates all previously cached results.
    """
    import repro

    root = pathlib.Path(repro.__file__).parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class RunSpec:
    """Every argument of ``run_poisson_on_p2p``, as a frozen value object."""

    n: int
    peers: int = 8
    disconnections: int = 0
    seed: int = 0
    overlap: int | None = None
    config: P2PConfig | None = None
    n_daemons: int | None = None
    n_superpeers: int = 3
    churn_window: float | None = None
    reconnect_delay: float | None = None
    link_scale: float | None = None
    horizon: float = 900.0
    convergence_threshold: float = 1e-6
    collect: bool = True
    warm_start: bool = False
    use_cache: bool = True
    inner_tol: float = 1e-10
    inner_max_iter: int | None = None
    #: scheduled fault scenario (:class:`repro.faults.FaultPlan`) executed
    #: alongside the run; seeded from ``seed`` like everything else
    faults: FaultPlan | None = None
    #: checkpoint strategy (:class:`repro.checkpoint.CheckpointPolicy`);
    #: None resolves to the paper's :class:`~repro.checkpoint.FixedPolicy`
    #: built from the (deprecated) config knobs at normalization
    checkpoint: CheckpointPolicy | None = None
    #: screen incoming boundary components (and restored Backups) with the
    #: contraction-bound corruption filter (arXiv:2206.08479)
    reject_corruption: bool = False
    #: switch on the epidemic control plane (``repro.gossip``): membership
    #: discovery, decentralized convergence cross-check, gossip traces
    gossip: bool = False
    #: run a warm-standby Spawner shadowing the primary (implies gossip);
    #: the ``spawner-down`` / ``standby-flap`` scenarios need this
    standby: bool = False
    #: run with a worker-local tracer and ship the RunReport back
    traced: bool = False
    #: trace sink for ``traced`` runs (docs/scaling.md): "memory" (the
    #: historical unbounded-ish tracer), "ring" (fixed-capacity window) or
    #: "jsonl" (spill to ``trace_path``, memory stays bounded)
    trace_sink: str = "memory"
    #: sink-specific bound: max buffered events / ring capacity / JSONL
    #: tail size (None = the sink's default)
    trace_capacity: int | None = None
    #: JSONL spill destination (required when ``trace_sink="jsonl"``)
    trace_path: str | None = None

    # -- normalization --------------------------------------------------------

    def normalized(self) -> "RunSpec":
        """Resolve derived defaults the way the driver would.

        Mirrors :func:`run_poisson_on_p2p` exactly: ``config or
        EXPERIMENT_CONFIG``, half-width optimal overlap, ``peers +
        max(3, peers // 2)`` daemons.  Normalizing is what makes the
        churn-free calibration spec of every churn level collide on the
        same cache key.
        """
        from repro.experiments.config import (
            EXPERIMENT_CONFIG,
            EXPERIMENT_LINK_SCALE,
            RECONNECT_DELAY,
            optimal_overlap,
        )

        changes: dict = {}
        if self.config is None:
            changes["config"] = EXPERIMENT_CONFIG
        # Canonicalize the checkpoint strategy: the legacy config-knob route
        # and the explicit policy route must produce field-identical specs
        # (and therefore the same cache key).  Knobs fold into a FixedPolicy;
        # the knobs themselves reset to their defaults.
        cfg = changes.get("config", self.config)
        if self.checkpoint is None:
            changes["checkpoint"] = FixedPolicy(
                count=cfg.backup_count, frequency=cfg.checkpoint_frequency
            )
        cfg_fields = P2PConfig.__dataclass_fields__
        knob_defaults = {
            k: cfg_fields[k].default
            for k in ("checkpoint_frequency", "backup_count")
        }
        if any(getattr(cfg, k) != d for k, d in knob_defaults.items()):
            changes["config"] = cfg.with_(**knob_defaults)
        if self.overlap is None:
            changes["overlap"] = optimal_overlap(self.n, self.peers)
        if self.n_daemons is None:
            changes["n_daemons"] = self.peers + max(3, self.peers // 2)
        if self.reconnect_delay is None:
            changes["reconnect_delay"] = RECONNECT_DELAY
        if self.link_scale is None:
            changes["link_scale"] = EXPERIMENT_LINK_SCALE
        return replace(self, **changes) if changes else self

    def needs_calibration(self) -> bool:
        """True when the driver would do a churn-free pre-run to size the
        churn window."""
        return self.disconnections > 0 and self.churn_window is None

    def calibration_spec(self) -> "RunSpec":
        """The fault-free pre-run the driver performs for this spec.

        Strips churn *and* the fault plan: the calibration measures the
        undisturbed convergence time that sizes the churn window.
        """
        return replace(
            self, disconnections=0, collect=False, traced=False, faults=None
        ).normalized()

    # -- content address ------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready field dump (``config`` flattened to its fields)."""
        out = asdict(self)
        if self.config is not None:
            out["config"] = asdict(self.config)
        # asdict() loses the actions' class identity (their ``kind`` tag is
        # a ClassVar); FaultPlan.to_dict keeps it.
        out["faults"] = self.faults.to_dict() if self.faults is not None else None
        # same story for policies: keep the registry tag
        out["checkpoint"] = (
            self.checkpoint.to_dict() if self.checkpoint is not None else None
        )
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        data = dict(data)
        if data.get("config") is not None:
            # reconstructing recorded data, not a new construction site:
            # historical non-default knobs must not trip the deprecation shim
            with _quiet_checkpoint_knobs():
                data["config"] = P2PConfig(**data["config"])
        if data.get("faults") is not None:
            data["faults"] = FaultPlan.from_dict(data["faults"])
        if data.get("checkpoint") is not None:
            data["checkpoint"] = policy_from_dict(data["checkpoint"])
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    def key(self) -> str:
        """Stable 32-hex-char content address of the *normalized* spec.

        Covers every field and the :func:`code_fingerprint`; computed via
        canonical JSON so it is identical across processes and sessions
        (no reliance on ``hash()``).
        """
        payload = self.normalized().to_dict()
        payload["__fingerprint__"] = code_fingerprint()
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:32]

    # -- execution ------------------------------------------------------------

    def run(self, tracer=None):
        """Execute this spec in the current process — THE run entrypoint.

        Everything that executes a run goes through here: the sweep
        engine's workers, the CLI, and the legacy keyword form of
        :func:`~repro.experiments.driver.run_poisson_on_p2p` (which merely
        assembles a spec and calls back in).  ``tracer`` is a live
        :class:`~repro.obs.Tracer` for in-process observation; use
        ``traced=True`` instead when the run crosses a process boundary.
        """
        from repro.experiments.driver import execute_spec

        return execute_spec(self, tracer=tracer)

    def execute(self):
        """Run this spec honouring ``traced`` (the engine's unit of work).

        ``trace_sink``/``trace_capacity``/``trace_path`` pick the sink the
        worker builds (:func:`repro.obs.make_tracer`); the driver closes
        it when the run ends, flushing any spill buffers.
        """
        tracer = None
        if self.traced:
            from repro.obs import make_tracer

            tracer = make_tracer(
                self.trace_sink, capacity=self.trace_capacity,
                path=self.trace_path,
            )
        return self.run(tracer=tracer)
