"""Content-addressed run specifications.

A :class:`RunSpec` freezes one :func:`~repro.experiments.driver.run_poisson_on_p2p`
call: same fields, same defaults, same semantics.  Two things make it more
than a kwargs bundle:

* :meth:`RunSpec.normalized` resolves every derived default (optimal
  overlap, daemon population, the experiment config) exactly the way the
  driver would, so specs that *mean* the same run *are* the same record;
* :meth:`RunSpec.key` is a stable SHA-256 content address over the
  normalized fields plus :func:`code_fingerprint` — a digest of the
  ``repro`` source tree — so results cached on disk are never served
  across a code change.

``tracer`` deliberately has no field: a live :class:`~repro.obs.Tracer`
cannot cross a process boundary.  ``traced=True`` instead makes the worker
build its own tracer and ship the condensed
:class:`~repro.obs.RunReport` back inside the :class:`RunResult`.
"""

from __future__ import annotations

import functools
import hashlib
import json
import pathlib
from dataclasses import asdict, dataclass, fields, replace

from repro.p2p.config import P2PConfig

# NOTE: repro.experiments.config is imported lazily (inside normalized())
# because the experiments package itself imports repro.exec — the None
# sentinels below mean "the driver's default", resolved at normalization.

__all__ = ["RunSpec", "code_fingerprint"]


@functools.lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """SHA-256 digest (16 hex chars) of every ``.py`` file under ``repro``.

    Computed once per process; baked into every :meth:`RunSpec.key` so a
    source change silently invalidates all previously cached results.
    """
    import repro

    root = pathlib.Path(repro.__file__).parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class RunSpec:
    """Every argument of ``run_poisson_on_p2p``, as a frozen value object."""

    n: int
    peers: int = 8
    disconnections: int = 0
    seed: int = 0
    overlap: int | None = None
    config: P2PConfig | None = None
    n_daemons: int | None = None
    n_superpeers: int = 3
    churn_window: float | None = None
    reconnect_delay: float | None = None
    link_scale: float | None = None
    horizon: float = 900.0
    convergence_threshold: float = 1e-6
    collect: bool = True
    warm_start: bool = False
    use_cache: bool = True
    inner_tol: float = 1e-10
    inner_max_iter: int | None = None
    #: run with a worker-local tracer and ship the RunReport back
    traced: bool = False

    # -- normalization --------------------------------------------------------

    def normalized(self) -> "RunSpec":
        """Resolve derived defaults the way the driver would.

        Mirrors :func:`run_poisson_on_p2p` exactly: ``config or
        EXPERIMENT_CONFIG``, half-width optimal overlap, ``peers +
        max(3, peers // 2)`` daemons.  Normalizing is what makes the
        churn-free calibration spec of every churn level collide on the
        same cache key.
        """
        from repro.experiments.config import (
            EXPERIMENT_CONFIG,
            EXPERIMENT_LINK_SCALE,
            RECONNECT_DELAY,
            optimal_overlap,
        )

        changes: dict = {}
        if self.config is None:
            changes["config"] = EXPERIMENT_CONFIG
        if self.overlap is None:
            changes["overlap"] = optimal_overlap(self.n, self.peers)
        if self.n_daemons is None:
            changes["n_daemons"] = self.peers + max(3, self.peers // 2)
        if self.reconnect_delay is None:
            changes["reconnect_delay"] = RECONNECT_DELAY
        if self.link_scale is None:
            changes["link_scale"] = EXPERIMENT_LINK_SCALE
        return replace(self, **changes) if changes else self

    def needs_calibration(self) -> bool:
        """True when the driver would do a churn-free pre-run to size the
        churn window."""
        return self.disconnections > 0 and self.churn_window is None

    def calibration_spec(self) -> "RunSpec":
        """The churn-free pre-run the driver performs for this spec."""
        return replace(
            self, disconnections=0, collect=False, traced=False
        ).normalized()

    # -- content address ------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready field dump (``config`` flattened to its fields)."""
        out = asdict(self)
        if self.config is not None:
            out["config"] = asdict(self.config)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        data = dict(data)
        if data.get("config") is not None:
            data["config"] = P2PConfig(**data["config"])
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    def key(self) -> str:
        """Stable 32-hex-char content address of the *normalized* spec.

        Covers every field and the :func:`code_fingerprint`; computed via
        canonical JSON so it is identical across processes and sessions
        (no reliance on ``hash()``).
        """
        payload = self.normalized().to_dict()
        payload["__fingerprint__"] = code_fingerprint()
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:32]

    # -- execution ------------------------------------------------------------

    def execute(self):
        """Run this spec in the current process (the engine's unit of work)."""
        from repro.experiments.driver import run_poisson_on_p2p

        self = self.normalized()
        tracer = None
        if self.traced:
            from repro.obs import Tracer

            tracer = Tracer()
        return run_poisson_on_p2p(
            n=self.n,
            peers=self.peers,
            disconnections=self.disconnections,
            seed=self.seed,
            overlap=self.overlap,
            config=self.config,
            n_daemons=self.n_daemons,
            n_superpeers=self.n_superpeers,
            churn_window=self.churn_window,
            reconnect_delay=self.reconnect_delay,
            link_scale=self.link_scale,
            horizon=self.horizon,
            convergence_threshold=self.convergence_threshold,
            collect=self.collect,
            warm_start=self.warm_start,
            use_cache=self.use_cache,
            inner_tol=self.inner_tol,
            inner_max_iter=self.inner_max_iter,
            tracer=tracer,
        )
