"""Online failure/cost statistics feeding adaptive checkpoint policies.

One :class:`FailureFeed` is shared per cluster: the Spawner's failure
detector records every heartbeat eviction into it, each task's checkpoint
path records the bytes it ships, and every bound
:class:`~repro.checkpoint.policy.AdaptivePolicy` state reads the resulting
EWMA estimates when re-tuning its interval and replica count (the
adaptive-checkpointing cost model of arXiv:0711.3949).

Everything here is driven exclusively by simulated time and protocol
events, so the adaptation trajectory is a pure function of the run — the
same seed replays the same estimates bit-for-bit.
"""

from __future__ import annotations

__all__ = ["FailureFeed"]


class FailureFeed:
    """EWMA estimator of Daemon failure inter-arrival time and checkpoint
    cost.

    Parameters
    ----------
    alpha:
        EWMA smoothing factor for both the inter-arrival and the
        checkpoint-size estimates (higher = more reactive).
    """

    __slots__ = ("alpha", "failures", "last_failure_at", "interval_ewma",
                 "bytes_ewma", "checkpoints_seen")

    def __init__(self, alpha: float = 0.3):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        #: total failures observed (heartbeat evictions)
        self.failures = 0
        #: sim-time of the most recent failure (None until the first)
        self.last_failure_at: float | None = None
        #: EWMA of failure inter-arrival times (None until two failures)
        self.interval_ewma: float | None = None
        #: EWMA of checkpoint payload bytes (None until the first)
        self.bytes_ewma: float | None = None
        #: total checkpoints whose size was recorded
        self.checkpoints_seen = 0

    # -- recording ----------------------------------------------------------

    def record_failure(self, now: float) -> None:
        """One detected Daemon failure at sim-time ``now``."""
        last = self.last_failure_at
        if last is not None:
            gap = now - last
            if gap >= 0.0:
                if self.interval_ewma is None:
                    self.interval_ewma = gap
                else:
                    a = self.alpha
                    self.interval_ewma = (1.0 - a) * self.interval_ewma + a * gap
        self.failures += 1
        self.last_failure_at = now

    def record_checkpoint(self, nbytes: int) -> None:
        """One checkpoint of ``nbytes`` payload shipped to a guardian."""
        if self.bytes_ewma is None:
            self.bytes_ewma = float(nbytes)
        else:
            a = self.alpha
            self.bytes_ewma = (1.0 - a) * self.bytes_ewma + a * float(nbytes)
        self.checkpoints_seen += 1

    # -- estimates ----------------------------------------------------------

    def mtbf(self, now: float) -> float | None:
        """Current mean-time-between-failures estimate, or None while no
        failure has been observed.

        The EWMA alone would stay pinned to a storm's short gaps forever;
        stretching the estimate with the silence since the last failure
        (``now - last_failure_at``) lets a cluster that has gone quiet
        earn back a long interval — deterministically, since ``now`` is
        sim-time."""
        last = self.last_failure_at
        if last is None:
            return None
        silence = now - last
        if self.interval_ewma is None:
            # exactly one failure so far: its arrival time is the only
            # inter-arrival sample we have
            estimate = max(last, silence)
        else:
            estimate = max(self.interval_ewma, silence)
        return estimate if estimate > 0.0 else None

    def checkpoint_cost(self, bandwidth: float, overhead: float) -> float:
        """Estimated seconds one checkpoint costs: fixed overhead plus the
        EWMA payload over the modelled link bandwidth."""
        nbytes = self.bytes_ewma or 0.0
        return overhead + nbytes / bandwidth

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<FailureFeed failures={self.failures} "
                f"interval={self.interval_ewma} bytes={self.bytes_ewma}>")
