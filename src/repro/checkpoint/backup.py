"""The Backup object: one local checkpoint of one task."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.util.serialization import clone_state, measured_size, prime_payload_cache

__all__ = ["Backup"]


@dataclass(frozen=True)
class Backup:
    """An immutable snapshot of a task's state at one iteration.

    The constructor deep-copies ``state``: a Backup must never alias live
    task arrays, or later iterations would corrupt the checkpoint and
    rollback would silently resume from a half-updated state.
    """

    task_id: int
    iteration: int
    state: Any
    app_id: str = ""
    created_at: float = 0.0
    nbytes: int = field(default=0)

    def __post_init__(self) -> None:
        if self.iteration < 0:
            raise ValueError("iteration must be >= 0")
        object.__setattr__(self, "state", clone_state(self.state))
        object.__setattr__(self, "nbytes", measured_size(self.state))
        # Backups are re-sent on every checkpoint transfer: pay the payload
        # size walk once here rather than on each send.
        prime_payload_cache(self)

    def restore(self) -> Any:
        """A private copy of the stored state, safe to hand to a new task."""
        return clone_state(self.state)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Backup task={self.task_id} iter={self.iteration} "
            f"{self.nbytes}B app={self.app_id!r}>"
        )
