"""The Backup object: one local checkpoint of one task."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.util.hotpath import HOTPATH
from repro.util.serialization import (ENVELOPE_BYTES, clone_state,
                                      freeze_state, measured_size,
                                      memoized_payload_size,
                                      prime_payload_cache)

__all__ = ["Backup"]


@dataclass(frozen=True)
class Backup:
    """An immutable snapshot of a task's state at one iteration.

    A Backup must never alias live task arrays, or later iterations would
    corrupt the checkpoint and rollback would silently resume from a
    half-updated state.  ``dump_state`` already hands the constructor a
    private copy, so under :data:`HOTPATH.zerocopy` the constructor only
    *freezes* that snapshot (``writeable=False`` — accidental aliasing
    fails loudly instead of corrupting) rather than paying a second full
    deep copy per checkpoint; :meth:`restore` clones on the rare recovery,
    so restored tasks always receive writable private arrays.  With the
    flag off, the original eager double copy is kept.
    """

    task_id: int
    iteration: int
    state: Any
    app_id: str = ""
    created_at: float = 0.0
    nbytes: int = field(default=0)

    def __post_init__(self) -> None:
        if self.iteration < 0:
            raise ValueError("iteration must be >= 0")
        if HOTPATH.zerocopy:
            object.__setattr__(self, "state", freeze_state(self.state))
        else:
            object.__setattr__(self, "state", clone_state(self.state))
        # Backups are re-sent on every checkpoint transfer: pay the payload
        # size walk once here rather than on each send.  One walk serves
        # both the memo and the ``nbytes`` accounting: every field except
        # ``state`` is a fixed-size scalar or this app's id string, so the
        # state's charge falls out of the memo by subtraction (the memo is
        # planted with the placeholder ``nbytes=0`` — an int charges 8
        # bytes whatever its value, so the memo stays exact after the
        # rebind below).
        prime_payload_cache(self)
        memo = memoized_payload_size(self)
        if memo is not None:
            shell = 32 + 8 + 8 + 8 + 8 + len(
                self.app_id.encode("utf-8", errors="replace")
            )
            object.__setattr__(self, "nbytes", ENVELOPE_BYTES + memo - shell)
        else:
            object.__setattr__(self, "nbytes", measured_size(self.state))

    def restore(self) -> Any:
        """A private *writable* copy of the stored state, safe to hand to
        a new task whichever path snapshotted it."""
        return clone_state(self.state)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Backup task={self.task_id} iter={self.iteration} "
            f"{self.nbytes}B app={self.app_id!r}>"
        )
