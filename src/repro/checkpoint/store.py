"""Per-Daemon backup storage.

Each Daemon guards the checkpoints of a fixed set of neighbour tasks
(paper §5.4).  Per guarded task the store keeps only the **latest** Backup
received — matching the paper's rotation, where "the Backup stored at
iteration ite2 for task T2 would then replace that of iteration ite0".
A stale Backup (lower iteration than what is already held) is rejected;
this can happen when checkpoint messages are reordered in flight.
"""

from __future__ import annotations

from repro.checkpoint.backup import Backup

__all__ = ["BackupStore"]


class BackupStore:
    """Latest-Backup-per-task container with byte accounting.

    ``max_bytes`` models the guardian machine's RAM budget (the paper's
    Daemons run on 256 MB–1 GB PCs while guarding up to 20 neighbours'
    checkpoints): a save that would exceed the budget is rejected — the
    checkpoint is simply lost, exactly like one addressed to a dead peer,
    and the multi-guardian policy absorbs it.  Replacing a task's own
    older Backup never counts against the budget twice.
    """

    def __init__(self, max_bytes: float = float("inf")) -> None:
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self._backups: dict[tuple[str, int], Backup] = {}
        self.max_bytes = max_bytes
        self.saves_accepted = 0
        self.saves_rejected_stale = 0
        self.saves_rejected_capacity = 0

    @staticmethod
    def _key(app_id: str, task_id: int) -> tuple[str, int]:
        return (app_id, task_id)

    def save(self, backup: Backup) -> bool:
        """Store ``backup``; returns False (and keeps the old one) if an
        equal-or-newer checkpoint of the same task is already held, or if
        the RAM budget would be exceeded."""
        key = self._key(backup.app_id, backup.task_id)
        held = self._backups.get(key)
        if held is not None and held.iteration >= backup.iteration:
            self.saves_rejected_stale += 1
            return False
        occupied = self.total_bytes - (held.nbytes if held is not None else 0)
        if occupied + backup.nbytes > self.max_bytes:
            self.saves_rejected_capacity += 1
            return False
        self._backups[key] = backup
        self.saves_accepted += 1
        return True

    def iteration_of(self, app_id: str, task_id: int) -> int | None:
        """Iteration number held for a task, or None."""
        backup = self._backups.get(self._key(app_id, task_id))
        return backup.iteration if backup is not None else None

    def load(self, app_id: str, task_id: int) -> Backup | None:
        return self._backups.get(self._key(app_id, task_id))

    def drop(self, app_id: str, task_id: int) -> None:
        self._backups.pop(self._key(app_id, task_id), None)

    def drop_app(self, app_id: str) -> None:
        """Forget every checkpoint of a finished application."""
        for key in [k for k in self._backups if k[0] == app_id]:
            del self._backups[key]

    def guarded_tasks(self, app_id: str) -> list[int]:
        return sorted(t for (a, t) in self._backups if a == app_id)

    @property
    def total_bytes(self) -> int:
        return sum(b.nbytes for b in self._backups.values())

    def __len__(self) -> int:
        return len(self._backups)
