"""The rollback-recovery decision rule (paper §5.4, Fig. 6).

A replacement Daemon asks every backup-peer of its task for the iteration
number of the checkpoint it holds, then reloads the **most recent** one.
If no backup-peer survives (or none ever received a checkpoint), the task
restarts from iteration 0.
"""

from __future__ import annotations

from repro.checkpoint.backup import Backup
from repro.errors import NoBackupAvailableError

__all__ = ["choose_latest"]


def choose_latest(
    offers: dict[int, int | None], raise_if_none: bool = False
) -> int | None:
    """Pick the backup-peer (task index) holding the newest checkpoint.

    ``offers`` maps backup-peer task index → iteration held (None for "no
    checkpoint" / "peer unreachable").  Ties break toward the lowest peer
    index for determinism.  Returns None — or raises
    :class:`NoBackupAvailableError` — when nothing is recoverable.
    """
    best_peer: int | None = None
    best_iter = -1
    for peer in sorted(offers):
        iteration = offers[peer]
        if iteration is None:
            continue
        if iteration > best_iter:
            best_peer, best_iter = peer, iteration
    if best_peer is None and raise_if_none:
        raise NoBackupAvailableError(
            "no backup survives; task must restart from iteration 0"
        )
    return best_peer


def latest_iteration(offers: dict[int, int | None]) -> int:
    """The newest recoverable iteration (0 when nothing survives)."""
    values = [i for i in offers.values() if i is not None]
    return max(values) if values else 0
