"""Checkpoint strategy layer: placement rings and scheduling policies.

Paper §5.4: "During the whole execution of an application, a peer always
saves its current Task object on the same set of neighbors (in a round-robin
fashion)" and the experiments use "20 backup-peers ... for each task".

Two layers live here:

* :class:`BackupPolicy` — the placement *ring*: which task indices guard a
  task, and where the ``save_index``-th checkpoint lands (round-robin).
  Identifying backup-peers by **task index** (not daemon identity) is what
  makes the set stable across replacements: the checkpoint goes to whichever
  Daemon currently runs the guarding task.
* :class:`CheckpointPolicy` and its implementations — the *strategy*:
  per-iteration decisions of whether to checkpoint now and to how many
  peers.  :class:`FixedPolicy` reproduces the paper's fixed
  "every ``frequency`` iterations, one guardian per save" scheme bit-for-bit;
  :class:`AdaptivePolicy` re-tunes interval and replica count online from
  observed failure inter-arrival times and measured checkpoint cost
  (arXiv:0711.3949's first-order model, ``T_opt = sqrt(2·C·M)``).

Policies are frozen dataclasses that ride inside
:class:`~repro.exec.spec.RunSpec` — they serialize through
:meth:`CheckpointPolicy.to_dict` / :func:`policy_from_dict` and are *bound*
per task runner via :meth:`CheckpointPolicy.bind`, which returns the mutable
per-run state object the Daemon drives.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, fields
from typing import TYPE_CHECKING, Any, ClassVar

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.checkpoint.feed import FailureFeed

__all__ = [
    "BackupPolicy",
    "CheckpointPolicy",
    "FixedPolicy",
    "AdaptivePolicy",
    "policy_from_dict",
]


@dataclass(frozen=True)
class BackupPolicy:
    """Placement and frequency rules for one application.

    Parameters
    ----------
    num_tasks:
        Total tasks in the application.
    count:
        Number of backup-peers guarding each task (clamped to
        ``num_tasks - 1``; paper default 20).
    frequency:
        Checkpoint every ``frequency`` iterations — the ``JaceSave``
        setting (paper experiments: 5).
    """

    num_tasks: int
    count: int = 20
    frequency: int = 5

    def __post_init__(self) -> None:
        if self.num_tasks < 1:
            raise ValueError("num_tasks must be >= 1")
        if self.count < 0:
            raise ValueError("count must be >= 0")
        if self.frequency < 1:
            raise ValueError("frequency must be >= 1")
        # The guarding set is a pure function of (task_id, num_tasks,
        # count), and target_for_save re-derives it on every checkpoint:
        # cache per task (frozen dataclass, so plant via object.__setattr__)
        object.__setattr__(self, "_peers_cache", {})

    # The planted cache is derived state: pickling it would ship (and on
    # round-trip, resurrect) a mutable dict that asdict/__eq__ already
    # ignore.  Reduce to the declared fields and rebuild an empty cache on
    # the other side, so policies transport losslessly through the RunCache
    # and process-pool pipes.
    def __getstate__(self) -> dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __setstate__(self, state: dict[str, Any]) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)
        object.__setattr__(self, "_peers_cache", {})

    @property
    def effective_count(self) -> int:
        return min(self.count, self.num_tasks - 1)

    def backup_peers(self, task_id: int) -> list[int]:
        """The fixed set of task indices guarding ``task_id``.

        Ordered by proximity, alternating successor/predecessor:
        ``[k+1, k-1, k+2, k-2, ...]`` (mod num_tasks), self excluded.
        """
        return list(self._cached_peers(task_id))

    def _cached_peers(self, task_id: int) -> tuple[int, ...]:
        cached = self._peers_cache.get(task_id)
        if cached is not None:
            return cached
        if not 0 <= task_id < self.num_tasks:
            raise ValueError(f"task_id {task_id} out of range")
        peers: list[int] = []
        offset = 1
        while len(peers) < self.effective_count:
            for candidate in (task_id + offset, task_id - offset):
                c = candidate % self.num_tasks
                if c != task_id and c not in peers:
                    peers.append(c)
                if len(peers) >= self.effective_count:
                    break
            offset += 1
        self._peers_cache[task_id] = cached = tuple(peers)
        return cached

    def target_for_save(self, task_id: int, save_index: int) -> int | None:
        """Which backup-peer receives the ``save_index``-th checkpoint
        (round-robin over the fixed set); None when nobody guards us."""
        peers = self._cached_peers(task_id)
        if not peers:
            return None
        return peers[save_index % len(peers)]

    def checkpoint_due(self, iteration: int) -> bool:
        """True on iterations 1·f, 2·f, ... (never at iteration 0)."""
        return iteration > 0 and iteration % self.frequency == 0


# --------------------------------------------------------------------------
# strategy layer


_POLICY_KINDS: dict[str, type["CheckpointPolicy"]] = {}


def _register(cls: type["CheckpointPolicy"]) -> type["CheckpointPolicy"]:
    _POLICY_KINDS[cls.kind] = cls
    return cls


def policy_from_dict(data: dict[str, Any]) -> "CheckpointPolicy":
    """Reconstruct a policy from its kind-tagged :meth:`to_dict` form."""
    payload = dict(data)
    kind = payload.pop("kind", None)
    cls = _POLICY_KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown checkpoint policy kind {kind!r}")
    return cls(**payload)


@dataclass(frozen=True)
class CheckpointPolicy:
    """Strategy deciding, per task and per iteration, whether to checkpoint
    now and to how many backup peers.

    Subclasses are frozen dataclasses carrying only tuning constants; the
    mutable per-run machinery lives in the *bound state* returned by
    :meth:`bind`.  The bound-state protocol the Daemon drives:

    * ``checkpoint_due(iteration, now) -> bool``
    * ``begin_save(task_id, iteration) -> tuple[int, ...]`` — the guardian
      task indices for this save (advances the round-robin cursor)
    * ``on_iteration(now, duration)`` — one finished iteration
    * ``on_checkpoint(nbytes)`` — one shipped checkpoint payload
    * ``on_rollback(iteration)`` — resume point after a recovery
    * ``backup_peers(task_id) -> list[int]`` and the ``ring`` attribute —
      the underlying placement :class:`BackupPolicy`
    """

    kind: ClassVar[str] = ""

    def to_dict(self) -> dict[str, Any]:
        return {"kind": type(self).kind, **asdict(self)}

    def bind(self, num_tasks: int, feed: "FailureFeed | None" = None):
        """Create the mutable per-runner state driving one task's saves."""
        raise NotImplementedError


@_register
@dataclass(frozen=True)
class FixedPolicy(CheckpointPolicy):
    """The paper's scheme: every ``frequency`` iterations, round-robin one
    checkpoint across ``count`` guardians.  Bit-for-bit identical to the
    pre-strategy ``BackupPolicy`` path."""

    kind: ClassVar[str] = "fixed"

    count: int = 20
    frequency: int = 5

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("count must be >= 0")
        if self.frequency < 1:
            raise ValueError("frequency must be >= 1")

    def bind(self, num_tasks: int, feed: "FailureFeed | None" = None):
        ring = BackupPolicy(
            num_tasks=num_tasks, count=self.count, frequency=self.frequency
        )
        return _FixedState(ring)


class _FixedState:
    """Bound :class:`FixedPolicy`: a thin shim over the placement ring."""

    __slots__ = ("ring", "save_count")

    def __init__(self, ring: BackupPolicy):
        self.ring = ring
        self.save_count = 0

    def checkpoint_due(self, iteration: int, now: float) -> bool:
        return self.ring.checkpoint_due(iteration)

    def begin_save(self, task_id: int, iteration: int) -> tuple[int, ...]:
        target = self.ring.target_for_save(task_id, self.save_count)
        self.save_count += 1
        return () if target is None else (target,)

    def on_iteration(self, now: float, duration: float) -> None:
        pass

    def on_checkpoint(self, nbytes: int) -> None:
        pass

    def on_rollback(self, iteration: int) -> None:
        # replay the fixed schedule up to the resume point, so the
        # round-robin cursor lands exactly where the lost incarnation's was
        self.save_count = iteration // self.ring.frequency

    def backup_peers(self, task_id: int) -> list[int]:
        return self.ring.backup_peers(task_id)


@_register
@dataclass(frozen=True)
class AdaptivePolicy(CheckpointPolicy):
    """Online-tuned interval and replica count (arXiv:0711.3949).

    Let ``M`` be the EWMA failure inter-arrival time (stretched by the
    silence since the last failure), ``C`` the estimated per-checkpoint
    cost, and ``tau`` the EWMA iteration duration.  The first-order optimal
    checkpoint period is ``T_opt = sqrt(2·C·M)``; the interval (in
    iterations) is ``clamp(round(T_opt / tau), min_frequency,
    max_frequency)``.  The replica count scales with the risk of losing an
    interval's work, ``risk = interval·tau / M``: one extra replica per
    ``replica_risk`` units, capped at ``max_replicas``.

    Until the first observed failure there is no evidence to deviate from
    the configured ``frequency`` prior (one replica).  After a failure the
    estimate keeps stretching with the silence since the last one, so a
    burst of churn tightens the schedule and a long quiet tail relaxes it
    again.  All inputs are sim-time-driven EWMAs, so the adaptation
    trajectory replays deterministically.
    """

    kind: ClassVar[str] = "adaptive"

    count: int = 20
    frequency: int = 5
    min_frequency: int = 1
    max_frequency: int = 40
    max_replicas: int = 3
    alpha: float = 0.3
    bandwidth: float = 12.5e6
    overhead: float = 5e-4
    replica_risk: float = 0.5

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("count must be >= 0")
        if self.frequency < 1:
            raise ValueError("frequency must be >= 1")
        if not 1 <= self.min_frequency <= self.max_frequency:
            raise ValueError("need 1 <= min_frequency <= max_frequency")
        if self.max_replicas < 1:
            raise ValueError("max_replicas must be >= 1")
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if self.bandwidth <= 0 or self.overhead < 0 or self.replica_risk <= 0:
            raise ValueError("bandwidth/overhead/replica_risk out of range")

    def bind(self, num_tasks: int, feed: "FailureFeed | None" = None):
        ring = BackupPolicy(
            num_tasks=num_tasks, count=self.count, frequency=self.frequency
        )
        return _AdaptiveState(self, ring, feed)


class _AdaptiveState:
    """Bound :class:`AdaptivePolicy`: per-runner tuner state."""

    __slots__ = ("spec", "ring", "feed", "interval", "replicas",
                 "save_count", "last_save_iteration", "iter_ewma", "retunes")

    def __init__(self, spec: AdaptivePolicy, ring: BackupPolicy,
                 feed: "FailureFeed | None"):
        self.spec = spec
        self.ring = ring
        self.feed = feed
        self.interval = spec.frequency
        self.replicas = 1
        self.save_count = 0
        self.last_save_iteration = 0
        self.iter_ewma = 0.0
        #: interval re-tunes that changed the schedule (for tests/traces)
        self.retunes = 0

    def checkpoint_due(self, iteration: int, now: float) -> bool:
        if iteration <= 0:
            return False
        return iteration - self.last_save_iteration >= self.interval

    def begin_save(self, task_id: int, iteration: int) -> tuple[int, ...]:
        self.last_save_iteration = iteration
        peers = self.ring._cached_peers(task_id)
        if not peers:
            self.save_count += 1
            return ()
        n = min(self.replicas, len(peers))
        base = self.save_count
        self.save_count += n
        # n consecutive round-robin slots are distinct whenever n <= len
        return tuple(peers[(base + j) % len(peers)] for j in range(n))

    def on_iteration(self, now: float, duration: float) -> None:
        a = self.spec.alpha
        if self.iter_ewma <= 0.0:
            self.iter_ewma = duration
        else:
            self.iter_ewma = (1.0 - a) * self.iter_ewma + a * duration
        self._retune(now)

    def on_checkpoint(self, nbytes: int) -> None:
        if self.feed is not None:
            self.feed.record_checkpoint(nbytes)

    def on_rollback(self, iteration: int) -> None:
        self.last_save_iteration = iteration
        self.save_count = iteration // max(1, self.interval)

    def backup_peers(self, task_id: int) -> list[int]:
        return self.ring.backup_peers(task_id)

    # -- the adaptation law --------------------------------------------------

    def _retune(self, now: float) -> None:
        spec = self.spec
        tau = self.iter_ewma
        if tau <= 0.0:
            return
        mtbf = self.feed.mtbf(now) if self.feed is not None else None
        if mtbf is None:
            # no failure observed yet: no evidence to deviate from the
            # configured prior (jumping to max_frequency here would make
            # the *first* failure roll back a max-length interval)
            interval, replicas = spec.frequency, 1
        else:
            cost = self.feed.checkpoint_cost(spec.bandwidth, spec.overhead)
            t_opt = math.sqrt(2.0 * cost * mtbf)
            k = int(round(t_opt / tau)) or 1
            interval = max(spec.min_frequency, min(spec.max_frequency, k))
            risk = (interval * tau) / mtbf
            replicas = max(1, min(spec.max_replicas,
                                  1 + int(risk / spec.replica_risk)))
        if interval != self.interval or replicas != self.replicas:
            self.retunes += 1
        self.interval = interval
        self.replicas = replicas
