"""Backup placement policy.

Paper §5.4: "During the whole execution of an application, a peer always
saves its current Task object on the same set of neighbors (in a round-robin
fashion)" and the experiments use "20 backup-peers ... for each task".

The backup-peer set of task ``k`` is the ``count`` nearest *other* tasks in
index space, alternating right/left with wrap-around — for count=2 this is
exactly the paper's "left and right neighbors" example.  Identifying
backup-peers by **task index** (not daemon identity) is what makes the set
stable across replacements: the checkpoint goes to whichever Daemon
currently runs the guarding task.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BackupPolicy"]


@dataclass(frozen=True)
class BackupPolicy:
    """Placement and frequency rules for one application.

    Parameters
    ----------
    num_tasks:
        Total tasks in the application.
    count:
        Number of backup-peers guarding each task (clamped to
        ``num_tasks - 1``; paper default 20).
    frequency:
        Checkpoint every ``frequency`` iterations — the ``JaceSave``
        setting (paper experiments: 5).
    """

    num_tasks: int
    count: int = 20
    frequency: int = 5

    def __post_init__(self) -> None:
        if self.num_tasks < 1:
            raise ValueError("num_tasks must be >= 1")
        if self.count < 0:
            raise ValueError("count must be >= 0")
        if self.frequency < 1:
            raise ValueError("frequency must be >= 1")
        # The guarding set is a pure function of (task_id, num_tasks,
        # count), and target_for_save re-derives it on every checkpoint:
        # cache per task (frozen dataclass, so plant via object.__setattr__)
        object.__setattr__(self, "_peers_cache", {})

    @property
    def effective_count(self) -> int:
        return min(self.count, self.num_tasks - 1)

    def backup_peers(self, task_id: int) -> list[int]:
        """The fixed set of task indices guarding ``task_id``.

        Ordered by proximity, alternating successor/predecessor:
        ``[k+1, k-1, k+2, k-2, ...]`` (mod num_tasks), self excluded.
        """
        return list(self._cached_peers(task_id))

    def _cached_peers(self, task_id: int) -> tuple[int, ...]:
        cached = self._peers_cache.get(task_id)
        if cached is not None:
            return cached
        if not 0 <= task_id < self.num_tasks:
            raise ValueError(f"task_id {task_id} out of range")
        peers: list[int] = []
        offset = 1
        while len(peers) < self.effective_count:
            for candidate in (task_id + offset, task_id - offset):
                c = candidate % self.num_tasks
                if c != task_id and c not in peers:
                    peers.append(c)
                if len(peers) >= self.effective_count:
                    break
            offset += 1
        self._peers_cache[task_id] = cached = tuple(peers)
        return cached

    def target_for_save(self, task_id: int, save_index: int) -> int | None:
        """Which backup-peer receives the ``save_index``-th checkpoint
        (round-robin over the fixed set); None when nobody guards us."""
        peers = self._cached_peers(task_id)
        if not peers:
            return None
        return peers[save_index % len(peers)]

    def checkpoint_due(self, iteration: int) -> bool:
        """True on iterations 1·f, 2·f, ... (never at iteration 0)."""
        return iteration > 0 and iteration % self.frequency == 0
