"""``repro.checkpoint`` — Backup objects and rollback recovery (paper §5.4).

JaceP2P tolerates Daemon failures with uncoordinated checkpointing: because
iterations are asynchronous, *any* set of local checkpoints is a consistent
global state, so only the replacement peer rolls back — everyone else keeps
computing.  The pieces:

* :class:`Backup` — an immutable snapshot ``(task, iteration, state)``;
* :class:`BackupStore` — the per-Daemon container holding the latest Backup
  received for each task it guards;
* :class:`BackupPolicy` — who guards whom (a fixed neighbour set per task)
  and where each successive checkpoint goes (round-robin), plus the
  ``JaceSave`` frequency rule;
* :func:`choose_latest` — the recovery rule: restart from the highest
  iteration number found among the surviving backup-peers.
"""

from repro.checkpoint.backup import Backup
from repro.checkpoint.store import BackupStore
from repro.checkpoint.policy import (AdaptivePolicy, BackupPolicy,
                                     CheckpointPolicy, FixedPolicy,
                                     policy_from_dict)
from repro.checkpoint.feed import FailureFeed
from repro.checkpoint.recovery import choose_latest

__all__ = [
    "Backup",
    "BackupStore",
    "BackupPolicy",
    "CheckpointPolicy",
    "FixedPolicy",
    "AdaptivePolicy",
    "FailureFeed",
    "policy_from_dict",
    "choose_latest",
]
