"""Command-line interface for the experiment harness.

Usage::

    python -m repro.cli run --n 48 --peers 8 --disconnections 3
    python -m repro.cli figure7 [--quick] --workers 4
    python -m repro.cli iterations
    python -m repro.cli syncasync --disconnections 3
    python -m repro.cli ablation {checkpoint,backup,overlap,bootstrap}
    python -m repro.cli trace --disconnections 3 --out run.jsonl
    python -m repro.cli report --disconnections 3
    python -m repro.cli profile --n 16 --peers 3 --top 15 --json prof.json
    python -m repro.cli faults list
    python -m repro.cli faults run perfect-storm --quick
    python -m repro.cli cache {stats,clear}

Every subcommand prints the same table its benchmark counterpart records
under ``benchmarks/results/``.  ``trace`` and ``report`` run a single
traced execution through :mod:`repro.obs`: ``trace`` dumps the structured
event stream (JSONL and/or Chrome ``trace_event`` JSON for
``chrome://tracing`` / Perfetto), ``report`` renders the run report.

The sweep-shaped subcommands (``run``, ``figure7``, ``iterations``,
``syncasync``, ``ablation``, ``faults run``) execute through
:class:`repro.exec.SweepEngine`:
``--workers N`` fans independent runs out over N processes, and completed
runs are memoized in the content-addressed on-disk cache (``--cache-dir``,
default ``~/.cache/repro``; ``--no-cache`` disables it).  Results are
identical for any worker count and for cached replay.  ``cache`` inspects
(``stats``) or empties (``clear``) that cache.
"""

from __future__ import annotations

import argparse
import sys

from repro.exec import RunCache, RunSpec, SweepEngine, default_cache_dir
from repro.experiments import (
    figure7_sweep,
    iterations_vs_n,
    sync_vs_async,
)
from repro.experiments.ablations import (
    backup_count_ablation,
    bootstrap_scaling,
    checkpoint_frequency_ablation,
    overlap_ablation,
)
from repro.experiments.report import format_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Regenerate the JaceP2P paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # execution flags shared by every sweep-shaped subcommand
    exec_flags = argparse.ArgumentParser(add_help=False)
    exec_flags.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="run independent executions on N processes (default 1: serial)")
    exec_flags.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help=f"run-cache directory (default {default_cache_dir()})")
    exec_flags.add_argument(
        "--no-cache", action="store_true",
        help="do not read or write the on-disk run cache")

    # checkpoint-strategy flags shared by the run-shaped subcommands
    policy_flags = argparse.ArgumentParser(add_help=False)
    policy_flags.add_argument(
        "--checkpoint-policy", choices=["fixed", "adaptive"], default=None,
        help="checkpoint strategy (default: the paper's fixed policy)")
    policy_flags.add_argument(
        "--checkpoint-count", type=int, default=None, metavar="N",
        help="backup-peer ring size (default 20, the paper's value)")
    policy_flags.add_argument(
        "--checkpoint-frequency", type=int, default=None, metavar="K",
        help="checkpoint every K iterations (fixed; adaptive prior)")
    policy_flags.add_argument(
        "--max-replicas", type=int, default=None, metavar="R",
        help="adaptive only: max checkpoint copies per save (default 3)")
    policy_flags.add_argument(
        "--max-frequency", type=int, default=None, metavar="K",
        help="adaptive only: interval ceiling in iterations (default 40)")

    run = sub.add_parser("run", parents=[exec_flags, policy_flags],
                         help="one Poisson execution on the P2P runtime")
    run.add_argument("--n", type=int, default=48, help="grid size (system is n^2)")
    run.add_argument("--peers", type=int, default=8)
    run.add_argument("--disconnections", type=int, default=0)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--overlap", type=int, default=None)
    run.add_argument("--warm-start", action="store_true")
    run.add_argument("--csv", metavar="PATH", default=None,
                     help="also write the run as a CSV row")

    fig7 = sub.add_parser("figure7", parents=[exec_flags, policy_flags],
                          help="the paper's Figure 7 sweep")
    fig7.add_argument("--quick", action="store_true",
                      help="2 sizes x 3 churn levels instead of 4 x 4")
    fig7.add_argument("--repeats", type=int, default=1)
    fig7.add_argument("--seed", type=int, default=0)
    fig7.add_argument("--csv", metavar="PATH", default=None,
                      help="also write the aggregated grid as CSV")

    iters = sub.add_parser("iterations", parents=[exec_flags, policy_flags],
                           help="claims C1/C3: iteration counts vs n")
    iters.add_argument("--csv", metavar="PATH", default=None)

    timeline = sub.add_parser(
        "timeline", help="narrated churn run: event log + activity chart"
    )
    timeline.add_argument("--n", type=int, default=64)
    timeline.add_argument("--peers", type=int, default=6)
    timeline.add_argument("--disconnections", type=int, default=3)
    timeline.add_argument("--seed", type=int, default=13)

    sa = sub.add_parser("syncasync", parents=[exec_flags, policy_flags],
                        help="claim C4: sync vs async under churn")
    sa.add_argument("--n", type=int, default=48)
    sa.add_argument("--disconnections", type=int, default=3)
    sa.add_argument("--seed", type=int, default=0)

    ab = sub.add_parser("ablation", parents=[exec_flags],
                        help="design-choice ablations A1-A4")
    ab.add_argument("which", choices=["checkpoint", "backup", "overlap",
                                      "bootstrap"])

    from repro.faults import scenario_names

    faults = sub.add_parser(
        "faults", help="scenario-driven fault-plane runs (repro.faults)"
    )
    fsub = faults.add_subparsers(dest="faults_command", required=True)
    fsub.add_parser("list", help="catalogue of named fault scenarios")
    frun = fsub.add_parser(
        "run", parents=[exec_flags, policy_flags],
        help="run one scenario end-to-end and report what happened")
    frun.add_argument("scenario", nargs="?", default="perfect-storm",
                      choices=scenario_names(),
                      help="named scenario (default: perfect-storm)")
    frun.add_argument("--n", type=int, default=48, help="grid size (system is n^2)")
    frun.add_argument("--peers", type=int, default=6)
    frun.add_argument("--seed", type=int, default=0)
    frun.add_argument("--quick", action="store_true",
                      help="small problem (n=32, peers=4) for smoke tests")
    frun.add_argument("--report", action="store_true",
                      help="trace the run and render its run report")

    cache = sub.add_parser("cache", help="inspect or clear the run cache")
    cache.add_argument("action", choices=["stats", "clear"])
    cache.add_argument("--cache-dir", metavar="DIR", default=None,
                       help=f"cache directory (default {default_cache_dir()})")

    trace = sub.add_parser(
        "trace", help="one traced run: dump the structured event stream"
    )
    trace.add_argument("--n", type=int, default=48)
    trace.add_argument("--peers", type=int, default=6)
    trace.add_argument("--disconnections", type=int, default=3)
    trace.add_argument("--seed", type=int, default=7)
    trace.add_argument("--out", metavar="PATH", default=None,
                       help="write the trace as JSON Lines")
    trace.add_argument("--chrome", metavar="PATH", default=None,
                       help="write a Chrome trace_event JSON "
                            "(chrome://tracing, Perfetto)")

    report = sub.add_parser(
        "report", help="one traced run: render the run report"
    )
    report.add_argument("--n", type=int, default=48)
    report.add_argument("--peers", type=int, default=6)
    report.add_argument("--disconnections", type=int, default=3)
    report.add_argument("--seed", type=int, default=7)
    report.add_argument("--markdown", action="store_true",
                        help="emit markdown instead of plain text")

    profile = sub.add_parser(
        "profile",
        help="profile one run under cProfile: per-layer time attribution",
    )
    profile.add_argument("--n", type=int, default=48)
    profile.add_argument("--peers", type=int, default=6)
    profile.add_argument("--disconnections", type=int, default=0)
    profile.add_argument("--seed", type=int, default=7)
    profile.add_argument("--top", type=int, default=10, metavar="N",
                         help="functions to list by cumulative time")
    profile.add_argument("--json", metavar="PATH", default=None,
                         help="also write the report as JSON")
    return parser


def _policy_from(args):
    """Build a CheckpointPolicy from the shared --checkpoint-* flags.

    Returns None (the driver default) when no policy flag was given, so
    the default path stays bit-identical to the historical runtime.
    """
    from repro.checkpoint import AdaptivePolicy, FixedPolicy

    tuning = {
        k: v for k, v in (
            ("count", args.checkpoint_count),
            ("frequency", args.checkpoint_frequency),
        ) if v is not None
    }
    if args.checkpoint_policy == "adaptive":
        if args.max_replicas is not None:
            tuning["max_replicas"] = args.max_replicas
        if args.max_frequency is not None:
            tuning["max_frequency"] = args.max_frequency
        return AdaptivePolicy(**tuning)
    if args.checkpoint_policy == "fixed" or tuning:
        return FixedPolicy(**tuning)
    return None


def _engine_from(args) -> SweepEngine:
    """A SweepEngine configured by the shared --workers/--cache-dir flags."""
    cache = None if args.no_cache else RunCache(args.cache_dir)
    return SweepEngine(workers=args.workers, cache=cache)


def _cmd_run(args) -> int:
    result = _engine_from(args).run(RunSpec(
        n=args.n, peers=args.peers, disconnections=args.disconnections,
        seed=args.seed, overlap=args.overlap, warm_start=args.warm_start,
        checkpoint=_policy_from(args),
    ))
    row = result.row()
    print(format_table(list(row), [list(row.values())],
                       title="single run (simulated seconds)"))
    if args.csv:
        from repro.experiments.export import runs_to_csv, write_csv

        write_csv(runs_to_csv([result]), args.csv)
        print(f"wrote {args.csv}")
    if not result.converged:
        print("WARNING: did not converge within the horizon", file=sys.stderr)
        return 1
    return 0


def _cmd_figure7(args) -> int:
    engine = _engine_from(args)
    checkpoint = _policy_from(args)
    if args.quick:
        result = figure7_sweep(ns=(40, 64), disconnections=(0, 2, 4),
                               repeats=args.repeats, base_seed=args.seed,
                               engine=engine, checkpoint=checkpoint)
    else:
        result = figure7_sweep(repeats=args.repeats, base_seed=args.seed,
                               engine=engine, checkpoint=checkpoint)
    print(result.format_table())
    from repro.experiments.plotting import figure7_chart

    print()
    print(figure7_chart(result))
    if args.csv:
        from repro.experiments.export import figure7_to_csv, write_csv

        write_csv(figure7_to_csv(result), args.csv)
        print(f"wrote {args.csv}")
    return 0


def _cmd_iterations(args) -> int:
    result = iterations_vs_n(engine=_engine_from(args),
                             checkpoint=_policy_from(args))
    print(result.format_table())
    if args.csv:
        from repro.experiments.export import ratio_to_csv, write_csv

        write_csv(ratio_to_csv(result), args.csv)
        print(f"wrote {args.csv}")
    return 0


def _cmd_timeline(args) -> int:
    from repro.apps import make_poisson_app
    from repro.churn import ChurnInjector, PaperChurn
    from repro.experiments.config import (
        EXPERIMENT_CONFIG,
        EXPERIMENT_LINK_SCALE,
        optimal_overlap,
    )
    from repro.experiments.timeline import (
        activity_chart,
        event_timeline,
        run_summary,
    )
    from repro.p2p import build_cluster, launch_application
    from repro.util.rng import RngTree

    cluster = build_cluster(
        n_daemons=args.peers * 2, n_superpeers=3, seed=args.seed,
        config=EXPERIMENT_CONFIG, link_scale=EXPERIMENT_LINK_SCALE,
    )
    app = make_poisson_app(
        "timeline", n=args.n, num_tasks=args.peers,
        overlap=optimal_overlap(args.n, args.peers),
    )
    spawner = launch_application(cluster, app)
    if args.disconnections:
        ChurnInjector(
            cluster.sim, cluster.testbed.daemon_hosts,
            PaperChurn(args.disconnections, reconnect_delay=1.0),
            RngTree(args.seed).child("churn"), horizon=1.5, log=cluster.log,
            victim_filter=lambda h: (
                (d := cluster.daemons.get(h.name)) is not None
                and d.runner is not None
            ),
        )
    sim = cluster.sim
    sim.run(until=sim.any_of([spawner.done, sim.timeout(900.0)]))
    print(event_timeline(cluster.log))
    print()
    print(activity_chart(cluster.log, width=70))
    print()
    for key, value in run_summary(cluster.log).items():
        print(f"{key:>18}: {value}")
    return 0 if spawner.done.triggered else 1


def _cmd_syncasync(args) -> int:
    result = sync_vs_async(n=args.n, disconnections=args.disconnections,
                           seed=args.seed, engine=_engine_from(args),
                           checkpoint=_policy_from(args))
    print(result.format_table())
    return 0


def _traced_run(args):
    from repro.experiments import run_poisson_on_p2p
    from repro.obs import Tracer

    tracer = Tracer()
    result = run_poisson_on_p2p(
        n=args.n, peers=args.peers, disconnections=args.disconnections,
        seed=args.seed, tracer=tracer,
    )
    return tracer, result


def _cmd_trace(args) -> int:
    from repro.obs import write_chrome_trace, write_jsonl

    tracer, result = _traced_run(args)
    if args.out:
        n_events = write_jsonl(tracer, args.out)
        print(f"wrote {n_events} events to {args.out}")
    if args.chrome:
        n_events = write_chrome_trace(tracer, args.chrome)
        print(f"wrote {n_events} events to {args.chrome} (chrome://tracing)")
    if not args.out and not args.chrome:
        try:
            for ev in tracer:
                print(ev.as_dict())
        except BrokenPipeError:  # `repro-cli trace | head` is normal usage
            sys.stderr.close()  # suppress the interpreter's pipe warning
            return 0
    by_category: dict[str, int] = {}
    for (category, _kind), count in sorted(tracer.counts.items()):
        by_category[category] = by_category.get(category, 0) + count
    summary = ", ".join(f"{cat}={n}" for cat, n in sorted(by_category.items()))
    print(f"{len(tracer)} events ({summary})", file=sys.stderr)
    if not result.converged:
        print("WARNING: did not converge within the horizon", file=sys.stderr)
        return 1
    return 0


def _cmd_report(args) -> int:
    _, result = _traced_run(args)
    report = result.run_report
    print(report.to_markdown() if args.markdown else report.to_text())
    return 0 if result.converged else 1


def _cmd_profile(args) -> int:
    import json

    from repro.experiments import run_poisson_on_p2p
    from repro.obs.profile import profile_callable

    report, result = profile_callable(
        lambda: run_poisson_on_p2p(
            n=args.n, peers=args.peers, disconnections=args.disconnections,
            seed=args.seed,
        ),
        top_n=args.top,
    )
    print(report.to_text())
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report.as_dict(), fh, indent=2)
        print(f"wrote {args.json}", file=sys.stderr)
    if not result.converged:
        print("WARNING: did not converge within the horizon", file=sys.stderr)
        return 1
    return 0


def _cmd_ablation(args) -> int:
    maker = {
        "checkpoint": checkpoint_frequency_ablation,
        "backup": backup_count_ablation,
        "overlap": overlap_ablation,
        "bootstrap": bootstrap_scaling,
    }[args.which]
    # A3/A4 are not run_poisson_on_p2p sweeps; only A1/A2 take an engine
    if args.which in ("checkpoint", "backup"):
        table = maker(engine=_engine_from(args))
    else:
        table = maker()
    print(table.format_table())
    return 0


def _cmd_faults(args) -> int:
    from repro.faults import SCENARIOS, scenario, scenario_overrides

    if args.faults_command == "list":
        width = max(len(name) for name in SCENARIOS)
        for name in sorted(SCENARIOS):
            description, plan = SCENARIOS[name]
            kinds = ", ".join(sorted({a.kind for a in plan.actions}))
            print(f"{name:>{width}}: {description}")
            print(f"{'':>{width}}  [{len(plan)} action(s): {kinds}]")
            requires = scenario_overrides(name)
            if requires:
                needs = ", ".join(f"{k}={v}" for k, v in sorted(
                    requires.items()))
                print(f"{'':>{width}}  [requires: {needs}]")
        return 0

    n, peers = (32, 4) if args.quick else (args.n, args.peers)
    spec = RunSpec(n=n, peers=peers, seed=args.seed,
                   faults=scenario(args.scenario), traced=args.report,
                   checkpoint=_policy_from(args),
                   **scenario_overrides(args.scenario))
    result = _engine_from(args).run(spec)
    row = result.row()
    row["faults"] = result.faults_executed
    row["corrupted"] = result.messages_corrupted
    if result.takeovers:
        row["takeover@"] = round(result.takeover_at, 4)
    print(format_table(list(row), [list(row.values())],
                       title=f"fault scenario {args.scenario!r}"))
    if args.report and result.run_report is not None:
        print()
        print(result.run_report.to_text())
    if not result.converged:
        print("WARNING: did not converge within the horizon", file=sys.stderr)
        return 1
    return 0


def _cmd_cache(args) -> int:
    cache = RunCache(args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached run(s) from {cache.root}")
        return 0
    stats = cache.stats()
    width = max(len(k) for k in stats)
    for key, value in stats.items():
        print(f"{key:>{width}}: {value}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "run": _cmd_run,
        "figure7": _cmd_figure7,
        "iterations": _cmd_iterations,
        "syncasync": _cmd_syncasync,
        "ablation": _cmd_ablation,
        "timeline": _cmd_timeline,
        "trace": _cmd_trace,
        "report": _cmd_report,
        "profile": _cmd_profile,
        "faults": _cmd_faults,
        "cache": _cmd_cache,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main
    raise SystemExit(main())
