"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of the runtime with a single ``except`` clause
while still distinguishing subsystem-specific failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """Invalid argument or configuration value handed to a repro API.

    Derives from :class:`ValueError` as well, so historical ``except
    ValueError`` call sites (and tests) keep working while new code can
    catch the whole library with ``except ReproError``.
    """


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event kernel (e.g. scheduling an
    event in the past, resuming a dead process)."""


class NetworkError(ReproError):
    """Base class for network-substrate failures."""


class HostDownError(NetworkError):
    """An operation was attempted on a host that is currently disconnected."""


class LinkDownError(NetworkError):
    """A message was sent over a link that is partitioned or removed."""


class RemoteError(ReproError):
    """A remote invocation failed (dead peer, marshalling failure, or the
    remote method itself raised).

    Mirrors Java's ``RemoteException``: the JaceP2P runtime treats it as the
    signal that a peer is unreachable.
    """

    def __init__(self, message: str, cause: BaseException | None = None):
        super().__init__(message)
        self.cause = cause


class BootstrapError(ReproError):
    """No Super-Peer in the bootstrap list could be reached."""


class ReservationError(ReproError):
    """The Super-Peer network could not reserve the requested number of
    Daemons."""


class CheckpointError(ReproError):
    """Checkpoint storage or recovery failure."""


class NoBackupAvailableError(CheckpointError):
    """Every backup-peer holding a task's checkpoints has failed; the task
    must restart from iteration 0 (paper §5.4)."""


class ConvergenceError(ReproError):
    """The iterative method failed to converge within the allowed budget."""


class TaskError(ReproError):
    """A user Task implementation raised or violated the Task contract."""


class NotSupportedError(ReproError):
    """The requested operation is not expressible in the chosen model (e.g.
    inter-task communication under the master-slave baseline)."""


class FaultError(ReproError):
    """A fault plan is malformed or cannot be executed against the target
    deployment (e.g. a Super-Peer action without a cluster)."""
