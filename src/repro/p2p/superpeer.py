"""The Super-Peer: entry point and Daemon index (paper §5.1–§5.3).

A Super-Peer keeps a **Register** of the RMI stubs of the idle Daemons
connected to it, monitors their heartbeats with a timeout protocol, answers
reservation requests from Spawners, and forwards unmet demand to the other
Super-Peers it is linked to (the hybrid-topology forwarding of Fig. 2/4).

Swarm scale (``config.superpeer_tiers >= 2``, docs/scaling.md) arranges
Super-Peers into a hierarchy: tier-0 *leaves* keep Daemon Registers exactly
as above, while interior Super-Peers index only their child Super-Peers'
**liveness summaries** (``sp_id``, stub, idle count, last heard) — aggregated
liveness, not per-peer beats, is all that crosses a tier boundary.
Reservation demand forwards down to the idlest subtree, up to the parent,
and sideways across the top-tier mesh, with a visited set preventing loops;
a child whose summaries go stale is evicted together with its whole subtree's
idle count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.des import Simulator
from repro.errors import RemoteError
from repro.net.host import Host
from repro.net.network import Network
from repro.p2p.config import P2PConfig
from repro.rmi import RemoteObject, RmiRuntime, Stub, remote
from repro.rmi.invocation import OnewayMessage
from repro.util.hotpath import HOTPATH
from repro.util.logging import EventLog
from repro.util.serialization import measured_size

__all__ = ["SuperPeer", "DaemonRecord", "ChildSummary"]

#: name under which every Super-Peer exports itself
SUPERPEER_OBJECT = "superpeer"


@dataclass
class DaemonRecord:
    """One Register entry."""

    daemon_id: str
    stub: Stub
    last_seen: float


@dataclass
class ChildSummary:
    """An interior Super-Peer's view of one child subtree: the aggregated
    liveness summary that replaces per-Daemon bookkeeping above tier 0."""

    sp_id: str
    stub: Stub
    idle: int
    last_seen: float


class SuperPeer(RemoteObject):
    """One Super-Peer entity."""

    def __init__(
        self,
        network: Network,
        host: Host,
        sp_id: str,
        config: P2PConfig,
        log: EventLog | None = None,
        tier: int = 0,
    ):
        self.sim: Simulator = network.sim
        self.network = network
        self.host = host
        self.sp_id = sp_id
        self.config = config
        self.log = log
        self.tier = tier
        self.register: dict[str, DaemonRecord] = {}
        self.neighbour_stubs: list[Stub] = []
        #: hierarchy wiring (empty/None in the flat depth-1 topology)
        self.parent_stub: Stub | None = None
        #: memoized tier-summary envelope size (constant per parent stub:
        #: fixed strings, a primed Stub, and an 8-byte idle count)
        self._summary_sized: tuple[Stub, int] | None = None
        self.child_summaries: dict[str, ChildSummary] = {}
        self.evictions = 0
        self.subtree_evictions = 0
        self.forwarded_requests = 0
        self.summaries_sent = 0
        self.runtime = RmiRuntime(
            network, host, config.superpeer_port, name=sp_id, log=log,
            call_timeout=config.call_timeout,
        )
        self.stub = self.runtime.serve(self, SUPERPEER_OBJECT)
        host.spawn(self._monitor(), label=f"{sp_id}:monitor")

    # -- wiring ------------------------------------------------------------

    def link(self, neighbours: list[Stub]) -> None:
        """Connect this Super-Peer to the others (they "are linked
        together", §5.1).  Self is filtered out defensively."""
        self.neighbour_stubs = [s for s in neighbours if s.address != self.stub.address]

    def set_parent(self, parent: Stub | None) -> None:
        """Attach this Super-Peer under an interior Super-Peer one tier up."""
        self.parent_stub = parent

    def adopt_child(self, sp_id: str, stub: Stub, idle: int = 0) -> None:
        """Seed a child subtree's summary (cluster build / recovery);
        the child's periodic :meth:`tier_summary` oneways keep it fresh."""
        self.child_summaries[sp_id] = ChildSummary(sp_id, stub, idle, self.sim.now)

    def subtree_idle(self) -> int:
        """Idle Daemons in this Super-Peer's whole subtree (register for a
        leaf, last-heard child summaries above)."""
        return len(self.register) + sum(
            c.idle for c in self.child_summaries.values()
        )

    # -- remote interface ------------------------------------------------------

    @remote
    def register_daemon(self, daemon_id: str, stub: Stub) -> bool:
        """A Daemon joins (bootstrap, §5.1) or re-joins after eviction."""
        self.register[daemon_id] = DaemonRecord(daemon_id, stub, self.sim.now)
        self._log("sp_register", daemon=daemon_id)
        self._trace("register", daemon=daemon_id)
        return True

    @remote
    def unregister_daemon(self, daemon_id: str) -> bool:
        """Graceful departure (not used by failures — those time out)."""
        removed = self.register.pop(daemon_id, None) is not None
        if removed:
            self._log("sp_unregister", daemon=daemon_id)
            self._trace("unregister", daemon=daemon_id)
        return removed

    @remote
    def heartbeat(self, daemon_id: str) -> bool:
        """Periodic liveness signal; False tells the Daemon it is unknown
        here (evicted or talking to a rebooted Super-Peer) and must
        re-register."""
        record = self.register.get(daemon_id)
        self._trace("heartbeat", daemon=daemon_id, known=record is not None)
        if record is None:
            return False
        record.last_seen = self.sim.now
        return True

    @remote
    def heartbeat_oneway(self, daemon_id: str, stub: Stub) -> None:
        """Wheel-mode liveness beat (docs/scaling.md).

        Fire-and-forget: no reply event, no caller watchdog.  An unknown
        sender (evicted, or beating a rebooted Super-Peer) gets a oneway
        ``notify_unknown`` nack telling it to re-bootstrap — the pull
        answer the call-based :meth:`heartbeat` returns as ``False``."""
        record = self.register.get(daemon_id)
        if record is None:
            self._trace("heartbeat_nack", daemon=daemon_id)
            self.runtime.oneway(stub, "notify_unknown", self.sp_id)
            return
        record.last_seen = self.sim.now

    @remote
    def tier_summary(self, sp_id: str, stub: Stub, idle: int) -> None:
        """Aggregated liveness from a child Super-Peer: its subtree's idle
        count, refreshed every monitor period.  This summary — not the
        per-Daemon beats behind it — is all that crosses a tier boundary."""
        self.child_summaries[sp_id] = ChildSummary(sp_id, stub, idle, self.sim.now)

    @remote
    def reserve_local(self, count: int) -> list[tuple[str, Stub]]:
        """Hand over up to ``count`` registered Daemons (removing them from
        the Register: reserved peers are "no longer registered to the
        Super-Peers", §5.2)."""
        if count <= 0:
            return []
        picked: list[tuple[str, Stub]] = []
        for daemon_id in sorted(self.register)[:count]:
            record = self.register.pop(daemon_id)
            picked.append((record.daemon_id, record.stub))
        if picked:
            self._log("sp_reserve_local", count=len(picked))
            self._trace("reserve", count=len(picked))
        return picked

    @remote
    def reserve(self, count: int, visited: tuple[str, ...] = ()):
        """Reserve ``count`` Daemons, forwarding unmet demand to the other
        Super-Peers (Fig. 2: SP1 reserves D3 on SP2).

        Forwarding order: the local Register first, then *down* into child
        subtrees (idlest first, per their last summaries), then *up* to the
        parent tier, then sideways to linked neighbours — in the flat
        depth-1 topology only the neighbour leg exists, which is exactly
        the paper's behaviour.  ``visited`` carries the addresses of the
        Super-Peers already consulted so a request never loops.  Returns a
        (possibly short) list of ``(daemon_id, stub)`` pairs.
        """
        picked = self.reserve_local(count)
        visited = tuple(visited) + (str(self.stub.address),)
        targets: list[Stub] = [
            c.stub
            for c in sorted(self.child_summaries.values(),
                            key=lambda c: (-c.idle, c.sp_id))
            if c.idle > 0
        ]
        if self.parent_stub is not None:
            targets.append(self.parent_stub)
        targets.extend(self.neighbour_stubs)
        # a forwarded request may itself traverse a whole tier chain
        forward_timeout = self.config.call_timeout * max(
            1, self.config.superpeer_tiers
        )
        for nb in targets:
            if len(picked) >= count:
                break
            if str(nb.address) in visited:
                continue  # already consulted on this request's path
            need = count - len(picked)
            self.forwarded_requests += 1
            try:
                extra = yield self.runtime.call(
                    nb, "reserve", need, visited, timeout=forward_timeout
                )
            except RemoteError:
                continue  # that Super-Peer is down; try the next one
            picked.extend(extra)
            visited = visited + (str(nb.address),)
        return picked

    @remote
    def registered_count(self) -> int:
        return len(self.register)

    @remote
    def ping(self) -> bool:
        return True

    # -- heartbeat monitoring (the "timeout protocol", §5.3) --------------------

    def _monitor(self):
        while True:
            yield self.sim.timeout(self.config.monitor_period)
            deadline = self.sim.now - self.config.heartbeat_timeout
            stale = [d for d, rec in self.register.items() if rec.last_seen < deadline]
            for daemon_id in stale:
                del self.register[daemon_id]
                self.evictions += 1
                self._log("sp_evict", daemon=daemon_id)
                self._trace("evict", daemon=daemon_id)
            if self.child_summaries:
                # a child gone silent takes its WHOLE subtree's idle count
                # with it; the Daemons below re-register via their own
                # heartbeat nacks / timeouts
                dead = [sid for sid, c in self.child_summaries.items()
                        if c.last_seen < deadline]
                for sid in dead:
                    lost = self.child_summaries.pop(sid)
                    self.subtree_evictions += 1
                    self._log("sp_evict_subtree", child=sid, idle_lost=lost.idle)
                    self._trace("evict_subtree", child=sid, idle_lost=lost.idle)
            if self.parent_stub is not None:
                self.summaries_sent += 1
                # The summary envelope's size is invariant across sends
                # (an int idle count charges 8 bytes whatever its value):
                # measure once per parent stub instead of on every period.
                parent = self.parent_stub
                size = None
                if HOTPATH.size_memo:
                    sized = self._summary_sized
                    if sized is None or sized[0] is not parent:
                        probe = OnewayMessage(
                            parent.object_name, "tier_summary",
                            (self.sp_id, self.stub, 0), {},
                        )
                        sized = (parent, measured_size(probe))
                        self._summary_sized = sized
                    size = sized[1]
                self.runtime.oneway(
                    parent, "tier_summary",
                    self.sp_id, self.stub, self.subtree_idle(),
                    size=size,
                )

    def _log(self, kind: str, **detail) -> None:
        if self.log is not None:
            self.log.emit(self.sim.now, self.sp_id, kind, **detail)

    def _trace(self, kind: str, **attrs) -> None:
        tr = self.sim.tracer
        if tr.enabled:
            tr.emit(self.sim.now, "p2p", self.sp_id, kind, **attrs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<SuperPeer {self.sp_id} tier={self.tier} "
                f"register={len(self.register)} "
                f"children={len(self.child_summaries)}>")
