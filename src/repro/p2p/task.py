"""The user-facing Task abstraction.

A JaceP2P application is "a SPMD Java program which uses JaceP2P methods by
extending the Task class" (§4.2).  The Python contract:

* :meth:`Task.setup` builds the local sub-problem deterministically from the
  application parameters and the task's index — every Daemon (including a
  replacement after a failure) can reconstruct it;
* :meth:`Task.iterate` performs **one asynchronous iteration** given the
  freshest data received from each neighbour since the previous call, and
  returns an :class:`IterationStep`: the estimated flop cost (charged as
  simulated compute time), the outgoing messages, and the local update
  distance (fed to the convergence detector);
* :meth:`Task.dump_state` / :meth:`Task.load_state` give the runtime the
  checkpointable state (the Backup payload, §5.4).

The runtime — not the task — owns iteration counting, checkpoint scheduling,
convergence messaging and data transport.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigurationError, TaskError

__all__ = ["TaskContext", "IterationStep", "StepPlan", "Task"]


@dataclass(frozen=True)
class TaskContext:
    """Identity and parameters handed to a Task at setup time."""

    app_id: str
    task_id: int
    num_tasks: int
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0 <= self.task_id < self.num_tasks:
            raise ConfigurationError("task_id out of range")


@dataclass
class IterationStep:
    """What one local iteration produced."""

    #: estimated floating-point operations of this iteration (charged to the
    #: host's simulated CPU)
    flops: float
    #: messages to neighbours: destination task id -> payload
    outgoing: dict[int, Any] = field(default_factory=dict)
    #: max-norm relative distance between successive local iterates
    local_distance: float = float("inf")
    #: free-form diagnostics (e.g. inner CG iterations)
    info: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.flops < 0:
            raise ConfigurationError("flops must be >= 0")
        if self.local_distance < 0:
            raise ConfigurationError("local_distance must be >= 0")


@dataclass(slots=True)
class StepPlan:
    """A split iteration: everything known *before* the inner solve runs.

    Tasks that support the batched compute plane factor :meth:`Task.iterate`
    into :meth:`Task.begin_step` (inbox fold, rhs assembly — returns a plan)
    and :meth:`Task.finish_step` (state update, outgoing payloads — consumes
    the plan plus the solve's result).  The plane executes the solve in
    between, possibly deferred in wall-clock and batched with cohort
    siblings; the DES-visible step is identical either way.
    """

    #: ``"direct"`` (LU-backed, analytically costed, deferrable) or
    #: ``"cg"`` (iteration count — hence flops — known only after solving)
    solver: str
    #: the task's :class:`~repro.numerics.cg.CgOperator`
    operator: Any
    #: right-hand side of the inner solve (owned by the task until the
    #: runner's next resume — the plane never outlives that window)
    rhs: Any
    x0: Any = None
    tol: float = 1e-10
    max_iter: int | None = None
    #: total iteration flops when analytically known ("direct"), else 0.0
    flops: float = 0.0
    #: flops charged on top of the solve's own count ("cg" assembly terms)
    flops_extra: float = 0.0


class Task:
    """Base class for SPMD applications.  Subclass and override the hooks."""

    ctx: TaskContext

    # -- lifecycle ---------------------------------------------------------

    def setup(self, ctx: TaskContext) -> None:
        """Build the local sub-problem.  Must be deterministic in ``ctx``."""
        self.ctx = ctx

    def initial_state(self) -> dict:
        """The state a brand-new task starts from (iteration 0)."""
        raise NotImplementedError

    def load_state(self, state: dict) -> None:
        """Adopt a (checkpointed or initial) state dict."""
        raise NotImplementedError

    def dump_state(self) -> dict:
        """Snapshot the current state (becomes the Backup payload)."""
        raise NotImplementedError

    # -- iteration -----------------------------------------------------------

    def iterate(self, inbox: dict[int, Any]) -> IterationStep:
        """One asynchronous iteration.

        ``inbox`` holds the freshest payload per source task received since
        the last call (empty when nothing arrived — the task must still
        iterate; whether that progresses is the paper's "useless
        iteration" phenomenon).
        """
        raise NotImplementedError

    def begin_step(self, inbox: dict[int, Any]) -> "StepPlan | None":
        """Optional compute-plane hook: the pre-solve half of an iteration.

        Fold ``inbox``, assemble the inner system, and return a
        :class:`StepPlan` — or ``None`` to run the monolithic
        :meth:`iterate` instead (the default).  A task returning a plan
        MUST accept :meth:`finish_step` with the solve result later;
        between the two calls the task must not mutate anything the plan
        references.
        """
        return None

    def finish_step(self, plan: "StepPlan", result: Any) -> IterationStep:
        """Consume an inner-solve result for a plan from :meth:`begin_step`."""
        raise NotImplementedError

    # -- results ---------------------------------------------------------------

    def solution_fragment(self) -> Any:
        """The owned part of the global solution (collected at the end)."""
        return None

    # -- helpers -----------------------------------------------------------------

    def require_setup(self) -> TaskContext:
        ctx = getattr(self, "ctx", None)
        if ctx is None:
            raise TaskError(f"{type(self).__name__}.setup() was never called")
        return ctx
