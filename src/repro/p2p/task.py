"""The user-facing Task abstraction.

A JaceP2P application is "a SPMD Java program which uses JaceP2P methods by
extending the Task class" (§4.2).  The Python contract:

* :meth:`Task.setup` builds the local sub-problem deterministically from the
  application parameters and the task's index — every Daemon (including a
  replacement after a failure) can reconstruct it;
* :meth:`Task.iterate` performs **one asynchronous iteration** given the
  freshest data received from each neighbour since the previous call, and
  returns an :class:`IterationStep`: the estimated flop cost (charged as
  simulated compute time), the outgoing messages, and the local update
  distance (fed to the convergence detector);
* :meth:`Task.dump_state` / :meth:`Task.load_state` give the runtime the
  checkpointable state (the Backup payload, §5.4).

The runtime — not the task — owns iteration counting, checkpoint scheduling,
convergence messaging and data transport.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ConfigurationError, TaskError

__all__ = ["TaskContext", "IterationStep", "StepPlan", "ComponentFilter",
           "Task"]


@dataclass(frozen=True)
class TaskContext:
    """Identity and parameters handed to a Task at setup time."""

    app_id: str
    task_id: int
    num_tasks: int
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0 <= self.task_id < self.num_tasks:
            raise ConfigurationError("task_id out of range")


@dataclass
class IterationStep:
    """What one local iteration produced."""

    #: estimated floating-point operations of this iteration (charged to the
    #: host's simulated CPU)
    flops: float
    #: messages to neighbours: destination task id -> payload
    outgoing: dict[int, Any] = field(default_factory=dict)
    #: max-norm relative distance between successive local iterates
    local_distance: float = float("inf")
    #: free-form diagnostics (e.g. inner CG iterations)
    info: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.flops < 0:
            raise ConfigurationError("flops must be >= 0")
        if self.local_distance < 0:
            raise ConfigurationError("local_distance must be >= 0")


@dataclass(slots=True)
class StepPlan:
    """A split iteration: everything known *before* the inner solve runs.

    Tasks that support the batched compute plane factor :meth:`Task.iterate`
    into :meth:`Task.begin_step` (inbox fold, rhs assembly — returns a plan)
    and :meth:`Task.finish_step` (state update, outgoing payloads — consumes
    the plan plus the solve's result).  The plane executes the solve in
    between, possibly deferred in wall-clock and batched with cohort
    siblings; the DES-visible step is identical either way.
    """

    #: ``"direct"`` (LU-backed, analytically costed, deferrable) or
    #: ``"cg"`` (iteration count — hence flops — known only after solving)
    solver: str
    #: the task's :class:`~repro.numerics.cg.CgOperator`
    operator: Any
    #: right-hand side of the inner solve (owned by the task until the
    #: runner's next resume — the plane never outlives that window)
    rhs: Any
    x0: Any = None
    tol: float = 1e-10
    max_iter: int | None = None
    #: total iteration flops when analytically known ("direct"), else 0.0
    flops: float = 0.0
    #: flops charged on top of the solve's own count ("cg" assembly terms)
    flops_extra: float = 0.0


class ComponentFilter:
    """Contraction-bound plausibility filter for incoming boundary data
    (arXiv:2206.08479, "Modifying the Asynchronous Jacobi Method for Data
    Corruption Resilience").

    Asynchronous block-Jacobi contracts: between two successive messages
    from the same neighbour, each boundary component moves by an amount on
    the order of the per-iteration update — never by orders of magnitude.
    The filter keeps, per source task, the last *accepted* payload and a
    decayed reference jump scale (the median of accepted component jumps —
    the corruption adversary perturbs individual components, and a median
    shrugs off the outlier it is trying to measure).  A component whose
    jump exceeds ``floor + safety·reference`` is rejected and the last
    accepted value reused in its place.

    Two escape hatches keep the filter live rather than paranoid: a
    message whose components are *all* implausible is indistinguishable
    from a legitimate regime change (recovery rollback, new sub-problem)
    and is accepted wholesale, and ``patience`` consecutive partially
    rejected messages from one source force wholesale acceptance so a
    drifting-but-honest neighbour can never be frozen out forever.
    """

    __slots__ = ("safety", "floor", "decay", "patience", "rejected",
                 "_last", "_ref", "_streak")

    def __init__(self, safety: float = 25.0, floor: float = 1e-9,
                 decay: float = 0.95, patience: int = 16):
        if safety <= 0 or floor < 0 or not 0.0 < decay <= 1.0 or patience < 1:
            raise ConfigurationError("implausible ComponentFilter tuning")
        self.safety = float(safety)
        self.floor = float(floor)
        self.decay = float(decay)
        self.patience = int(patience)
        #: total components rejected so far (read by the task runner)
        self.rejected = 0
        self._last: dict[int, np.ndarray] = {}
        self._ref: dict[int, float] = {}
        self._streak: dict[int, int] = {}

    def filter(self, src_task: int, values: np.ndarray) -> np.ndarray:
        """Return ``values`` with implausible components replaced by the
        last accepted ones; updates the per-source reference scale."""
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            return arr
        last = self._last.get(src_task)
        if last is None or last.shape != arr.shape:
            # tasks iterate from x = 0, so the implicit previous boundary
            # is the zero vector
            last = np.zeros_like(arr)
        jump = np.abs(arr - last)
        med = float(np.median(jump))
        ref = self._ref.get(src_task)
        out = arr
        if ref is not None:
            threshold = self.floor + self.safety * ref
            bad = jump > threshold
            nbad = int(bad.sum())
            streak = self._streak.get(src_task, 0)
            if 0 < nbad < arr.size and streak < self.patience:
                out = arr.copy()
                out[bad] = last[bad]
                self.rejected += nbad
                self._streak[src_task] = streak + 1
                good = jump[~bad]
                med = float(np.median(good)) if good.size else 0.0
            else:
                # clean, wholesale-implausible, or patience exhausted:
                # accept as-is and re-anchor the reference below
                self._streak[src_task] = 0
            ref = max(med, self.decay * ref)
        else:
            ref = med
        self._ref[src_task] = ref
        self._last[src_task] = out
        return out


class Task:
    """Base class for SPMD applications.  Subclass and override the hooks."""

    ctx: TaskContext

    # -- lifecycle ---------------------------------------------------------

    def setup(self, ctx: TaskContext) -> None:
        """Build the local sub-problem.  Must be deterministic in ``ctx``."""
        self.ctx = ctx
        self._reject_filter: ComponentFilter | None = None
        if ctx.params.get("reject_corruption"):
            self._reject_filter = ComponentFilter(
                safety=float(ctx.params.get("reject_safety", 25.0)),
            )

    def initial_state(self) -> dict:
        """The state a brand-new task starts from (iteration 0)."""
        raise NotImplementedError

    def load_state(self, state: dict) -> None:
        """Adopt a (checkpointed or initial) state dict."""
        raise NotImplementedError

    def dump_state(self) -> dict:
        """Snapshot the current state (becomes the Backup payload)."""
        raise NotImplementedError

    # -- iteration -----------------------------------------------------------

    def iterate(self, inbox: dict[int, Any]) -> IterationStep:
        """One asynchronous iteration.

        ``inbox`` holds the freshest payload per source task received since
        the last call (empty when nothing arrived — the task must still
        iterate; whether that progresses is the paper's "useless
        iteration" phenomenon).
        """
        raise NotImplementedError

    def begin_step(self, inbox: dict[int, Any]) -> "StepPlan | None":
        """Optional compute-plane hook: the pre-solve half of an iteration.

        Fold ``inbox``, assemble the inner system, and return a
        :class:`StepPlan` — or ``None`` to run the monolithic
        :meth:`iterate` instead (the default).  A task returning a plan
        MUST accept :meth:`finish_step` with the solve result later;
        between the two calls the task must not mutate anything the plan
        references.
        """
        return None

    def finish_step(self, plan: "StepPlan", result: Any) -> IterationStep:
        """Consume an inner-solve result for a plan from :meth:`begin_step`."""
        raise NotImplementedError

    # -- corruption resilience (arXiv:2206.08479) ------------------------------

    @property
    def components_rejected(self) -> int:
        """Total boundary components the rejection filter discarded."""
        flt = getattr(self, "_reject_filter", None)
        return 0 if flt is None else flt.rejected

    def guard_payload(self, src_task: int, values: np.ndarray) -> np.ndarray:
        """Apps route every incoming boundary payload through this in their
        inbox fold; a no-op unless the run enables corruption rejection."""
        flt = getattr(self, "_reject_filter", None)
        return values if flt is None else flt.filter(src_task, values)

    def state_plausible(self, state: dict) -> bool:
        """Whether a checkpointed state passes the plausibility screen
        (finite, bounded) — used to refuse restoring corrupted Backups."""
        ceiling = 1e8
        ctx = getattr(self, "ctx", None)
        if ctx is not None:
            ceiling = float(ctx.params.get("reject_ceiling", ceiling))
        for value in state.values():
            arr = np.asarray(value)
            if arr.dtype.kind != "f" or arr.size == 0:
                continue
            if not np.isfinite(arr).all():
                return False
            if float(np.abs(arr).max()) > ceiling:
                return False
        return True

    # -- results ---------------------------------------------------------------

    def solution_fragment(self) -> Any:
        """The owned part of the global solution (collected at the end)."""
        return None

    # -- helpers -----------------------------------------------------------------

    def require_setup(self) -> TaskContext:
        ctx = getattr(self, "ctx", None)
        if ctx is None:
            raise TaskError(f"{type(self).__name__}.setup() was never called")
        return ctx
