"""Cluster assembly: wire a whole JaceP2P deployment onto a simulated testbed.

:func:`build_cluster` creates the Super-Peers (linked together), boots one
Daemon per daemon host, and installs the *reboot hook*: whenever a failed
host reconnects, a fresh Daemon incarnation boots and re-registers — the
paper's disconnection/reconnection cycle.  :func:`launch_application` starts
a Spawner for an :class:`~repro.p2p.messages.AppSpec`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.checkpoint import CheckpointPolicy, FailureFeed
from repro.compute import ComputePlane
from repro.errors import ConfigurationError, FaultError
from repro.des import Simulator, TimerWheel
from repro.gossip import GossipAgent
from repro.net.address import Address
from repro.net.host import Host
from repro.net.topology import Testbed, build_testbed
from repro.p2p.config import P2PConfig
from repro.p2p.daemon import Daemon
from repro.p2p.messages import AppSpec
from repro.p2p.spawner import Spawner
from repro.p2p.standby import StandbySpawner
from repro.p2p.superpeer import SuperPeer
from repro.obs.instruments import RunTelemetry
from repro.util.logging import EventLog
from repro.util.rng import RngTree

__all__ = [
    "Cluster",
    "build_cluster",
    "launch_application",
    "launch_standby",
    "tier_sizes",
]


def tier_sizes(n_leaves: int, tiers: int, fanout: int) -> list[int]:
    """Super-Peers per tier, leaves (tier 0) first.

    Each tier above the leaves holds ``ceil(previous / fanout)`` interior
    Super-Peers; the plan stops early once a tier collapses to one node
    (a deeper hierarchy over a single root adds hops, not capacity)."""
    sizes = [n_leaves]
    for _ in range(1, tiers):
        if sizes[-1] <= 1:
            break
        sizes.append(math.ceil(sizes[-1] / fanout))
    return sizes


@dataclass
class Cluster:
    """Handle to a running deployment."""

    sim: Simulator
    testbed: Testbed
    config: P2PConfig
    rng: RngTree
    log: EventLog
    superpeers: list[SuperPeer] = field(default_factory=list)
    #: current Daemon incarnation per daemon host name
    daemons: dict[str, Daemon] = field(default_factory=dict)
    spawners: list[Spawner] = field(default_factory=list)
    telemetry: RunTelemetry = field(default_factory=RunTelemetry)
    incarnations: dict[str, int] = field(default_factory=dict)
    #: the shared heartbeat wheel (``config.heartbeat_mode == "wheel"``)
    wheel: TimerWheel | None = None
    #: hierarchy plan (empty in the flat depth-1 topology): child -> parent
    sp_parent: dict[str, str] = field(default_factory=dict)
    #: hierarchy plan: parent -> children
    sp_children: dict[str, list[str]] = field(default_factory=dict)
    #: applications launched on this cluster (in launch order)
    apps: list[AppSpec] = field(default_factory=list)
    #: the §4.2 stable storage, when the run uses one
    stable_store: object | None = None
    #: the warm-standby Spawner, when ``config.standby_enabled``
    standby: StandbySpawner | None = None
    #: cluster-wide batched compute plane (wall-clock only, never DES):
    #: every Daemon incarnation routes plane-capable inner solves here
    compute: ComputePlane = field(default_factory=ComputePlane)
    #: cluster-wide checkpoint strategy handed to every Daemon incarnation
    #: (None = the paper's fixed scheme from the config knobs)
    checkpoint: CheckpointPolicy | None = None
    #: shared failure/cost statistics: Spawner evictions write into it,
    #: adaptive checkpoint policies read from it
    failure_feed: FailureFeed = field(default_factory=FailureFeed)

    @property
    def network(self):
        return self.testbed.network

    @property
    def tracer(self):
        """The trace bus every layer of this deployment emits into."""
        return self.sim.tracer

    @property
    def metrics(self):
        """The metrics registry behind :attr:`telemetry`."""
        return self.telemetry.registry

    @property
    def superpeer_addresses(self) -> list[Address]:
        """Bootstrap entry points: the Super-Peers that hold Daemon
        Registers — every Super-Peer when flat, the tier-0 leaves when
        tiered (interior Super-Peers index Super-Peers, not Daemons)."""
        return [sp.stub.address for sp in self.superpeers if sp.tier == 0]

    @property
    def leaf_superpeers(self) -> list[SuperPeer]:
        return [sp for sp in self.superpeers if sp.tier == 0]

    def superpeers_of_tier(self, tier: int) -> list[SuperPeer]:
        return [sp for sp in self.superpeers if sp.tier == tier]

    def superpeer_by_id(self, sp_id: str) -> SuperPeer:
        for sp in self.superpeers:
            if sp.sp_id == sp_id:
                return sp
        raise ConfigurationError(f"no Super-Peer {sp_id!r} in this cluster")

    def registered_daemons(self) -> int:
        return sum(len(sp.register) for sp in self.superpeers)

    def boot_daemon(self, host: Host) -> Daemon:
        """Boot a fresh Daemon incarnation on ``host``.

        Under gossip discovery the Daemon is handed only a SHORT seed
        contact list (two leaf Super-Peers) instead of the full hardcoded
        roster; the rest of the entry points are learned epidemically
        (docs/gossip.md)."""
        incarnation = self.incarnations.get(host.name, 0) + 1
        self.incarnations[host.name] = incarnation
        seeds = self.superpeer_addresses
        if self.config.gossip_enabled and self.config.gossip_discovery:
            seeds = seeds[:2]
        daemon = Daemon(
            network=self.network,
            host=host,
            daemon_id=f"{host.name}#{incarnation}",
            superpeer_addresses=seeds,
            config=self.config,
            rng=self.rng.child("daemon", host.name, incarnation),
            log=self.log,
            telemetry=self.telemetry,
            wheel=self.wheel,
            compute=self.compute,
            checkpoint=self.checkpoint,
            failure_feed=self.failure_feed,
        )
        self.daemons[host.name] = daemon
        return daemon

    def boot_superpeer(self, host: Host) -> SuperPeer:
        """Boot a replacement Super-Peer on a recovered ``host``.

        The replacement keeps the dead incumbent's ``sp_id``, port and
        address, so bootstrap address lists and the surviving Super-Peers'
        neighbour stubs (which are address-based) reach it unchanged — the
        paper's entry points are *well-known* nodes.  Its Register starts
        empty; Daemons repopulate it through re-registration (§5.3).
        """
        for i, old in enumerate(self.superpeers):
            if old.host is host:
                replacement = SuperPeer(
                    self.network, host, sp_id=old.sp_id,
                    config=self.config, log=self.log, tier=old.tier,
                )
                self.superpeers[i] = replacement
                if not self.sp_parent and not self.sp_children:
                    # flat topology: re-link the full mesh
                    stubs = [sp.stub for sp in self.superpeers]
                    for sp in self.superpeers:
                        sp.link(stubs)
                else:
                    self._rewire_superpeer(replacement)
                if self.config.gossip_enabled and replacement.tier == 0:
                    _attach_superpeer_gossip(self, replacement)
                return replacement
        raise FaultError(f"host {host.name!r} runs no Super-Peer")

    def _rewire_superpeer(self, sp: SuperPeer) -> None:
        """Restore a replacement Super-Peer's hierarchy wiring from the
        recorded plan.  Addresses are stable, so the rest of the tree's
        stubs for this node still work; only the replacement's own pointers
        (and its parent's summary seed) need refreshing — its child
        summaries then repopulate through the periodic ``tier_summary``
        oneways."""
        parent_id = self.sp_parent.get(sp.sp_id)
        if parent_id is not None:
            parent = self.superpeer_by_id(parent_id)
            sp.set_parent(parent.stub)
            parent.adopt_child(sp.sp_id, sp.stub)
        for child_id in self.sp_children.get(sp.sp_id, []):
            child = self.superpeer_by_id(child_id)
            sp.adopt_child(child.sp_id, child.stub)
        top_tier = max(peer.tier for peer in self.superpeers)
        if sp.tier == top_tier:
            stubs = [peer.stub for peer in self.superpeers_of_tier(top_tier)]
            for peer in self.superpeers_of_tier(top_tier):
                peer.link(stubs)


def build_cluster(
    n_daemons: int,
    n_superpeers: int = 3,
    seed: int = 0,
    config: P2PConfig | None = None,
    homogeneous: bool = False,
    sim: Simulator | None = None,
    link_scale: float = 1.0,
    loss_rate: float = 0.0,
    tracer=None,
    checkpoint: CheckpointPolicy | None = None,
) -> Cluster:
    """Create a full deployment mirroring the paper's §7 testbed shape.

    ``loss_rate`` drops that fraction of ALL messages in transit — data,
    heartbeats, checkpoints and control calls alike — exercising §5.3's
    claim that the asynchronous model is message-loss tolerant.

    ``tracer`` (a :class:`repro.obs.Tracer`) turns on structured tracing
    across every layer of the deployment; the default leaves the kernel's
    zero-overhead null tracer in place.
    """
    config = config or P2PConfig()
    rng = RngTree(seed)
    sim = sim or Simulator()
    if tracer is not None:
        sim.tracer = tracer
    sizes = tier_sizes(n_superpeers, config.superpeer_tiers,
                       config.superpeer_fanout)
    testbed = build_testbed(
        sim,
        n_daemons=n_daemons,
        n_superpeers=sum(sizes),  # leaves + interior tiers
        rng=rng.child("testbed") if (not homogeneous or loss_rate > 0) else None,
        homogeneous=homogeneous,
        link_scale=link_scale,
        loss_rate=loss_rate,
        with_standby=config.standby_enabled,
    )
    log = EventLog()
    cluster = Cluster(sim=sim, testbed=testbed, config=config, rng=rng, log=log,
                      checkpoint=checkpoint)

    # tier 0 keeps the historical SP0..SPn-1 ids; interior tiers are
    # SP-t<tier>.<index> on the extra Super-Peer hosts
    host_iter = iter(testbed.superpeer_hosts)
    by_tier: list[list[SuperPeer]] = []
    for t, size in enumerate(sizes):
        row = []
        for k in range(size):
            sp_id = f"SP{k}" if t == 0 else f"SP-t{t}.{k}"
            row.append(SuperPeer(testbed.network, next(host_iter), sp_id=sp_id,
                                 config=config, log=log, tier=t))
        by_tier.append(row)
        cluster.superpeers.extend(row)

    if len(by_tier) == 1:
        # flat: the paper's fully linked mesh
        stubs = [sp.stub for sp in cluster.superpeers]
        for sp in cluster.superpeers:
            sp.link(stubs)
    else:
        # hierarchy: contiguous fanout-sized blocks per parent; the top
        # tier (possibly several roots) is mesh-linked like the flat case
        for t in range(len(by_tier) - 1):
            for j, sp in enumerate(by_tier[t]):
                parent = by_tier[t + 1][min(j // config.superpeer_fanout,
                                            len(by_tier[t + 1]) - 1)]
                sp.set_parent(parent.stub)
                parent.adopt_child(sp.sp_id, sp.stub)
                cluster.sp_parent[sp.sp_id] = parent.sp_id
                cluster.sp_children.setdefault(parent.sp_id, []).append(sp.sp_id)
        top = by_tier[-1]
        stubs = [sp.stub for sp in top]
        for sp in top:
            sp.link(stubs)

    if config.gossip_enabled:
        # the epidemic control plane rides the leaf Super-Peers' existing
        # RMI ports; interior tiers stay out of the overlay (they hold no
        # Daemon Registers, so advertising them would misroute discovery)
        for sp in cluster.leaf_superpeers:
            _attach_superpeer_gossip(cluster, sp)

    if config.heartbeat_mode == "wheel":
        cluster.wheel = sim.timer_wheel(config.heartbeat_period)

    for host in testbed.daemon_hosts:
        cluster.boot_daemon(host)
        # the reconnection cycle: a recovered machine boots a NEW Daemon
        host.on_recover(lambda h: cluster.boot_daemon(h))

    return cluster


def _attach_superpeer_gossip(cluster: Cluster, sp: SuperPeer) -> GossipAgent:
    """Serve a gossip agent on a leaf Super-Peer's existing runtime.

    Keyed by ``host.fail_count`` so a rebooted Super-Peer's agent draws a
    fresh rng stream (same derivation discipline as Daemon incarnations)."""
    agent = GossipAgent(
        sp.runtime,
        peer_id=sp.sp_id,
        role="superpeer",
        config=cluster.config,
        rng=cluster.rng.child("gossip", sp.sp_id, sp.host.fail_count),
        seeds=cluster.superpeer_addresses[:2],
        registry=cluster.telemetry.registry,
        log=cluster.log,
    )
    sp.gossip = agent
    return agent


def _attach_spawner_gossip(cluster: Cluster, spawner: Spawner) -> GossipAgent:
    """Serve a gossip agent on a Spawner's runtime and wire it into the
    decentralized convergence detector + leadership-beat publisher."""
    agent = GossipAgent(
        spawner.runtime,
        peer_id=f"spawner:{spawner.app.app_id}",
        role="spawner",
        config=spawner.config,
        rng=spawner.rng.child("gossip"),
        seeds=cluster.superpeer_addresses[:2],
        registry=spawner.telemetry.registry,
        log=cluster.log,
    )
    spawner.attach_gossip(agent)
    return agent


def launch_application(
    cluster: Cluster,
    app: AppSpec,
    stable_store=None,
) -> Spawner:
    """Start a Spawner for ``app`` on the testbed's spawner host.

    Each application gets its own Spawner port so several can run
    concurrently (§4.2).  The Spawner's maintenance loop retries
    reservation until enough Daemons have bootstrapped, so launching at
    t=0 is safe.  Pass a :class:`~repro.p2p.stable.StableStore` to enable
    the §4.2 fault-tolerance extension (see :func:`resume_application`).
    """
    index = len(cluster.spawners)
    config = cluster.config.with_(spawner_port=cluster.config.spawner_port + index)
    spawner = Spawner(
        network=cluster.network,
        host=cluster.testbed.spawner_host,
        app=app,
        superpeer_addresses=cluster.superpeer_addresses,
        config=config,
        rng=cluster.rng.child("spawner", app.app_id),
        log=cluster.log,
        telemetry=cluster.telemetry if index == 0 else RunTelemetry(),
        stable_store=stable_store,
        failure_feed=cluster.failure_feed,
    )
    cluster.spawners.append(spawner)
    cluster.apps.append(app)
    if stable_store is not None:
        cluster.stable_store = stable_store
    if cluster.config.gossip_enabled:
        _attach_spawner_gossip(cluster, spawner)
    return spawner


def launch_standby(
    cluster: Cluster,
    app: AppSpec,
    primary: Spawner,
    stable_store=None,
) -> StandbySpawner:
    """Start the warm-standby Spawner for ``app`` on the standby host.

    The standby shadows ``primary`` by gossip leadership beats plus
    anti-entropy ``fetch_shadow`` pulls, and promotes itself (under a
    fenced, strictly higher reign) when the primary dies mid-run — see
    docs/gossip.md.  Requires a testbed built with a standby host
    (``config.standby_enabled``)."""
    host = cluster.testbed.standby_host
    if host is None:
        raise ConfigurationError(
            "the testbed has no standby host (set standby_enabled)"
        )
    standby = StandbySpawner(
        network=cluster.network,
        host=host,
        app=app,
        primary_address=primary.runtime.address,
        superpeer_addresses=cluster.superpeer_addresses,
        config=primary.config,
        rng=cluster.rng.child("standby", app.app_id),
        log=cluster.log,
        telemetry=primary.telemetry,
        stable_store=stable_store,
        failure_feed=cluster.failure_feed,
    )
    cluster.standby = standby
    return standby


def resume_application(
    cluster: Cluster,
    app: AppSpec,
    stable_store,
) -> Spawner:
    """Boot a replacement Spawner from stable storage (§4.2 future work).

    Call after the spawner host has recovered from a failure: the new
    Spawner binds the SAME port (the computing Daemons' spawner stub is
    address-based, so their heartbeats reach the replacement unchanged),
    adopts the persisted Application Register with its epochs, grants the
    survivors a heartbeat grace period, and relearns the convergence array
    from the heartbeat piggybacks.  Returns the new Spawner; drive the
    simulation against ITS ``done`` event.
    """
    snapshot = stable_store.load(app.app_id)
    if snapshot is None:
        raise ConfigurationError(f"no stable snapshot for application {app.app_id!r}")
    config = cluster.config.with_(spawner_port=snapshot.spawner_port)
    spawner = Spawner(
        network=cluster.network,
        host=cluster.testbed.spawner_host,
        app=app,
        superpeer_addresses=cluster.superpeer_addresses,
        config=config,
        rng=cluster.rng.child("spawner-resume", app.app_id,
                              snapshot.register.version),
        log=cluster.log,
        telemetry=cluster.telemetry,
        stable_store=stable_store,
        resume_from=snapshot.register,
        reign=snapshot.reign + 1,
        failure_feed=cluster.failure_feed,
    )
    cluster.spawners.append(spawner)
    if cluster.config.gossip_enabled:
        _attach_spawner_gossip(cluster, spawner)
    return spawner
