"""The Daemon: a computing peer (paper §4.2, §5).

A Daemon bootstraps into the Super-Peer network with a list of Super-Peer
addresses (the only place raw addresses are used, §5.1), heartbeats whoever
currently owns it (its Super-Peer while idle, the Spawner while computing),
runs at most one Task at a time, stores Backup objects for its neighbour
tasks, and exchanges asynchronous data messages directly with the other
computing peers through their stubs.

A Daemon lives and dies with its host: when the churn injector powers the
machine off, every Daemon process is interrupted and the mailboxes vanish;
on reconnection the cluster boots a *fresh* Daemon (new incarnation id, same
address) that re-registers from scratch — any checkpoints the old
incarnation guarded are gone, exactly the RAM-loss the paper's multi-backup
strategy is designed to survive.
"""

from __future__ import annotations

import zlib
from typing import Any

import numpy as np

from repro.checkpoint import Backup, BackupStore, FixedPolicy, choose_latest
from repro.convergence import LocalConvergenceDetector
from repro.gossip import GossipAgent
from repro.des import Simulator, TimerWheel
from repro.errors import ConfigurationError, RemoteError, TaskError
from repro.net.address import Address
from repro.net.host import BASE_FLOPS, Host
from repro.net.network import Network
from repro.p2p.config import P2PConfig
from repro.p2p.messages import ApplicationRegister
from repro.p2p.spawner import SPAWNER_OBJECT
from repro.p2p.superpeer import SUPERPEER_OBJECT
from repro.p2p.task import Task, TaskContext
from repro.obs.instruments import RunTelemetry
from repro.rmi import RemoteObject, RmiRuntime, Stub, remote
from repro.rmi.invocation import CallMessage, OnewayMessage
from repro.util.hotpath import HOTPATH
from repro.util.logging import EventLog
from repro.util.serialization import (NDARRAY_HEADER_BYTES, measured_size,
                                      memoized_payload_size)
from repro.util.rng import RngTree

__all__ = ["Daemon", "TaskRunner", "DAEMON_OBJECT"]

#: name under which every Daemon exports itself
DAEMON_OBJECT = "daemon"


class TaskRunner:
    """Drives one Task's asynchronous iteration loop on a Daemon."""

    def __init__(
        self,
        daemon: "Daemon",
        app_id: str,
        task: Task,
        task_id: int,
        num_tasks: int,
        params: dict,
        register: ApplicationRegister,
        spawner_stub: Stub,
        epoch: int,
        restart: bool,
        convergence_threshold: float,
        stability_window: int,
        telemetry: RunTelemetry | None,
    ):
        self.daemon = daemon
        self.sim = daemon.sim
        self.config = daemon.config
        self.app_id = app_id
        self.task = task
        self.task_id = task_id
        self.num_tasks = num_tasks
        self.params = params
        self.register = register
        self.spawner_stub = spawner_stub
        self.epoch = epoch
        self.restart = restart
        #: fencing reign of the Spawner we obey (a standby takeover
        #: announces a higher reign; lower-reign announcements are stale)
        self.leader_reign = 1
        self.telemetry = telemetry
        # Bind the cluster's checkpoint strategy (default: the paper's
        # fixed scheme built from the config knobs) into this runner's
        # mutable scheduling state.
        policy_spec = daemon.checkpoint
        if policy_spec is None:
            policy_spec = FixedPolicy(
                count=self.config.backup_count,
                frequency=self.config.checkpoint_frequency,
            )
        self.policy = policy_spec.bind(num_tasks, feed=daemon.failure_feed)
        self.detector = LocalConvergenceDetector(
            threshold=convergence_threshold, stability_window=stability_window
        )
        self.inbox: dict[int, Any] = {}
        self.iteration = 0
        self.halted = False
        #: rejected-component count already surfaced as traces/metrics
        self._rejected_seen = 0
        self.iterations_done = 0
        self.useless_done = 0
        #: memoized boundary-envelope size per neighbour: for an ndarray
        #: payload, the measured oneway size is a pure function of the
        #: destination stub and the array's byte count (every other field
        #: of the envelope is a constant-size int or a fixed string), so
        #: the per-iteration size walk collapses to one addition.  Keyed
        #: by neighbour; invalidated when its stub is reassigned (churn).
        self._envelope_sizes: dict[int, tuple[Stub, int]] = {}
        #: memoized computing-heartbeat envelope size (constant per Spawner
        #: stub: fixed strings plus 8-byte scalars; see :meth:`heartbeat_size`)
        self._hb_sized: tuple[Stub, int] | None = None
        #: memoized checkpoint-envelope base per guardian task: the
        #: ``store_backup`` oneway is a fixed shell around one primed
        #: Backup, so later sends charge base + the Backup's own memo.
        #: Keyed by guardian; invalidated when its stub is reassigned.
        self._backup_sizes: dict[int, tuple[Stub, int]] = {}
        #: compute-plane seat (lazily registered on the first StepPlan)
        self._plane_member = None
        self._member_op = None
        #: a plan whose solve is parked with the cohort while the iteration
        #: timeout sleeps, and the finished step once it materialized
        self._pending_plan = None
        self._finished_step = None

    # -- runtime hooks (called by the Daemon's remote methods) ----------------

    def deliver(self, src_task: int, iteration: int, payload: Any) -> None:
        """Last-write-wins mailbox: only the freshest payload per neighbour
        survives until the next iteration reads it (§4.1: peers exchange
        *local results*, not queues of history)."""
        self.inbox[src_task] = payload

    def adopt_register(self, register: ApplicationRegister) -> None:
        if register.version > self.register.version:
            self.register = register

    # -- the iteration loop ----------------------------------------------------

    def run(self):
        """Generator body of the compute process (spawned on the host)."""
        try:
            ctx = TaskContext(
                app_id=self.app_id,
                task_id=self.task_id,
                num_tasks=self.num_tasks,
                params=self.params,
            )
            self.task.setup(ctx)
            if self.restart:
                yield from self._recover()
            else:
                self.task.load_state(self.task.initial_state())
                self.iteration = 0

            host = self.daemon.host
            rate = host.speed * BASE_FLOPS
            config = self.config
            while not self.halted:
                inbox, self.inbox = self.inbox, {}
                fresh = bool(inbox)
                step = None
                plane = self.daemon.compute
                plan = (self.task.begin_step(inbox)
                        if plane is not None and HOTPATH.compute_batch
                        else None)
                if plan is None:
                    step = self.task.iterate(inbox)
                    duration = max(
                        step.flops / rate + config.iteration_overhead,
                        config.min_iteration_time,
                    )
                else:
                    member = self._plane_member
                    if member is None or self._member_op is not plan.operator:
                        if member is not None:
                            plane.discard(member)
                        member = plane.member_for(plan.operator)
                        self._plane_member = member
                        self._member_op = plan.operator
                    duration, result = plane.begin(
                        member, plan, rate=rate,
                        overhead=config.iteration_overhead,
                        floor=config.min_iteration_time,
                    )
                    if result is not None:
                        step = self.task.finish_step(plan, result)
                        duration = max(
                            step.flops / rate + config.iteration_overhead,
                            config.min_iteration_time,
                        )
                    else:
                        # the solve is parked with the cohort; the plane
                        # guarantees `duration` matches what the eager path
                        # would have charged, so the DES timeline is identical
                        self._pending_plan = plan
                yield self.sim.timeout(duration)
                if step is None:
                    # materialize the deferred solve (halt/fetch_solution
                    # may already have flushed it mid-sleep)
                    self.flush_pending()
                    step, self._finished_step = self._finished_step, None
                if self.halted:
                    break
                self.iteration += 1
                self.iterations_done += 1
                if not fresh and self.num_tasks > 1:
                    self.useless_done += 1
                if self.telemetry is not None:
                    self.telemetry.record_iteration(
                        self.task_id, fresh or self.num_tasks == 1
                    )
                self.policy.on_iteration(self.sim.now, duration)
                self._surface_rejections()
                self._send_outgoing(step.outgoing)
                self._maybe_checkpoint()
                self._report_convergence(step.local_distance)
        finally:
            self.daemon._runner_finished(self)

    def flush_pending(self) -> None:
        """Materialize a deferred inner solve (idempotent).

        Called by the runner itself on wake, and by any out-of-band
        observer of task state — ``halt`` and ``fetch_solution`` can
        arrive while the iteration timeout is still sleeping, *before* the
        parked solve has run.  Flushing applies exactly the state update
        the eager path would already have applied at the iteration's
        start, so observers see identical values either way."""
        plan = self._pending_plan
        if plan is None:
            return
        self._pending_plan = None
        result = self.daemon.compute.collect(self._plane_member)
        self._finished_step = self.task.finish_step(plan, result)

    def heartbeat_size(self) -> int | None:
        """Memoized size of the computing-heartbeat envelope.

        Constant per Spawner stub: the payload is two fixed strings plus
        scalars, and scalars charge 8 bytes whatever their value — so the
        per-beat size walk collapses to a tuple load."""
        if not HOTPATH.size_memo:
            return None
        sized = self._hb_sized
        stub = self.spawner_stub
        if sized is None or sized[0] is not stub:
            probe = OnewayMessage(
                stub.object_name, "heartbeat_task",
                (self.app_id, self.task_id, self.epoch,
                 self.daemon.daemon_id, self.detector.stable,
                 self.register.version),
                {},
            )
            sized = (stub, measured_size(probe))
            self._hb_sized = sized
        return sized[1]

    # -- recovery (§5.4, Fig. 6) --------------------------------------------------

    def _recover(self):
        """Reload the newest surviving Backup, or restart from scratch."""
        runtime = self.daemon.runtime
        calls = {}
        for peer_task in self.policy.backup_peers(self.task_id):
            stub = self.register.stub_of(peer_task)
            if stub is None:
                continue
            calls[peer_task] = runtime.call(
                stub, "backup_iteration", self.app_id, self.task_id,
                timeout=self.config.call_timeout,
            )
        offers = yield from self.daemon._gather(calls)
        best_peer = choose_latest(offers)
        backup = None
        if best_peer is not None:
            stub = self.register.stub_of(best_peer)
            if stub is not None:
                try:
                    backup = yield runtime.call(
                        stub, "load_backup", self.app_id, self.task_id,
                        timeout=self.config.call_timeout,
                    )
                except RemoteError:
                    backup = None
        if backup is not None and self.params.get("reject_corruption"):
            # a Backup of a corrupted iterate would re-seed the poison on
            # every recovery: screen it like any other incoming data
            if not self.task.state_plausible(backup.state):
                self.daemon._trace("checkpoint_rejected", task=self.task_id,
                                   iteration=backup.iteration,
                                   guardian=best_peer)
                self.daemon._log("checkpoint_rejected", task=self.task_id,
                                 iteration=backup.iteration)
                if self.telemetry is not None:
                    self.telemetry.checkpoints_rejected += 1
                backup = None
        if backup is not None:
            self.task.load_state(backup.restore())
            self.iteration = backup.iteration
            from_scratch = False
        else:
            self.task.load_state(self.task.initial_state())
            self.iteration = 0
            from_scratch = True
        self.policy.on_rollback(self.iteration)
        self.daemon._log(
            "task_recovered",
            task=self.task_id,
            iteration=self.iteration,
            from_scratch=from_scratch,
        )
        self.daemon._trace("recovery", task=self.task_id,
                           iteration=self.iteration, from_scratch=from_scratch)
        if self.telemetry is not None:
            self.telemetry.record_recovery(
                self.sim.now, self.task_id, self.iteration, from_scratch
            )

    # -- per-iteration duties --------------------------------------------------------

    def _send_outgoing(self, outgoing: dict[int, Any]) -> None:
        runtime = self.daemon.runtime
        sizes = self._envelope_sizes
        for dst_task, payload in outgoing.items():
            if dst_task == self.task_id:
                continue
            stub = self.register.stub_of(dst_task)
            if stub is None:
                continue  # neighbour currently unassigned: message lost
            # Boundary-exchange envelopes differ only in their ndarray
            # payload and three small ints; measure the envelope once per
            # neighbour and derive later sizes as base + nbytes + 96 — the
            # exact value ``measured_size`` charges an ndarray.  The cached
            # base is tied to the stub's identity so a churn-driven
            # reassignment re-measures.
            size = None
            if HOTPATH.size_memo and payload.__class__ is np.ndarray:
                cached = sizes.get(dst_task)
                if cached is not None and cached[0] is stub:
                    size = (cached[1] + int(payload.nbytes)
                            + NDARRAY_HEADER_BYTES)
                else:
                    probe = OnewayMessage(
                        stub.object_name, "receive_data",
                        (self.app_id, dst_task, self.task_id,
                         self.iteration, payload),
                        {},
                    )
                    size = measured_size(probe)
                    sizes[dst_task] = (stub, size - int(payload.nbytes)
                                       - NDARRAY_HEADER_BYTES)
            runtime.oneway(
                stub, "receive_data",
                self.app_id, dst_task, self.task_id, self.iteration, payload,
                size=size,
            )
            if self.telemetry is not None:
                self.telemetry.data_messages_sent += 1

    def _surface_rejections(self) -> None:
        """Emit trace/metric deltas for boundary components the task's
        corruption filter discarded during this iteration's inbox fold."""
        rejected = self.task.components_rejected
        if rejected == self._rejected_seen:
            return
        delta = rejected - self._rejected_seen
        self._rejected_seen = rejected
        self.daemon._trace("component_rejected", task=self.task_id,
                           iteration=self.iteration, count=delta)
        if self.telemetry is not None:
            self.telemetry.components_rejected += delta

    def _maybe_checkpoint(self) -> None:
        policy = self.policy
        if not policy.checkpoint_due(self.iteration, self.sim.now):
            return
        targets = policy.begin_save(self.task_id, self.iteration)
        if not targets:
            return
        backup = None
        for target_task in targets:
            stub = self.register.stub_of(target_task)
            if stub is None:
                continue  # guardian unassigned right now: replica skipped
            if backup is None:
                backup = Backup(
                    task_id=self.task_id,
                    iteration=self.iteration,
                    state=self.task.dump_state(),
                    app_id=self.app_id,
                    created_at=self.sim.now,
                )
            # The envelope around a Backup is a fixed shell (two
            # method/object strings, the args tuple, an empty kwargs dict);
            # the Backup itself is primed at construction.  Measure the
            # shell once per guardian stub and derive later sizes as base +
            # the Backup's own memo — byte-identical to the full walk
            # ``network.send`` would run.
            size = None
            if HOTPATH.size_memo:
                bsize = memoized_payload_size(backup)
                if bsize is not None:
                    cached = self._backup_sizes.get(target_task)
                    if cached is not None and cached[0] is stub:
                        size = cached[1] + bsize
                    else:
                        probe = OnewayMessage(
                            stub.object_name, "store_backup", (backup,), {},
                        )
                        size = measured_size(probe)
                        self._backup_sizes[target_task] = (stub, size - bsize)
            self.daemon.runtime.oneway(stub, "store_backup", backup, size=size)
            policy.on_checkpoint(backup.nbytes)
            self.daemon._trace("checkpoint_store", task=self.task_id,
                               iteration=self.iteration, guardian=target_task)
            if self.telemetry is not None:
                self.telemetry.checkpoints_sent += 1
                self.telemetry.checkpoint_bytes += backup.nbytes

    def _report_convergence(self, distance: float) -> None:
        flipped = self.detector.update(distance)
        if not flipped:
            return
        self.daemon._trace("stability_flip", task=self.task_id,
                           stable=self.detector.stable)
        self.daemon.runtime.oneway(
            self.spawner_stub, "set_state",
            self.app_id, self.task_id, self.epoch, self.detector.stable,
        )
        if self.daemon.gossip is not None and self.config.gossip_convergence:
            # the epidemic path: the same bit as a versioned rumor, merged
            # by (epoch, flip count) so stale incarnations lose (§5.5
            # decentralized)
            self.daemon.gossip.set_rumor(
                ("stab", self.app_id, self.task_id),
                (self.epoch, self.detector.flips),
                self.detector.stable,
            )
        if self.telemetry is not None:
            self.telemetry.convergence_messages += 1


class Daemon(RemoteObject):
    """One computing peer."""

    def __init__(
        self,
        network: Network,
        host: Host,
        daemon_id: str,
        superpeer_addresses: list[Address],
        config: P2PConfig,
        rng: RngTree,
        log: EventLog | None = None,
        telemetry: RunTelemetry | None = None,
        wheel: TimerWheel | None = None,
        compute=None,
        checkpoint=None,
        failure_feed=None,
    ):
        if not superpeer_addresses:
            raise ConfigurationError("a Daemon needs at least one Super-Peer address")
        self.sim: Simulator = network.sim
        self.network = network
        self.host = host
        self.daemon_id = daemon_id
        self.superpeer_addresses = list(superpeer_addresses)
        self.config = config
        #: cluster-wide :class:`repro.checkpoint.CheckpointPolicy` (or None
        #: for the config-knob fixed default) bound per task runner
        self.checkpoint = checkpoint
        #: shared :class:`repro.checkpoint.FailureFeed` adaptive policies read
        self.failure_feed = failure_feed
        #: cluster-wide :class:`repro.compute.ComputePlane` (or None): the
        #: wall-clock batching fabric task runners route inner solves through
        self.compute = compute
        self.rng = rng
        self.log = log
        self.telemetry = telemetry
        self.backup_store = BackupStore(
            max_bytes=host.ram_mb * 1024 * 1024 * config.backup_ram_fraction
        )
        #: final solution fragments of halted apps (kept for collection)
        self.final_fragments: dict[str, Any] = {}
        self.runner: TaskRunner | None = None
        self._runner_proc = None
        self._resyncing = False
        self.sp_stub: Stub | None = None
        self.registered = False
        self._retry_attempt = 0
        self.runtime = RmiRuntime(
            network, host, config.daemon_port, name=daemon_id, log=log,
            call_timeout=config.call_timeout,
        )
        self.stub = self.runtime.serve(self, DAEMON_OBJECT)
        self.gossip: GossipAgent | None = None
        if config.gossip_enabled:
            self.gossip = GossipAgent(
                runtime=self.runtime,
                peer_id=daemon_id,
                role="daemon",
                config=config,
                rng=rng.child("gossip"),
                seeds=list(superpeer_addresses),
                registry=telemetry.registry if telemetry is not None else None,
                log=log,
            )
            # epidemic takeover path: leadership beats under a higher reign
            # re-point a computing runner even when the promoted standby's
            # direct announcement missed it (stale shadow)
            self.gossip.subscribe(("spawner",), self._on_spawner_rumor)
        #: memoized reaffirm-call envelope size (constant per Super-Peer:
        #: the ``heartbeat`` call carries only this Daemon's fixed id, and
        #: an int ``call_id`` charges 8 bytes whatever its value)
        self._reaffirm_sized: tuple[Stub, int] | None = None
        self.wheel = wheel if config.heartbeat_mode == "wheel" else None
        if self.wheel is not None:
            # Swarm mode (docs/scaling.md): no per-Daemon life process.
            # All idle/computing heartbeats ride the shared timer wheel;
            # the reaffirm phase is hash-staggered so the call-based beats
            # don't all land on the same slot.
            self._bootstrapping = False
            self._beats = zlib.crc32(daemon_id.encode()) % config.wheel_reaffirm_every
            #: cached constant heartbeat envelope (rebuilt when the owning
            #: Super-Peer changes): the idle beat is the hottest message in
            #: a swarm run, so it is prepared once and re-sent zero-alloc
            self._hb_prepared = None
            self.wheel.every(self._tick)
        else:
            host.spawn(self._life(), label=f"{daemon_id}:life")

    # -- bootstrap + heartbeats (§5.1, §5.3) ----------------------------------

    def _life(self):
        """Forever: bootstrap when unregistered and idle; heartbeat the
        current owner (Super-Peer while idle, Spawner while computing)."""
        while True:
            if self.runner is not None:
                # the heartbeat piggybacks the current local-stability bit
                # and our register version: set_state flips and register
                # broadcasts are oneway and may be lost, so this periodic
                # refresh keeps the Spawner's array eventually consistent
                # and lets it repair our register when a broadcast was
                # dropped (§5.3 + §5.5)
                self.runtime.oneway(
                    self.runner.spawner_stub, "heartbeat_task",
                    self.runner.app_id, self.runner.task_id,
                    self.runner.epoch, self.daemon_id,
                    self.runner.detector.stable,
                    self.runner.register.version,
                    size=self.runner.heartbeat_size(),
                )
                yield self.sim.timeout(self.config.heartbeat_period)
                continue
            if not self.registered:
                yield from self._bootstrap()
                continue
            try:
                known = yield self.runtime.call(
                    self.sp_stub, "heartbeat", self.daemon_id,
                    timeout=min(self.config.call_timeout, self.config.heartbeat_period),
                )
            except RemoteError:
                # Super-Peer down: locate another one (§5.3)
                self._log("daemon_superpeer_lost", superpeer=str(self.sp_stub))
                self.registered = False
                self.sp_stub = None
                continue
            if not known and self.runner is None:
                # evicted (or the Super-Peer rebooted): re-register
                self.registered = False
            yield self.sim.timeout(self.config.heartbeat_period)

    def _bootstrap(self):
        """Try Super-Peer addresses in random order until one accepts us.

        With gossip discovery on, the candidate set is the short seed
        contact list *plus* every Super-Peer the gossip overlay has
        surfaced since — §5.1's hardcoded list shrinks to one well-known
        entry point.  A fully failed sweep backs off exponentially with
        deterministic jitter (seeded per attempt), so a mass relocation
        after a Super-Peer outage does not hammer the survivors in
        lockstep."""
        addresses = self._superpeer_candidates()
        addresses = self.rng.child("bootstrap", self.host.fail_count).shuffled(
            addresses
        )
        for addr in addresses:
            if self.runner is not None:
                return  # got a task while bootstrapping: stop
            candidate = Stub(SUPERPEER_OBJECT, addr)
            try:
                ok = yield self.runtime.call(
                    candidate, "register_daemon", self.daemon_id, self.stub,
                    timeout=self.config.call_timeout,
                )
            except RemoteError:
                if self.gossip is not None:
                    self.gossip.store.mark_failed(addr)
                continue
            if self.runner is not None:
                # assigned a task while this registration was in flight:
                # immediately take ourselves back out of the idle pool
                if ok:
                    self.runtime.oneway(candidate, "unregister_daemon", self.daemon_id)
                return
            if ok:
                self.sp_stub = candidate
                self.registered = True
                self._retry_attempt = 0
                self._log("daemon_registered", superpeer=str(addr))
                return
        yield self.sim.timeout(self._retry_backoff())

    def _superpeer_candidates(self) -> list[Address]:
        """Seed contacts plus gossip-learned Super-Peer addresses."""
        if self.gossip is None or not self.config.gossip_discovery:
            return list(self.superpeer_addresses)
        merged = list(self.superpeer_addresses)
        for addr in self.gossip.known_addresses("superpeer"):
            if addr not in merged:
                merged.append(addr)
        return merged

    def _retry_backoff(self) -> float:
        """Bounded exponential backoff + deterministic jitter for one fully
        failed registration sweep."""
        attempt = self._retry_attempt
        self._retry_attempt += 1
        config = self.config
        delay = min(
            config.bootstrap_retry_delay * config.bootstrap_backoff_factor ** attempt,
            config.bootstrap_retry_max,
        )
        if config.bootstrap_retry_jitter > 0:
            draw = self.rng.child("backoff", self.host.fail_count, attempt).uniform()
            delay *= 1.0 + config.bootstrap_retry_jitter * draw
        self._trace("register_retry", attempt=attempt, delay=delay)
        self._log("daemon_register_retry", attempt=attempt, delay=delay)
        return delay

    # -- wheel-mode heartbeating (docs/scaling.md) -----------------------------

    def _tick(self):
        """One timer-wheel beat: the wheel-mode replacement for
        :meth:`_life`'s loop body.  Returning ``False`` deregisters this
        Daemon from the wheel (its host died; a fresh incarnation re-joins
        through the cluster reboot hook)."""
        if not self.runtime.alive:
            return False
        if self.runner is not None:
            self.runtime.oneway(
                self.runner.spawner_stub, "heartbeat_task",
                self.runner.app_id, self.runner.task_id,
                self.runner.epoch, self.daemon_id,
                self.runner.detector.stable,
                self.runner.register.version,
                size=self.runner.heartbeat_size(),
            )
            return None
        if not self.registered:
            self._ensure_bootstrap()
            return None
        self._beats += 1
        if self._beats % self.config.wheel_reaffirm_every == 0:
            # the call-based reaffirm: oneways to a dead Super-Peer vanish
            # silently, so every Nth beat must actually await an answer
            self.host.spawn(self._reaffirm(self.sp_stub),
                            label=f"{self.daemon_id}:reaffirm")
        else:
            prepared = self._hb_prepared
            if prepared is None or prepared.stub is not self.sp_stub:
                prepared = self.runtime.prepare_oneway(
                    self.sp_stub, "heartbeat_oneway", self.daemon_id, self.stub
                )
                self._hb_prepared = prepared
            self.runtime.send_prepared(prepared)
        return None

    def _ensure_bootstrap(self) -> None:
        """Spawn one bootstrap attempt if none is in flight (wheel ticks
        are plain callbacks and cannot yield on RMI calls themselves)."""
        if self._bootstrapping:
            return
        self._bootstrapping = True
        self.host.spawn(self._bootstrap_once(), label=f"{self.daemon_id}:bootstrap")

    def _bootstrap_once(self):
        try:
            yield from self._bootstrap()
        finally:
            self._bootstrapping = False

    def _reaffirm(self, sp_stub: Stub):
        size = None
        if HOTPATH.size_memo:
            sized = self._reaffirm_sized
            if sized is None or sized[0] is not sp_stub:
                probe = CallMessage(
                    sp_stub.object_name, "heartbeat", (self.daemon_id,), {},
                    reply_to=self.runtime.address, call_id=0,
                )
                sized = (sp_stub, measured_size(probe))
                self._reaffirm_sized = sized
            size = sized[1]
        try:
            known = yield self.runtime.call(
                sp_stub, "heartbeat", self.daemon_id,
                timeout=min(self.config.call_timeout, self.config.heartbeat_period),
                size=size,
            )
        except RemoteError:
            if self.sp_stub == sp_stub:
                self._log("daemon_superpeer_lost", superpeer=str(sp_stub))
                self.registered = False
                self.sp_stub = None
            return
        if not known and self.runner is None and self.sp_stub == sp_stub:
            self.registered = False  # evicted: re-register next tick

    # -- remote interface ---------------------------------------------------------

    @remote
    def notify_unknown(self, sp_id: str) -> None:
        """Nack for a wheel-mode oneway heartbeat: the Super-Peer we just
        beat does not know us (eviction, or a rebooted replacement with an
        empty Register) — re-bootstrap on the next tick."""
        if self.runner is None:
            self._log("daemon_unknown_nack", superpeer=sp_id)
            self.registered = False

    @remote
    def assign_task(
        self,
        app_id: str,
        task_factory,
        task_id: int,
        num_tasks: int,
        params: dict,
        register: ApplicationRegister,
        spawner_stub: Stub,
        epoch: int,
        restart: bool,
        convergence_threshold: float,
        stability_window: int,
    ) -> bool:
        """Start computing a task (§5.2).  Raises TaskError when busy —
        "a Daemon can only run a single Task at a given time" (§4.2)."""
        if self.runner is not None:
            raise TaskError(f"{self.daemon_id} is already running a task")
        task = task_factory()
        if not isinstance(task, Task):
            raise TaskError("task_factory must produce a repro.p2p.Task")
        if self.registered and self.sp_stub is not None:
            # The reservation already removed us from the reserving
            # Super-Peer, but a racing bootstrap/heartbeat may have
            # re-registered us elsewhere in the meantime: leave explicitly.
            self.runtime.oneway(self.sp_stub, "unregister_daemon", self.daemon_id)
        self.registered = False  # no longer owned by a Super-Peer
        self.sp_stub = None
        self.runner = TaskRunner(
            daemon=self,
            app_id=app_id,
            task=task,
            task_id=task_id,
            num_tasks=num_tasks,
            params=params,
            register=register,
            spawner_stub=spawner_stub,
            epoch=epoch,
            restart=restart,
            convergence_threshold=convergence_threshold,
            stability_window=stability_window,
            telemetry=self.telemetry,
        )
        self._runner_proc = self.host.spawn(
            self.runner.run(), label=f"{self.daemon_id}:task{task_id}"
        )
        self._log("task_assigned", app=app_id, task=task_id, epoch=epoch,
                  restart=restart)
        self._trace("assign", app=app_id, task=task_id, epoch=epoch,
                    restart=restart)
        return True

    @remote
    def adopt_spawner(self, app_id: str, reign: int, spawner_stub: Stub) -> bool:
        """A takeover announcement: re-point heartbeats and stability
        reports at a new Spawner incarnation.

        Reign fencing keeps exactly one leader authoritative: a lower (or
        equal) reign is a stale incumbent — e.g. the original primary
        resurrecting after a standby already took over — and is refused,
        so its announcements can never steal the computation back."""
        runner = self.runner
        if runner is None or runner.app_id != app_id:
            return False
        if reign <= runner.leader_reign:
            self._trace("adopt_refused", reign=reign,
                        current=runner.leader_reign)
            return False
        runner.leader_reign = reign
        runner.spawner_stub = spawner_stub
        self._log("daemon_adopted_spawner", reign=reign,
                  spawner=str(spawner_stub.address))
        self._trace("adopt_spawner", reign=reign)
        # reconcile with the new leader's register (idempotent when its
        # shadow already knew us; reclaims our slot when it did not)
        self.host.spawn(self._reattach(runner, spawner_stub),
                        label=f"{self.daemon_id}:reattach")
        return True

    def _on_spawner_rumor(self, key, version, value) -> None:
        """A ``("spawner", app)`` leadership beat merged by our gossip agent.

        The beat carries the leader's address, so a ghost runner — one whose
        Spawner died and whose slot the standby's shadow never recorded —
        still learns the new leader epidemically and re-attaches, instead of
        heartbeating a dead address forever."""
        runner = self.runner
        if runner is None or len(key) < 2 or key[1] != runner.app_id:
            return
        reign = int(version[0])
        if reign <= runner.leader_reign:
            return
        address = value.get("address") if isinstance(value, dict) else None
        if address is None:
            return
        stub = Stub(SPAWNER_OBJECT, address)
        runner.leader_reign = reign
        runner.spawner_stub = stub
        self._log("daemon_adopted_spawner", reign=reign, spawner=str(address),
                  via="gossip")
        self._trace("adopt_spawner", reign=reign, via="gossip")
        self.host.spawn(self._reattach(runner, stub),
                        label=f"{self.daemon_id}:reattach")

    def _reattach(self, runner: TaskRunner, spawner_stub: Stub):
        """Reconcile this runner's slot with a newly adopted leader."""
        try:
            accepted = yield self.runtime.call(
                spawner_stub, "reattach_task", runner.app_id, runner.task_id,
                runner.epoch, self.daemon_id, self.stub,
                timeout=self.config.call_timeout,
            )
        except RemoteError:
            return  # leader unreachable: the next beat will retry adoption
        if self.runner is not runner or runner.halted:
            return
        if not accepted:
            # the leader's register outranks this incarnation (a replacement
            # already owns the slot): stop computing and rejoin the idle
            # pool instead of burning the host on orphaned iterations
            self._log("daemon_reattach_refused", task=runner.task_id,
                      epoch=runner.epoch)
            self._trace("reattach_refused", task=runner.task_id,
                        epoch=runner.epoch)
            runner.halted = True
        else:
            self._trace("reattach_ok", task=runner.task_id,
                        epoch=runner.epoch)

    @remote
    def update_register(self, register: ApplicationRegister) -> bool:
        """Adopt a newer Application Register broadcast by the Spawner
        ("the recipient of all the messages ... is automatically updated",
        §5.3)."""
        if self.runner is None:
            return False
        if register.app_id != self.runner.app_id:
            return False
        self.runner.adopt_register(register)
        return True

    @remote
    def update_register_delta(self, delta) -> bool:
        """Apply an incremental register update (§8 broadcast improvement).

        Applies cleanly only when we are exactly at the delta's base
        version; on a gap (a missed update) we pull a full snapshot from
        the Spawner instead of guessing."""
        runner = self.runner
        if runner is None or delta.app_id != runner.app_id:
            return False
        current = runner.register.version
        if current >= delta.to_version:
            return True  # already at (or past) this update
        if current == delta.from_version:
            by_id = {slot.task_id: slot for slot in delta.changes}
            for i, slot in enumerate(runner.register.slots):
                if slot.task_id in by_id:
                    runner.register.slots[i] = by_id[slot.task_id]
            runner.register.version = delta.to_version
            return True
        # version gap: resync with a full snapshot
        if not self._resyncing:
            self._resyncing = True
            self.host.spawn(self._resync_register(runner),
                            label=f"{self.daemon_id}:resync")
        return False

    def _resync_register(self, runner: TaskRunner):
        try:
            snapshot = yield self.runtime.call(
                runner.spawner_stub, "fetch_register", runner.app_id,
                timeout=self.config.call_timeout,
            )
        except RemoteError:
            snapshot = None
        finally:
            self._resyncing = False
        if snapshot is not None and self.runner is runner:
            runner.adopt_register(snapshot)
            self._log("daemon_register_resynced", version=snapshot.version)

    @remote
    def receive_data(
        self, app_id: str, dst_task: int, src_task: int, iteration: int, payload: Any
    ) -> None:
        """Asynchronous dependency data from a neighbour task."""
        runner = self.runner
        if runner is None or runner.app_id != app_id or runner.task_id != dst_task:
            return  # stale message for a task we no longer run: lost
        runner.deliver(src_task, iteration, payload)

    @remote
    def store_backup(self, backup: Backup) -> bool:
        """Guard a neighbour's checkpoint (§5.4)."""
        saved = self.backup_store.save(backup)
        self._trace("checkpoint_stored", task=backup.task_id,
                    iteration=backup.iteration, saved=saved)
        return saved

    @remote
    def backup_iteration(self, app_id: str, task_id: int) -> int | None:
        return self.backup_store.iteration_of(app_id, task_id)

    @remote
    def load_backup(self, app_id: str, task_id: int) -> Backup | None:
        backup = self.backup_store.load(app_id, task_id)
        self._trace("checkpoint_load", task=task_id, found=backup is not None)
        return backup

    @remote
    def halt(self, app_id: str) -> bool:
        """Stop computing (global convergence reached, §5.5)."""
        if self.runner is not None and self.runner.app_id == app_id:
            # a deferred inner solve must land before the state is read
            self.runner.flush_pending()
            # keep the converged fragment so it can still be collected
            # after the runner has wound down
            self.final_fragments[app_id] = self.runner.task.solution_fragment()
            if self.telemetry is not None:
                # the converged frontier: iterations *kept* for this task —
                # anything the app re-executed beyond the per-task frontier
                # sum is wasted work (re-iterated after recoveries)
                self.telemetry.record_frontier(
                    self.runner.task_id, self.runner.iteration
                )
            self.runner.halted = True
        self.backup_store.drop_app(app_id)
        return True

    @remote
    def fetch_solution(self, app_id: str) -> Any:
        """The owned fragment of the solution (collected by the harness)."""
        if self.runner is not None and self.runner.app_id == app_id:
            self.runner.flush_pending()
            return self.runner.task.solution_fragment()
        return self.final_fragments.get(app_id)

    @remote
    def ping(self) -> bool:
        return True

    # -- internals ---------------------------------------------------------------

    def _runner_finished(self, runner: TaskRunner) -> None:
        if runner._plane_member is not None and self.compute is not None:
            # a crash mid-defer abandons the ticket: the result was lost
            # with the host either way, and cohort siblings are unaffected
            self.compute.discard(runner._plane_member)
            runner._plane_member = None
            runner._member_op = None
        if self.runner is runner:
            self.runner = None
            self._runner_proc = None
            # back to the idle pool: _life will re-bootstrap on its next turn

    def _gather(self, calls: dict) -> Any:
        """Await a dict of call events, mapping failures to None."""
        results: dict = {}

        def waiter(key, ev):
            try:
                value = yield ev
            except Exception:
                value = None
            results[key] = value

        procs = [
            self.sim.process(waiter(k, ev), label=f"{self.daemon_id}:gather")
            for k, ev in calls.items()
        ]
        if procs:
            yield self.sim.all_of(procs)
        return results

    def _log(self, kind: str, **detail) -> None:
        if self.log is not None:
            self.log.emit(self.sim.now, self.daemon_id, kind, **detail)

    def _trace(self, kind: str, **attrs) -> None:
        tr = self.sim.tracer
        if tr.enabled:
            tr.emit(self.sim.now, "p2p", self.daemon_id, kind, **attrs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "computing" if self.runner is not None else (
            "idle" if self.registered else "bootstrapping"
        )
        return f"<Daemon {self.daemon_id} {state}>"
