"""Deprecated home of the run-telemetry instrument.

The instrument moved to :mod:`repro.obs.instruments` as
:class:`~repro.obs.instruments.RunTelemetry` — it was always an
observability concern, not a protocol participant, and the ``repro.obs``
layer is where the registry it fronts lives.  This module remains as a
compatibility shim: :class:`Telemetry` still works but emits a
``DeprecationWarning`` on construction (the test suite escalates repro's
own deprecations to errors, so nothing inside this repo may use it).
"""

from __future__ import annotations

import warnings

from repro.obs.instruments import RecoveryRecord, RunTelemetry

__all__ = ["Telemetry", "RecoveryRecord"]


class Telemetry(RunTelemetry):
    """Deprecated alias of :class:`repro.obs.instruments.RunTelemetry`."""

    def __init__(self, registry=None):
        warnings.warn(
            "repro.p2p.telemetry.Telemetry is deprecated; use "
            "repro.obs.instruments.RunTelemetry",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(registry)
