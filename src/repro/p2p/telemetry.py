"""In-process measurement of a running application.

The :class:`Telemetry` object is an *instrument*, not a protocol
participant: entities write counters into it directly (outside the simulated
network), the experiment harness reads them afterwards.  Nothing in the
runtime's behaviour depends on it.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

__all__ = ["Telemetry", "RecoveryRecord"]


@dataclass(frozen=True)
class RecoveryRecord:
    """One task restart after a failure."""

    time: float
    task_id: int
    resumed_iteration: int
    from_scratch: bool


@dataclass
class Telemetry:
    """Aggregated counters for one application run."""

    #: completed iterations per task
    iterations: dict[int, int] = field(default_factory=lambda: defaultdict(int))
    #: iterations performed without any fresh neighbour data (paper §7:
    #: "the next one will not make the computation progress")
    useless_iterations: dict[int, int] = field(default_factory=lambda: defaultdict(int))
    data_messages_sent: int = 0
    checkpoints_sent: int = 0
    recoveries: list[RecoveryRecord] = field(default_factory=list)
    convergence_messages: int = 0
    #: simulated time at which the Spawner declared global convergence
    converged_at: float | None = None
    #: simulated time at which the application was launched
    launched_at: float = 0.0

    # -- writers -------------------------------------------------------------

    def record_iteration(self, task_id: int, fresh: bool) -> None:
        self.iterations[task_id] += 1
        if not fresh:
            self.useless_iterations[task_id] += 1

    def record_recovery(
        self, time: float, task_id: int, resumed_iteration: int, from_scratch: bool
    ) -> None:
        self.recoveries.append(
            RecoveryRecord(time, task_id, resumed_iteration, from_scratch)
        )

    # -- readers ----------------------------------------------------------------

    @property
    def total_iterations(self) -> int:
        return sum(self.iterations.values())

    @property
    def total_useless(self) -> int:
        return sum(self.useless_iterations.values())

    @property
    def useless_fraction(self) -> float:
        total = self.total_iterations
        return self.total_useless / total if total else 0.0

    @property
    def max_task_iterations(self) -> int:
        return max(self.iterations.values(), default=0)

    @property
    def mean_task_iterations(self) -> float:
        return self.total_iterations / len(self.iterations) if self.iterations else 0.0

    @property
    def restarts_from_zero(self) -> int:
        return sum(r.from_scratch for r in self.recoveries)

    @property
    def execution_time(self) -> float | None:
        if self.converged_at is None:
            return None
        return self.converged_at - self.launched_at
