"""The warm-standby Spawner — epidemic failover for the one stable entity.

Paper §4.2 leaves Spawner fault tolerance as future work; PR 7's
:mod:`repro.p2p.stable` answered it with *cold* recovery (resume from
disk after the machine returns).  This module adds the *warm* path: a
standby process on a second machine that

1. **shadows** the primary's recovery state — Application Register,
   heartbeat-ledger ages and reign — by anti-entropy pulls
   (:meth:`~repro.p2p.spawner.Spawner.fetch_shadow`) whenever the
   leadership beats it hears over gossip report a register version ahead
   of its shadow;
2. **detects** primary death: every maintenance round the primary
   publishes a ``("spawner", app)`` rumor versioned ``(reign, beat)``;
   beat silence beyond ``standby_takeover_timeout`` arms a direct ping
   probe, and only a probe failure (not mere gossip lag) declares death;
3. **takes over** mid-run: it boots a real :class:`Spawner` from the
   shadow register under ``reign + 1``, announces the takeover to every
   computing peer (reliable oneways, refused by any peer that already
   adopted a higher reign — the exactly-one-leader guarantee), and the
   application converges without restarting.

The failover state machine is documented in docs/gossip.md; the
``spawner-down`` and ``standby-flap`` fault scenarios exercise it.
"""

from __future__ import annotations

from repro.des.events import Event
from repro.errors import RemoteError
from repro.gossip import GossipAgent
from repro.net.address import Address
from repro.net.host import Host
from repro.net.network import Network
from repro.obs.instruments import RunTelemetry
from repro.p2p.config import P2PConfig
from repro.p2p.messages import AppSpec
from repro.p2p.spawner import SPAWNER_OBJECT, Spawner
from repro.rmi import RemoteObject, RmiRuntime, Stub, remote
from repro.util.logging import EventLog
from repro.util.rng import RngTree

__all__ = ["STANDBY_OBJECT", "StandbySpawner"]

STANDBY_OBJECT = "standby"


class StandbySpawner(RemoteObject):
    """Shadows one application's primary Spawner; promotes on its death."""

    def __init__(
        self,
        network: Network,
        host: Host,
        app: AppSpec,
        primary_address: Address,
        superpeer_addresses: list[Address],
        config: P2PConfig,
        rng: RngTree,
        log: EventLog | None = None,
        telemetry: RunTelemetry | None = None,
        stable_store=None,
        failure_feed=None,
    ):
        self.sim = network.sim
        self.network = network
        self.host = host
        self.app = app
        self.primary_address = primary_address
        self.superpeer_addresses = list(superpeer_addresses)
        self.config = config
        self.rng = rng
        self.log = log
        self.telemetry = telemetry
        self.stable_store = stable_store
        self.failure_feed = failure_feed

        self.runtime = RmiRuntime(
            network, host, config.standby_port,
            name=f"standby:{app.app_id}", log=log,
            call_timeout=config.call_timeout,
        )
        self.stub = self.runtime.serve(self, STANDBY_OBJECT)
        self.gossip = GossipAgent(
            self.runtime,
            peer_id=f"standby:{app.app_id}",
            role="standby",
            config=config,
            rng=rng.child("gossip"),
            seeds=[primary_address] + self.superpeer_addresses[:2],
            registry=telemetry.registry if telemetry is not None else None,
            log=log,
        )
        self.gossip.subscribe(("spawner", app.app_id), self._on_leader_beat)

        #: shadow of the primary's recovery state (anti-entropy pulls)
        self.shadow_register = None
        self.shadow_ages: dict[int, float] = {}
        self.shadow_reign = 1
        self.shadow_version = -1
        #: highest-versioned register the leadership beats advertised
        self.wanted_version = 0
        self._last_beat_version: tuple[int, int] = (0, 0)
        self._last_beat_at = self.sim.now
        self._last_pull_at = -float("inf")
        self.shadow_pulls = 0

        self.promoted = False
        self.takeover_at: float | None = None
        #: the promoted Spawner (None until takeover)
        self.spawner: Spawner | None = None
        #: triggers when the PROMOTED spawner's application converges; the
        #: driver waits on ``primary.done | standby.done | horizon``
        self.done: Event = self.sim.event(name=f"{app.app_id}:standby-done")

        host.spawn(self._watch(), label=f"standby:{app.app_id}")

    # -- remote interface -------------------------------------------------------

    @remote
    def ping(self) -> bool:
        return True

    @remote
    def leader_info(self, app_id: str):
        """(reign, promoted) — lets peers and tests query who leads."""
        if app_id != self.app.app_id:
            return None
        return (self.active_reign, self.promoted)

    # -- shadowing --------------------------------------------------------------

    def _on_leader_beat(self, key, version, value) -> None:
        """A ``("spawner", app)`` rumor merged: the leadership beat.

        ``version = (reign, beat)`` — tuple order makes a new reign's first
        beat outrank any count of the old reign's."""
        version = tuple(version)
        if version <= self._last_beat_version:
            return
        self._last_beat_version = version
        self._last_beat_at = self.sim.now
        self.wanted_version = max(self.wanted_version,
                                  int(value.get("version", 0)))
        # eager anti-entropy: a beat advertising a register ahead of the
        # shadow triggers a pull NOW (rate-limited) instead of waiting for
        # the next watch tick — the window in which the primary can die
        # with a stale shadow shrinks to one gossip hop
        if (not self.promoted
                and self.shadow_version < self.wanted_version
                and self.sim.now - self._last_pull_at
                >= self.config.standby_sync_period):
            self._last_pull_at = self.sim.now
            self.host.spawn(self._pull_once(),
                            label=f"standby:{self.app.app_id}:pull")

    def _watch(self):
        """The failover state machine: SHADOWING -> PROBING -> PROMOTED.

        Ticks at the sync cadence (not the slower monitor period): the
        first anti-entropy pull must land BEFORE the primary can die, or
        the takeover degenerates into a cold restart from an empty
        register."""
        tick = min(self.config.standby_sync_period, self.config.monitor_period)
        while self.runtime.alive and not self.promoted:
            yield self.sim.timeout(tick)
            if self.promoted or self.done.triggered:
                return
            if (self.shadow_version < self.wanted_version
                    and self.sim.now - self._last_pull_at
                    >= self.config.standby_sync_period):
                yield from self._pull_shadow()
            if (self.sim.now - self._last_beat_at
                    > self.config.standby_takeover_timeout):
                dead = yield from self._probe_primary()
                # a flapping primary may have resurrected (and resumed
                # beating) while the probe was in flight — promote only if
                # the leadership silence persisted through the probe
                if dead and (self.sim.now - self._last_beat_at
                             > self.config.standby_takeover_timeout):
                    self._promote()
                    return

    def _pull_once(self):
        if not self.promoted:
            yield from self._pull_shadow()

    def _pull_shadow(self):
        """Anti-entropy: one ``fetch_shadow`` call against the primary."""
        self._last_pull_at = self.sim.now
        try:
            shadow = yield self.runtime.call(
                Stub(SPAWNER_OBJECT, self.primary_address), "fetch_shadow",
                self.app.app_id, timeout=self.config.call_timeout,
            )
        except RemoteError:
            return  # the takeover probe, not the pull, decides death
        if shadow is None:
            return
        register, ages, reign = shadow
        self.shadow_register = register
        self.shadow_ages = dict(ages)
        self.shadow_reign = max(self.shadow_reign, reign)
        self.shadow_version = register.version
        self.shadow_pulls += 1
        self._trace("shadow_pull", version=register.version, reign=reign)

    def _probe_primary(self):
        """Gossip silence is only *suspicion*; a direct ping failure is the
        death verdict (protects against a slow gossip path promoting a
        second leader while the primary still runs)."""
        self._trace("probe_primary", silence=self.sim.now - self._last_beat_at)
        try:
            yield self.runtime.call(
                Stub(SPAWNER_OBJECT, self.primary_address), "ping",
                timeout=min(self.config.call_timeout,
                            self.config.standby_takeover_timeout),
            )
        except RemoteError:
            return True
        self._last_beat_at = self.sim.now  # alive, just a slow gossip path
        return False

    # -- takeover ---------------------------------------------------------------

    def _promote(self) -> None:
        """Boot a real Spawner from the shadow under a fenced, strictly
        higher reign.

        The bid is ``max(shadow, beats) + 2``: a cold resume from stable
        storage bids ``snapshot_reign + 1``, so the +2 guarantees a
        flapping primary that resurrects concurrently can never TIE the
        promoted standby — ties would let adoption order pick different
        leaders on different peers."""
        self.promoted = True
        self.takeover_at = self.sim.now
        reign = max(self.shadow_reign, self._last_beat_version[0]) + 2
        self._trace("takeover", reign=reign,
                    shadow_version=self.shadow_version)
        self._log("standby_takeover", reign=reign,
                  shadow_version=self.shadow_version)
        launched_at = (self.telemetry.launched_at
                       if self.telemetry is not None else None)
        spawner = Spawner(
            network=self.network,
            host=self.host,
            app=self.app,
            superpeer_addresses=self.superpeer_addresses,
            config=self.config,
            rng=self.rng.child("promote", reign),
            log=self.log,
            telemetry=self.telemetry,
            stable_store=self.stable_store,
            resume_from=self.shadow_register,
            reign=reign,
            failure_feed=self.failure_feed,
        )
        if self.telemetry is not None and launched_at is not None:
            # the application started when the PRIMARY launched it; the
            # takeover must not reset the execution-time clock
            self.telemetry.launched_at = launched_at
        spawner.attach_gossip(self.gossip)
        spawner.announce_takeover()
        self.spawner = spawner
        self.host.spawn(self._chain_done(spawner),
                        label=f"standby:{self.app.app_id}:done")

    def _chain_done(self, spawner: Spawner):
        yield spawner.done
        if not self.done.triggered:
            self.done.succeed({"converged_at": self.sim.now})

    @property
    def active_reign(self) -> int:
        return self.spawner.reign if self.spawner is not None else self.shadow_reign

    # -- observability ----------------------------------------------------------

    def _log(self, kind: str, **detail) -> None:
        if self.log is not None:
            self.log.emit(self.sim.now, f"standby:{self.app.app_id}", kind,
                          **detail)

    def _trace(self, kind: str, **attrs) -> None:
        tr = self.sim.tracer
        if tr.enabled:
            tr.emit(self.sim.now, "gossip", f"standby:{self.app.app_id}",
                    kind, **attrs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<StandbySpawner {self.app.app_id} promoted={self.promoted} "
                f"shadow_v={self.shadow_version} reign={self.active_reign}>")
