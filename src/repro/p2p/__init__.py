"""``repro.p2p`` — the JaceP2P runtime (paper §4–§5).

Entities (each a JVM in the paper, an :class:`~repro.rmi.RmiRuntime`-backed
object on a simulated host here):

* :class:`~repro.p2p.daemon.Daemon` — the computing peer: bootstraps into
  the Super-Peer network, heartbeats, runs one Task at a time, stores
  Backups for its neighbours, exchanges asynchronous data messages;
* :class:`~repro.p2p.superpeer.SuperPeer` — indexes idle Daemons
  (the Register), evicts silent ones, answers reservation requests and
  forwards unmet demand to neighbouring Super-Peers;
* :class:`~repro.p2p.spawner.Spawner` — launches an application on reserved
  Daemons, maintains the Application Register, detects computing-peer
  failures, reserves replacements, broadcasts register updates, and
  centralizes global convergence detection.

:func:`~repro.p2p.cluster.build_cluster` wires a whole testbed together;
:func:`~repro.p2p.cluster.launch_application` starts an app and returns the
Spawner whose ``done`` event the driver runs the simulation against.
"""

from repro.p2p.config import P2PConfig
from repro.p2p.messages import ApplicationRegister, TaskSlot, AppSpec
from repro.p2p.task import Task, TaskContext, IterationStep
from repro.p2p.telemetry import Telemetry
from repro.p2p.superpeer import SuperPeer
from repro.p2p.daemon import Daemon
from repro.p2p.spawner import Spawner
from repro.p2p.cluster import (
    Cluster,
    build_cluster,
    launch_application,
    launch_standby,
    resume_application,
)
from repro.p2p.stable import SpawnerSnapshot, StableStore
from repro.p2p.standby import StandbySpawner

__all__ = [
    "resume_application",
    "SpawnerSnapshot",
    "StableStore",
    "StandbySpawner",
    "launch_standby",
    "P2PConfig",
    "ApplicationRegister",
    "TaskSlot",
    "AppSpec",
    "Task",
    "TaskContext",
    "IterationStep",
    "Telemetry",
    "SuperPeer",
    "Daemon",
    "Spawner",
    "Cluster",
    "build_cluster",
    "launch_application",
]
