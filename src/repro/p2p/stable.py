"""Stable storage for Spawner state — the §4.2 future-work direction.

"The Spawner is the only entity of the system to be stable.  In future
work, we plan to study how to make it tolerant to failures."

This module implements that study: a :class:`StableStore` models the
application programmer's disk (it survives the machine's process dying),
and the Spawner persists its recovery-critical state — the Application
Register with its epochs, and its port — into it on every membership
change.  :func:`repro.p2p.cluster.resume_application` then boots a fresh
Spawner from the stored snapshot after the machine returns.

What does *not* need persisting, and why:

* the convergence array — Daemon heartbeats piggyback the current local
  stability bit every period, so a resumed Spawner relearns the whole
  array within one heartbeat;
* liveness timestamps — the resumed Spawner grants every assigned slot a
  fresh grace period and lets the heartbeats re-establish themselves;
* in-flight reservations — the maintenance loop simply re-reserves
  whatever is missing.

The computing Daemons never notice the outage beyond their heartbeats
going unanswered: asynchronous tasks don't need the Spawner to make
progress, which is exactly why this recovery is cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.p2p.messages import ApplicationRegister

__all__ = ["SpawnerSnapshot", "StableStore"]


@dataclass(frozen=True)
class SpawnerSnapshot:
    """Everything a replacement Spawner needs to take over."""

    app_id: str
    register: ApplicationRegister
    spawner_port: int
    saved_at: float
    #: leadership-fencing number of the Spawner that wrote the snapshot; a
    #: resumed Spawner reigns at ``reign + 1`` so standbys and daemons can
    #: order competing leaders
    reign: int = 1


class StableStore:
    """Durable key-value storage for Spawner snapshots (one per app).

    Models a file on the application programmer's disk: host failures do
    not touch it.  Snapshots are stored as independent copies so later
    Spawner mutations never leak into the stored state.
    """

    def __init__(self) -> None:
        self._snapshots: dict[str, SpawnerSnapshot] = {}
        self.saves = 0

    def save(self, app_id: str, register: ApplicationRegister,
             spawner_port: int, now: float, reign: int = 1) -> None:
        self._snapshots[app_id] = SpawnerSnapshot(
            app_id=app_id,
            register=register.snapshot(),
            spawner_port=spawner_port,
            saved_at=now,
            reign=reign,
        )
        self.saves += 1

    def load(self, app_id: str) -> SpawnerSnapshot | None:
        snap = self._snapshots.get(app_id)
        if snap is None:
            return None
        # hand out a copy: the caller will mutate the register
        return SpawnerSnapshot(
            app_id=snap.app_id,
            register=snap.register.snapshot(),
            spawner_port=snap.spawner_port,
            saved_at=snap.saved_at,
            reign=snap.reign,
        )

    def forget(self, app_id: str) -> None:
        self._snapshots.pop(app_id, None)

    def __contains__(self, app_id: str) -> bool:
        return app_id in self._snapshots
