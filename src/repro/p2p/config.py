"""Runtime configuration knobs.

Defaults mirror the paper's experiment settings where the paper states them
(checkpoint every 5 iterations, 20 backup-peers, ~20 s reconnect delay) and
use conventional values elsewhere (heartbeat/timeout ratios, ports).
"""

from __future__ import annotations

import contextlib
import warnings
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

__all__ = ["P2PConfig"]

#: the historical checkpoint knobs, now shimmed behind
#: :class:`repro.checkpoint.CheckpointPolicy` (see docs/checkpointing.md)
_CHECKPOINT_KNOBS = ("checkpoint_frequency", "backup_count")
_CHECKPOINT_KNOB_DEFAULTS = {"checkpoint_frequency": 5, "backup_count": 20}

#: suppression depth for internal re-construction (``with_`` on untouched
#: knobs, spec deserialization) — those are not user construction sites
_knob_warning_suppressed = 0


@contextlib.contextmanager
def _quiet_checkpoint_knobs():
    global _knob_warning_suppressed
    _knob_warning_suppressed += 1
    try:
        yield
    finally:
        _knob_warning_suppressed -= 1


@dataclass(frozen=True)
class P2PConfig:
    """All tunables of the JaceP2P runtime."""

    # -- heartbeats / failure detection (§5.3)
    heartbeat_period: float = 1.0
    #: silence longer than this marks a peer dead (must exceed the period)
    heartbeat_timeout: float = 3.5
    #: how often Super-Peers / the Spawner scan for stale heartbeats
    monitor_period: float = 1.0

    # -- RMI
    call_timeout: float = 5.0
    superpeer_port: int = 4000
    daemon_port: int = 4100
    spawner_port: int = 4200

    # -- bootstrap / reservation (§5.1–§5.2)
    bootstrap_retry_delay: float = 1.0
    reserve_retry_period: float = 1.5
    #: exponential-backoff growth per failed full registration sweep; the
    #: attempt-``k`` delay is ``retry_delay * factor**k`` capped at
    #: ``bootstrap_retry_max``, stretched by up to ``jitter`` (a
    #: deterministic per-attempt draw) so a mass outage does not re-register
    #: in lockstep (the §5.3 relocation storm)
    bootstrap_backoff_factor: float = 2.0
    bootstrap_retry_max: float = 8.0
    bootstrap_retry_jitter: float = 0.1

    # -- checkpointing (§5.4; paper experiment values)
    checkpoint_frequency: int = 5
    backup_count: int = 20
    #: fraction of a guardian machine's RAM its BackupStore may occupy
    #: (the paper's Daemons run on 256 MB-1 GB PCs while guarding up to 20
    #: neighbours' checkpoints)
    backup_ram_fraction: float = 0.25

    # -- convergence detection (§5.5)
    convergence_threshold: float = 1e-6
    stability_window: int = 3
    #: "immediate" halts the moment the array is all-stable (the paper's
    #: protocol).  "dwell" implements the §8 improvement direction: hold
    #: the all-stable state for ``verification_dwell`` simulated seconds —
    #: long enough for any in-flight correction wave to flip a bit back —
    #: before declaring global convergence.
    detection_mode: str = "immediate"
    verification_dwell: float = 0.1

    # -- register dissemination (§5.2/§5.3; §8 lists "broadcast of register"
    # -- as needing improvement)
    #: "full" re-broadcasts the whole Application Register on every
    #: membership change (the paper's behaviour); "delta" sends only the
    #: changed slots, with an automatic full resync when a daemon detects
    #: a version gap.
    broadcast_mode: str = "full"

    # -- swarm-scale topology (docs/scaling.md)
    #: depth of the Super-Peer hierarchy.  1 = the paper's flat linked
    #: mesh (every Super-Peer indexes Daemons and forwards to every
    #: other).  >= 2 partitions membership: tier-0 (leaf) Super-Peers
    #: hold Daemon Registers, higher tiers index only their child
    #: Super-Peers' liveness summaries, and reservation demand forwards
    #: across tier boundaries — no actor holds O(cluster) state.
    superpeer_tiers: int = 1
    #: children per interior Super-Peer when building a hierarchy
    superpeer_fanout: int = 4
    #: "process" = one DES heartbeat process per Daemon (the historical,
    #: bitwise-stable default).  "wheel" = all idle heartbeats ride one
    #: slotted :class:`~repro.des.kernel.TimerWheel` — O(1) heap entries
    #: per period for the whole swarm (docs/scaling.md).
    heartbeat_mode: str = "process"
    #: in wheel mode, every Nth beat is a call-based reaffirm (detects a
    #: dead Super-Peer); the rest are fire-and-forget oneways
    wheel_reaffirm_every: int = 25

    # -- epidemic control plane (repro.gossip, docs/gossip.md)
    #: master switch: when False, no gossip agent is ever created and every
    #: run is bit-identical to the pre-gossip runtime
    gossip_enabled: bool = False
    #: dissemination round period (push + one liveness probe per round)
    gossip_period: float = 0.5
    #: random push targets per round (priority roles ride on top)
    gossip_fanout: int = 2
    #: bounded peer-store capacity (the membership view)
    gossip_peer_limit: int = 32
    #: membership entries piggybacked on each push (peer exchange)
    gossip_exchange: int = 4
    #: silence beyond this makes a store entry evictable by a newcomer
    gossip_stale_after: float = 5.0
    #: Daemons bootstrap from gossip-learned Super-Peer addresses instead
    #: of the full hardcoded list (they keep a short seed contact list)
    gossip_discovery: bool = True
    #: the Spawner requires the epidemic stability aggregate to agree with
    #: its centralized array before declaring global convergence
    gossip_convergence: bool = True

    # -- warm-standby Spawner (docs/gossip.md failover state machine)
    standby_enabled: bool = False
    standby_port: int = 4300
    #: anti-entropy shadow pull cadence (on a register-version gap)
    standby_sync_period: float = 0.5
    #: leadership-beat silence that triggers the takeover probe
    standby_takeover_timeout: float = 2.0

    # -- execution pacing
    #: floor on per-iteration duration: bounds the event rate of a task
    #: spinning on stale data (real Jace iterations also have JVM overhead)
    min_iteration_time: float = 0.005
    #: fixed per-iteration runtime overhead in seconds (scheduling, JNI, ...)
    iteration_overhead: float = 0.002

    def __post_init__(self) -> None:
        if self.heartbeat_timeout <= self.heartbeat_period:
            raise ConfigurationError("heartbeat_timeout must exceed heartbeat_period")
        if self.heartbeat_period <= 0 or self.monitor_period <= 0:
            raise ConfigurationError("periods must be positive")
        if self.call_timeout <= 0:
            raise ConfigurationError("call_timeout must be positive")
        if self.checkpoint_frequency < 1:
            raise ConfigurationError("checkpoint_frequency must be >= 1")
        if self.backup_count < 0:
            raise ConfigurationError("backup_count must be >= 0")
        if not 0.0 < self.backup_ram_fraction <= 1.0:
            raise ConfigurationError("backup_ram_fraction must be in (0, 1]")
        if self.convergence_threshold <= 0:
            raise ConfigurationError("convergence_threshold must be positive")
        if self.stability_window < 1:
            raise ConfigurationError("stability_window must be >= 1")
        if self.min_iteration_time < 0 or self.iteration_overhead < 0:
            raise ConfigurationError("pacing values must be >= 0")
        if self.detection_mode not in ("immediate", "dwell"):
            raise ConfigurationError("detection_mode must be 'immediate' or 'dwell'")
        if self.verification_dwell <= 0:
            raise ConfigurationError("verification_dwell must be positive")
        if self.broadcast_mode not in ("full", "delta"):
            raise ConfigurationError("broadcast_mode must be 'full' or 'delta'")
        if self.superpeer_tiers < 1:
            raise ConfigurationError("superpeer_tiers must be >= 1")
        if self.superpeer_fanout < 2:
            raise ConfigurationError("superpeer_fanout must be >= 2")
        if self.heartbeat_mode not in ("process", "wheel"):
            raise ConfigurationError("heartbeat_mode must be 'process' or 'wheel'")
        if self.wheel_reaffirm_every < 1:
            raise ConfigurationError("wheel_reaffirm_every must be >= 1")
        if self.bootstrap_backoff_factor < 1.0:
            raise ConfigurationError("bootstrap_backoff_factor must be >= 1")
        if self.bootstrap_retry_max < self.bootstrap_retry_delay:
            raise ConfigurationError(
                "bootstrap_retry_max must be >= bootstrap_retry_delay"
            )
        if self.bootstrap_retry_jitter < 0:
            raise ConfigurationError("bootstrap_retry_jitter must be >= 0")
        if self.gossip_period <= 0:
            raise ConfigurationError("gossip_period must be positive")
        if self.gossip_fanout < 1:
            raise ConfigurationError("gossip_fanout must be >= 1")
        if self.gossip_peer_limit < 2:
            raise ConfigurationError("gossip_peer_limit must be >= 2")
        if self.gossip_exchange < 0:
            raise ConfigurationError("gossip_exchange must be >= 0")
        if self.gossip_stale_after <= 0:
            raise ConfigurationError("gossip_stale_after must be positive")
        if self.standby_sync_period <= 0:
            raise ConfigurationError("standby_sync_period must be positive")
        if self.standby_takeover_timeout <= self.monitor_period:
            raise ConfigurationError(
                "standby_takeover_timeout must exceed monitor_period"
            )
        ports = {self.superpeer_port, self.daemon_port, self.spawner_port,
                 self.standby_port}
        if len(ports) != 4:
            raise ConfigurationError("entity ports must be distinct")
        if _knob_warning_suppressed == 0 and any(
            getattr(self, k) != _CHECKPOINT_KNOB_DEFAULTS[k]
            for k in _CHECKPOINT_KNOBS
        ):
            warnings.warn(
                "repro.p2p.P2PConfig checkpoint_frequency/backup_count are "
                "deprecated: pass RunSpec(checkpoint=FixedPolicy(count=..., "
                "frequency=...)) (or build_cluster(checkpoint=...)) instead",
                DeprecationWarning,
                stacklevel=3,
            )

    def with_(self, **changes) -> "P2PConfig":
        """A copy with the given fields replaced.

        Copies that merely carry existing checkpoint knobs forward are not
        new construction sites, so the deprecation shim only fires when
        ``changes`` itself sets a knob to a non-default value."""
        if any(
            changes.get(k, _CHECKPOINT_KNOB_DEFAULTS[k])
            != _CHECKPOINT_KNOB_DEFAULTS[k]
            for k in _CHECKPOINT_KNOBS
        ):
            return replace(self, **changes)
        with _quiet_checkpoint_knobs():
            return replace(self, **changes)
