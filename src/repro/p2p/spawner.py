"""The Spawner: application launcher, membership manager, convergence judge.

Paper §5.2–§5.5.  The Spawner is the one stable entity (it runs on the
application programmer's machine): it reserves Daemons through the
Super-Peer network, builds and broadcasts the Application Register, monitors
the computing peers' heartbeats, replaces failed ones (reserving substitutes
and re-launching their task from the newest Backup), and centralizes the
global convergence array that halts the application.
"""

from __future__ import annotations

from typing import Any

from repro.convergence import GlobalConvergenceTracker
from repro.des import Simulator
from repro.des.events import Event
from repro.errors import ConfigurationError, RemoteError, TaskError
from repro.net.address import Address
from repro.net.host import Host
from repro.net.network import Network
from repro.p2p.config import P2PConfig
from repro.p2p.messages import AppSpec, ApplicationRegister, RegisterDelta, TaskSlot
from repro.p2p.superpeer import SUPERPEER_OBJECT
from repro.obs.instruments import RunTelemetry
from repro.rmi import RemoteObject, RmiRuntime, Stub, remote
from repro.util.logging import EventLog
from repro.util.rng import RngTree
from repro.util.serialization import measured_size

__all__ = ["Spawner"]

SPAWNER_OBJECT = "spawner"


class Spawner(RemoteObject):
    """Launches and supervises one application."""

    def __init__(
        self,
        network: Network,
        host: Host,
        app: AppSpec,
        superpeer_addresses: list[Address],
        config: P2PConfig,
        rng: RngTree,
        log: EventLog | None = None,
        telemetry: RunTelemetry | None = None,
        stable_store=None,
        resume_from: ApplicationRegister | None = None,
        reign: int = 1,
        failure_feed=None,
    ):
        """``stable_store`` persists the Application Register on every
        membership change (the §4.2 fault-tolerance direction);
        ``resume_from`` boots this Spawner as the *replacement* of a failed
        one, adopting its register (epochs intact) instead of starting from
        empty slots.  ``reign`` is the leadership-fencing number: every
        takeover (standby promotion or stable-storage resume) runs under a
        strictly higher reign, and Daemons refuse adoption announcements
        that do not advance it — the exactly-one-leader guarantee."""
        if not superpeer_addresses:
            raise ConfigurationError("the Spawner needs at least one Super-Peer address")
        self.sim: Simulator = network.sim
        self.network = network
        self.host = host
        self.app = app
        self.superpeer_addresses = list(superpeer_addresses)
        self.config = config
        self.rng = rng
        self.log = log
        self.telemetry = telemetry if telemetry is not None else RunTelemetry()
        self.telemetry.launched_at = self.sim.now
        #: shared :class:`repro.checkpoint.FailureFeed`: every heartbeat
        #: eviction is recorded so adaptive checkpoint policies can track
        #: the observed failure inter-arrival time
        self.failure_feed = failure_feed

        self.stable_store = stable_store
        self.resumed = resume_from is not None
        if resume_from is not None:
            if (resume_from.app_id != app.app_id
                    or resume_from.num_tasks != app.num_tasks):
                raise ConfigurationError("resume_from does not match this application")
            self.register = resume_from.snapshot()
            self.register.version += 1  # our reign starts a new version
        else:
            self.register = ApplicationRegister.empty(app.app_id, app.num_tasks)
        self.tracker = GlobalConvergenceTracker(app.num_tasks)
        self.last_seen: dict[int, float] = {}
        if self.resumed:
            # grace period: let the surviving daemons' heartbeats arrive
            # before anyone is declared dead
            for slot in self.register.slots:
                if slot.assigned:
                    self.last_seen[slot.task_id] = self.sim.now
        self.done: Event = self.sim.event(name=f"{app.app_id}:done")
        self.replacements = 0
        self.failures_detected = 0
        self.register_broadcasts = 0
        self._unstable_generation = 0  # bumped whenever any bit clears
        self._dwell_active = False
        self.dwell_aborts = 0
        self._last_broadcast_version = 0
        self._changed_since_broadcast: set[int] = set()
        self.broadcast_bytes = 0
        self.resyncs_served = 0
        self.register_repairs = 0
        self.reign = reign
        #: attached via :meth:`attach_gossip`; None keeps every legacy code
        #: path untouched (bitwise identity with gossip disabled)
        self.gossip = None
        self._beat = 0  # leadership-beat counter, versioned under the reign
        #: epidemic stability bits: task_id -> (epoch, flips, stable) — the
        #: decentralized detector's view, merged from gossip rumors
        self._epidemic_bits: dict[int, tuple[int, int, bool]] = {}
        self.crosscheck_agreements = 0
        self.epidemic_lags = 0
        self.reattachments = 0
        self._reattach_dirty = False
        self.threshold = (
            app.convergence_threshold
            if app.convergence_threshold is not None
            else config.convergence_threshold
        )
        self.window = (
            app.stability_window
            if app.stability_window is not None
            else config.stability_window
        )

        self.runtime = RmiRuntime(
            network, host, config.spawner_port,
            name=f"spawner:{app.app_id}", log=log,
            call_timeout=config.call_timeout,
        )
        self.stub = self.runtime.serve(self, SPAWNER_OBJECT)
        host.spawn(self._maintain(), label=f"spawner:{app.app_id}")

    # -- remote interface ------------------------------------------------------

    @remote
    def heartbeat_task(
        self,
        app_id: str,
        task_id: int,
        epoch: int,
        daemon_id: str,
        stable: bool | None = None,
        register_version: int | None = None,
    ) -> None:
        """Liveness signal from a computing peer (§5.3).

        Carries the sender's current local-stability bit: the flip-time
        ``set_state`` messages are oneway and lossy, so this periodic
        refresh is what makes convergence detection robust to loss.  A
        heartbeat arriving after completion triggers a ``halt`` re-send
        (the original halt may itself have been lost).

        It also carries the sender's Application Register version.  The
        broadcast that follows an assignment or replacement is oneway and
        can be lost to message loss or a partition; a peer left with a
        stale register keeps computing but silently skips every neighbour
        its copy does not know (a wrong-but-converged fixed point).  When
        a heartbeat reports an old version the Spawner re-sends the full
        register — anti-entropy repair keeping §5.3's "the recipient is
        automatically updated" true under faults."""
        if app_id != self.app.app_id or not 0 <= task_id < self.app.num_tasks:
            return
        slot = self.register.slot(task_id)
        if slot.epoch != epoch or slot.daemon_id != daemon_id:
            return  # a previous incarnation of this task: ignore
        if self.done.triggered:
            if slot.daemon_stub is not None:
                self.runtime.oneway(slot.daemon_stub, "halt", self.app.app_id)
            return
        self.last_seen[task_id] = self.sim.now
        self._trace("heartbeat", task=task_id, daemon=daemon_id)
        if (register_version is not None
                and register_version < self._last_broadcast_version
                and slot.daemon_stub is not None):
            self.register_repairs += 1
            self._trace("register_repair", task=task_id, daemon=daemon_id,
                        stale_version=register_version,
                        version=self.register.version)
            self.runtime.oneway(
                slot.daemon_stub, "update_register", self.register.snapshot()
            )
        if stable is not None:
            self.set_state(app_id, task_id, epoch, stable)

    @remote
    def set_state(self, app_id: str, task_id: int, epoch: int, stable: bool) -> None:
        """A 1/0 local-convergence message (§5.5)."""
        if self.done.triggered:
            return
        if app_id != self.app.app_id or not 0 <= task_id < self.app.num_tasks:
            return
        if self.register.slot(task_id).epoch != epoch:
            return  # stale incarnation
        self.tracker.set_state(task_id, stable)
        if not stable:
            self._unstable_generation += 1
        self._maybe_finish()

    def _maybe_finish(self) -> None:
        """Both detectors must agree before the halt decision (§5.5 plus the
        decentralized cross-check): the centralized array says converged AND
        the epidemic aggregate confirms it.  With gossip disabled the
        epidemic gate is vacuously true and this is exactly the historical
        decision."""
        if self.done.triggered or not self.tracker.converged:
            return
        if not self._epidemic_agrees():
            self.epidemic_lags += 1
            self._trace("epidemic_lag", stable=self.tracker.stable_count)
            return
        if self.gossip is not None and self.config.gossip_convergence:
            self.crosscheck_agreements += 1
        if self.config.detection_mode == "immediate":
            self._finish()
        elif not self._dwell_active:
            self._dwell_active = True
            self.host.spawn(self._verification_dwell(),
                            label=f"spawner:{self.app.app_id}:dwell")

    def _epidemic_agrees(self) -> bool:
        """True when every task's epidemically-aggregated stability bit is
        set for its *current* epoch (the epoch guard discards rumors from
        replaced incarnations)."""
        if self.gossip is None or not self.config.gossip_convergence:
            return True
        for slot in self.register.slots:
            bit = self._epidemic_bits.get(slot.task_id)
            if bit is None or bit[0] != slot.epoch or not bit[2]:
                return False
        return True

    @remote
    def ping(self) -> bool:
        return True

    # -- supervision loop ---------------------------------------------------------

    def _maintain(self):
        """Failure detection + (re)assignment, in one periodic loop.

        Initial launch is just the degenerate case "every slot is
        unassigned"; replacement after a failure re-enters the same path
        with ``restart=True`` (the Daemon then runs Backup recovery).
        """
        if self.resumed:
            # announce the takeover: surviving daemons adopt the new
            # register version and resume heartbeating us
            self._broadcast_register()
            self._persist()
        while not self.done.triggered:
            self._publish_leadership()
            changed = self._detect_failures()
            if self._reattach_dirty:
                changed = True
                self._reattach_dirty = False
            unassigned = [s for s in self.register.slots if not s.assigned]
            if unassigned:
                changed |= yield from self._fill_slots(unassigned)
            if changed:
                self._broadcast_register()
                self._persist()
                # beat again so the standby's shadow learns the new
                # register version within a gossip round, not a monitor one
                self._publish_leadership()
            yield self.sim.timeout(self.config.monitor_period)

    def _detect_failures(self) -> bool:
        deadline = self.sim.now - self.config.heartbeat_timeout
        changed = False
        for slot in self.register.slots:
            if not slot.assigned:
                continue
            seen = self.last_seen.get(slot.task_id, -1.0)
            if seen < deadline:
                self._log("spawner_failure_detected", task=slot.task_id,
                          daemon=slot.daemon_id)
                self._trace("hb_miss", task=slot.task_id, daemon=slot.daemon_id,
                            last_seen=seen)
                slot.daemon_id = None
                slot.daemon_stub = None
                self.tracker.reset_task(slot.task_id)
                self.failures_detected += 1
                if self.failure_feed is not None:
                    self.failure_feed.record_failure(self.sim.now)
                self.register.version += 1
                self._changed_since_broadcast.add(slot.task_id)
                changed = True
        return changed

    def _fill_slots(self, unassigned):
        """Reserve Daemons and launch the given slots on them (§5.2)."""
        pairs = yield from self._reserve(len(unassigned))
        changed = False
        for slot, (daemon_id, stub) in zip(unassigned, pairs):
            restart = slot.epoch > 0
            # fence every ATTEMPT: if this assignment times out but the
            # daemon actually started (a ghost), its epoch is already
            # superseded and all its control messages will be rejected
            slot.epoch += 1
            epoch = slot.epoch
            self.register.version += 1
            snapshot = self.register.snapshot()
            snapshot.slot(slot.task_id).daemon_id = daemon_id
            snapshot.slot(slot.task_id).daemon_stub = stub
            snapshot.slot(slot.task_id).epoch = epoch
            try:
                yield self.runtime.call(
                    stub, "assign_task",
                    self.app.app_id, self.app.task_factory, slot.task_id,
                    self.app.num_tasks, self.app.params, snapshot,
                    self.stub, epoch, restart, self.threshold, self.window,
                    timeout=self.config.call_timeout,
                )
            except (RemoteError, TaskError):
                # lost it between reservation and launch: slot stays empty,
                # the next maintenance round reserves a substitute
                self._log("spawner_assign_failed", task=slot.task_id,
                          daemon=daemon_id)
                continue
            slot.daemon_id = daemon_id
            slot.daemon_stub = stub
            slot.epoch = epoch
            self._changed_since_broadcast.add(slot.task_id)
            self.last_seen[slot.task_id] = self.sim.now
            self.tracker.reset_task(slot.task_id)
            if restart:
                self.replacements += 1
            self._log("spawner_assigned", task=slot.task_id, daemon=daemon_id,
                      epoch=epoch, restart=restart)
            self._trace("slot_filled", task=slot.task_id, daemon=daemon_id,
                        epoch=epoch, restart=restart)
            changed = True
        return changed

    def _reserve(self, count: int):
        """Ask the Super-Peer network for up to ``count`` Daemons, trying
        bootstrap addresses in random order and accumulating partial grants
        until the demand is met (a Super-Peer forwards unmet demand itself,
        §5.2).  Each contact gets its *own* timeout, sized for one request
        walking the whole forwarding graph; a partial grant no longer wins
        the sweep outright — the remainder is re-requested from the next
        contact instead of silently under-filling the slots."""
        addresses = self.rng.child("reserve", self.sim.event_count).shuffled(
            self.superpeer_addresses
        )
        pairs = []
        for addr in addresses:
            sp = Stub(SUPERPEER_OBJECT, addr)
            try:
                # a forwarded request may walk the whole mesh — and, when
                # tiered, each hop may recurse through the hierarchy
                got = yield self.runtime.call(
                    sp, "reserve", count - len(pairs), (),
                    timeout=(self.config.call_timeout
                             * max(1, self.config.superpeer_tiers)
                             * max(1, len(self.superpeer_addresses))),
                )
            except RemoteError:
                self._trace("reserve_timeout", contact=str(addr),
                            granted=len(pairs), wanted=count)
                continue
            if got:
                pairs.extend(got)
                if len(pairs) >= count:
                    break
        return pairs[:count]

    def _broadcast_register(self) -> None:
        """Push the updated Application Register to every computing peer
        (Fig. 4(b)).  Oneway: an unreachable peer is already presumed dead.

        ``broadcast_mode="full"`` ships the whole register (the paper's
        behaviour, O(num_tasks) bytes per peer per change);
        ``broadcast_mode="delta"`` ships only the changed slots — the §8
        improvement — with receivers pulling a full snapshot on a version
        gap.  Both ride the reliable channel: a permanently-lost register
        update would starve a neighbour forever (in the real system this
        is a TCP RMI call).
        """
        if self.config.broadcast_mode == "delta" and self._last_broadcast_version > 0:
            payload = RegisterDelta(
                app_id=self.app.app_id,
                from_version=self._last_broadcast_version,
                to_version=self.register.version,
                changes=[
                    TaskSlot(s.task_id, s.daemon_id, s.daemon_stub, s.epoch)
                    for s in self.register.slots
                    if s.task_id in self._changed_since_broadcast
                ],
            )
            method = "update_register_delta"
        else:
            payload = self.register.snapshot()
            method = "update_register"
        size = measured_size(payload)
        for slot in self.register.slots:
            if slot.assigned:
                self.runtime.oneway(slot.daemon_stub, method, payload,
                                    reliable=True)
                self.broadcast_bytes += size
        self._last_broadcast_version = self.register.version
        self._changed_since_broadcast.clear()
        self.register_broadcasts += 1

    def _persist(self) -> None:
        """Write the recovery-critical state to stable storage (§4.2)."""
        if self.stable_store is not None:
            self.stable_store.save(
                self.app.app_id, self.register, self.config.spawner_port,
                self.sim.now, reign=self.reign,
            )

    @remote
    def fetch_register(self, app_id: str) -> ApplicationRegister | None:
        """Full-snapshot resync for a Daemon that detected a delta gap."""
        if app_id != self.app.app_id:
            return None
        self.resyncs_served += 1
        return self.register.snapshot()

    # -- epidemic control plane (repro.gossip, docs/gossip.md) ------------------

    def attach_gossip(self, agent) -> None:
        """Wire a :class:`~repro.gossip.GossipAgent` into the control plane:
        the agent feeds the decentralized convergence detector and carries
        the leadership beats the warm standby watches."""
        self.gossip = agent
        agent.subscribe(("stab", self.app.app_id), self._on_stab_rumor)
        # replay rumors the agent merged before we attached (a promoted
        # standby's agent has been shadowing stability bits all along)
        for key, (version, value) in list(agent.rumors.items()):
            if key[:2] == ("stab", self.app.app_id):
                self._on_stab_rumor(key, version, value)
        self._publish_leadership()

    def _on_stab_rumor(self, key, version, value) -> None:
        """Merge one epidemically-delivered local-stability bit.

        ``key = ("stab", app_id, task_id)``, ``version = (epoch, flips)``,
        ``value = stable``.  Versions are monotone per key (the agent only
        fires on merges), so a replaced incarnation's bits lose to the
        higher epoch by tuple order."""
        task_id = key[2]
        if not 0 <= task_id < self.app.num_tasks:
            return
        self._epidemic_bits[task_id] = (version[0], version[1], bool(value))
        self._maybe_finish()

    def _publish_leadership(self) -> None:
        """One leadership beat per maintenance round: a ``("spawner", app)``
        rumor versioned ``(reign, beat)``.  The standby watches this beat
        advance; silence beyond ``standby_takeover_timeout`` arms its
        takeover probe."""
        if self.gossip is None:
            return
        self._beat += 1
        self.gossip.set_rumor(
            ("spawner", self.app.app_id), (self.reign, self._beat),
            {"version": self.register.version,
             "address": self.runtime.address},
        )

    @remote
    def fetch_shadow(self, app_id: str):
        """Anti-entropy pull by the warm standby: the full recovery state
        (register snapshot, heartbeat-ledger ages, reign) in one call."""
        if app_id != self.app.app_id:
            return None
        ages = {t: self.sim.now - seen for t, seen in self.last_seen.items()}
        return (self.register.snapshot(), ages, self.reign)

    @remote
    def reattach_task(
        self, app_id: str, task_id: int, epoch: int, daemon_id: str,
        daemon_stub: Stub,
    ) -> bool:
        """A surviving computing peer reclaims its slot after a takeover.

        A promoted standby may boot from a shadow older than the live
        membership (its last anti-entropy pull predated assignments the
        dead primary made).  Peers that adopted the new leader over gossip
        call this to reconcile: a claimant whose epoch outranks an *empty*
        slot is re-admitted with its incarnation intact (no Backup restart);
        a claimant outranked by the slot's current occupant is refused and
        halts itself — the slot already has a live replacement."""
        if app_id != self.app.app_id or not 0 <= task_id < self.app.num_tasks:
            return False
        if self.done.triggered:
            return False
        slot = self.register.slot(task_id)
        if slot.daemon_id == daemon_id and slot.epoch == epoch:
            self.last_seen[task_id] = self.sim.now
            return True  # already current (the warm-shadow path): idempotent
        if slot.assigned or slot.epoch > epoch:
            # an equal-epoch claimant of an EMPTY slot is the very daemon
            # this epoch was fenced for (failure detection cleared it but
            # kept the epoch) — readmit it; anything older is refused
            return False
        slot.daemon_id = daemon_id
        slot.daemon_stub = daemon_stub
        slot.epoch = epoch
        self.register.version += 1
        self._changed_since_broadcast.add(task_id)
        self._reattach_dirty = True
        self.last_seen[task_id] = self.sim.now
        self.tracker.reset_task(task_id)
        self.reattachments += 1
        self._log("spawner_reattach", task=task_id, daemon=daemon_id,
                  epoch=epoch)
        self._trace("reattach", task=task_id, daemon=daemon_id, epoch=epoch)
        return True

    def announce_takeover(self) -> None:
        """Tell every assigned computing peer to adopt this Spawner as its
        leader.  Reliable oneways, fenced by the reign: a peer that already
        adopted a higher reign refuses (exactly-one-leader)."""
        for slot in self.register.slots:
            if slot.assigned:
                self.runtime.oneway(
                    slot.daemon_stub, "adopt_spawner",
                    self.app.app_id, self.reign, self.stub,
                    reliable=True,
                )
        self._trace("takeover_announced", reign=self.reign)
        self._log("spawner_takeover", reign=self.reign,
                  version=self.register.version)

    def _verification_dwell(self):
        """The §8 hardening: declare convergence only if the array stays
        all-stable for a dwell period (outlasting in-flight messages)."""
        generation = self._unstable_generation
        yield self.sim.timeout(self.config.verification_dwell)
        self._dwell_active = False
        if self.done.triggered:
            return
        if (self.tracker.converged and generation == self._unstable_generation
                and self._epidemic_agrees()):
            self._finish()
        else:
            self.dwell_aborts += 1
            self._log("spawner_dwell_aborted")
            # if the system is all-stable again already, re-arm immediately
            if self.tracker.converged and self._epidemic_agrees():
                self._dwell_active = True
                self.host.spawn(self._verification_dwell(),
                                label=f"spawner:{self.app.app_id}:dwell")

    # -- completion -------------------------------------------------------------

    def _finish(self) -> None:
        if self.done.triggered:
            return
        if self.stable_store is not None:
            self.stable_store.forget(self.app.app_id)
        self.telemetry.converged_at = self.sim.now
        self._log("spawner_converged", at=self.sim.now,
                  iterations=self.telemetry.total_iterations)
        self._trace("converged", iterations=self.telemetry.total_iterations)
        for slot in self.register.slots:
            if slot.assigned:
                self.runtime.oneway(slot.daemon_stub, "halt", self.app.app_id)
        self.done.succeed({"converged_at": self.sim.now})

    def collect_solution(self):
        """Generator (run it as a process after ``done``): fetch each task's
        owned solution fragment.  Returns ``{task_id: fragment | None}``."""
        calls = {}
        for slot in self.register.slots:
            if slot.assigned:
                calls[slot.task_id] = self.runtime.call(
                    slot.daemon_stub, "fetch_solution", self.app.app_id,
                    timeout=self.config.call_timeout,
                )
        results: dict[int, Any] = {t: None for t in range(self.app.num_tasks)}

        def waiter(task_id, ev):
            try:
                value = yield ev
            except Exception:
                value = None
            results[task_id] = value

        procs = [
            self.sim.process(waiter(t, ev), label="collect") for t, ev in calls.items()
        ]
        if procs:
            yield self.sim.all_of(procs)
        return results

    @property
    def execution_time(self) -> float | None:
        return self.telemetry.execution_time

    def _log(self, kind: str, **detail) -> None:
        if self.log is not None:
            self.log.emit(self.sim.now, f"spawner:{self.app.app_id}", kind, **detail)

    def _trace(self, kind: str, **attrs) -> None:
        tr = self.sim.tracer
        if tr.enabled:
            tr.emit(self.sim.now, "p2p", f"spawner:{self.app.app_id}", kind, **attrs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Spawner {self.app.app_id} assigned={self.register.assigned_count()}"
            f"/{self.app.num_tasks} stable={self.tracker.stable_count}>"
        )
