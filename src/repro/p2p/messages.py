"""Shared protocol data: the Application Register and application specs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ConfigurationError
from repro.rmi.stub import Stub

__all__ = ["TaskSlot", "ApplicationRegister", "AppSpec"]


@dataclass
class TaskSlot:
    """The mapping of one task onto (at most) one Daemon.

    ``epoch`` counts assignments of this slot: 0 = never assigned; it lets
    Daemons and the Spawner discard messages from a previous incarnation of
    the task after a replacement.
    """

    task_id: int
    daemon_id: str | None = None
    daemon_stub: Stub | None = None
    epoch: int = 0

    @property
    def assigned(self) -> bool:
        return self.daemon_stub is not None


@dataclass
class ApplicationRegister:
    """The Spawner's ``AppliReg`` (§5.2): "the whole configuration of the
    peers running a given application and the mapping of the Tasks over the
    Daemons", broadcast to every computing peer on each membership change.
    """

    app_id: str
    version: int = 0
    slots: list[TaskSlot] = field(default_factory=list)

    @classmethod
    def empty(cls, app_id: str, num_tasks: int) -> "ApplicationRegister":
        return cls(app_id=app_id, version=0,
                   slots=[TaskSlot(task_id=i) for i in range(num_tasks)])

    @property
    def num_tasks(self) -> int:
        return len(self.slots)

    def stub_of(self, task_id: int) -> Stub | None:
        return self.slots[task_id].daemon_stub

    def slot(self, task_id: int) -> TaskSlot:
        return self.slots[task_id]

    def assigned_count(self) -> int:
        return sum(s.assigned for s in self.slots)

    def snapshot(self) -> "ApplicationRegister":
        """A shallow-frozen copy safe to ship over the network (slots are
        copied; stubs are immutable)."""
        return ApplicationRegister(
            app_id=self.app_id,
            version=self.version,
            slots=[
                TaskSlot(s.task_id, s.daemon_id, s.daemon_stub, s.epoch)
                for s in self.slots
            ],
        )


@dataclass
class RegisterDelta:
    """An incremental Application-Register update (§8's broadcast
    improvement): only the slots that changed between two versions.

    A receiver whose register is exactly at ``from_version`` applies the
    changes; anyone else has missed an update (e.g. a lost broadcast) and
    must pull a full snapshot from the Spawner instead.
    """

    app_id: str
    from_version: int
    to_version: int
    changes: list[TaskSlot] = field(default_factory=list)


@dataclass
class AppSpec:
    """What the user hands the Spawner (§5.2): the application code location
    (here: a Task factory — the stand-in for the paper's "URL of a web
    server where the class files are available"), the number of computing
    nodes, and the application arguments.
    """

    app_id: str
    task_factory: Callable[[], Any]
    num_tasks: int
    params: dict = field(default_factory=dict)
    #: per-app overrides of the convergence threshold / stability window
    convergence_threshold: float | None = None
    stability_window: int | None = None

    def __post_init__(self) -> None:
        if not self.app_id:
            raise ConfigurationError("app_id must be non-empty")
        if self.num_tasks < 1:
            raise ConfigurationError("num_tasks must be >= 1")
