"""Run-timeline reporting: turn a run's EventLog into readable artefacts.

Two views of one execution:

* :func:`event_timeline` — the protocol narrative: assignments,
  disconnections, detections, replacements, recoveries, convergence;
* :func:`activity_chart` — an ASCII strip chart of per-entity activity
  binned over time (assignments ``A``, recoveries ``R``, disconnects
  ``x``, reconnects ``o``), which makes the "alive peers keep computing
  while one is replaced" story visible at a glance.

Both operate on the standard :class:`~repro.util.logging.EventLog` the
cluster already produces — no extra instrumentation required.
"""

from __future__ import annotations

from repro.util.logging import EventLog, LogRecord

__all__ = ["event_timeline", "activity_chart", "run_summary"]

#: the protocol events worth narrating, in display order
NARRATIVE_KINDS = (
    "spawner_assigned",
    "disconnect",
    "reconnect",
    "spawner_failure_detected",
    "spawner_assign_failed",
    "task_recovered",
    "spawner_dwell_aborted",
    "spawner_converged",
)


def event_timeline(log: EventLog, kinds: tuple[str, ...] = NARRATIVE_KINDS) -> str:
    """Chronological text narrative of a run's protocol events."""
    records = [r for r in log.records if r.kind in kinds]
    if not records:
        return "(no protocol events recorded)"
    return "\n".join(str(r) for r in sorted(records, key=lambda r: r.time))


def _mark_for(record: LogRecord) -> str | None:
    return {
        "spawner_assigned": "A",
        "task_recovered": "R",
        "disconnect": "x",
        "reconnect": "o",
        "spawner_failure_detected": "!",
        "spawner_converged": "C",
    }.get(record.kind)


def activity_chart(
    log: EventLog,
    width: int = 72,
    until: float | None = None,
) -> str:
    """ASCII strip chart: one row per entity, one column per time bin."""
    marked = [(r, _mark_for(r)) for r in log.records]
    marked = [(r, m) for r, m in marked if m is not None]
    if not marked:
        return "(nothing to chart)"
    horizon = until if until is not None else max(r.time for r, _ in marked)
    horizon = max(horizon, 1e-9)
    entities: dict[str, list[str]] = {}
    for record, mark in marked:
        key = record.detail.get("host") or record.detail.get("daemon") or record.entity
        row = entities.setdefault(str(key), ["."] * width)
        column = min(int(record.time / horizon * width), width - 1)
        row[column] = mark
    label_width = max(len(k) for k in entities)
    lines = [
        f"{name.ljust(label_width)} |{''.join(row)}|"
        for name, row in sorted(entities.items())
    ]
    scale = f"{'':{label_width}} 0{'':{width - 8}}{horizon:.2f}s"
    legend = "A=assigned R=recovered x=disconnect o=reconnect !=detected C=converged"
    return "\n".join(lines + [scale, legend])


def run_summary(log: EventLog) -> dict:
    """Headline counters mined from the log."""
    return {
        "assignments": log.count("spawner_assigned"),
        "disconnects": log.count("disconnect"),
        "reconnects": log.count("reconnect"),
        "failures_detected": log.count("spawner_failure_detected"),
        "recoveries": log.count("task_recovered"),
        "dwell_aborts": log.count("spawner_dwell_aborted"),
        "converged": log.count("spawner_converged") > 0,
    }
