"""Experiment-wide constants.

These pin the *scaled* reproduction regime.  The guiding invariants, in the
paper's terms:

* failure-detection + replacement latency must be a small fraction of a
  run (paper: seconds against 1000–7000 s runs) — hence the fast
  heartbeat/timeout values against our 1–10 s runs;
* the reconnect delay is a few × the detection latency (paper: ≈20 s
  against a multi-second detection);
* ratio (4) — compute per iteration / communication per iteration — must
  cross from ≪1 (small n) to ≈1 (large n) across the sweep — hence
  ``EXPERIMENT_LINK_SCALE``;
* checkpoint every 5 iterations and 20 backup-peers, verbatim from §7
  (the backup count clamps to peers−1 at our scale).
"""

from __future__ import annotations

from repro.p2p.config import P2PConfig

__all__ = [
    "EXPERIMENT_CONFIG",
    "EXPERIMENT_LINK_SCALE",
    "RECONNECT_DELAY",
    "optimal_overlap",
]

#: runtime settings used by every experiment
EXPERIMENT_CONFIG = P2PConfig(
    heartbeat_period=0.1,
    heartbeat_timeout=0.35,
    monitor_period=0.1,
    call_timeout=0.5,
    bootstrap_retry_delay=0.2,
    reserve_retry_period=0.2,
    checkpoint_frequency=5,   # paper §7
    backup_count=20,          # paper §7 (clamped to peers-1)
    convergence_threshold=1e-6,
    # The quiet streak must outlast a message round-trip, or a correction
    # wave still in flight lets the naive centralized detector (§5.5)
    # declare convergence prematurely: 48 x min_iteration_time ~ 29 ms
    # > the scaled worst-case RTT (~24 ms).
    stability_window=48,
    min_iteration_time=5e-4,
    iteration_overhead=2e-4,
    # epidemic control plane, scaled to the same regime: a dissemination
    # round is half a heartbeat, and a leadership silence of three
    # heartbeat-timeouts triggers the standby's takeover probe
    gossip_period=0.05,
    gossip_stale_after=0.5,
    bootstrap_retry_max=1.6,
    standby_sync_period=0.05,
    standby_takeover_timeout=0.3,
)

#: latency multiplier / bandwidth divisor preserving the paper's ratio-(4)
#: regime at ~1000x smaller problem sizes (see module docstring)
EXPERIMENT_LINK_SCALE = 20.0

#: scaled stand-in for the paper's "reconnected about 20 seconds later"
RECONNECT_DELAY = 1.0


def optimal_overlap(n: int, peers: int) -> int:
    """The stand-in for §7's "an optimal overlapping value is used for each
    n": half the strip width, clamped to the decomposition's validity bound.

    Empirically (see ``benchmarks/bench_overlap.py``) iteration counts
    decrease monotonically in the overlap up to nearly the full strip
    width; half-width captures most of the gain while keeping the inner
    solves cheap — and, like the paper's optimal values, it grows with n.
    """
    width = n // peers
    return max(0, min(width - 1, width // 2))
