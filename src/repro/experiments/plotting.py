"""Dependency-free ASCII charts for experiment series.

`ascii_chart` renders one or more (x, y) series on a character grid with
per-series markers and a legend — enough to eyeball Figure 7's shape in a
terminal or a CI log without any plotting stack.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["ascii_chart", "figure7_chart"]

MARKERS = "ox*+#@%&"


def ascii_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render labelled point series on a ``width × height`` grid.

    Points are mapped linearly into the plot area; collisions show the
    later-drawn series' marker.  Returns a multi-line string.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return "(no data to chart)"
    if width < 10 or height < 4:
        raise ValueError("chart too small")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    y_lo = min(y_lo, 0.0) if y_lo > 0 else y_lo  # anchor at zero when natural
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (label, pts) in enumerate(series.items()):
        marker = MARKERS[index % len(MARKERS)]
        for x, y in pts:
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_hi:.3g}"
    bottom_label = f"{y_lo:.3g}"
    gutter = max(len(top_label), len(bottom_label), len(y_label)) + 1
    for i, row in enumerate(grid):
        if i == 0:
            prefix = top_label.rjust(gutter)
        elif i == height - 1:
            prefix = bottom_label.rjust(gutter)
        elif i == height // 2:
            prefix = y_label.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(f"{prefix}|{''.join(row)}|")
    lines.append(
        " " * gutter + f"+{'-' * width}+"
    )
    x_axis = f"{x_lo:.3g}".ljust(width // 2) + x_label.center(0) + f"{x_hi:.3g}".rjust(width // 2)
    lines.append(" " * (gutter + 1) + x_axis)
    legend = "  ".join(
        f"{MARKERS[i % len(MARKERS)]}={label}"
        for i, label in enumerate(series)
    )
    lines.append(" " * (gutter + 1) + legend)
    return "\n".join(lines)


def figure7_chart(result, width: int = 60, height: int = 16) -> str:
    """Figure 7 as the paper draws it: time vs problem size, one series
    per disconnection count."""
    series = {}
    for d in result.disconnections:
        pts = [
            (n * n, result.times[(n, d)])
            for n in result.ns
            if (n, d) in result.times
        ]
        if pts:
            series[f"{d} disc"] = pts
    return ascii_chart(
        series,
        width=width,
        height=height,
        title="Execution time vs problem size (cf. paper Fig. 7)",
        x_label="size",
        y_label="time",
    )
