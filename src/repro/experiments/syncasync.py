"""Claim C4: synchronous vs asynchronous under identical churn.

§1/§8: "synchronous iterations would dramatically slow down the execution
in a dynamic and heterogeneous P2P network ... all the nodes involved in the
computation would stop computing when a single disconnection occurs."

Protocol: run the asynchronous JaceP2P execution with the paper's churn,
record the *exact* disconnection trace the injector executed, then replay
that identical trace against the synchronous (BSP) engine on the same host
population.  Apples to apples: same problem, same hosts, same failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps import make_poisson_app
from repro.baselines import SynchronousEngine
from repro.churn import ChurnInjector, TraceChurn
from repro.des import Simulator
from repro.exec import RunSpec, SweepEngine
from repro.experiments.config import (
    EXPERIMENT_CONFIG,
    EXPERIMENT_LINK_SCALE,
    RECONNECT_DELAY,
    optimal_overlap,
)
from repro.experiments.report import format_table
from repro.net.topology import build_testbed
from repro.util.rng import RngTree

__all__ = ["SyncAsyncResult", "sync_vs_async"]


@dataclass
class SyncAsyncResult:
    n: int
    peers: int
    disconnections: int
    async_time: float | None
    sync_time: float | None
    sync_stall_time: float = 0.0
    sync_rollbacks: int = 0
    sync_lost_iterations: int = 0
    async_recoveries: int = 0
    trace: tuple = field(default_factory=tuple)

    @property
    def sync_over_async(self) -> float:
        if not self.async_time or not self.sync_time:
            return float("nan")
        return self.sync_time / self.async_time

    def format_table(self) -> str:
        return format_table(
            ["n", "disc", "async time", "sync time", "sync/async",
             "sync stall", "sync rollbacks", "sync lost iters"],
            [[self.n, self.disconnections, self.async_time, self.sync_time,
              round(self.sync_over_async, 2), round(self.sync_stall_time, 2),
              self.sync_rollbacks, self.sync_lost_iterations]],
            title="C4: synchronous vs asynchronous under the identical churn trace",
        )


def sync_vs_async(
    n: int = 64,
    peers: int = 8,
    disconnections: int = 3,
    seed: int = 0,
    horizon: float = 900.0,
    engine: SweepEngine | None = None,
    checkpoint=None,
) -> SyncAsyncResult:
    config = EXPERIMENT_CONFIG
    engine = engine if engine is not None else SweepEngine()

    # ---- asynchronous run, recording the executed churn trace -------------
    # (driver-level rerun so we can reach into the injector: replicate the
    # driver's churn wiring here)
    from repro.p2p import build_cluster, launch_application

    # engine-routed: the churn-free window calibration is the same spec the
    # Figure-7 grid's d=0 cell uses, so a shared cache serves it for free
    calibration = engine.run(RunSpec(
        n=n, peers=peers, disconnections=0, seed=seed, config=config,
        horizon=horizon, collect=False, checkpoint=checkpoint,
    ))
    window = calibration.simulated_time or horizon

    cluster = build_cluster(
        n_daemons=peers + max(3, peers // 2), n_superpeers=3, seed=seed,
        config=config, link_scale=EXPERIMENT_LINK_SCALE,
        checkpoint=checkpoint,
    )
    overlap = optimal_overlap(n, peers)
    app = make_poisson_app(
        "poisson", n=n, num_tasks=peers, overlap=overlap,
        convergence_threshold=config.convergence_threshold,
    )
    spawner = launch_application(cluster, app)
    injector = None
    if disconnections > 0:
        from repro.churn import PaperChurn

        injector = ChurnInjector(
            cluster.sim, cluster.testbed.daemon_hosts,
            PaperChurn(disconnections, reconnect_delay=RECONNECT_DELAY),
            RngTree(seed).child("churn"), horizon=window, log=cluster.log,
            victim_filter=lambda h: (
                (d := cluster.daemons.get(h.name)) is not None
                and d.runner is not None
            ),
        )
    sim = cluster.sim
    # capture the INITIAL task->host mapping (before any replacement moves
    # tasks to spare machines): the sync baseline runs on exactly these
    while (
        spawner.register.assigned_count() < peers
        and not spawner.done.triggered
        and sim.now < horizon
    ):
        sim.run(until=sim.now + 0.05)
    initial_hosts = [
        (slot.daemon_id or "").rsplit("#", 1)[0]
        for slot in spawner.register.slots
    ]
    sim.run(until=sim.any_of([spawner.done, sim.timeout(horizon)]))
    async_time = spawner.execution_time
    trace = tuple(injector.executed) if injector else ()

    # ---- synchronous replay on an identical host population ----------------
    sim2 = Simulator()
    testbed2 = build_testbed(
        sim2, n_daemons=peers + max(3, peers // 2), n_superpeers=3,
        rng=RngTree(seed).child("testbed"), link_scale=EXPERIMENT_LINK_SCALE,
    )
    # the sync engine binds tasks to the SAME host names the async app
    # started on, so the replayed disconnections hit its participants
    used_hosts = []
    for name in initial_hosts:
        host = next((h for h in testbed2.daemon_hosts if h.name == name), None)
        used_hosts.append(host)
    fallback = [h for h in testbed2.daemon_hosts if h not in used_hosts]
    hosts2 = [h if h is not None else fallback.pop(0) for h in used_hosts]

    # the sync baseline has no failure feed: a fixed-style policy maps to
    # its coordinated-checkpoint cadence, anything else keeps the default
    sync_frequency = getattr(checkpoint, "frequency", None) \
        or config.checkpoint_frequency
    engine = SynchronousEngine(
        sim2, hosts2, app,
        checkpoint_frequency=sync_frequency,
        convergence_threshold=config.convergence_threshold,
        stability_window=config.stability_window,
        link_model=testbed2.network.link_model,
    )
    if trace:
        ChurnInjector(
            sim2, testbed2.daemon_hosts, TraceChurn(trace),
            RngTree(seed).child("replay"), horizon=window,
        )
    sim2.run(until=sim2.any_of([engine.done, sim2.timeout(horizon)]))
    sync = engine.result

    return SyncAsyncResult(
        n=n,
        peers=peers,
        disconnections=len(trace),
        async_time=async_time,
        sync_time=sync.converged_at if sync.converged else None,
        sync_stall_time=sync.stall_time,
        sync_rollbacks=sync.rollbacks,
        sync_lost_iterations=sync.lost_iterations,
        async_recoveries=len(cluster.telemetry.recoveries),
        trace=trace,
    )
