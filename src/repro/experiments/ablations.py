"""Design-choice ablations A1–A4 (see DESIGN.md's per-experiment index).

* A1 — checkpoint frequency (the JaceSave knob; paper uses 5): total time
  and rollback distance vs k, under fixed churn.
* A2 — number of backup-peers (paper uses 20): probability of a
  restart-from-zero and total time vs the count, under heavy churn.
* A3 — overlap (the §6 technique): synchronous sweep count and exchanged
  volume vs the overlap, demonstrating "iterations drop, exchanged data
  constant".
* A4 — bootstrap & failure-detection scaling: registration latency vs the
  Daemon population, and detection delay vs the heartbeat timeout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.checkpoint import FixedPolicy
from repro.exec import RunSpec, SweepEngine
from repro.experiments.config import EXPERIMENT_CONFIG, EXPERIMENT_LINK_SCALE
from repro.experiments.report import format_table
from repro.numerics import BlockDecomposition, Poisson2D, block_jacobi
from repro.p2p import build_cluster

__all__ = [
    "checkpoint_frequency_ablation",
    "backup_count_ablation",
    "overlap_ablation",
    "bootstrap_scaling",
]


@dataclass
class AblationTable:
    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)

    def format_table(self) -> str:
        return format_table(self.headers, self.rows, title=self.title)


def checkpoint_frequency_ablation(
    frequencies=(1, 2, 5, 10, 20),
    n: int = 64,
    peers: int = 8,
    disconnections: int = 3,
    seed: int = 0,
    engine: SweepEngine | None = None,
) -> AblationTable:
    """A1: total time, checkpoint traffic and recovery distance vs k."""
    engine = engine if engine is not None else SweepEngine()
    table = AblationTable(
        title=f"A1: checkpoint frequency (n={n}, {disconnections} disconnections)",
        headers=["k", "time", "checkpoints sent", "recoveries",
                 "restarts@0", "residual ok"],
    )
    runs = engine.map(
        RunSpec(
            n=n, peers=peers, disconnections=disconnections, seed=seed,
            checkpoint=FixedPolicy(count=EXPERIMENT_CONFIG.backup_count,
                                   frequency=k),
        )
        for k in frequencies
    )
    for k, run in zip(frequencies, runs):
        table.rows.append([
            k,
            run.simulated_time,
            run.checkpoints_sent,
            run.recoveries,
            run.restarts_from_zero,
            run.residual is not None and run.residual < 1e-3,
        ])
    return table


def backup_count_ablation(
    counts=(0, 1, 2, 4, 7),
    n: int = 48,
    peers: int = 8,
    disconnections: int = 5,
    seeds=(0, 1, 2),
    engine: SweepEngine | None = None,
) -> AblationTable:
    """A2: survival of checkpoints vs the number of backup-peers.

    Heavy churn; a restart-from-zero happens when every guardian of a task
    has failed (or nobody guards it at all, count=0).
    """
    engine = engine if engine is not None else SweepEngine()
    table = AblationTable(
        title=f"A2: backup-peer count (n={n}, {disconnections} disconnections, "
              f"{len(seeds)} seeds)",
        headers=["backup peers", "mean time", "recoveries",
                 "restarts@0", "restart@0 rate"],
    )
    grid = [(count, seed) for count in counts for seed in seeds]
    runs = dict(zip(grid, engine.map(
        RunSpec(
            n=n, peers=peers, disconnections=disconnections, seed=seed,
            checkpoint=FixedPolicy(count=count, frequency=2),
            collect=False,
        )
        for (count, seed) in grid
    )))
    for count in counts:
        times, recov, scratch = [], 0, 0
        for seed in seeds:
            run = runs[(count, seed)]
            if run.converged:
                times.append(run.simulated_time)
            recov += run.recoveries
            scratch += run.restarts_from_zero
        table.rows.append([
            count,
            sum(times) / len(times) if times else None,
            recov,
            scratch,
            round(scratch / recov, 3) if recov else 0,
        ])
    return table


def overlap_ablation(
    overlaps=(0, 1, 2, 3, 4),
    n: int = 64,
    peers: int = 8,
    tol: float = 1e-6,
) -> AblationTable:
    """A3: sweeps drop with overlap while the exchanged volume is constant."""
    table = AblationTable(
        title=f"A3: overlapping components (n={n}, {peers} blocks, sync sweeps)",
        headers=["overlap", "sweeps", "sent per iter (inner block)",
                 "flops total"],
    )
    prob = Poisson2D.manufactured(n)
    for o in overlaps:
        decomp = BlockDecomposition(prob.A, prob.b, nblocks=peers, line=n,
                                    overlap=o)
        run = block_jacobi(decomp, tol=tol, max_outer=20_000)
        table.rows.append([
            o,
            run.outer_iterations,
            decomp.exchange_volume(peers // 2),
            run.flops_total,
        ])
    return table


def bootstrap_scaling(
    populations=(10, 25, 50, 100),
    n_superpeers: int = 3,
    seed: int = 0,
) -> AblationTable:
    """A4: time for the whole Daemon population to register, per size."""
    table = AblationTable(
        title=f"A4: bootstrap scaling ({n_superpeers} super-peers)",
        headers=["daemons", "all registered by", "per-SP max load"],
    )
    for pop in populations:
        cluster = build_cluster(
            n_daemons=pop, n_superpeers=n_superpeers, seed=seed,
            config=EXPERIMENT_CONFIG, link_scale=EXPERIMENT_LINK_SCALE,
        )
        sim = cluster.sim
        deadline = 60.0
        while sim.now < deadline and cluster.registered_daemons() < pop:
            sim.run(until=sim.now + 0.05)
        table.rows.append([
            pop,
            round(sim.now, 3) if cluster.registered_daemons() >= pop else None,
            max(len(sp.register) for sp in cluster.superpeers),
        ])
    return table
