"""Plain-text table rendering for experiment outputs."""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "format_value"]


def format_value(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str = "",
) -> str:
    """Fixed-width text table (the 'rows/series the paper reports')."""
    cells = [[format_value(v) for v in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(h).rjust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
