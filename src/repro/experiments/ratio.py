"""Claims C1 & C3: iteration counts and the ratio-(4) mechanics vs n.

The paper (§7): "the problem for n = 2000 ... needs on average about 100
iterations to reach the global convergence, whereas for n = 5000, about 40
iterations are necessary.  This obviously shows that the number of
iterations without update is more important with a small problem than with
a larger one."

This experiment measures, per n (no churn):

* mean asynchronous iterations per task to global convergence (C1 —
  must *decrease* as n grows);
* the inflation factor over the synchronous sweep count for the same
  n/overlap — the direct quantification of "iterations that did not make
  the computation progress" (C3);
* the fraction of iterations that received no neighbour message at all
  (the paper's literal "no dependency received" reading).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exec import RunSpec, SweepEngine
from repro.experiments.config import optimal_overlap
from repro.experiments.report import format_table
from repro.numerics import BlockDecomposition, Poisson2D, block_jacobi

__all__ = ["RatioResult", "iterations_vs_n"]


@dataclass
class RatioResult:
    ns: tuple[int, ...]
    peers: int
    #: per n: (async iters/task, sync sweeps, inflation, no-message fraction,
    #: simulated time)
    rows: list[tuple[int, float, int, float, float, float]] = field(
        default_factory=list
    )

    def format_table(self) -> str:
        headers = [
            "n", "size", "async iters/task", "sync sweeps",
            "inflation", "no-msg frac", "time",
        ]
        rows = [
            [n, n * n, round(ai, 1), ss, round(infl, 2), round(nomsg, 3),
             round(t, 3)]
            for (n, ai, ss, infl, nomsg, t) in self.rows
        ]
        return format_table(
            headers, rows,
            title="C1/C3: iterations to convergence vs n (no churn)",
        )

    def async_iters(self) -> list[float]:
        return [r[1] for r in self.rows]

    def inflations(self) -> list[float]:
        return [r[3] for r in self.rows]


def iterations_vs_n(
    ns: tuple[int, ...] = (40, 64, 96, 128),
    peers: int = 8,
    seed: int = 0,
    tol: float = 1e-6,
    horizon: float = 900.0,
    engine: SweepEngine | None = None,
    checkpoint=None,
) -> RatioResult:
    engine = engine if engine is not None else SweepEngine()
    result = RatioResult(ns=tuple(ns), peers=peers)
    runs = engine.map(
        RunSpec(
            n=n, peers=peers, seed=seed, overlap=optimal_overlap(n, peers),
            convergence_threshold=tol, horizon=horizon, collect=False,
            checkpoint=checkpoint,
        )
        for n in ns
    )
    for n, run in zip(ns, runs):
        overlap = optimal_overlap(n, peers)
        prob = Poisson2D.manufactured(n)
        decomp = BlockDecomposition(prob.A, prob.b, nblocks=peers, line=n,
                                    overlap=overlap)
        sync = block_jacobi(decomp, tol=tol, max_outer=20_000)
        inflation = (
            run.mean_iterations_per_task / sync.outer_iterations
            if sync.outer_iterations
            else float("nan")
        )
        result.rows.append(
            (
                n,
                run.mean_iterations_per_task,
                sync.outer_iterations,
                inflation,
                run.useless_fraction,
                run.simulated_time if run.simulated_time else float("nan"),
            )
        )
    return result
