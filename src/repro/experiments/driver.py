"""The single-run driver: one Poisson execution on the P2P runtime.

:func:`run_poisson_on_p2p` is the atom every experiment is built from: it
assembles a cluster, launches the paper's application, optionally injects
the paper's churn protocol (random disconnections of computing peers,
reconnect after a fixed delay), drives the simulation to global convergence
and returns a fully populated :class:`RunResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps import make_poisson_app
from repro.churn import ChurnInjector, NoChurn, PaperChurn
from repro.experiments.config import (
    EXPERIMENT_CONFIG,
    EXPERIMENT_LINK_SCALE,
    RECONNECT_DELAY,
    optimal_overlap,
)
from repro.numerics import Poisson2D
from repro.obs import RunReport, Tracer, build_run_report
from repro.p2p import P2PConfig, build_cluster, launch_application
from repro.util.rng import RngTree

__all__ = ["RunResult", "run_poisson_on_p2p", "RUN_COUNTER"]


class _RunCounter:
    """Counts :func:`run_poisson_on_p2p` invocations in this process.

    The sweep engine's cache tests assert "a cache hit performs zero
    simulation work" against this counter.  Per-process: pool workers
    count their own runs.
    """

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def bump(self) -> None:
        self.count += 1


RUN_COUNTER = _RunCounter()


@dataclass
class RunResult:
    """Everything one experiment run reports."""

    n: int
    peers: int
    disconnections_requested: int
    disconnections_executed: int
    seed: int
    overlap: int
    converged: bool
    simulated_time: float | None
    total_iterations: int
    mean_iterations_per_task: float
    useless_fraction: float
    residual: float | None
    recoveries: int
    restarts_from_zero: int
    replacements: int
    checkpoints_sent: int
    data_messages: int
    #: populated only when the run was traced (``tracer=`` argument)
    run_report: RunReport | None = field(default=None, compare=False)

    def row(self) -> dict:
        return {
            "n": self.n,
            "size": self.n * self.n,
            "disc": self.disconnections_executed,
            "time": self.simulated_time,
            "iters/task": round(self.mean_iterations_per_task, 1),
            "useless": round(self.useless_fraction, 3),
            "residual": self.residual,
            "recoveries": self.recoveries,
        }

    def to_dict(self) -> dict:
        """Lossless JSON-ready dump (inverse of :meth:`from_dict`).

        The sweep engine ships results across process boundaries and the
        run cache stores them on disk in exactly this form; floats survive
        bit-for-bit (JSON round-trips Python floats exactly via repr).
        """
        out = {
            f.name: getattr(self, f.name)
            for f in self.__dataclass_fields__.values()
            if f.name != "run_report"
        }
        out["run_report"] = (
            self.run_report.to_dict() if self.run_report is not None else None
        )
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        data = dict(data)
        if data.get("run_report") is not None:
            data["run_report"] = RunReport.from_dict(data["run_report"])
        return cls(**data)


def run_poisson_on_p2p(
    n: int,
    peers: int = 8,
    disconnections: int = 0,
    seed: int = 0,
    overlap: int | None = None,
    config: P2PConfig | None = None,
    n_daemons: int | None = None,
    n_superpeers: int = 3,
    churn_window: float | None = None,
    reconnect_delay: float = RECONNECT_DELAY,
    link_scale: float = EXPERIMENT_LINK_SCALE,
    horizon: float = 900.0,
    convergence_threshold: float = 1e-6,
    collect: bool = True,
    warm_start: bool = False,
    use_cache: bool = True,
    inner_tol: float = 1e-10,
    inner_max_iter: int | None = None,
    tracer: Tracer | None = None,
) -> RunResult:
    """Run the paper's experiment once.

    ``churn_window`` is the span (simulated seconds) over which the
    requested disconnections are spread; when None and churn is requested,
    a churn-free calibration run with the same parameters measures it —
    mirroring the paper, which disconnects peers "during the execution".

    ``tracer`` enables structured tracing (:mod:`repro.obs`) for the main
    run only (the churn-calibration pre-run stays untraced, so the trace
    describes exactly one execution) and populates
    :attr:`RunResult.run_report`.

    ``use_cache=False`` forces every task through the legacy (allocating)
    decomposition and inner-solve paths — the benchmark's bypass arm; the
    numerical results and simulated time are identical either way.
    """
    RUN_COUNTER.bump()
    if peers < 1:
        raise ValueError("peers must be >= 1")
    if disconnections < 0:
        raise ValueError("disconnections must be >= 0")
    config = config or EXPERIMENT_CONFIG
    if overlap is None:
        overlap = optimal_overlap(n, peers)
    if n_daemons is None:
        n_daemons = peers + max(3, peers // 2)  # spares for replacements

    if disconnections > 0 and churn_window is None:
        calibration = run_poisson_on_p2p(
            n=n, peers=peers, disconnections=0, seed=seed, overlap=overlap,
            config=config, n_daemons=n_daemons, n_superpeers=n_superpeers,
            link_scale=link_scale, horizon=horizon,
            convergence_threshold=convergence_threshold, collect=False,
            warm_start=warm_start, use_cache=use_cache,
            inner_tol=inner_tol, inner_max_iter=inner_max_iter,
        )
        if not calibration.converged:
            return calibration
        churn_window = calibration.simulated_time

    cluster = build_cluster(
        n_daemons=n_daemons,
        n_superpeers=n_superpeers,
        seed=seed,
        config=config,
        link_scale=link_scale,
        tracer=tracer,
    )
    app = make_poisson_app(
        "poisson",
        n=n,
        num_tasks=peers,
        overlap=overlap,
        convergence_threshold=convergence_threshold,
        warm_start=warm_start,
        use_cache=use_cache,
        inner_tol=inner_tol,
        inner_max_iter=inner_max_iter,
    )
    spawner = launch_application(cluster, app)

    injector = None
    if disconnections > 0:
        model = PaperChurn(
            n_disconnections=disconnections,
            reconnect_delay=reconnect_delay,
        )
        injector = ChurnInjector(
            cluster.sim,
            cluster.testbed.daemon_hosts,
            model,
            RngTree(seed).child("churn"),
            horizon=churn_window,
            log=cluster.log,
            victim_filter=lambda h: (
                (d := cluster.daemons.get(h.name)) is not None
                and d.runner is not None
            ),
        )

    sim = cluster.sim
    sim.run(until=sim.any_of([spawner.done, sim.timeout(horizon)]))
    converged = spawner.done.triggered

    residual = None
    if collect and converged:
        proc = sim.process(spawner.collect_solution())
        sim.run(until=proc)
        x = np.zeros(n * n)
        missing = False
        for frag in proc.value.values():
            if frag is None:
                missing = True
                continue
            offset, values = frag
            x[offset : offset + len(values)] = values
        if not missing:
            residual = Poisson2D.manufactured(n).residual_norm(x)

    telemetry = cluster.telemetry
    run_report = None
    if tracer is not None:
        run_report = build_run_report(
            telemetry=telemetry,
            network=cluster.network,
            tracer=tracer,
            spawner=spawner,
            superpeers=cluster.superpeers,
            app_id=app.app_id,
        )
    return RunResult(
        n=n,
        peers=peers,
        disconnections_requested=disconnections,
        disconnections_executed=injector.disconnections if injector else 0,
        seed=seed,
        overlap=overlap,
        converged=converged,
        simulated_time=spawner.execution_time,
        total_iterations=telemetry.total_iterations,
        mean_iterations_per_task=telemetry.mean_task_iterations,
        useless_fraction=telemetry.useless_fraction,
        residual=residual,
        recoveries=len(telemetry.recoveries),
        restarts_from_zero=telemetry.restarts_from_zero,
        replacements=spawner.replacements,
        checkpoints_sent=telemetry.checkpoints_sent,
        data_messages=telemetry.data_messages_sent,
        run_report=run_report,
    )
