"""The single-run driver: one Poisson execution on the P2P runtime.

The unit of work is a :class:`~repro.exec.spec.RunSpec`: :func:`execute_spec`
assembles a cluster, launches the paper's application, optionally injects
churn (the paper's random disconnections of computing peers) and/or a
:class:`~repro.faults.FaultPlan` scenario, drives the simulation to global
convergence and returns a fully populated :class:`RunResult`.

:func:`run_poisson_on_p2p` survives as the friendly front door: call it with
``spec=`` (preferred) or with the historical keyword arguments, which it
folds into a ``RunSpec`` and runs — one code path either way.  A drift test
pins the keyword surface to the spec's fields, so the two forms cannot
diverge silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.apps import make_poisson_app
from repro.churn import ChurnInjector, PaperChurn
from repro.errors import ConfigurationError
from repro.exec.spec import RunSpec
from repro.faults import FaultInjector, FaultPlan
from repro.numerics import Poisson2D
from repro.obs import RunReport, Tracer, build_run_report
from repro.p2p import (
    P2PConfig,
    StableStore,
    build_cluster,
    launch_application,
    launch_standby,
)
from repro.util.rng import RngTree

__all__ = ["RunResult", "run_poisson_on_p2p", "execute_spec", "RUN_COUNTER"]


class _RunCounter:
    """Counts driver executions in this process.

    The sweep engine's cache tests assert "a cache hit performs zero
    simulation work" against this counter.  Per-process: pool workers
    count their own runs.
    """

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def bump(self) -> None:
        self.count += 1


RUN_COUNTER = _RunCounter()


@dataclass
class RunResult:
    """Everything one experiment run reports."""

    n: int
    peers: int
    disconnections_requested: int
    disconnections_executed: int
    seed: int
    overlap: int
    converged: bool
    simulated_time: float | None
    total_iterations: int
    mean_iterations_per_task: float
    useless_fraction: float
    residual: float | None
    recoveries: int
    restarts_from_zero: int
    replacements: int
    checkpoints_sent: int
    data_messages: int
    #: fault-plane actions executed (0 for runs without a fault plan)
    faults_executed: int = 0
    #: data payloads corrupted in transit by the fault plane
    messages_corrupted: int = 0
    #: standby promotions during the run (0 or 1; docs/gossip.md)
    takeovers: int = 0
    #: simulated time of the standby promotion (None without one)
    takeover_at: float | None = None
    #: iterations re-executed after recoveries (beyond the converged
    #: per-task frontier) — the re-work half of the wasted-work metric
    wasted_iterations: int = 0
    #: Backup payload bytes shipped to guardians — the bandwidth half
    checkpoint_bytes: int = 0
    #: boundary components discarded by the corruption filter
    components_rejected: int = 0
    #: Backups refused at recovery by the plausibility screen
    checkpoints_rejected: int = 0
    #: populated only when the run was traced (``tracer=`` argument)
    run_report: RunReport | None = field(default=None, compare=False)

    def row(self) -> dict:
        return {
            "n": self.n,
            "size": self.n * self.n,
            "disc": self.disconnections_executed,
            "time": self.simulated_time,
            "iters/task": round(self.mean_iterations_per_task, 1),
            "useless": round(self.useless_fraction, 3),
            "residual": self.residual,
            "recoveries": self.recoveries,
        }

    def to_dict(self) -> dict:
        """Lossless JSON-ready dump (inverse of :meth:`from_dict`).

        The sweep engine ships results across process boundaries and the
        run cache stores them on disk in exactly this form; floats survive
        bit-for-bit (JSON round-trips Python floats exactly via repr).
        """
        out = {
            f.name: getattr(self, f.name)
            for f in self.__dataclass_fields__.values()
            if f.name != "run_report"
        }
        out["run_report"] = (
            self.run_report.to_dict() if self.run_report is not None else None
        )
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        data = dict(data)
        if data.get("run_report") is not None:
            data["run_report"] = RunReport.from_dict(data["run_report"])
        return cls(**data)


def run_poisson_on_p2p(
    n: int | None = None,
    peers: int | None = None,
    disconnections: int | None = None,
    seed: int | None = None,
    overlap: int | None = None,
    config: P2PConfig | None = None,
    n_daemons: int | None = None,
    n_superpeers: int | None = None,
    churn_window: float | None = None,
    reconnect_delay: float | None = None,
    link_scale: float | None = None,
    horizon: float | None = None,
    convergence_threshold: float | None = None,
    collect: bool | None = None,
    warm_start: bool | None = None,
    use_cache: bool | None = None,
    inner_tol: float | None = None,
    inner_max_iter: int | None = None,
    faults: FaultPlan | None = None,
    gossip: bool | None = None,
    standby: bool | None = None,
    checkpoint=None,
    reject_corruption: bool | None = None,
    spec: RunSpec | None = None,
    tracer: Tracer | None = None,
) -> RunResult:
    """Run the paper's experiment once.

    Preferred form: ``run_poisson_on_p2p(spec=RunSpec(...))`` (or,
    equivalently, ``spec.run()``).  The keyword form is a compatibility
    shim: every non-None keyword becomes the corresponding
    :class:`~repro.exec.spec.RunSpec` field and ``None`` means "the spec's
    default" — the defaults live in exactly one place.

    ``churn_window`` is the span (simulated seconds) over which the
    requested disconnections are spread; when None and churn is requested,
    a fault-free calibration run with the same parameters measures it —
    mirroring the paper, which disconnects peers "during the execution".

    ``faults`` schedules a :class:`~repro.faults.FaultPlan` scenario
    (Super-Peer crashes, partitions, corruption, rack failures) alongside
    the run.

    ``tracer`` enables structured tracing (:mod:`repro.obs`) for the main
    run only (the calibration pre-run stays untraced, so the trace
    describes exactly one execution) and populates
    :attr:`RunResult.run_report`.

    ``use_cache=False`` forces every task through the legacy (allocating)
    decomposition and inner-solve paths — the benchmark's bypass arm; the
    numerical results and simulated time are identical either way.
    """
    overrides = {
        key: value
        for key, value in {
            "n": n, "peers": peers, "disconnections": disconnections,
            "seed": seed, "overlap": overlap, "config": config,
            "n_daemons": n_daemons, "n_superpeers": n_superpeers,
            "churn_window": churn_window, "reconnect_delay": reconnect_delay,
            "link_scale": link_scale, "horizon": horizon,
            "convergence_threshold": convergence_threshold,
            "collect": collect, "warm_start": warm_start,
            "use_cache": use_cache, "inner_tol": inner_tol,
            "inner_max_iter": inner_max_iter, "faults": faults,
            "gossip": gossip, "standby": standby,
            "checkpoint": checkpoint,
            "reject_corruption": reject_corruption,
        }.items()
        if value is not None
    }
    if spec is not None:
        if overrides:
            raise ConfigurationError(
                f"pass spec= OR keyword arguments, not both (got "
                f"{sorted(overrides)})"
            )
    else:
        if "n" not in overrides:
            raise ConfigurationError("run_poisson_on_p2p needs n= (or spec=)")
        spec = RunSpec(**overrides)
    return execute_spec(spec, tracer=tracer)


def execute_spec(spec: RunSpec, tracer: Tracer | None = None) -> RunResult:
    """Execute one normalized :class:`RunSpec` (the real driver body)."""
    RUN_COUNTER.bump()
    if spec.peers < 1:
        raise ConfigurationError("peers must be >= 1")
    if spec.disconnections < 0:
        raise ConfigurationError("disconnections must be >= 0")
    spec = spec.normalized()

    if spec.needs_calibration():
        calibration = execute_spec(spec.calibration_spec())
        if not calibration.converged:
            return calibration
        spec = replace(spec, churn_window=calibration.simulated_time)

    if spec.gossip or spec.standby:
        # the spec-level switches resolve into config flags here, so a
        # gossip-off spec's config (and every legacy caller) is untouched
        spec = replace(spec, config=spec.config.with_(
            gossip_enabled=True, standby_enabled=spec.standby,
        ))

    cluster = build_cluster(
        n_daemons=spec.n_daemons,
        n_superpeers=spec.n_superpeers,
        seed=spec.seed,
        config=spec.config,
        link_scale=spec.link_scale,
        tracer=tracer,
        checkpoint=spec.checkpoint,
    )
    app = make_poisson_app(
        "poisson",
        n=spec.n,
        num_tasks=spec.peers,
        overlap=spec.overlap,
        convergence_threshold=spec.convergence_threshold,
        warm_start=spec.warm_start,
        use_cache=spec.use_cache,
        inner_tol=spec.inner_tol,
        inner_max_iter=spec.inner_max_iter,
        reject_corruption=spec.reject_corruption,
    )
    stable_store = StableStore() if spec.standby else None
    spawner = launch_application(cluster, app, stable_store=stable_store)
    standby = None
    if spec.standby:
        standby = launch_standby(cluster, app, spawner,
                                 stable_store=stable_store)

    def computing(host) -> bool:
        daemon = cluster.daemons.get(host.name)
        return daemon is not None and daemon.runner is not None

    injector = None
    if spec.disconnections > 0:
        model = PaperChurn(
            n_disconnections=spec.disconnections,
            reconnect_delay=spec.reconnect_delay,
        )
        injector = ChurnInjector(
            cluster.sim,
            cluster.testbed.daemon_hosts,
            model,
            RngTree(spec.seed).child("churn"),
            horizon=spec.churn_window,
            log=cluster.log,
            victim_filter=computing,
        )

    fault_injector = None
    if spec.faults:
        fault_injector = FaultInjector(
            cluster.sim,
            spec.faults,
            rng=RngTree(spec.seed).child("faults"),
            cluster=cluster,
            victim_filter=computing,
        )

    sim = cluster.sim
    waiters = [spawner.done]
    if standby is not None:
        waiters.append(standby.done)
    waiters.append(sim.timeout(spec.horizon))
    sim.run(until=sim.any_of(waiters))
    # after a takeover the PROMOTED spawner owns the run: its done event,
    # register and runtime are the live ones (the primary's host is dead)
    final = spawner
    if standby is not None and standby.promoted and standby.spawner is not None:
        final = standby.spawner
    converged = final.done.triggered
    if fault_injector is not None:
        # stop injecting: pending actions must not disturb collection
        fault_injector.cancel()

    residual = None
    if spec.collect and converged:
        proc = sim.process(final.collect_solution())
        sim.run(until=proc)
        x = np.zeros(spec.n * spec.n)
        missing = False
        for frag in proc.value.values():
            if frag is None:
                missing = True
                continue
            offset, values = frag
            x[offset : offset + len(values)] = values
        if not missing:
            residual = Poisson2D.manufactured(spec.n).residual_norm(x)

    telemetry = cluster.telemetry
    run_report = None
    if tracer is not None:
        tracer.close()  # flush any streaming sink before reporting
        run_report = build_run_report(
            telemetry=telemetry,
            network=cluster.network,
            tracer=tracer,
            spawner=final,
            superpeers=cluster.superpeers,
            app_id=app.app_id,
            fault_injector=fault_injector,
        )
    replacements = sum(s.replacements for s in cluster.spawners)
    if final is not spawner:
        replacements += final.replacements
    return RunResult(
        n=spec.n,
        peers=spec.peers,
        disconnections_requested=spec.disconnections,
        disconnections_executed=injector.disconnections if injector else 0,
        seed=spec.seed,
        overlap=spec.overlap,
        converged=converged,
        simulated_time=final.execution_time,
        total_iterations=telemetry.total_iterations,
        mean_iterations_per_task=telemetry.mean_task_iterations,
        useless_fraction=telemetry.useless_fraction,
        residual=residual,
        recoveries=len(telemetry.recoveries),
        restarts_from_zero=telemetry.restarts_from_zero,
        replacements=replacements,
        checkpoints_sent=telemetry.checkpoints_sent,
        data_messages=telemetry.data_messages_sent,
        faults_executed=len(fault_injector.executed) if fault_injector else 0,
        messages_corrupted=fault_injector.corrupted if fault_injector else 0,
        takeovers=1 if (standby is not None and standby.promoted) else 0,
        takeover_at=standby.takeover_at if standby is not None else None,
        wasted_iterations=telemetry.wasted_iterations,
        checkpoint_bytes=telemetry.checkpoint_bytes,
        components_rejected=telemetry.components_rejected,
        checkpoints_rejected=telemetry.checkpoints_rejected,
        run_report=run_report,
    )
