"""Result export: experiment outputs as CSV for external plotting.

Each exporter takes the in-memory result object its experiment produced
and writes a flat CSV (header + rows) — the format a downstream gnuplot /
matplotlib / spreadsheet step actually wants, keeping the library free of
plotting dependencies.
"""

from __future__ import annotations

import csv
import io
import pathlib
from typing import Sequence

from repro.experiments.driver import RunResult
from repro.experiments.figure7 import Figure7Result
from repro.experiments.ratio import RatioResult

__all__ = [
    "rows_to_csv",
    "runs_to_csv",
    "figure7_to_csv",
    "ratio_to_csv",
    "write_csv",
]


def rows_to_csv(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render headers+rows as CSV text (RFC-4180 quoting)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow(["" if v is None else v for v in row])
    return buffer.getvalue()


def runs_to_csv(runs: Sequence[RunResult]) -> str:
    """One row per :class:`RunResult` (the raw sweep data behind Fig. 7)."""
    headers = [
        "n", "size", "peers", "overlap", "seed",
        "disconnections_requested", "disconnections_executed",
        "converged", "simulated_time", "total_iterations",
        "mean_iterations_per_task", "useless_fraction", "residual",
        "recoveries", "restarts_from_zero", "replacements",
        "checkpoints_sent", "data_messages",
    ]
    rows = [
        [
            r.n, r.n * r.n, r.peers, r.overlap, r.seed,
            r.disconnections_requested, r.disconnections_executed,
            r.converged, r.simulated_time, r.total_iterations,
            r.mean_iterations_per_task, r.useless_fraction, r.residual,
            r.recoveries, r.restarts_from_zero, r.replacements,
            r.checkpoints_sent, r.data_messages,
        ]
        for r in runs
    ]
    return rows_to_csv(headers, rows)


def figure7_to_csv(result: Figure7Result) -> str:
    """The aggregated Figure-7 grid: one row per n, one column per level."""
    headers = ["n", "size"] + [f"disc_{d}" for d in result.disconnections] + [
        "slowdown"
    ]
    rows = []
    for n in result.ns:
        rows.append(
            [n, n * n]
            + [result.times.get((n, d)) for d in result.disconnections]
            + [result.slowdown(n)]
        )
    return rows_to_csv(headers, rows)


def ratio_to_csv(result: RatioResult) -> str:
    headers = ["n", "size", "async_iters_per_task", "sync_sweeps",
               "inflation", "no_message_fraction", "time"]
    rows = [[n, n * n, ai, ss, infl, nomsg, t]
            for (n, ai, ss, infl, nomsg, t) in result.rows]
    return rows_to_csv(headers, rows)


def write_csv(text: str, path: str | pathlib.Path) -> pathlib.Path:
    """Write CSV text to ``path``, creating parent directories."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path
