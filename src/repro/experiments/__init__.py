"""``repro.experiments`` — the harness that regenerates the paper's
evaluation (§7): Figure 7, the in-text claims C1–C4 and the design-choice
ablations A1–A4 indexed in DESIGN.md.

Scaling note (documented in DESIGN.md): problems run at n ≈ 40–128 on 8
peers instead of n = 2000–5000 on 80, and the link parameters are scaled
(``link_scale``) so the compute-per-iteration / communication-per-iteration
regime — the paper's ratio (4), which its §7 analysis is entirely built on —
covers the same range.  Absolute times are simulated seconds, not 2006
wall-clock; shapes (who wins, slowdown factors, trends in n) are the
reproduction target.
"""

from repro.experiments.config import (
    EXPERIMENT_CONFIG,
    EXPERIMENT_LINK_SCALE,
    RECONNECT_DELAY,
    optimal_overlap,
)
from repro.experiments.driver import RunResult, run_poisson_on_p2p
from repro.experiments.figure7 import Figure7Result, figure7_sweep
from repro.experiments.ratio import RatioResult, iterations_vs_n
from repro.experiments.syncasync import SyncAsyncResult, sync_vs_async
from repro.experiments.ablations import (
    checkpoint_frequency_ablation,
    backup_count_ablation,
    overlap_ablation,
    bootstrap_scaling,
)
from repro.experiments.report import format_table

__all__ = [
    "EXPERIMENT_CONFIG",
    "EXPERIMENT_LINK_SCALE",
    "RECONNECT_DELAY",
    "optimal_overlap",
    "RunResult",
    "run_poisson_on_p2p",
    "Figure7Result",
    "figure7_sweep",
    "RatioResult",
    "iterations_vs_n",
    "SyncAsyncResult",
    "sync_vs_async",
    "checkpoint_frequency_ablation",
    "backup_count_ablation",
    "overlap_ablation",
    "bootstrap_scaling",
    "format_table",
]
