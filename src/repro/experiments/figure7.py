"""Figure 7: Poisson execution times vs n under 0–max disconnections.

The paper launches the application on 80 of ~100 peers, varies n from 2000
to 5000, injects 0–50 random disconnections (reconnect ≈20 s later),
checkpoints every 5 iterations with 20 backup-peers, and averages 10 runs
per point.  This sweep is the scaled replica: 8 peers of a 12-host pool,
n ∈ {40…128} with the optimal overlap per n, disconnections 0–6 (the same
per-peer disconnection density as 0–50 over 80), averaged over ``repeats``
seeds.

It also derives the paper's in-text claim C2: the max-churn slowdown factor
per n (paper: ×2 at the small end, ×2.5 at the large end — growing only
mildly with n).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exec import RunSpec, SweepEngine
from repro.experiments.driver import RunResult
from repro.experiments.report import format_table
from repro.p2p.config import P2PConfig

__all__ = ["Figure7Result", "figure7_sweep", "DEFAULT_NS", "DEFAULT_DISCONNECTIONS"]

DEFAULT_NS = (40, 64, 96, 128)
DEFAULT_DISCONNECTIONS = (0, 2, 4, 6)


@dataclass
class Figure7Result:
    """The full sweep: mean times[n][disconnections] plus raw runs."""

    ns: tuple[int, ...]
    disconnections: tuple[int, ...]
    peers: int
    repeats: int
    #: mean simulated execution time per (n, disc) cell
    times: dict[tuple[int, int], float] = field(default_factory=dict)
    runs: list[RunResult] = field(default_factory=list)

    def slowdown(self, n: int) -> float:
        """Max-churn time over churn-free time for one n (claim C2)."""
        base = self.times[(n, self.disconnections[0])]
        worst = self.times[(n, self.disconnections[-1])]
        return worst / base if base else float("nan")

    def format_table(self) -> str:
        headers = ["n", "size"] + [f"disc={d}" for d in self.disconnections] + [
            "slowdown"
        ]
        rows = []
        for n in self.ns:
            row = [n, n * n]
            row += [self.times.get((n, d)) for d in self.disconnections]
            row.append(round(self.slowdown(n), 2))
            rows.append(row)
        return format_table(
            headers,
            rows,
            title=(
                f"Figure 7 (scaled): Poisson execution times [simulated s], "
                f"{self.peers} peers, mean of {self.repeats} run(s)"
            ),
        )


def figure7_sweep(
    ns: tuple[int, ...] = DEFAULT_NS,
    disconnections: tuple[int, ...] = DEFAULT_DISCONNECTIONS,
    peers: int = 8,
    repeats: int = 2,
    base_seed: int = 0,
    config: P2PConfig | None = None,
    horizon: float = 900.0,
    engine: SweepEngine | None = None,
    checkpoint=None,
) -> Figure7Result:
    """Run the whole sweep.  The churn-free run of each (n, seed) also
    provides the churn window for that n (disconnections happen "during
    the execution"): the engine content-addresses that calibration run, so
    it is computed once per (n, seed) and shared by every churn level.

    ``engine`` selects execution: the default is serial and uncached
    (bitwise-identical to the historical in-loop version); pass
    ``SweepEngine(workers=4, cache=RunCache())`` for a process pool with
    the on-disk run cache.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    engine = engine if engine is not None else SweepEngine()
    result = Figure7Result(
        ns=tuple(ns),
        disconnections=tuple(disconnections),
        peers=peers,
        repeats=repeats,
    )
    grid = [
        (n, d, r)
        for n in ns
        for d in disconnections
        for r in range(repeats)
    ]
    runs = engine.map(
        RunSpec(
            n=n,
            peers=peers,
            disconnections=d,
            seed=base_seed + 1000 * r,
            config=config,
            horizon=horizon,
            collect=False,
            checkpoint=checkpoint,
        )
        for (n, d, r) in grid
    )
    cells: dict[tuple[int, int], list[float]] = {}
    for (n, d, _r), run in zip(grid, runs):
        result.runs.append(run)
        if run.converged:
            cells.setdefault((n, d), []).append(run.simulated_time)
    for (n, d), times in cells.items():
        result.times[(n, d)] = sum(times) / len(times)
    return result
