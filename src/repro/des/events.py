"""Event primitives for the discrete-event kernel.

An :class:`Event` is a one-shot occurrence with a value (or an exception).
Processes wait on events by ``yield``-ing them; the kernel resumes the
process when the event is *processed*.  :class:`Timeout` is the only event
the kernel schedules by time; everything else is triggered by library code
(message arrival, store put/get, process termination, ...).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.kernel import Simulator

__all__ = ["PENDING", "Event", "Timeout", "Condition", "AllOf", "AnyOf", "ConditionValue"]

#: Sentinel for "event has no value yet".
PENDING = object()

# Scheduling priorities: lower runs first at equal times.  Interrupts beat
# normal events so a killed process never executes one extra step at the
# failure instant.
URGENT = 0
NORMAL = 1


class Event:
    """A one-shot occurrence.

    States: *pending* (created), *triggered* (given a value and queued),
    *processed* (callbacks ran).  An event may only be triggered once.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_processed", "name",
                 "orphaned")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = PENDING
        self._ok = True
        self._processed = False
        self.name = name
        #: set when the sole waiting process detached (it was interrupted):
        #: rendezvous producers (stores, resources) must skip this waiter
        #: instead of handing it a value nobody will ever read
        self.orphaned = False

    # -- state inspection --------------------------------------------------

    @property
    def triggered(self) -> bool:
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event carries a value, False if it carries a failure."""
        if not self.triggered:
            raise SimulationError(f"event {self!r} not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError(f"event {self!r} not yet triggered")
        return self._value

    # -- triggering ---------------------------------------------------------

    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"event {self!r} already triggered")
        self._value = value
        self._ok = True
        self.sim._enqueue(self, delay=0.0, priority=priority)
        return self

    def fail(self, exc: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception (re-raised in the waiter)."""
        if self.triggered:
            raise SimulationError(f"event {self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() needs an exception instance")
        self._value = exc
        self._ok = False
        self.sim._enqueue(self, delay=0.0, priority=priority)
        return self

    # -- kernel hooks --------------------------------------------------------

    def _run_callbacks(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, None
        for cb in callbacks or ():
            cb(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = (
            "processed" if self._processed else "triggered" if self.triggered else "pending"
        )
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that triggers ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        super().__init__(sim, name=f"timeout({delay})")
        self.delay = float(delay)
        self._value = value
        self._ok = True
        sim._enqueue(self, delay=self.delay, priority=NORMAL)


class ConditionValue:
    """Ordered mapping of the events collected by a fired condition."""

    def __init__(self, events: list[Event]):
        self.events = events

    def __getitem__(self, ev: Event) -> Any:
        if ev not in self.events:
            raise KeyError(ev)
        return ev.value

    def __contains__(self, ev: Event) -> bool:
        return ev in self.events

    def values(self) -> list[Any]:
        return [ev.value for ev in self.events]

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConditionValue({self.events!r})"


class Condition(Event):
    """Composite event over a set of sub-events.

    Fires when ``evaluate(events, n_done)`` returns True.  Failure of any
    sub-event fails the condition immediately (fail-fast).
    """

    __slots__ = ("_events", "_done")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        self._done = 0
        for ev in self._events:
            if ev.sim is not sim:
                raise SimulationError("condition spans multiple simulators")
        if not self._events:
            self.succeed(ConditionValue([]))
            return
        for ev in self._events:
            if ev.processed:
                self._on_sub(ev)
            else:
                ev.callbacks.append(self._on_sub)

    def evaluate(self, n_done: int, n_total: int) -> bool:  # pragma: no cover
        raise NotImplementedError

    def _on_sub(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self._done += 1
        if self.evaluate(self._done, len(self._events)):
            # Use ``processed`` (not ``triggered``): a Timeout stores its
            # value at construction time, so ``triggered`` cannot tell a
            # fired timeout from a merely scheduled one.
            fired = [e for e in self._events if e.processed and e._ok]
            self.succeed(ConditionValue(fired))


class AllOf(Condition):
    """Fires when every sub-event has fired."""

    __slots__ = ()

    def evaluate(self, n_done: int, n_total: int) -> bool:
        return n_done == n_total


class AnyOf(Condition):
    """Fires when at least one sub-event has fired."""

    __slots__ = ()

    def evaluate(self, n_done: int, n_total: int) -> bool:
        return n_done >= 1
