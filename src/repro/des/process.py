"""Generator-based simulation processes.

A :class:`Process` drives a Python generator: each ``yield``-ed
:class:`~repro.des.events.Event` suspends the generator until that event is
processed, at which point the kernel resumes it with the event's value (or
throws the event's exception into it).

Processes are themselves events — they trigger when the generator returns
(value = the ``return`` value) or raises (failure).  That lets one process
``yield`` another to join it.

:class:`Interrupt` supports asynchronous cancellation: ``proc.interrupt(cause)``
throws an :class:`Interrupt` into the generator at the current simulation
time, *before* any event it was waiting on.  The churn injector uses this to
model a peer being switched off mid-computation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.des.events import Event, PENDING, URGENT
from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.kernel import Simulator

__all__ = ["Process", "Interrupt"]


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    ``cause`` carries arbitrary context (for the runtime: the failure
    reason, e.g. ``"churn"``).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        return self.args[0]


class _Initialize(Event):
    """Internal event that starts a freshly created process."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process"):
        super().__init__(sim, name="init")
        self._value = None
        self._ok = True
        self.callbacks.append(process._resume)
        sim._enqueue(self, delay=0.0, priority=URGENT)


class Process(Event):
    """A running generator inside the simulation.

    Use :meth:`repro.des.kernel.Simulator.process` to create one.
    """

    __slots__ = ("_generator", "_target", "label")

    def __init__(self, sim: "Simulator", generator: Generator, label: str = ""):
        if not hasattr(generator, "throw"):
            raise SimulationError(f"process body must be a generator, got {generator!r}")
        super().__init__(sim, name=label or getattr(generator, "__name__", "process"))
        self.label = label
        self._generator = generator
        self._target: Event | None = None
        _Initialize(sim, self)

    # -- public API ----------------------------------------------------------

    @property
    def is_alive(self) -> bool:
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a dead process raises; interrupting yourself is
        forbidden (it would corrupt the generator stack).
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self!r}")
        if self.sim._active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        tr = self.sim.tracer
        if tr.enabled:
            tr.emit(self.sim.now, "des", self.name, "process_interrupt",
                    cause=str(cause))
        failure = Event(self.sim, name="interrupt")
        failure._ok = False
        failure._value = Interrupt(cause)
        failure.callbacks.append(self._resume)
        self.sim._enqueue(failure, delay=0.0, priority=URGENT)

    # -- kernel machinery ------------------------------------------------------

    def _resume(self, trigger: Event) -> None:
        """Advance the generator with the trigger event's outcome."""
        if not self.is_alive:
            # Process already finished (e.g. interrupted while a timeout was
            # in flight and then returned); stale wakeups are ignored.
            return
        # Detach from the event we were officially waiting on: if we are
        # being interrupted, the old target may still fire later and must
        # not resume us twice.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
            if not self._target.callbacks:
                # nobody is waiting on it anymore: producers must not hand
                # it a value (see Event.orphaned)
                self._target.orphaned = True
        self._target = None

        sim = self.sim
        prev, sim._active_process = sim._active_process, self
        try:
            if trigger._ok:
                next_ev = self._generator.send(trigger._value)
            else:
                next_ev = self._generator.throw(trigger._value)
        except StopIteration as stop:
            sim._active_process = prev
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            # An unhandled Interrupt terminates the process *without* being
            # treated as an error: this is the normal way a Daemon dies.
            sim._active_process = prev
            self._value = exc
            self._ok = True
            self.sim._enqueue(self, delay=0.0, priority=URGENT)
            return
        except BaseException as exc:
            sim._active_process = prev
            if sim.strict:
                self.fail(exc)
                sim._crashed.append((self, exc))
            else:
                self.fail(exc)
            return
        sim._active_process = prev

        if not isinstance(next_ev, Event):
            exc = SimulationError(
                f"process {self.name!r} yielded {next_ev!r}; processes must yield events"
            )
            self._generator.close()
            self.fail(exc)
            return
        if next_ev.sim is not self.sim:
            self._generator.close()
            self.fail(SimulationError("yielded an event from a different simulator"))
            return
        if next_ev.processed:
            # Already-processed events resume the waiter immediately (next
            # kernel step) with the stored value.
            relay = Event(self.sim, name="relay")
            relay._ok = next_ev._ok
            relay._value = next_ev._value
            relay.callbacks.append(self._resume)
            self.sim._enqueue(relay, delay=0.0, priority=URGENT)
            self._target = relay
        else:
            next_ev.callbacks.append(self._resume)
            self._target = next_ev

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "alive" if self.is_alive else "dead"
        return f"<Process {self.name!r} {state}>"
