"""Waitable containers: stores (mailboxes) and counted resources.

:class:`Store` is the message-queue primitive the transport layer builds on:
producers ``put`` items, consumers ``yield store.get()``.  Gets are served
FIFO.  :class:`PriorityStore` serves the smallest item first (used by the
runtime for control-before-data message ordering).  :class:`Resource` is a
counting semaphore (used e.g. to model a Daemon's single-task occupancy).
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any

from repro.des.events import Event
from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.kernel import Simulator

__all__ = ["Store", "PriorityStore", "Resource"]


class Store:
    """Unbounded-by-default FIFO store.

    ``capacity`` bounds the number of buffered items; a ``put`` beyond
    capacity raises (the simulated network never applies backpressure — a
    bounded mailbox models a drop-tail queue, and callers decide the drop
    policy).
    """

    def __init__(self, sim: "Simulator", capacity: float = float("inf"), name: str = ""):
        if capacity <= 0:
            raise SimulationError("store capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.items: list[Any] = []
        self._getters: list[Event] = []
        self.put_count = 0
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.items)

    def _pop_item(self) -> Any:
        return self.items.pop(0)

    def _push_item(self, item: Any) -> None:
        self.items.append(item)

    def try_put(self, item: Any) -> bool:
        """Deliver ``item``; returns False (and counts a drop) when full."""
        self.put_count += 1
        while self._getters:
            getter = self._getters.pop(0)
            if getter.triggered or getter.orphaned:
                continue  # canceled/interrupted waiter: must not eat items
            getter.succeed(item)
            return True
        if len(self.items) >= self.capacity:
            self.dropped += 1
            return False
        self._push_item(item)
        return True

    def put(self, item: Any) -> None:
        """Deliver ``item`` or raise if the mailbox is full."""
        if not self.try_put(item):
            raise SimulationError(f"store {self.name!r} overflow (capacity={self.capacity})")

    def get(self) -> Event:
        """Return an event that fires with the next available item."""
        ev = Event(self.sim, name=f"get({self.name})")
        if self.items:
            ev.succeed(self._pop_item())
        else:
            self._getters.append(ev)
        return ev

    def has_live_getter(self) -> bool:
        """True when at least one waiter would consume a ``put`` right now
        (pending, not orphaned by an interrupt)."""
        for getter in self._getters:
            if not getter.triggered and not getter.orphaned:
                return True
        return False

    def get_nowait(self) -> Any | None:
        """Pop an item if one is buffered, else None (non-blocking)."""
        if self.items:
            return self._pop_item()
        return None

    def drain(self) -> list[Any]:
        """Remove and return all buffered items (non-blocking)."""
        out, self.items = self.items, []
        return out


class PriorityStore(Store):
    """Store that always yields its smallest buffered item first.

    Items must be mutually orderable; use ``(priority, seq, payload)``
    tuples to avoid comparing payloads.
    """

    def _pop_item(self) -> Any:
        return heapq.heappop(self.items)

    def _push_item(self, item: Any) -> None:
        heapq.heappush(self.items, item)


class Resource:
    """Counting semaphore with FIFO queuing.

    >>> res = Resource(sim, slots=1)
    >>> def user(env):
    ...     yield res.acquire()
    ...     try:
    ...         yield env.timeout(1)
    ...     finally:
    ...         res.release()
    """

    def __init__(self, sim: "Simulator", slots: int = 1, name: str = ""):
        if slots < 1:
            raise SimulationError("resource needs at least one slot")
        self.sim = sim
        self.slots = slots
        self.in_use = 0
        self.name = name
        self._waiters: list[Event] = []

    @property
    def available(self) -> int:
        return self.slots - self.in_use

    def acquire(self) -> Event:
        ev = Event(self.sim, name=f"acquire({self.name})")
        if self.in_use < self.slots:
            self.in_use += 1
            ev.succeed(self)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self.in_use <= 0:
            raise SimulationError(f"release() of idle resource {self.name!r}")
        while self._waiters:
            waiter = self._waiters.pop(0)
            if waiter.triggered or waiter.orphaned:
                continue  # interrupted while queueing: skip, not starve
            waiter.succeed(self)  # hand the slot over without freeing it
            return
        self.in_use -= 1
