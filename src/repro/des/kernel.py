"""The simulation kernel: a deterministic event loop.

The heap orders events by ``(time, priority, sequence)``.  The sequence
number makes simultaneous events process in creation order, which removes
every source of nondeterminism other than the seeded RNG streams.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, Generator, Iterable

from repro.des.events import NORMAL, AllOf, AnyOf, Event, Timeout
from repro.des.process import Process
from repro.errors import SimulationError
from repro.obs.trace import NULL_TRACER, Tracer

__all__ = ["Simulator", "TimerWheel", "ScheduledCall"]


class ScheduledCall:
    """A bare scheduled callback: the fire-once / no-waiters fast lane.

    The dominant kernel citizens at swarm scale are one-shot deferred
    calls that nothing ever waits on (message deliveries, batch sweeps).
    A full :class:`~repro.des.events.Timeout` pays for machinery they
    never use — a callbacks list, a value slot, a closure per call.  A
    ``ScheduledCall`` is just ``(fn, args)`` plus a tombstone flag,
    duck-typing the one kernel hook (``_run_callbacks``) the event loop
    invokes.

    Cancellation is *lazy*: :meth:`cancel` sets the tombstone and the
    kernel skips the entry when it pops — no heap surgery, no linear
    scans.  Tombstoned entries therefore occupy heap slots only until
    their original fire time, which bounds heap growth under churn.

    Instances scheduled through the kernel's internal pooled entrypoint
    are recycled onto a free list after firing; handles returned by the
    public :meth:`Simulator.call_later` are never recycled (the caller
    may keep them to ``cancel()`` later).
    """

    __slots__ = ("sim", "fn", "args", "cancelled", "_recycle")

    def __init__(self, sim: "Simulator", fn: Callable | None, args: tuple,
                 recycle: bool):
        self.sim = sim
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._recycle = recycle

    def cancel(self) -> None:
        """Tombstone this call: it will be skipped (and reclaimed) at its
        scheduled fire time."""
        self.cancelled = True

    # -- kernel hook (duck-types Event._run_callbacks) ----------------------

    def _run_callbacks(self) -> None:
        if not self.cancelled:
            self.fn(*self.args)
        if self._recycle:
            self.fn = None
            self.args = ()
            self.sim._call_pool.append(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "cancelled" if self.cancelled else "scheduled"
        return f"<ScheduledCall {getattr(self.fn, '__name__', self.fn)} {state}>"


class Simulator:
    """Discrete-event simulator.

    Parameters
    ----------
    start:
        Initial simulation time (seconds).
    strict:
        When True (default), an uncaught exception inside a process aborts
        :meth:`run` by re-raising it — silent process crashes hide protocol
        bugs.  Unhandled :class:`~repro.des.process.Interrupt` is *not* an
        error (it is the normal way churn kills a peer).
    tracer:
        The observability trace bus (:mod:`repro.obs`).  Defaults to the
        no-op :data:`~repro.obs.trace.NULL_TRACER`; every layer built on
        this kernel reads ``sim.tracer`` at emit time, so attaching a
        recording :class:`~repro.obs.trace.Tracer` (before or after
        construction) turns the whole stack's instrumentation on.
    """

    def __init__(
        self, start: float = 0.0, strict: bool = True, tracer: Tracer | None = None
    ):
        self.now = float(start)
        self.strict = strict
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Process | None = None
        self._crashed: list[tuple[Process, BaseException]] = []
        self.event_count = 0  # processed events, for micro-benchmarks
        #: open callback batches keyed by exact fire time (see
        #: :meth:`call_later_batched`)
        self._batches: dict[float, list[tuple[Callable, tuple]]] = {}
        self.batched_calls = 0  # callbacks that shared a heap entry
        #: free list of recycled :class:`ScheduledCall` entries (the
        #: fire-once/no-callback pool; see :meth:`_call_later_pooled`)
        self._call_pool: list[ScheduledCall] = []

    # -- factory helpers -------------------------------------------------------

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, label: str = "") -> Process:
        proc = Process(self, generator, label=label)
        tr = self.tracer
        if tr.enabled:
            tr.emit(self.now, "des", proc.name, "process_spawn")
        return proc

    def call_later(self, delay: float, fn, *args) -> ScheduledCall:
        """Schedule a bare callback ``fn(*args)`` after ``delay`` seconds.

        A lightweight alternative to spawning a :class:`Process` for
        straight-line deferred work (e.g. a message delivery): one heap
        entry, no generator, no initialize/completion events.  The
        callback runs with ``now`` advanced to the fire time, exactly like
        a process resumed by a :class:`Timeout` of the same delay.

        Returns the :class:`ScheduledCall` handle; ``handle.cancel()``
        tombstones the call (skipped at fire time — no heap surgery).
        The handle is not an :class:`~repro.des.events.Event` and cannot
        be ``yield``-ed; use :meth:`timeout` when a process must wait.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        call = ScheduledCall(self, fn, args, recycle=False)
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, NORMAL, self._seq, call))
        return call

    def _call_later_pooled(self, delay: float, fn: Callable, args: tuple) -> None:
        """Internal :meth:`call_later` without a handle: the entry comes
        from (and returns to) the free-list pool.  Only for callers that
        never retain a reference — the object is recycled the moment it
        fires."""
        pool = self._call_pool
        if pool:
            call = pool.pop()
            call.fn = fn
            call.args = args
            call.cancelled = False
        else:
            call = ScheduledCall(self, fn, args, recycle=True)
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, NORMAL, self._seq, call))

    def call_later_batched(self, delay: float, fn: Callable, *args) -> None:
        """Schedule ``fn(*args)`` after ``delay``, sharing one heap entry
        with every other batched callback that lands on the *exact same*
        fire time.

        Same-timestamp bursts (10 000 heartbeats firing on one timer-wheel
        slot, a broadcast fan-out, ...) would otherwise each pay a heap
        push/pop; a batch pays one.  Callbacks inside a batch run in
        scheduling order.  Relative order against *other* events at the
        same timestamp follows the batch's (single) sequence number — use
        :meth:`call_later` when interleaving with unbatched same-time
        events matters.

        .. warning:: batches are keyed by the **bit-exact** float fire
           time ``now + delay``.  Two callbacks whose fire times are
           mathematically equal but differ in the last ulp (e.g.
           ``0.1 + 0.2`` vs ``0.3``) land in *different* batches, each
           with its own heap entry, and execute in batch-creation order —
           deterministic, but not coalesced.  Producers that want
           coalescing must compute fire times identically (the
           :class:`TimerWheel` quantizes to slot boundaries for exactly
           this reason).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        when = self.now + delay
        batch = self._batches.get(when)
        if batch is None:
            batch = []
            self._batches[when] = batch
            self._call_later_pooled(delay, self._run_batch, (when,))
        else:
            self.batched_calls += 1
        batch.append((fn, args))

    def _run_batch(self, when: float) -> None:
        for fn, args in self._batches.pop(when):
            fn(*args)

    def timer_wheel(self, slot_width: float) -> "TimerWheel":
        """Create a :class:`TimerWheel` with slots of ``slot_width`` seconds."""
        return TimerWheel(self, slot_width)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    @property
    def active_process(self) -> Process | None:
        return self._active_process

    # -- scheduling -------------------------------------------------------------

    def _enqueue(self, event: Event, delay: float, priority: int) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if the heap is empty."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap:
            raise SimulationError("step() on an empty schedule")
        when, _prio, _seq, event = heapq.heappop(self._heap)
        if when < self.now:  # pragma: no cover - defensive
            raise SimulationError("event heap went backwards")
        self.now = when
        event._run_callbacks()
        self.event_count += 1
        if self.strict and self._crashed:
            self._raise_crashed()

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the schedule drains, a deadline passes, or an event fires.

        * ``until=None`` — run to exhaustion.
        * ``until=<float>`` — run while events are scheduled strictly before
          the deadline, then set ``now`` to the deadline.
        * ``until=<Event>`` — run until that event is processed; returns its
          value (re-raising if it failed).
        """
        # The three drain loops below are :meth:`step` unrolled with the
        # heap, pop function, and crash list hoisted into locals, so the
        # per-event cost is a couple of attribute writes instead of half
        # a dozen reads — at a million-plus events per run this is worth
        # seconds of wall-clock.  ``event_count`` is updated *per event*
        # (not batched into a local): callbacks observe it live, and
        # deterministic consumers seed RNG streams from it mid-run.
        heap = self._heap
        pop = heapq.heappop
        crashed = self._crashed
        strict = self.strict

        if until is None:
            while heap:
                when, _prio, _seq, event = pop(heap)
                self.now = when
                event._run_callbacks()
                self.event_count += 1
                if strict and crashed:
                    self._raise_crashed()
            return None

        if isinstance(until, Event):
            sentinel = until
            if sentinel.sim is not self:
                raise SimulationError("until-event belongs to a different simulator")
            while not sentinel._processed:
                if not heap:
                    raise SimulationError(
                        "schedule drained before the until-event fired (deadlock?)"
                    )
                when, _prio, _seq, event = pop(heap)
                self.now = when
                event._run_callbacks()
                self.event_count += 1
                if strict and crashed:
                    self._raise_crashed()
            if not sentinel._ok:
                raise sentinel._value
            return sentinel._value

        deadline = float(until)
        if deadline < self.now:
            raise SimulationError(f"deadline {deadline} is in the past (now={self.now})")
        while heap and heap[0][0] <= deadline:
            when, _prio, _seq, event = pop(heap)
            self.now = when
            event._run_callbacks()
            self.event_count += 1
            if strict and crashed:
                self._raise_crashed()
        self.now = deadline
        return None

    def _raise_crashed(self) -> None:
        """Abort the run on the first strict-mode process crash."""
        proc, exc = self._crashed[0]
        raise SimulationError(
            f"process {proc.name!r} crashed at t={self.now}: {exc!r}"
        ) from exc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Simulator t={self.now} queued={len(self._heap)}>"


class _WheelEntry:
    """One periodic timer registered on a :class:`TimerWheel`."""

    __slots__ = ("fn", "args", "cancelled")

    def __init__(self, fn: Callable, args: tuple):
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class TimerWheel:
    """A slotted timer: many timers, one heap entry per slot.

    Timers are quantized to slot boundaries (multiples of ``slot_width``)
    and every timer due in the same slot fires from a single kernel event,
    in registration order.  This is the swarm-scale replacement for
    one-DES-process-per-Daemon heartbeating: 10 000 Daemons on a wheel
    cost one heap entry and one callback sweep per heartbeat period
    instead of 10 000 generator resumptions, Timeout allocations and heap
    operations.

    Two timer kinds:

    * :meth:`at` / :meth:`after` — one-shot callbacks, rounded *up* to the
      next slot boundary (a timer never fires early);
    * :meth:`every` — periodic callbacks fired on every slot boundary
      while registered; the callback deregisters itself by returning
      ``False`` (or via the returned entry's ``cancel()``).

    Determinism: slots fire through the ordinary event heap, callbacks
    within a slot run in registration order, and entries registered while
    a slot is firing first run on the *next* boundary.
    """

    def __init__(self, sim: Simulator, slot_width: float):
        if slot_width <= 0:
            raise SimulationError(f"slot_width must be positive, got {slot_width}")
        self.sim = sim
        self.slot_width = float(slot_width)
        self._oneshot: dict[int, list[tuple[Callable, tuple]]] = {}
        self._periodic: list[_WheelEntry] = []
        self._armed: set[int] = set()
        self.slots_fired = 0
        self.timers_fired = 0

    # -- registration -------------------------------------------------------

    def _slot_of(self, time: float) -> int:
        """Index of the first slot boundary at or after ``time``."""
        slot = math.ceil(time / self.slot_width)
        # float fuzz: ceil(3.0000000000000004/1.0) must stay 3, not 4
        if (slot - 1) * self.slot_width >= time - 1e-12 * max(1.0, abs(time)):
            slot -= 1
        return slot

    def at(self, time: float, fn: Callable, *args) -> None:
        """Fire ``fn(*args)`` at the first slot boundary >= ``time``."""
        if time < self.sim.now:
            raise SimulationError(f"cannot schedule into the past (t={time})")
        slot = self._slot_of(time)
        self._oneshot.setdefault(slot, []).append((fn, args))
        self._arm(slot)

    def after(self, delay: float, fn: Callable, *args) -> None:
        """Fire ``fn(*args)`` at the first slot boundary >= now + ``delay``."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.at(self.sim.now + delay, fn, *args)

    def every(self, fn: Callable, *args) -> _WheelEntry:
        """Fire ``fn(*args)`` on every slot boundary, starting with the next.

        ``fn`` returning ``False`` removes the entry (any other return
        value keeps it); the returned handle's ``cancel()`` does the same
        from outside.
        """
        entry = _WheelEntry(fn, args)
        self._periodic.append(entry)
        self._arm(self._next_boundary())
        return entry

    def _next_boundary(self) -> int:
        """The next slot boundary strictly after ``now`` (periodic timers
        registered exactly on a boundary first fire one slot later)."""
        return self._slot_of(self.sim.now) + 1 if self._on_boundary() \
            else self._slot_of(self.sim.now)

    def _on_boundary(self) -> bool:
        slot = self._slot_of(self.sim.now)
        return abs(slot * self.slot_width - self.sim.now) <= \
            1e-12 * max(1.0, abs(self.sim.now))

    # -- firing -------------------------------------------------------------

    def _arm(self, slot: int) -> None:
        if slot in self._armed:
            return
        self._armed.add(slot)
        delay = max(0.0, slot * self.slot_width - self.sim.now)
        self.sim.call_later_batched(delay, self._fire, slot)

    def _fire(self, slot: int) -> None:
        self._armed.discard(slot)
        self.slots_fired += 1
        if self._periodic:
            survivors: list[_WheelEntry] = []
            snapshot = self._periodic
            # entries registered by a firing callback land in a fresh list
            # and first fire on the NEXT boundary
            self._periodic = []
            for entry in snapshot:
                if entry.cancelled:
                    continue
                self.timers_fired += 1
                if entry.fn(*entry.args) is False:
                    entry.cancelled = True
                    continue
                survivors.append(entry)
            self._periodic = survivors + self._periodic
        for fn, args in self._oneshot.pop(slot, ()):
            self.timers_fired += 1
            fn(*args)
        if self._periodic:
            self._arm(slot + 1)

    def __len__(self) -> int:
        """Live periodic entries (cancelled ones are swept on firing)."""
        return sum(not e.cancelled for e in self._periodic)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<TimerWheel width={self.slot_width} periodic={len(self)} "
                f"fired={self.timers_fired}>")
