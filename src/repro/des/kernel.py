"""The simulation kernel: a deterministic event loop.

The heap orders events by ``(time, priority, sequence)``.  The sequence
number makes simultaneous events process in creation order, which removes
every source of nondeterminism other than the seeded RNG streams.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, Iterable

from repro.des.events import AllOf, AnyOf, Event, Timeout
from repro.des.process import Process
from repro.errors import SimulationError
from repro.obs.trace import NULL_TRACER, Tracer

__all__ = ["Simulator"]


class Simulator:
    """Discrete-event simulator.

    Parameters
    ----------
    start:
        Initial simulation time (seconds).
    strict:
        When True (default), an uncaught exception inside a process aborts
        :meth:`run` by re-raising it — silent process crashes hide protocol
        bugs.  Unhandled :class:`~repro.des.process.Interrupt` is *not* an
        error (it is the normal way churn kills a peer).
    tracer:
        The observability trace bus (:mod:`repro.obs`).  Defaults to the
        no-op :data:`~repro.obs.trace.NULL_TRACER`; every layer built on
        this kernel reads ``sim.tracer`` at emit time, so attaching a
        recording :class:`~repro.obs.trace.Tracer` (before or after
        construction) turns the whole stack's instrumentation on.
    """

    def __init__(
        self, start: float = 0.0, strict: bool = True, tracer: Tracer | None = None
    ):
        self.now = float(start)
        self.strict = strict
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Process | None = None
        self._crashed: list[tuple[Process, BaseException]] = []
        self.event_count = 0  # processed events, for micro-benchmarks

    # -- factory helpers -------------------------------------------------------

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, label: str = "") -> Process:
        proc = Process(self, generator, label=label)
        tr = self.tracer
        if tr.enabled:
            tr.emit(self.now, "des", proc.name, "process_spawn")
        return proc

    def call_later(self, delay: float, fn, *args) -> Timeout:
        """Schedule a bare callback ``fn(*args)`` after ``delay`` seconds.

        A lightweight alternative to spawning a :class:`Process` for
        straight-line deferred work (e.g. a message delivery): one heap
        entry, no generator, no initialize/completion events.  The
        callback runs with ``now`` advanced to the fire time, exactly like
        a process resumed by a :class:`Timeout` of the same delay.
        """
        ev = Timeout(self, delay)
        ev.callbacks.append(lambda _ev: fn(*args))
        return ev

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    @property
    def active_process(self) -> Process | None:
        return self._active_process

    # -- scheduling -------------------------------------------------------------

    def _enqueue(self, event: Event, delay: float, priority: int) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if the heap is empty."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap:
            raise SimulationError("step() on an empty schedule")
        when, _prio, _seq, event = heapq.heappop(self._heap)
        if when < self.now:  # pragma: no cover - defensive
            raise SimulationError("event heap went backwards")
        self.now = when
        event._run_callbacks()
        self.event_count += 1
        if self.strict and self._crashed:
            proc, exc = self._crashed[0]
            raise SimulationError(
                f"process {proc.name!r} crashed at t={self.now}: {exc!r}"
            ) from exc

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the schedule drains, a deadline passes, or an event fires.

        * ``until=None`` — run to exhaustion.
        * ``until=<float>`` — run while events are scheduled strictly before
          the deadline, then set ``now`` to the deadline.
        * ``until=<Event>`` — run until that event is processed; returns its
          value (re-raising if it failed).
        """
        if until is None:
            while self._heap:
                self.step()
            return None

        if isinstance(until, Event):
            sentinel = until
            if sentinel.sim is not self:
                raise SimulationError("until-event belongs to a different simulator")
            while not sentinel.processed:
                if not self._heap:
                    raise SimulationError(
                        "schedule drained before the until-event fired (deadlock?)"
                    )
                self.step()
            if not sentinel._ok:
                raise sentinel._value
            return sentinel._value

        deadline = float(until)
        if deadline < self.now:
            raise SimulationError(f"deadline {deadline} is in the past (now={self.now})")
        while self._heap and self._heap[0][0] <= deadline:
            self.step()
        self.now = deadline
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Simulator t={self.now} queued={len(self._heap)}>"
