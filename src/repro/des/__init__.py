"""``repro.des`` — a deterministic discrete-event simulation kernel.

This is a self-contained, SimPy-style kernel (generator processes yielding
events) written from scratch for this reproduction.  Everything above it —
the network substrate, the RMI layer, the JaceP2P runtime — is expressed as
processes scheduled by :class:`Simulator`.

Design goals:

* **Determinism** — ties in the event heap break by a monotonically
  increasing sequence number, never by object identity, so two runs of the
  same program produce identical schedules.
* **Interrupts** — host failures are delivered to compute processes as
  :class:`Interrupt` exceptions, which is how the churn injector kills a
  Daemon mid-iteration.
* **Cheap mailboxes** — :class:`Store` implements the put/get rendezvous used
  for message queues.

Example
-------
>>> from repro.des import Simulator
>>> sim = Simulator()
>>> def proc(env):
...     yield env.timeout(3.0)
...     return "done"
>>> p = sim.process(proc(sim))
>>> sim.run()
>>> sim.now, p.value
(3.0, 'done')
"""

from repro.des.events import Event, Timeout, AllOf, AnyOf, ConditionValue
from repro.des.process import Process, Interrupt
from repro.des.kernel import Simulator, TimerWheel
from repro.des.resources import Store, Resource, PriorityStore
from repro.des.monitor import Probe, PeriodicSampler

__all__ = [
    "Simulator",
    "TimerWheel",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "ConditionValue",
    "Process",
    "Interrupt",
    "Store",
    "PriorityStore",
    "Resource",
    "Probe",
    "PeriodicSampler",
]
