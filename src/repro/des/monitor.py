"""Measurement probes for simulations.

:class:`Probe` accumulates scalar observations with timestamps;
:class:`PeriodicSampler` runs as a process and samples a callable at a fixed
simulated period (e.g. queue depths, number of alive peers).

Probes can register themselves with a :class:`repro.obs.MetricsRegistry`,
mirroring every observation into a registry histogram so probe summaries
appear in ``registry.snapshot()`` alongside the runtime's own metrics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.util.stats import OnlineStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.kernel import Simulator
    from repro.obs.metrics import MetricsRegistry

__all__ = ["Probe", "PeriodicSampler"]


class Probe:
    """Timestamped scalar series with online summary statistics.

    ``keep_series=False`` keeps only the summary (for memory-bound runs):
    no per-observation storage at all — ``times``/``values`` stay empty on
    *every* path, while ``last()`` and the summary stats remain exact.

    ``registry`` optionally registers this probe as a
    :class:`~repro.obs.metrics.Histogram` named ``probe_<name>``; each
    observation is mirrored into it.
    """

    def __init__(
        self,
        name: str,
        keep_series: bool = True,
        registry: "MetricsRegistry | None" = None,
    ):
        self.name = name
        self.keep_series = keep_series
        self.times: list[float] = []
        self.values: list[float] = []
        self.stats = OnlineStats()
        self._last: float | None = None
        self._metric = (
            registry.histogram(f"probe_{name}", help=f"observations of probe {name!r}")
            if registry is not None
            else None
        )

    def observe(self, time: float, value: float) -> None:
        value = float(value)
        self.stats.add(value)
        self._last = value
        if self._metric is not None:
            self._metric.observe(value)
        if self.keep_series:
            self.times.append(float(time))
            self.values.append(value)

    def last(self) -> float | None:
        """The most recent observation (kept in both storage modes)."""
        return self._last

    def __len__(self) -> int:
        return self.stats.count

    def as_dict(self) -> dict:
        return {"name": self.name, **self.stats.as_dict()}


class PeriodicSampler:
    """Samples ``fn()`` every ``period`` simulated seconds into a probe.

    ``keep_series`` and ``registry`` are forwarded to the underlying
    :class:`Probe` — pass ``keep_series=False`` for memory-bound runs
    (previously the sampler always stored the full series regardless).
    """

    def __init__(
        self,
        sim: "Simulator",
        fn: Callable[[], float],
        period: float,
        name: str = "sampler",
        horizon: float = float("inf"),
        keep_series: bool = True,
        registry: "MetricsRegistry | None" = None,
    ):
        if period <= 0:
            raise ValueError("sampling period must be positive")
        self.probe = Probe(name, keep_series=keep_series, registry=registry)
        self._fn = fn
        self._period = period
        self._horizon = horizon
        self.process = sim.process(self._run(sim), label=f"sampler:{name}")

    def _run(self, sim: "Simulator"):
        while sim.now < self._horizon:
            self.probe.observe(sim.now, float(self._fn()))
            yield sim.timeout(self._period)
