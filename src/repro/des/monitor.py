"""Measurement probes for simulations.

:class:`Probe` accumulates scalar observations with timestamps;
:class:`PeriodicSampler` runs as a process and samples a callable at a fixed
simulated period (e.g. queue depths, number of alive peers).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.util.stats import OnlineStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.kernel import Simulator

__all__ = ["Probe", "PeriodicSampler"]


class Probe:
    """Timestamped scalar series with online summary statistics.

    ``keep_series=False`` keeps only the summary (for memory-bound runs).
    """

    def __init__(self, name: str, keep_series: bool = True):
        self.name = name
        self.keep_series = keep_series
        self.times: list[float] = []
        self.values: list[float] = []
        self.stats = OnlineStats()

    def observe(self, time: float, value: float) -> None:
        self.stats.add(value)
        if self.keep_series:
            self.times.append(float(time))
            self.values.append(float(value))

    def last(self) -> float | None:
        return self.values[-1] if self.values else None

    def __len__(self) -> int:
        return self.stats.count

    def as_dict(self) -> dict:
        return {"name": self.name, **self.stats.as_dict()}


class PeriodicSampler:
    """Samples ``fn()`` every ``period`` simulated seconds into a probe."""

    def __init__(
        self,
        sim: "Simulator",
        fn: Callable[[], float],
        period: float,
        name: str = "sampler",
        horizon: float = float("inf"),
    ):
        if period <= 0:
            raise ValueError("sampling period must be positive")
        self.probe = Probe(name)
        self._fn = fn
        self._period = period
        self._horizon = horizon
        self.process = sim.process(self._run(sim), label=f"sampler:{name}")

    def _run(self, sim: "Simulator"):
        while sim.now < self._horizon:
            self.probe.observe(sim.now, float(self._fn()))
            yield sim.timeout(self._period)
