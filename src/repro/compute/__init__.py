"""Batched compute plane: cohort-vectorized block solves.

See :mod:`repro.compute.plane` for the architecture and
:mod:`repro.compute.batched` for the bitwise-safe kernels.
"""

from repro.compute.batched import (DIRECT_CHUNK, batched_cg,
                                   chunked_direct_solve, csr_matmat_into,
                                   panel_probe)
from repro.compute.plane import Cohort, CohortMember, ComputePlane

__all__ = ["ComputePlane", "Cohort", "CohortMember", "DIRECT_CHUNK",
           "batched_cg", "chunked_direct_solve", "csr_matmat_into",
           "panel_probe"]
