"""The batched compute plane: cohort-vectorized inner solves.

A :class:`ComputePlane` is a cluster-wide *wall-clock* object: it never
touches the DES.  Task runners whose tasks expose the
``begin_step``/``finish_step`` protocol (:class:`repro.p2p.task.StepPlan`)
register a :class:`CohortMember` per live task; members whose operators hold
byte-identical matrices share one :class:`Cohort` — one LU factorization,
one set of preallocated SoA work arrays, one batching queue.

The scheduling trick is **lazy deferral**: when an inner solve's simulated
duration is known *before* the solve runs (direct solves are analytically
costed; CG solves whose worst-case cost is still pinned to the
``min_iteration_time`` floor), the runner charges the DES timeout
immediately and the numeric work is parked as a cohort ticket.  The first
observer of any deferred result — normally a runner waking from its
iteration timeout, or ``halt``/``fetch_solution`` arriving mid-sleep —
flushes the whole cohort in one batched call.  Because deferral never
changes a duration, the event sequence, simulated times and results are
identical to the eager path; only *when in wall-clock* the arithmetic runs
moves.

Direct flushes run in one of two modes:

* ``"auto"`` (default): singleton tickets use the legacy single-vector
  solve; larger batches run a one-time per-cohort :func:`panel_probe` and
  use stacked multi-RHS panels only when the probe proves them bitwise
  equal to the 1-D path (otherwise a per-column 1-D loop — still one
  shared factorization).
* ``"panel"``: always stack (the benchmark's throughput arm; honest about
  not being bitwise-comparable to the 1-D path in all size regimes).

Cross-cutting: a per-member memo of the last solve replays identical
``(rhs, x0, tol, max_iter)`` requests — the asynchronous "useless
iteration" pattern where no fresh neighbour data arrived — without
re-solving (:data:`HOTPATH.solve_memo`).
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.numerics.cg import (CgResult, cg_flops_estimate,
                               direct_flops_estimate)
from repro.util.hotpath import HOTPATH

from repro.compute.batched import (DIRECT_CHUNK, batched_cg,
                                   chunked_direct_solve, panel_probe)

__all__ = ["ComputePlane", "Cohort", "CohortMember"]


class CohortMember:
    """One task runner's seat in a cohort."""

    __slots__ = ("cohort", "pending", "ready", "memo_key", "memo_result")

    def __init__(self, cohort: "Cohort"):
        self.cohort = cohort
        #: the deferred plan awaiting the next cohort flush (or None)
        self.pending = None
        #: the flushed result awaiting collection (or None)
        self.ready: CgResult | None = None
        self.memo_key = None
        self.memo_result: CgResult | None = None


class Cohort:
    """All members solving against one matrix (matched byte-for-byte)."""

    __slots__ = ("op", "member_count", "queue", "probed", "panel_ok",
                 "_panel", "_cg_ws")

    def __init__(self, op):
        #: canonical operator — one factorization and one set of scratch
        #: buffers serve every member (their matrices are byte-identical,
        #: so every result is exactly what the member's own operator would
        #: produce)
        self.op = op
        self.member_count = 0
        self.queue: list[tuple[CohortMember, object]] = []
        self.probed = False
        self.panel_ok = False
        self._panel: np.ndarray | None = None
        #: batched-CG workspaces keyed by exact batch size
        self._cg_ws: dict[int, tuple] = {}

    def panel(self, width: int) -> np.ndarray:
        if self._panel is None or self._panel.shape[1] != width:
            self._panel = np.empty((self.op.n, width))
        return self._panel

    @property
    def lu_nnz(self) -> int:
        return self.op.lu_nnz


class ComputePlane:
    """Cluster-wide batching fabric for inner solves (wall-clock only)."""

    __slots__ = ("direct_mode", "chunk", "_cohorts", "flushes", "deferred",
                 "immediate", "memo_hits", "batched_columns", "loop_columns",
                 "batch_sizes")

    def __init__(self, direct_mode: str = "auto", chunk: int = DIRECT_CHUNK):
        if direct_mode not in ("auto", "panel"):
            raise ValueError(f"unknown direct_mode {direct_mode!r}")
        self.direct_mode = direct_mode
        self.chunk = int(chunk)
        #: fingerprint -> cohorts (a list: byte-equality is re-verified on
        #: join, so a hash collision degrades to a second cohort, never to
        #: cross-matrix batching)
        self._cohorts: dict[bytes, list[Cohort]] = {}
        self.flushes = 0
        self.deferred = 0
        self.immediate = 0
        self.memo_hits = 0
        self.batched_columns = 0
        self.loop_columns = 0
        self.batch_sizes: dict[int, int] = {}

    # -- membership ----------------------------------------------------------

    @staticmethod
    def _fingerprint(A) -> bytes:
        h = hashlib.sha1()
        h.update(repr(A.shape).encode())
        h.update(A.indptr)
        h.update(A.indices)
        h.update(A.data)
        return h.digest()

    @staticmethod
    def _same_matrix(a, b) -> bool:
        return (a is b or (
            a.shape == b.shape
            and a.indptr.tobytes() == b.indptr.tobytes()
            and a.indices.tobytes() == b.indices.tobytes()
            and a.data.tobytes() == b.data.tobytes()
        ))

    def member_for(self, op) -> CohortMember:
        """Join (or found) the cohort whose matrix matches ``op.A``."""
        fp = self._fingerprint(op.A)
        cohorts = self._cohorts.setdefault(fp, [])
        for cohort in cohorts:
            if self._same_matrix(op.A, cohort.op.A):
                break
        else:
            cohort = Cohort(op)
            cohorts.append(cohort)
        cohort.member_count += 1
        return CohortMember(cohort)

    def discard(self, member: CohortMember) -> None:
        """Drop a member (runner finished or crashed mid-defer).

        A pending ticket is abandoned unsolved — the crashed task's result
        was lost either way.  Cohort siblings are unaffected: fixed-width
        zero-padded chunks keep their per-column arithmetic independent of
        batch composition.
        """
        cohort = member.cohort
        if member.pending is not None:
            cohort.queue = [(m, p) for m, p in cohort.queue
                            if m is not member]
            member.pending = None
        member.ready = None
        member.memo_result = None
        cohort.member_count -= 1

    # -- scheduling ----------------------------------------------------------

    def begin(self, member: CohortMember, plan, *, rate: float,
              overhead: float, floor: float):
        """Route one plan: returns ``(duration, result)``.

        * ``result`` not None — the solve already ran (memo replay or an
          eager CG); the runner derives the duration from the finished
          step exactly as the monolithic path does (``duration`` is None).
        * ``result`` None — the solve was deferred; ``duration`` is its
          (already exact) simulated length.  The runner must call
          :meth:`collect` before the task's state is next observed.
        """
        cohort = member.cohort
        op = cohort.op
        if HOTPATH.solve_memo:
            key = self._memo_key(plan)
            if key is not None and key == member.memo_key:
                self.memo_hits += 1
                return None, self._replay(member.memo_result)
        else:
            key = None
        if plan.solver == "direct":
            flops = (direct_flops_estimate(cohort.lu_nnz, op.n)
                     + plan.flops_extra)
            duration = max(flops / rate + overhead, floor)
            self.deferred += 1
            member.pending = plan
            cohort.queue.append((member, plan))
            return duration, None
        if HOTPATH.compute_batch_cg and self._cg_pinned(
                plan, op, rate=rate, overhead=overhead, floor=floor):
            self.deferred += 1
            member.pending = plan
            cohort.queue.append((member, plan))
            return floor, None
        result = op.solve(plan.rhs, x0=plan.x0, tol=plan.tol,
                          max_iter=plan.max_iter)
        self.immediate += 1
        self._memoize(member, key, result)
        return None, result

    def collect(self, member: CohortMember) -> CgResult:
        """The deferred result — flushing the whole cohort if still parked."""
        if member.pending is not None:
            self._flush(member.cohort)
        result, member.ready = member.ready, None
        if result is None:
            raise RuntimeError("collect() without a deferred solve")
        return result

    @staticmethod
    def _cg_pinned(plan, op, *, rate: float, overhead: float,
                   floor: float) -> bool:
        """Is this CG solve's duration provably the floor, whatever the
        iteration count turns out to be?  Only then may it defer."""
        cap = plan.max_iter if plan.max_iter is not None else max(
            10 * op.n, 100)
        worst = cg_flops_estimate(op.nnz, op.n, cap) + plan.flops_extra
        return worst / rate + overhead <= floor

    # -- memo ----------------------------------------------------------------

    @staticmethod
    def _memo_key(plan):
        rhs = plan.rhs
        if not isinstance(rhs, np.ndarray):
            return None
        x0 = plan.x0
        return (plan.solver, rhs.tobytes(),
                None if x0 is None else x0.tobytes(),
                plan.tol, plan.max_iter)

    def _memoize(self, member: CohortMember, key, result: CgResult) -> None:
        if key is None or not HOTPATH.solve_memo:
            member.memo_key = None
            member.memo_result = None
            return
        member.memo_key = key
        # a private copy: the caller's x becomes live task state and may
        # base in-flight zero-copy views — the memo must never alias it
        member.memo_result = CgResult(
            x=result.x.copy(), converged=result.converged,
            iterations=result.iterations,
            residual_norm=result.residual_norm, flops=result.flops,
            residual_history=[])

    @staticmethod
    def _replay(memo: CgResult) -> CgResult:
        return CgResult(
            x=memo.x.copy(), converged=memo.converged,
            iterations=memo.iterations, residual_norm=memo.residual_norm,
            flops=memo.flops, residual_history=[])

    # -- flushing ------------------------------------------------------------

    def _flush(self, cohort: Cohort) -> None:
        queue, cohort.queue = cohort.queue, []
        if not queue:
            return
        self.flushes += 1
        k = len(queue)
        self.batch_sizes[k] = self.batch_sizes.get(k, 0) + 1
        directs = [(m, p) for m, p in queue if p.solver == "direct"]
        cgs = [(m, p) for m, p in queue if p.solver != "direct"]
        if directs:
            self._flush_direct(cohort, directs)
        if cgs:
            self._flush_cg(cohort, cgs)

    def _flush_direct(self, cohort: Cohort, tickets: list) -> None:
        op = cohort.op
        lu = op.factorization()
        rhs_list = [p.rhs for _, p in tickets]
        if self.direct_mode == "panel":
            xs = chunked_direct_solve(lu, rhs_list, cohort.panel(self.chunk),
                                      pad=False)
            self.batched_columns += len(xs)
        elif len(rhs_list) == 1:
            xs = [lu.solve(rhs_list[0])]
            self.loop_columns += 1
        else:
            if not cohort.probed:
                cohort.panel_ok = panel_probe(lu, op.n,
                                              cohort.panel(self.chunk))
                cohort.probed = True
            if cohort.panel_ok:
                xs = chunked_direct_solve(lu, rhs_list,
                                          cohort.panel(self.chunk))
                self.batched_columns += len(xs)
            else:
                xs = [lu.solve(r) for r in rhs_list]
                self.loop_columns += len(xs)
        for (member, plan), x in zip(tickets, xs):
            result = op.direct_result(x, plan.rhs, plan.tol)
            self._finish_ticket(member, plan, result)

    def _flush_cg(self, cohort: Cohort, tickets: list) -> None:
        requests = [(p.rhs, p.x0, p.tol, p.max_iter) for _, p in tickets]
        results = batched_cg(cohort.op, requests, cohort._cg_ws)
        self.batched_columns += len(results)
        for (member, plan), result in zip(tickets, results):
            self._finish_ticket(member, plan, result)

    def _finish_ticket(self, member: CohortMember, plan,
                       result: CgResult) -> None:
        member.pending = None
        member.ready = result
        self._memoize(member, self._memo_key(plan) if HOTPATH.solve_memo
                      else None, result)

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict:
        return {
            "cohorts": sum(len(v) for v in self._cohorts.values()),
            "flushes": self.flushes,
            "deferred": self.deferred,
            "immediate": self.immediate,
            "memo_hits": self.memo_hits,
            "batched_columns": self.batched_columns,
            "loop_columns": self.loop_columns,
            "batch_sizes": dict(sorted(self.batch_sizes.items())),
        }
