"""Batched inner-solve kernels for the compute plane.

Two kernels, both engineered so that **per column** they perform the same
floating-point operations in the same order as the scalar paths in
:mod:`repro.numerics.cg` — the property the plane's bitwise A/B guarantee
rests on:

* :func:`chunked_direct_solve` — stacked multi-RHS triangular solves through
  one cached ``splu`` factorization.  SuperLU's stacked solve switches
  internal blocking with problem size; past that point per-column rounding
  differs from the single-vector path and even depends on the values
  sharing the panel.  The plane therefore probes each cohort once
  (:func:`panel_probe`) with synthetic random panels and trusts the stacked
  path only in the regime where it is exactly the 1-D kernel per column.
  Chunks are always zero-padded to a fixed width so per-column results stay
  stable when batch composition varies (members joining, leaving, or
  crashing mid-cohort).

* :func:`batched_cg` — lock-step batched conjugate gradient.  Member
  vectors live as *contiguous rows* of ``(k, n)`` SoA arrays so every dot
  product and axpy touches exactly the memory a scalar solve would (strided
  BLAS dots are *not* bitwise-identical to contiguous ones — measured).
  Only the matvec is fused: rows are transposed into an ``(n, k)`` buffer,
  one sparse·dense multiply runs scipy's ``csr_matvecs`` kernel (bitwise
  per column equal to ``csr_matvec`` — measured), and the result is
  transposed back.  Members deactivate individually at their own stopping
  iteration, exactly where their scalar loop would exit.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.numerics.cg import CgResult, cg_flops_estimate, csr_matvec_into

try:  # scipy's C multi-vector kernel: Y += A @ X without allocating
    from scipy.sparse._sparsetools import csr_matvecs as _csr_matvecs
except ImportError:  # pragma: no cover - scipy layout change
    _csr_matvecs = None

__all__ = ["DIRECT_CHUNK", "csr_matmat_into", "panel_probe",
           "chunked_direct_solve", "batched_cg"]

#: Fixed multi-RHS chunk width (a whole number of SuperLU's internal
#: width-4 panels).  Chunks are zero-padded to this width so per-column
#: results never depend on how many real right-hand sides share the panel.
DIRECT_CHUNK = 8


def csr_matmat_into(A: sp.csr_matrix, X: np.ndarray,
                    out: np.ndarray) -> np.ndarray:
    """``out = A @ X`` for dense C-order ``X`` of shape ``(n, k)``.

    Bitwise-identical per column to ``csr_matvec_into`` on that column
    (scipy's ``@`` runs the same accumulation per vector).
    """
    if _csr_matvecs is None:  # pragma: no cover - scipy layout change
        np.copyto(out, A @ X)
        return out
    out[:] = 0.0
    _csr_matvecs(A.shape[0], A.shape[1], X.shape[1],
                 A.indptr, A.indices, A.data, X, out)
    return out


#: seed for the probe's synthetic right-hand sides (any fixed constant)
_PROBE_SEED = 0x9E3779B9

#: independent random panels per probe.  Near SuperLU's internal blocking
#: threshold the stacked path diverges only for *some* value combinations,
#: so a single trial can get lucky; several independent panels shrink that
#: gray zone to negligible.
_PROBE_TRIALS = 4


def panel_probe(lu, n: int, panel: np.ndarray) -> bool:
    """Is this factorization's stacked path bitwise-trustworthy?

    SuperLU switches internal blocking with problem size, and past that
    point per-column panel results depend on the *values* sharing the
    panel — so probing with the live right-hand side proves nothing about
    the next one.  Instead the probe solves deterministic synthetic
    Gaussian vectors (value-representative in a way structured
    application vectors are not): once each as single vectors, once
    stacked as full panels of distinct columns, and once as a zero-padded
    singleton — and trusts panels only when every column of every trial
    reproduces its 1-D bytes exactly.
    """
    width = panel.shape[1]
    rng = np.random.default_rng(_PROBE_SEED)
    first = None
    for _ in range(_PROBE_TRIALS):
        cols = [rng.standard_normal(n) for _ in range(width)]
        refs = [lu.solve(c).tobytes() for c in cols]
        for j, c in enumerate(cols):
            panel[:, j] = c
        sol = lu.solve(panel)
        if any(sol[:, j].tobytes() != refs[j] for j in range(width)):
            return False
        if first is None:
            first = (cols[0], refs[0])
    col0, ref0 = first
    panel[:] = 0.0
    panel[:, 0] = col0
    return lu.solve(panel)[:, 0].tobytes() == ref0


def chunked_direct_solve(lu, rhs_list: list[np.ndarray],
                         panel: np.ndarray,
                         pad: bool = True) -> list[np.ndarray]:
    """Solve every rhs through fixed-width multi-RHS panels.

    ``panel`` is the cohort's preallocated ``(n, DIRECT_CHUNK)`` buffer.
    With ``pad=True`` (the probe-certified bitwise path) trailing unused
    columns stay zero, so per-column results never depend on how many real
    right-hand sides share the final panel.  ``pad=False`` (the ``"panel"``
    throughput mode, which never claims bitwise identity) solves an
    exact-width final panel instead — zero-padding there would spend up to
    ``width - 1`` wasted triangular solves per flush.  Returns one
    contiguous, privately owned solution vector per rhs (callers keep them
    as live task state, so they must not alias the reusable panel
    machinery).
    """
    width = panel.shape[1]
    out: list[np.ndarray] = []
    for c0 in range(0, len(rhs_list), width):
        cols = rhs_list[c0:c0 + width]
        if pad or len(cols) == width:
            chunk = panel
            chunk[:] = 0.0
        else:
            chunk = np.empty((panel.shape[0], len(cols)))
        for j, r in enumerate(cols):
            chunk[:, j] = r
        sol = lu.solve(chunk)
        for j in range(len(cols)):
            # a true copy, not ascontiguousarray: SuperLU returns the
            # stacked solution F-ordered, so a column view is already
            # contiguous — but it would alias (and pin) the whole panel
            # solution, and callers keep these as live task state.
            out.append(sol[:, j].copy())
    return out


def batched_cg(op, requests: list, ws: dict) -> list[CgResult]:
    """Lock-step batched CG over one cohort's deferred requests.

    ``op`` is the cohort's canonical :class:`~repro.numerics.cg.CgOperator`
    (unpreconditioned path only — preconditioned plans never defer).
    ``requests`` is a list of ``(rhs, x0, tol, max_iter)``; ``ws`` is the
    cohort's workspace dict keyed by exact batch size (the ``(n, k)``
    matvec buffers must be contiguous at exactly ``k`` columns for the C
    kernel, so capacities are not over-allocated and sliced).

    Per member the arithmetic replicates ``CgOperator.solve`` operation by
    operation; see the module docstring for why that holds bitwise.
    """
    A, n, nnz = op.A, op.n, op.nnz
    k = len(requests)
    arrays = ws.get(k)
    if arrays is None:
        arrays = (np.empty((k, n)), np.empty((k, n)), np.empty((k, n)),
                  np.empty((k, n)), np.empty((n, k)), np.empty((n, k)),
                  np.empty(n))
        ws[k] = arrays
    X, R, P, AP, PT, MV, tmp = arrays

    stops = np.empty(k)
    rz = np.empty(k)
    res = np.empty(k)
    iters = np.zeros(k, dtype=np.intp)
    caps = np.empty(k, dtype=np.intp)
    converged = [False] * k
    active: list[int] = []

    for i, (b, x0, tol, max_iter) in enumerate(requests):
        caps[i] = max_iter if max_iter is not None else max(10 * n, 100)
        b_norm = float(np.sqrt(b.dot(b)))
        stops[i] = tol * b_norm if b_norm > 0 else tol
        if x0 is None:
            X[i] = 0.0
            # r = b - A @ 0: elementwise b[j] - 0.0 == b[j] bitwise.
            np.copyto(R[i], b)
        else:
            np.copyto(X[i], x0)
            csr_matvec_into(A, X[i], tmp)
            np.subtract(b, tmp, out=R[i])
        rz[i] = float(R[i].dot(R[i]))
        res[i] = float(np.sqrt(rz[i]))
        np.copyto(P[i], R[i])
        if res[i] > stops[i] and caps[i] > 0:
            active.append(i)
        else:
            converged[i] = res[i] <= stops[i]

    while active:
        # one fused matvec for the whole batch (converged columns carry
        # stale directions; their results are simply never read back)
        PT[:] = P.T
        csr_matmat_into(A, PT, MV)
        AP[:] = MV.T
        still: list[int] = []
        for i in active:
            pAp = float(P[i].dot(AP[i]))
            if pAp <= 0.0:
                converged[i] = False  # breakdown: exit before updating x
                continue
            alpha = rz[i] / pAp
            np.multiply(P[i], alpha, out=tmp)
            np.add(X[i], tmp, out=X[i])
            np.multiply(AP[i], alpha, out=tmp)
            np.subtract(R[i], tmp, out=R[i])
            rz_new = float(R[i].dot(R[i]))
            res[i] = float(np.sqrt(rz_new))
            beta = rz_new / rz[i] if rz[i] > 0 else 0.0
            np.multiply(P[i], beta, out=P[i])
            np.add(P[i], R[i], out=P[i])
            rz[i] = rz_new
            iters[i] += 1
            if res[i] > stops[i] and iters[i] < caps[i]:
                still.append(i)
            else:
                converged[i] = res[i] <= stops[i]
        active = still

    return [
        CgResult(
            x=X[i].copy(),
            converged=converged[i],
            iterations=int(iters[i]),
            residual_norm=float(res[i]),
            flops=cg_flops_estimate(nnz, n, int(iters[i])),
            residual_history=[],
        )
        for i in range(k)
    ]
