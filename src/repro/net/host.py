"""Simulated machines.

A :class:`Host` models one PC of the testbed:

* a **relative CPU speed** — ``host.compute(flops)`` yields for
  ``flops / (speed * BASE_FLOPS)`` simulated seconds, so slower machines take
  proportionally longer per iteration, desynchronising peers exactly the way
  hardware heterogeneity does in the paper;
* an **online/offline switch** — :meth:`fail` interrupts every process
  registered on the host and destroys its mailboxes (a powered-off PC loses
  everything in RAM); :meth:`recover` brings the machine back *empty*, after
  which a fresh Daemon must boot and re-register (§5.3);
* **endpoints** — per-port mailboxes the :class:`~repro.net.network.Network`
  delivers into.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.des import Simulator, Store
from repro.des.process import Process
from repro.errors import ConfigurationError, HostDownError, NetworkError
from repro.net.address import Address

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Message

__all__ = ["Host", "Endpoint", "BASE_FLOPS"]

#: Simulated FLOP/s of a speed-1.0 machine (the paper's slowest class, a
#: Pentium III 1.26 GHz).  Only the *ratio* compute/communication matters for
#: the reproduced phenomena; this constant pins the absolute time scale.
BASE_FLOPS = 250e6


class Endpoint:
    """A mailbox bound to one port of a host.

    ``recv()`` returns a DES event that fires with the next delivered
    message.  Mailboxes are drop-tail bounded (``capacity``) — a flooded
    mailbox drops new arrivals, which the asynchronous model tolerates.
    """

    def __init__(self, host: "Host", port: int, capacity: float = float("inf")):
        self.host = host
        self.port = port
        self.address = Address(host.name, port)
        self.mailbox = Store(host.sim, capacity=capacity, name=str(self.address))
        self.closed = False
        #: optional zero-copy dispatch hook for the oneway fast path
        #: (:meth:`repro.net.network.Network.send` with ``fast=True``):
        #: called with the *payload* (not the Message) when the endpoint
        #: is idle — the RMI runtime registers its oneway dispatcher here
        self.fast_handler: Callable[[Any], None] | None = None

    def ready_for_fast_dispatch(self) -> bool:
        """True when a fast delivery may bypass the mailbox right now:
        no buffered backlog ahead of it, and a live consumer is blocked on
        ``recv()`` (so the object path would have dispatched this message
        on the very next kernel step anyway — bypassing preserves FIFO)."""
        mb = self.mailbox
        return not mb.items and mb.has_live_getter()

    def recv(self):
        """Event firing with the next message (FIFO)."""
        if self.closed:
            raise NetworkError(f"recv() on closed endpoint {self.address}")
        return self.mailbox.get()

    def recv_nowait(self):
        """Next buffered message or None."""
        return self.mailbox.get_nowait()

    def drain(self) -> list:
        return self.mailbox.drain()

    def deliver(self, message: "Message") -> bool:
        """Called by the network; returns False if the message was dropped."""
        if self.closed or not self.host.online:
            return False
        return self.mailbox.try_put(message)

    def close(self) -> None:
        self.closed = True
        self.mailbox.drain()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Endpoint {self.address} {'closed' if self.closed else 'open'}>"


class Host:
    """One simulated machine."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        speed: float = 1.0,
        ram_mb: int = 512,
        tags: tuple[str, ...] = (),
    ):
        if speed <= 0:
            raise ConfigurationError(f"host speed must be positive, got {speed}")
        self.sim = sim
        self.name = name
        self.speed = float(speed)
        self.ram_mb = int(ram_mb)
        self.tags = tuple(tags)
        self.online = True
        self.endpoints: dict[int, Endpoint] = {}
        self._processes: list[Process] = []
        self._on_recover: list[Callable[["Host"], None]] = []
        self.fail_count = 0
        self.recover_count = 0

    # -- endpoints -----------------------------------------------------------

    def open_endpoint(self, port: int, capacity: float = float("inf")) -> Endpoint:
        if not self.online:
            raise HostDownError(f"host {self.name} is offline")
        if port in self.endpoints and not self.endpoints[port].closed:
            raise NetworkError(f"port {port} already bound on {self.name}")
        ep = Endpoint(self, port, capacity=capacity)
        self.endpoints[port] = ep
        return ep

    def endpoint(self, port: int) -> Endpoint | None:
        ep = self.endpoints.get(port)
        if ep is not None and ep.closed:
            return None
        return ep

    # -- processes -----------------------------------------------------------

    def spawn(self, generator, label: str = "") -> Process:
        """Run a process *on this host*: it dies when the host fails."""
        if not self.online:
            raise HostDownError(f"host {self.name} is offline")
        proc = self.sim.process(generator, label=label or f"{self.name}:proc")
        self._processes.append(proc)
        return proc

    def compute(self, flops: float):
        """Event taking ``flops / (speed*BASE_FLOPS)`` simulated seconds.

        Usage inside a process: ``yield host.compute(1e9)``.
        """
        if flops < 0:
            raise ConfigurationError("negative flops")
        if not self.online:
            raise HostDownError(f"compute() on offline host {self.name}")
        return self.sim.timeout(flops / (self.speed * BASE_FLOPS))

    # -- failure / recovery ----------------------------------------------------

    def on_recover(self, callback: Callable[["Host"], None]) -> None:
        """Register a boot hook run each time the host comes back online.

        The runtime uses this to restart a Daemon on a reconnecting machine.
        """
        self._on_recover.append(callback)

    def fail(self, cause: Any = "failure") -> None:
        """Power the machine off: kill processes, destroy mailboxes."""
        if not self.online:
            return
        self.online = False
        self.fail_count += 1
        tr = self.sim.tracer
        if tr.enabled:
            tr.emit(self.sim.now, "net", self.name, "host_fail", cause=str(cause))
        procs, self._processes = self._processes, []
        for proc in procs:
            if proc.is_alive and proc is not self.sim.active_process:
                proc.interrupt(cause=cause)
        for ep in self.endpoints.values():
            ep.close()
        self.endpoints.clear()

    def recover(self) -> None:
        """Power the machine back on (empty) and run boot hooks."""
        if self.online:
            return
        self.online = True
        self.recover_count += 1
        tr = self.sim.tracer
        if tr.enabled:
            tr.emit(self.sim.now, "net", self.name, "host_recover")
        for callback in list(self._on_recover):
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "up" if self.online else "down"
        return f"<Host {self.name} speed={self.speed} {state}>"
