"""Link delay models.

A :class:`LinkModel` answers one question: how long does a message of *b*
bytes take from host A to host B?  The standard decomposition is

    ``delay = latency + bytes / bandwidth (+ jitter)``

:class:`HeterogeneousLinkModel` reproduces the paper's mixed network (§7):
each host belongs to a network class (100 Mbps or 1 Gbps Ethernet); a
transfer is paced by the *slower* of the two endpoints' networks, which is
how a shared-switch campus network behaves to first order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.net.host import Host
from repro.util.rng import RngTree

__all__ = ["LinkModel", "UniformLinkModel", "HeterogeneousLinkModel", "NetClass"]


class LinkModel:
    """Interface: subclasses implement :meth:`delay`."""

    def delay(self, src: Host, dst: Host, nbytes: int) -> float:  # pragma: no cover
        raise NotImplementedError


class _JitterStream:
    """Block-buffered jitter factors, bitwise-identical to scalar draws.

    numpy's ``Generator`` consumes one double from the bitstream per scalar
    ``uniform(low, high)`` call and per element of a batched ``random(n)``
    fill, and the scalar result is ``low + (high - low) * u`` — so serving
    draws from a pre-filled block reproduces the exact sequence the scalar
    calls would produce while paying the numpy call overhead once per
    block instead of once per message.  Safe only because the link model
    owns a dedicated RNG subtree (``rng.child("links")``) that nothing
    else draws from.
    """

    __slots__ = ("generator", "low", "span", "_buf", "_pos")

    _BLOCK = 1024

    def __init__(self, rng: RngTree, jitter: float):
        self.generator = rng.generator
        self.low = -jitter
        # bitwise-identical to numpy's internal ``high - low``: jitter
        # magnitudes are symmetric, and ``j - (-j)`` is exact in binary64
        self.span = jitter - (-jitter)
        self._buf = None
        self._pos = 0

    def factor(self) -> float:
        buf, pos = self._buf, self._pos
        if buf is None or pos == self._BLOCK:
            buf = self._buf = self.generator.random(self._BLOCK)
            pos = 0
        self._pos = pos + 1
        return 1.0 + (self.low + self.span * float(buf[pos]))


@dataclass
class UniformLinkModel(LinkModel):
    """Same latency/bandwidth for every pair — a homogeneous LAN.

    Parameters
    ----------
    latency:
        One-way latency in seconds.
    bandwidth:
        Bytes per second.
    jitter:
        Fractional uniform jitter on the total delay; 0 disables it.
    rng:
        Required when ``jitter > 0``.
    """

    latency: float = 200e-6
    bandwidth: float = 125e6  # 1 Gbps in bytes/s
    jitter: float = 0.0
    rng: RngTree | None = None

    def __post_init__(self) -> None:
        if self.latency < 0 or self.bandwidth <= 0:
            raise ConfigurationError("latency must be >=0 and bandwidth >0")
        if self.jitter and self.rng is None:
            raise ConfigurationError("jitter requires an RngTree")
        self._jitter_stream = (
            _JitterStream(self.rng, self.jitter) if self.jitter else None
        )

    def delay(self, src: Host, dst: Host, nbytes: int) -> float:
        if src is dst:
            return 1e-6  # loop-back
        d = self.latency + nbytes / self.bandwidth
        if self._jitter_stream is not None:
            d *= self._jitter_stream.factor()
        return d


@dataclass(frozen=True)
class NetClass:
    """One network class a host can belong to."""

    name: str
    latency: float
    bandwidth: float  # bytes/s


#: The two Ethernet classes of the paper's testbed.
FAST_ETHERNET = NetClass("ethernet-100M", latency=300e-6, bandwidth=12.5e6)
GIGABIT_ETHERNET = NetClass("ethernet-1G", latency=150e-6, bandwidth=125e6)


class HeterogeneousLinkModel(LinkModel):
    """Hosts tagged with a network class; pairwise delay paced by the slower
    endpoint.

    Hosts whose ``tags`` include a known class name use that class; untagged
    hosts default to ``default_class``.
    """

    def __init__(
        self,
        classes: dict[str, NetClass] | None = None,
        default_class: NetClass = GIGABIT_ETHERNET,
        jitter: float = 0.0,
        rng: RngTree | None = None,
    ):
        self.classes = classes or {
            FAST_ETHERNET.name: FAST_ETHERNET,
            GIGABIT_ETHERNET.name: GIGABIT_ETHERNET,
        }
        self.default_class = default_class
        self.jitter = float(jitter)
        self.rng = rng
        if self.jitter and rng is None:
            raise ConfigurationError("jitter requires an RngTree")
        self._jitter_stream = (
            _JitterStream(rng, self.jitter) if self.jitter else None
        )
        # host tags are immutable (a tuple fixed at construction), so the
        # tag walk resolves to the same class forever: memoize per host —
        # class_of runs twice per message send
        self._class_cache: dict[Host, NetClass] = {}

    def class_of(self, host: Host) -> NetClass:
        cls = self._class_cache.get(host)
        if cls is None:
            cls = self.default_class
            for tag in host.tags:
                hit = self.classes.get(tag)
                if hit is not None:
                    cls = hit
                    break
            self._class_cache[host] = cls
        return cls

    def delay(self, src: Host, dst: Host, nbytes: int) -> float:
        if src is dst:
            return 1e-6
        # inlined cache hits: class_of runs twice per message send, and the
        # method-call + miss-handling overhead is measurable at swarm scale
        cache = self._class_cache
        a = cache.get(src)
        if a is None:
            a = self.class_of(src)
        b = cache.get(dst)
        if b is None:
            b = self.class_of(dst)
        latency = a.latency + b.latency  # two first-hop traversals
        bandwidth = min(a.bandwidth, b.bandwidth)
        d = latency + nbytes / bandwidth
        js = self._jitter_stream
        if js is not None:
            # inlined _JitterStream.factor() (bitwise-identical draws):
            # one message-plane call frame saved per send
            buf, pos = js._buf, js._pos
            if buf is None or pos == js._BLOCK:
                buf = js._buf = js.generator.random(js._BLOCK)
                pos = 0
            js._pos = pos + 1
            d *= 1.0 + (js.low + js.span * float(buf[pos]))
        return d
