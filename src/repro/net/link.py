"""Link delay models.

A :class:`LinkModel` answers one question: how long does a message of *b*
bytes take from host A to host B?  The standard decomposition is

    ``delay = latency + bytes / bandwidth (+ jitter)``

:class:`HeterogeneousLinkModel` reproduces the paper's mixed network (§7):
each host belongs to a network class (100 Mbps or 1 Gbps Ethernet); a
transfer is paced by the *slower* of the two endpoints' networks, which is
how a shared-switch campus network behaves to first order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.net.host import Host
from repro.util.rng import RngTree

__all__ = ["LinkModel", "UniformLinkModel", "HeterogeneousLinkModel", "NetClass"]


class LinkModel:
    """Interface: subclasses implement :meth:`delay`."""

    def delay(self, src: Host, dst: Host, nbytes: int) -> float:  # pragma: no cover
        raise NotImplementedError


@dataclass
class UniformLinkModel(LinkModel):
    """Same latency/bandwidth for every pair — a homogeneous LAN.

    Parameters
    ----------
    latency:
        One-way latency in seconds.
    bandwidth:
        Bytes per second.
    jitter:
        Fractional uniform jitter on the total delay; 0 disables it.
    rng:
        Required when ``jitter > 0``.
    """

    latency: float = 200e-6
    bandwidth: float = 125e6  # 1 Gbps in bytes/s
    jitter: float = 0.0
    rng: RngTree | None = None

    def __post_init__(self) -> None:
        if self.latency < 0 or self.bandwidth <= 0:
            raise ConfigurationError("latency must be >=0 and bandwidth >0")
        if self.jitter and self.rng is None:
            raise ConfigurationError("jitter requires an RngTree")

    def delay(self, src: Host, dst: Host, nbytes: int) -> float:
        if src is dst:
            return 1e-6  # loop-back
        d = self.latency + nbytes / self.bandwidth
        if self.jitter:
            d *= 1.0 + self.rng.uniform(-self.jitter, self.jitter)
        return d


@dataclass(frozen=True)
class NetClass:
    """One network class a host can belong to."""

    name: str
    latency: float
    bandwidth: float  # bytes/s


#: The two Ethernet classes of the paper's testbed.
FAST_ETHERNET = NetClass("ethernet-100M", latency=300e-6, bandwidth=12.5e6)
GIGABIT_ETHERNET = NetClass("ethernet-1G", latency=150e-6, bandwidth=125e6)


class HeterogeneousLinkModel(LinkModel):
    """Hosts tagged with a network class; pairwise delay paced by the slower
    endpoint.

    Hosts whose ``tags`` include a known class name use that class; untagged
    hosts default to ``default_class``.
    """

    def __init__(
        self,
        classes: dict[str, NetClass] | None = None,
        default_class: NetClass = GIGABIT_ETHERNET,
        jitter: float = 0.0,
        rng: RngTree | None = None,
    ):
        self.classes = classes or {
            FAST_ETHERNET.name: FAST_ETHERNET,
            GIGABIT_ETHERNET.name: GIGABIT_ETHERNET,
        }
        self.default_class = default_class
        self.jitter = float(jitter)
        self.rng = rng
        if self.jitter and rng is None:
            raise ConfigurationError("jitter requires an RngTree")

    def class_of(self, host: Host) -> NetClass:
        for tag in host.tags:
            cls = self.classes.get(tag)
            if cls is not None:
                return cls
        return self.default_class

    def delay(self, src: Host, dst: Host, nbytes: int) -> float:
        if src is dst:
            return 1e-6
        a, b = self.class_of(src), self.class_of(dst)
        latency = a.latency + b.latency  # two first-hop traversals
        bandwidth = min(a.bandwidth, b.bandwidth)
        d = latency + nbytes / bandwidth
        if self.jitter:
            d *= 1.0 + self.rng.uniform(-self.jitter, self.jitter)
        return d
