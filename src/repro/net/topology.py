"""Testbed construction mirroring the paper's §7 configuration.

The paper's population:

* 3 Super-Peers on Pentium 4 2.40 GHz / 512 MB,
* ~100 Daemon workstations ranging from Pentium III 1.26 GHz / 256 MB to
  Pentium 4 3.00 GHz / 1024 MB,
* 1 Spawner on Pentium 4 2.40 GHz / 512 MB,
* machines split across 100 Mbps and 1 Gbps Ethernet.

Speeds are normalised so the slowest class is 1.0.  Clock-frequency ratio is
a reasonable proxy for relative throughput within this processor family; the
phenomena reproduced depend only on there *being* a ~2.4× spread, not on its
exact value.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.des import Simulator
from repro.net.host import Host
from repro.net.link import (
    FAST_ETHERNET,
    GIGABIT_ETHERNET,
    HeterogeneousLinkModel,
    NetClass,
)
from repro.net.network import Network
from repro.util.rng import RngTree

__all__ = [
    "MachineClass",
    "PAPER_MACHINE_CLASSES",
    "PAPER_SUPERPEER_CLASS",
    "Testbed",
    "build_testbed",
]


@dataclass(frozen=True)
class MachineClass:
    """A hardware class with a sampling weight."""

    name: str
    speed: float
    ram_mb: int
    weight: float = 1.0


#: Daemon machine classes spanning the paper's range (speed 1.0 = P-III
#: 1.26 GHz).  Intermediate classes interpolate the population.
PAPER_MACHINE_CLASSES: tuple[MachineClass, ...] = (
    MachineClass("p3-1266", speed=1.00, ram_mb=256, weight=0.25),
    MachineClass("p4-1800", speed=1.42, ram_mb=512, weight=0.25),
    MachineClass("p4-2400", speed=1.90, ram_mb=512, weight=0.30),
    MachineClass("p4-3000", speed=2.38, ram_mb=1024, weight=0.20),
)

#: Super-Peers and the Spawner run on P4 2.40 GHz / 512 MB machines.
PAPER_SUPERPEER_CLASS = MachineClass("p4-2400", speed=1.90, ram_mb=512)


@dataclass
class Testbed:
    """A built network: hosts grouped by role."""

    sim: Simulator
    network: Network
    daemon_hosts: list[Host] = field(default_factory=list)
    superpeer_hosts: list[Host] = field(default_factory=list)
    spawner_host: Host | None = None
    #: present only when built with ``with_standby=True`` — the machine the
    #: warm-standby Spawner shadows from (docs/gossip.md)
    standby_host: Host | None = None

    @property
    def all_hosts(self) -> list[Host]:
        out = list(self.superpeer_hosts) + list(self.daemon_hosts)
        if self.spawner_host is not None:
            out.append(self.spawner_host)
        if self.standby_host is not None:
            out.append(self.standby_host)
        return out

    def speed_spread(self) -> tuple[float, float]:
        speeds = [h.speed for h in self.daemon_hosts]
        return (min(speeds), max(speeds)) if speeds else (0.0, 0.0)


def build_testbed(
    sim: Simulator,
    n_daemons: int,
    n_superpeers: int = 3,
    rng: RngTree | None = None,
    machine_classes: tuple[MachineClass, ...] = PAPER_MACHINE_CLASSES,
    homogeneous: bool = False,
    fast_network_fraction: float = 0.5,
    jitter: float = 0.05,
    link_scale: float = 1.0,
    loss_rate: float = 0.0,
    with_standby: bool = False,
) -> Testbed:
    """Create a :class:`Testbed` with the paper's host population shape.

    Parameters
    ----------
    n_daemons / n_superpeers:
        Population sizes (paper: ~100 and 3).
    rng:
        Seeded randomness for class assignment; required unless
        ``homogeneous=True``.
    homogeneous:
        All daemons identical speed-1.0 on gigabit Ethernet (the control
        configuration used by ablations).
    fast_network_fraction:
        Fraction of daemon hosts on 1 Gbps Ethernet; the rest are on
        100 Mbps (paper: "some machines ... 1Gbps ... others ... 100Mbps").
    jitter:
        Link-delay jitter fraction.
    link_scale:
        Multiplies latencies and divides bandwidths by this factor.  The
        experiment harness uses it to *preserve the paper's
        compute-per-iteration / communication-per-iteration regime* (its
        ratio (4)) when the problem itself is scaled down ~1000×: the
        relevant phenomena depend on the relative cost of a message versus
        an iteration, not on absolute 2006 LAN parameters.
    """
    if n_daemons < 1:
        raise ConfigurationError("need at least one daemon host")
    if n_superpeers < 1:
        raise ConfigurationError("need at least one super-peer host")
    if not homogeneous and rng is None:
        raise ConfigurationError("heterogeneous testbed requires an rng")
    if link_scale <= 0:
        raise ConfigurationError("link_scale must be positive")

    if loss_rate > 0 and rng is None:
        raise ConfigurationError("loss_rate requires an rng")
    link_rng = rng.child("links") if rng is not None else None
    classes = {
        cls.name: NetClass(cls.name, cls.latency * link_scale,
                           cls.bandwidth / link_scale)
        for cls in (FAST_ETHERNET, GIGABIT_ETHERNET)
    }
    link_model = HeterogeneousLinkModel(
        classes=classes,
        default_class=classes[GIGABIT_ETHERNET.name],
        jitter=jitter if link_rng is not None else 0.0,
        rng=link_rng,
    )
    network = Network(
        sim,
        link_model=link_model,
        loss_rate=loss_rate,
        rng=rng.child("loss") if loss_rate > 0 else None,
    )
    testbed = Testbed(sim=sim, network=network)

    weights = [c.weight for c in machine_classes]
    total_w = sum(weights)

    def pick_class(r: RngTree, i: int) -> MachineClass:
        u = r.child("class", i).uniform(0, total_w)
        acc = 0.0
        for cls, w in zip(machine_classes, weights):
            acc += w
            if u <= acc:
                return cls
        return machine_classes[-1]

    for i in range(n_daemons):
        if homogeneous:
            cls = MachineClass("uniform", speed=1.0, ram_mb=512)
            net_tag = GIGABIT_ETHERNET.name
        else:
            cls = pick_class(rng, i)
            fast = rng.child("net", i).uniform() < fast_network_fraction
            net_tag = GIGABIT_ETHERNET.name if fast else FAST_ETHERNET.name
        host = network.new_host(
            f"daemon-host-{i}",
            speed=cls.speed,
            ram_mb=cls.ram_mb,
            tags=(cls.name, net_tag),
        )
        testbed.daemon_hosts.append(host)

    for j in range(n_superpeers):
        host = network.new_host(
            f"superpeer-host-{j}",
            speed=PAPER_SUPERPEER_CLASS.speed,
            ram_mb=PAPER_SUPERPEER_CLASS.ram_mb,
            tags=(PAPER_SUPERPEER_CLASS.name, GIGABIT_ETHERNET.name),
        )
        testbed.superpeer_hosts.append(host)

    testbed.spawner_host = network.new_host(
        "spawner-host",
        speed=PAPER_SUPERPEER_CLASS.speed,
        ram_mb=PAPER_SUPERPEER_CLASS.ram_mb,
        tags=(PAPER_SUPERPEER_CLASS.name, GIGABIT_ETHERNET.name),
    )
    if with_standby:
        # created LAST so every pre-existing host keeps its creation order
        # (and rng stream) — a standby-less build stays bit-identical
        testbed.standby_host = network.new_host(
            "standby-host",
            speed=PAPER_SUPERPEER_CLASS.speed,
            ram_mb=PAPER_SUPERPEER_CLASS.ram_mb,
            tags=(PAPER_SUPERPEER_CLASS.name, GIGABIT_ETHERNET.name),
        )
    return testbed
