"""Network addresses.

An :class:`Address` names a mailbox: ``(host, port)``.  The JaceP2P
bootstrap protocol (§5.1) is the *only* part of the runtime that uses raw
addresses; after registration, entities talk through RMI stubs (which wrap an
address but are opaque to the application).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["Address"]


@dataclass(frozen=True, order=True, slots=True)
class Address:
    """Immutable (host, port) pair.

    ``host`` is the host's name (unique within a :class:`~repro.net.Network`);
    ``port`` identifies one endpoint on that host (a Daemon's RMI server, a
    Super-Peer's registry service, ...).
    """

    host: str
    port: int

    def __post_init__(self) -> None:
        if not self.host:
            raise ConfigurationError("empty host name")
        if not (0 < self.port < 65536):
            raise ConfigurationError(f"port {self.port} out of range")

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"
