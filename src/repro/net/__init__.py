"""``repro.net`` — the simulated network substrate.

This package replaces the paper's physical testbed (§7: ~100 heterogeneous
PCs, Pentium III 1.26 GHz … Pentium 4 3 GHz, on mixed 100 Mbps / 1 Gbps
Ethernet) with an explicit model:

* :class:`Host` — a machine with a relative CPU speed, an online/offline
  state, per-port mailboxes and a registry of processes to interrupt when
  the machine is switched off.
* :class:`LinkModel` — per-pair latency/bandwidth; message delay =
  ``latency + bytes/bandwidth (+ jitter)``.
* :class:`Network` — delivery engine: routes messages between hosts,
  silently dropping anything addressed to a dead or partitioned host
  (the asynchronous model is message-loss tolerant, §5.3).
* :func:`build_testbed` — builds a heterogeneous host population mirroring
  the paper's machine and network classes.
"""

from repro.net.address import Address
from repro.net.host import Host, Endpoint
from repro.net.link import LinkModel, UniformLinkModel, HeterogeneousLinkModel
from repro.net.network import Network, Message
from repro.net.topology import (
    MachineClass,
    PAPER_MACHINE_CLASSES,
    PAPER_SUPERPEER_CLASS,
    Testbed,
    build_testbed,
)

__all__ = [
    "Address",
    "Host",
    "Endpoint",
    "LinkModel",
    "UniformLinkModel",
    "HeterogeneousLinkModel",
    "Network",
    "Message",
    "MachineClass",
    "PAPER_MACHINE_CLASSES",
    "PAPER_SUPERPEER_CLASS",
    "Testbed",
    "build_testbed",
]
