"""The message delivery engine.

:meth:`Network.send` is fire-and-forget: it charges the link delay, then
delivers into the destination endpoint's mailbox — *unless* the destination
host is offline, the endpoint is gone, or a partition separates the pair, in
which case the message is silently dropped and counted.  This is exactly the
paper's §5.3 semantics: "the message is simply lost if the destination peer
is not reachable".

For request/response interactions the RMI layer (:mod:`repro.rmi`) builds
invocation semantics on top of this primitive.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.des import Simulator
from repro.errors import ConfigurationError, NetworkError
from repro.net.address import Address
from repro.net.host import Host
from repro.net.link import LinkModel, UniformLinkModel
from repro.util.rng import RngTree
from repro.util.serialization import measured_size

__all__ = ["Message", "Network"]

_msg_ids = itertools.count()


@dataclass(slots=True)
class Message:
    """One unit of network transfer.

    ``reliable`` marks TCP-like traffic (RMI calls and replies): exempt
    from random in-transit loss — TCP retransmits — though still dropped by
    dead hosts and partitions.  Unreliable messages model the asynchronous
    oneway channel the paper's model tolerates losing (§5.3).
    """

    src: Address
    dst: Address
    payload: Any
    size: int
    sent_at: float
    reliable: bool = False
    msg_id: int = field(default_factory=_msg_ids.__next__)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Message #{self.msg_id} {self.src}->{self.dst} {self.size}B>"


class Network:
    """Registry of hosts plus the delivery fabric between them.

    Parameters
    ----------
    sim:
        The simulation kernel.
    link_model:
        Pairwise delay model; defaults to a homogeneous gigabit LAN.
    loss_rate:
        Probability that any message is lost in transit even between live
        hosts (models the unreliable-channel assumption; default 0).
    rng:
        Required when ``loss_rate > 0``.
    congestion:
        Optional shared-medium model: a callable mapping the number of
        *other* concurrently in-flight messages to a delay multiplier ≥ 1
        (e.g. ``lambda n: 1 + 0.1 * n`` for a mildly contended switch).
        Applied at send time to the whole transfer.
    """

    def __init__(
        self,
        sim: Simulator,
        link_model: LinkModel | None = None,
        loss_rate: float = 0.0,
        rng: RngTree | None = None,
        congestion=None,
    ):
        if not 0.0 <= loss_rate < 1.0:
            raise ConfigurationError("loss_rate must be in [0, 1)")
        if loss_rate > 0 and rng is None:
            raise ConfigurationError("loss_rate requires an RngTree")
        self.sim = sim
        self.link_model = link_model or UniformLinkModel()
        self.loss_rate = loss_rate
        self.rng = rng
        self.congestion = congestion
        #: optional in-transit tamper hook ``corruptor(msg) -> None``,
        #: invoked on every message that will actually be delivered (after
        #: partition/loss/liveness checks).  The fault plane installs one
        #: during a corruption window; it mutates ``msg.payload`` in place.
        self.corruptor = None
        self.in_flight = 0
        self.peak_in_flight = 0
        self.hosts: dict[str, Host] = {}
        self._partition: dict[str, int] | None = None
        # statistics
        self.sent = 0
        self.delivered = 0
        self.dropped_dead = 0      # destination host offline / endpoint gone
        self.dropped_partition = 0
        self.dropped_loss = 0      # random in-transit loss
        self.dropped_overflow = 0  # destination mailbox full
        self.bytes_sent = 0
        self.bytes_delivered = 0

    # -- host management -----------------------------------------------------

    def add_host(self, host: Host) -> Host:
        if host.name in self.hosts:
            raise NetworkError(f"duplicate host name {host.name!r}")
        self.hosts[host.name] = host
        return host

    def host(self, name: str) -> Host:
        try:
            return self.hosts[name]
        except KeyError:
            raise NetworkError(f"unknown host {name!r}") from None

    def new_host(self, name: str, **kwargs) -> Host:
        return self.add_host(Host(self.sim, name, **kwargs))

    # -- partitions ------------------------------------------------------------

    def partition(self, groups: list[list[str]]) -> None:
        """Split the network: hosts in different groups cannot communicate.

        Hosts not named in any group form one extra implicit group.
        """
        mapping: dict[str, int] = {}
        for gid, group in enumerate(groups):
            for name in group:
                if name in mapping:
                    raise NetworkError(f"host {name!r} in two partition groups")
                self.host(name)  # validate
                mapping[name] = gid
        self._partition = mapping
        tr = self.sim.tracer
        if tr.enabled:
            tr.emit(self.sim.now, "net", "fabric", "partition",
                    groups=[list(g) for g in groups])

    def heal_partition(self) -> None:
        self._partition = None
        tr = self.sim.tracer
        if tr.enabled:
            tr.emit(self.sim.now, "net", "fabric", "heal")

    def reachable(self, a: str, b: str) -> bool:
        """True when no partition separates hosts ``a`` and ``b``."""
        if self._partition is None:
            return True
        ga = self._partition.get(a, -1)
        gb = self._partition.get(b, -1)
        return ga == gb

    # -- sending ----------------------------------------------------------------

    def send(
        self,
        src: Address,
        dst: Address,
        payload: Any,
        size: int | None = None,
        reliable: bool = False,
        fast: bool = False,
    ) -> Message:
        """Fire-and-forget send; returns the in-flight :class:`Message`.

        Raises only on programmer error (unknown source host); every
        *runtime* failure mode (dead peer, partition, loss) degrades to a
        silent counted drop.

        ``fast=True`` marks the transfer eligible for the oneway fast
        path: when no observer or fault hook needs the object pipeline
        (tracer off, no in-transit loss, no congestion model, no
        corruptor), delivery dispatches straight into the destination
        endpoint's registered fast handler instead of round-tripping
        through its mailbox and dispatcher process.  Every counter, the
        link delay, and the delivery-order guarantees are identical; the
        path re-checks eligibility at fire time and falls back to the
        object pipeline whenever a hook appeared in flight.
        """
        sim = self.sim
        tr = sim.tracer
        # inlined self.host(): send() runs per message, and the extra
        # method call is measurable at swarm scale
        src_host = self.hosts.get(src.host)
        if src_host is None:
            raise NetworkError(f"unknown host {src.host!r}") from None
        if not src_host.online:
            # A dead host cannot transmit: drop at the source.
            msg = Message(src, dst, payload, size or 0, sim.now, reliable)
            self.dropped_dead += 1
            if tr.enabled:
                tr.emit(sim.now, "net", "fabric", "drop",
                        msg_id=msg.msg_id, src=str(src), dst=str(dst),
                        reason="src_dead")
            return msg
        if size is None:
            size = measured_size(payload)
        msg = Message(src, dst, payload, int(size), sim.now, reliable)
        self.sent += 1
        self.bytes_sent += msg.size
        if tr.enabled:
            tr.emit(self.sim.now, "net", "fabric", "send",
                    msg_id=msg.msg_id, src=str(src), dst=str(dst),
                    size=msg.size, reliable=reliable)

        dst_host = self.hosts.get(dst.host)
        if dst_host is None:
            self.dropped_dead += 1
            if tr.enabled:
                tr.emit(self.sim.now, "net", "fabric", "drop",
                        msg_id=msg.msg_id, src=str(src), dst=str(dst),
                        reason="no_such_host")
            return msg
        delay = self.link_model.delay(src_host, dst_host, msg.size)
        if self.congestion is not None:
            factor = float(self.congestion(self.in_flight))
            if factor < 1.0:
                raise NetworkError("congestion multiplier must be >= 1")
            delay *= factor
        self.in_flight += 1  # counted from send: later sends see this one
        if self.in_flight > self.peak_in_flight:
            self.peak_in_flight = self.in_flight
        # One *pooled* heap entry per transfer instead of a full delivery
        # process (init event + generator + completion event): same fire
        # time, same execution order among same-time deliveries (monotone
        # sequence numbers), a fraction of the kernel work per message.
        if (
            fast
            and self.loss_rate == 0.0
            and self.congestion is None
            and self.corruptor is None
            and not tr.enabled
        ):
            sim._call_later_pooled(delay, self._deliver_fast, (msg,))
        else:
            sim._call_later_pooled(delay, self._deliver, (msg,))
        return msg

    def _deliver_fast(self, msg: Message) -> None:
        """Fast-path delivery tail: dispatch the payload straight into the
        destination endpoint's registered oneway handler.

        Runs only for transfers flagged eligible at send time; re-checks
        the dynamic hooks (tracer, corruptor) at fire time and the
        endpoint's readiness — a backlog in the mailbox, or no idle
        dispatcher waiter, means FIFO order must be preserved through the
        object pipeline, so the message falls back to :meth:`_deliver`'s
        tail.  All drop/delivery counters match the object path exactly.
        """
        if self.sim.tracer.enabled or self.corruptor is not None:
            self._deliver(msg)
            return
        self.in_flight -= 1
        # inlined self.reachable(): one method call per delivery adds up,
        # and the common case is no partition at all
        part = self._partition
        if (part is not None
                and part.get(msg.src.host, -1) != part.get(msg.dst.host, -1)):
            self.dropped_partition += 1
            return
        dst_host = self.hosts.get(msg.dst.host)
        if dst_host is None or not dst_host.online:
            self.dropped_dead += 1
            return
        ep = dst_host.endpoints.get(msg.dst.port)
        if ep is None or ep.closed:
            self.dropped_dead += 1
            return
        handler = ep.fast_handler
        if handler is not None and ep.ready_for_fast_dispatch():
            self.delivered += 1
            self.bytes_delivered += msg.size
            handler(msg.payload)
            # A coalesced dispatch absorbs the mailbox hop — the put and
            # the getter-resume event the object path would have run.
            # Credit both observables: ``event_count`` feeds deterministic
            # consumers (the Spawner seeds its reserve shuffle from it),
            # so it must advance identically in both arms of the
            # ``hotpath_disabled()`` A/B.
            ep.mailbox.put_count += 1
            self.sim.event_count += 1
        elif ep.deliver(msg):
            self.delivered += 1
            self.bytes_delivered += msg.size
        else:
            self.dropped_overflow += 1

    def _deliver(self, msg: Message) -> None:
        """Complete one transfer: runs at send time + link delay."""
        self.in_flight -= 1
        if not self.reachable(msg.src.host, msg.dst.host):
            self.dropped_partition += 1
            self._trace_drop(msg, "partition")
            return
        if (
            not msg.reliable
            and self.loss_rate > 0
            and self.rng.uniform() < self.loss_rate
        ):
            self.dropped_loss += 1
            self._trace_drop(msg, "loss")
            return
        dst_host = self.hosts.get(msg.dst.host)
        if dst_host is None or not dst_host.online:
            self.dropped_dead += 1
            self._trace_drop(msg, "dst_dead")
            return
        ep = dst_host.endpoint(msg.dst.port)
        if ep is None:
            self.dropped_dead += 1
            self._trace_drop(msg, "no_endpoint")
            return
        if self.corruptor is not None:
            self.corruptor(msg)
        if ep.deliver(msg):
            self.delivered += 1
            self.bytes_delivered += msg.size
            tr = self.sim.tracer
            if tr.enabled:
                tr.emit(self.sim.now, "net", "fabric", "deliver",
                        msg_id=msg.msg_id, src=str(msg.src), dst=str(msg.dst),
                        size=msg.size)
        else:
            self.dropped_overflow += 1
            self._trace_drop(msg, "overflow")

    def _trace_drop(self, msg: Message, reason: str) -> None:
        tr = self.sim.tracer
        if tr.enabled:
            tr.emit(self.sim.now, "net", "fabric", "drop",
                    msg_id=msg.msg_id, src=str(msg.src), dst=str(msg.dst),
                    reason=reason)

    # -- stats -------------------------------------------------------------------

    def stats(self) -> dict:
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped_dead": self.dropped_dead,
            "dropped_partition": self.dropped_partition,
            "dropped_loss": self.dropped_loss,
            "dropped_overflow": self.dropped_overflow,
            "bytes_sent": self.bytes_sent,
            "bytes_delivered": self.bytes_delivered,
        }
