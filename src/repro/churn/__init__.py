"""``repro.churn`` — dynamicity models (paper §7's disconnection protocol).

The paper's experiment: "The peers are randomly disconnected during the
execution, and they are reconnected about 20 seconds later", with 0–50
disconnections per run.  :class:`PaperChurn` reproduces exactly that;
:class:`PoissonChurn` provides an open-ended arrival-process alternative;
:class:`TraceChurn` replays a recorded schedule so baselines face the
*identical* failure pattern.
"""

from repro.churn.models import (
    ChurnEvent,
    ChurnModel,
    NoChurn,
    PaperChurn,
    PoissonChurn,
    TraceChurn,
)
from repro.churn.injector import ChurnInjector

__all__ = [
    "ChurnEvent",
    "ChurnModel",
    "NoChurn",
    "PaperChurn",
    "PoissonChurn",
    "TraceChurn",
    "ChurnInjector",
]
