"""Churn schedules: when machines go down and for how long."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.util.rng import RngTree

__all__ = [
    "ChurnEvent",
    "ChurnModel",
    "NoChurn",
    "PaperChurn",
    "PoissonChurn",
    "TraceChurn",
]


@dataclass(frozen=True, order=True)
class ChurnEvent:
    """One disconnection: at ``time``, some host goes down for ``duration``.

    ``host`` is None for "pick a random alive victim at fire time" (the
    paper's protocol) or a host name for trace replay.
    """

    time: float
    duration: float
    host: str | None = None

    def __post_init__(self) -> None:
        if self.time < 0 or self.duration <= 0:
            raise ConfigurationError("time must be >= 0 and duration > 0")


class ChurnModel:
    """Interface: produce the disconnection schedule for one run."""

    def schedule(self, rng: RngTree, horizon: float) -> list[ChurnEvent]:
        raise NotImplementedError  # pragma: no cover


class NoChurn(ChurnModel):
    """The stable-network control (0 disconnections)."""

    def schedule(self, rng: RngTree, horizon: float) -> list[ChurnEvent]:
        return []


@dataclass(frozen=True)
class PaperChurn(ChurnModel):
    """The paper's protocol: ``n_disconnections`` at uniform-random times in
    ``[start_fraction·horizon, end_fraction·horizon]``; each victim
    reconnects ``reconnect_delay`` seconds later (paper: ≈20 s).

    Victims are chosen at fire time among currently-alive computing peers
    (``host=None`` in the emitted events).
    """

    n_disconnections: int
    reconnect_delay: float = 20.0
    start_fraction: float = 0.05
    end_fraction: float = 0.85

    def __post_init__(self) -> None:
        if self.n_disconnections < 0:
            raise ConfigurationError("n_disconnections must be >= 0")
        if self.reconnect_delay <= 0:
            raise ConfigurationError("reconnect_delay must be positive")
        if not 0.0 <= self.start_fraction < self.end_fraction <= 1.0:
            raise ConfigurationError("need 0 <= start_fraction < end_fraction <= 1")

    def schedule(self, rng: RngTree, horizon: float) -> list[ChurnEvent]:
        if horizon <= 0:
            raise ConfigurationError("horizon must be positive")
        lo = self.start_fraction * horizon
        hi = self.end_fraction * horizon
        times = sorted(
            rng.child("times", i).uniform(lo, hi)
            for i in range(self.n_disconnections)
        )
        return [ChurnEvent(t, self.reconnect_delay) for t in times]


@dataclass(frozen=True)
class PoissonChurn(ChurnModel):
    """Memoryless arrivals: disconnections as a Poisson process of ``rate``
    events/second, each down for an exponential time of mean
    ``mean_downtime`` (a common open-network churn model)."""

    rate: float
    mean_downtime: float = 20.0

    def __post_init__(self) -> None:
        if self.rate < 0 or self.mean_downtime <= 0:
            raise ConfigurationError("rate must be >= 0, mean_downtime > 0")

    def schedule(self, rng: RngTree, horizon: float) -> list[ChurnEvent]:
        if horizon <= 0:
            raise ConfigurationError("horizon must be positive")
        events: list[ChurnEvent] = []
        t = 0.0
        arrival = rng.child("arrivals")
        downtime = rng.child("downtimes")
        if self.rate == 0:
            return events
        while True:
            t += arrival.exponential(1.0 / self.rate)
            if t >= horizon:
                return events
            events.append(ChurnEvent(t, max(downtime.exponential(self.mean_downtime), 1e-3)))


@dataclass(frozen=True)
class TraceChurn(ChurnModel):
    """Replay a fixed schedule (host names pinned), for apples-to-apples
    baseline comparisons and regression tests."""

    events: tuple[ChurnEvent, ...]

    def schedule(self, rng: RngTree, horizon: float) -> list[ChurnEvent]:
        return sorted(self.events)
