"""The churn injector: now a thin front-end over the fault plane.

Historically this module owned the whole failure machinery; PR 5 moved
execution into :class:`repro.faults.FaultInjector` and left churn as what
it always really was — *one axis* of the fault plane: daemon crashes on a
stochastic schedule.  :class:`ChurnInjector` translates a
:class:`~repro.churn.models.ChurnModel` schedule into a
:class:`~repro.faults.FaultPlan` of pinned-time
:class:`~repro.faults.DaemonCrash` actions and delegates.

Compatibility is bit-exact: the schedule comes from ``rng.child("schedule")``
and victims from ``rng.child("victim", <events so far>)``, the same draws as
the original implementation, so every pre-fault-plane experiment replays
with identical victims, and the log keeps the ``disconnect`` / ``reconnect``
kinds the timeline renderer understands.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.churn.models import ChurnEvent, ChurnModel
from repro.des import Simulator
from repro.faults.actions import DaemonCrash
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.net.host import Host
from repro.util.logging import EventLog
from repro.util.rng import RngTree

__all__ = ["ChurnInjector"]


class ChurnInjector:
    """Executes a churn schedule against a pool of victim hosts."""

    def __init__(
        self,
        sim: Simulator,
        hosts: list[Host],
        model: ChurnModel,
        rng: RngTree,
        horizon: float,
        log: EventLog | None = None,
        victim_filter=None,
    ):
        """``victim_filter(host) -> bool`` narrows random victim selection
        (e.g. to hosts currently running a task, matching the paper's
        disconnection of *computing* peers); when no host passes the
        filter, selection falls back to any alive host."""
        if not hosts:
            raise ConfigurationError("need at least one victim host")
        self.sim = sim
        self.hosts = list(hosts)
        self.model = model
        self.rng = rng
        self.log = log
        self.victim_filter = victim_filter
        self.schedule = model.schedule(rng.child("schedule"), horizon)
        self.plan = FaultPlan(
            actions=tuple(
                DaemonCrash(time=event.time, host=event.host,
                            downtime=event.duration)
                for event in self.schedule
            ),
            name="churn",
        )
        self._injector = FaultInjector(
            sim,
            self.plan,
            rng=rng,
            hosts=self.hosts,
            log=log,
            log_entity="churn",
            victim_filter=victim_filter,
        ) if self.plan else None
        self.process = self._injector.process if self._injector else None

    @property
    def executed(self) -> list[ChurnEvent]:
        """What actually happened, in the historical ChurnEvent shape."""
        if self._injector is None:
            return []
        return [
            ChurnEvent(rec.time, rec.detail["downtime"], rec.detail["host"])
            for rec in self._injector.executed
        ]

    @property
    def skipped(self) -> int:
        return self._injector.skipped if self._injector else 0

    @property
    def disconnections(self) -> int:
        return len(self._injector.executed) if self._injector else 0
