"""The failure injector: a simulation process that executes a churn schedule.

For each :class:`~repro.churn.models.ChurnEvent` it fails a victim host
(interrupting its Daemon and destroying its mailboxes) and schedules the
recovery ``duration`` seconds later, after which the host's ``on_recover``
hooks re-boot a fresh Daemon that re-registers with the Super-Peer network —
the full disconnection/reconnection cycle of §7.

The injector records what it actually did as a :class:`TraceChurn`-able
event list, so a run can be replayed against a different engine (the
sync-vs-async ablation depends on this).
"""

from __future__ import annotations

from repro.churn.models import ChurnEvent, ChurnModel
from repro.des import Simulator
from repro.net.host import Host
from repro.util.logging import EventLog
from repro.util.rng import RngTree

__all__ = ["ChurnInjector"]


class ChurnInjector:
    """Executes a churn schedule against a pool of victim hosts."""

    def __init__(
        self,
        sim: Simulator,
        hosts: list[Host],
        model: ChurnModel,
        rng: RngTree,
        horizon: float,
        log: EventLog | None = None,
        victim_filter=None,
    ):
        """``victim_filter(host) -> bool`` narrows random victim selection
        (e.g. to hosts currently running a task, matching the paper's
        disconnection of *computing* peers); when no host passes the
        filter, selection falls back to any alive host."""
        if not hosts:
            raise ValueError("need at least one victim host")
        self.sim = sim
        self.hosts = list(hosts)
        self.model = model
        self.rng = rng
        self.log = log
        self.victim_filter = victim_filter
        self.schedule = model.schedule(rng.child("schedule"), horizon)
        self.executed: list[ChurnEvent] = []
        self.skipped = 0  # events with no alive victim available
        self.process = sim.process(self._run(), label="churn-injector")

    def _pick_victim(self, event: ChurnEvent) -> Host | None:
        if event.host is not None:
            host = next((h for h in self.hosts if h.name == event.host), None)
            return host if host is not None and host.online else None
        alive = [h for h in self.hosts if h.online]
        if not alive:
            return None
        if self.victim_filter is not None:
            preferred = [h for h in alive if self.victim_filter(h)]
            if preferred:
                alive = preferred
        return self.rng.child("victim", len(self.executed) + self.skipped).choice(alive)

    def _run(self):
        for event in self.schedule:
            delay = event.time - self.sim.now
            if delay > 0:
                yield self.sim.timeout(delay)
            victim = self._pick_victim(event)
            if victim is None:
                self.skipped += 1
                if self.log is not None:
                    self.log.emit(self.sim.now, "churn", "churn_skipped")
                continue
            victim.fail(cause="churn")
            self.executed.append(ChurnEvent(self.sim.now, event.duration, victim.name))
            if self.log is not None:
                self.log.emit(self.sim.now, "churn", "disconnect",
                              host=victim.name, duration=event.duration)
            self.sim.process(self._recover_later(victim, event.duration),
                             label=f"churn-recover:{victim.name}")

    def _recover_later(self, host: Host, duration: float):
        yield self.sim.timeout(duration)
        host.recover()
        if self.log is not None:
            self.log.emit(self.sim.now, "churn", "reconnect", host=host.name)

    @property
    def disconnections(self) -> int:
        return len(self.executed)
