"""The threaded execution engine.

``mode="async"`` — one free-running thread per task, exactly the JaceP2P
iteration discipline: read whatever is fresh, iterate, publish, never wait.
``mode="sync"`` — the same threads with a :class:`threading.Barrier` per
superstep (the BSP contrast).

Global convergence mirrors §5.5: a shared stable-bit array guarded by a
lock; the thread that flips the last bit to 1 sets the stop flag that every
thread polls between iterations.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.convergence import LocalConvergenceDetector
from repro.errors import TaskError
from repro.p2p.messages import AppSpec
from repro.p2p.task import Task, TaskContext
from repro.local.channels import MailboxSet
from repro.util.timer import WallTimer

__all__ = ["ThreadedEngine", "LocalResult"]


@dataclass
class LocalResult:
    """Outcome of one threaded run."""

    converged: bool
    wall_time: float
    mode: str
    iterations: dict[int, int] = field(default_factory=dict)
    useless_iterations: dict[int, int] = field(default_factory=dict)
    fragments: dict[int, Any] = field(default_factory=dict)

    @property
    def total_iterations(self) -> int:
        return sum(self.iterations.values())


class ThreadedEngine:
    """Run an AppSpec on real threads."""

    def __init__(
        self,
        app: AppSpec,
        mode: str = "async",
        convergence_threshold: float = 1e-6,
        stability_window: int = 3,
        max_iterations: int = 100_000,
        pace_sleep: float = 1e-4,
    ):
        """``pace_sleep`` briefly yields the GIL between iterations so the
        OS scheduler interleaves the workers; without it one thread can run
        a whole burst of iterations on stale data.  In asynchronous mode
        the stability detector is additionally fed only on iterations that
        received fresh neighbour data — judging stability on actual
        exchanges, not on spinning (the naive §5.5 detector is vulnerable
        to exactly that on real thread schedulers)."""
        if mode not in ("async", "sync"):
            raise ValueError("mode must be 'async' or 'sync'")
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if pace_sleep < 0:
            raise ValueError("pace_sleep must be >= 0")
        self.app = app
        self.mode = mode
        self.pace_sleep = pace_sleep
        self.threshold = (
            app.convergence_threshold
            if app.convergence_threshold is not None
            else convergence_threshold
        )
        self.window = (
            app.stability_window if app.stability_window is not None else stability_window
        )
        self.max_iterations = max_iterations

    def run(self) -> LocalResult:
        app = self.app
        n = app.num_tasks
        mailboxes = MailboxSet(n)
        stop = threading.Event()
        state_lock = threading.Lock()
        stable = [False] * n
        errors: list[BaseException] = []
        result = LocalResult(converged=False, wall_time=0.0, mode=self.mode)
        iterations = [0] * n
        useless = [0] * n
        fragments: list[Any] = [None] * n
        barrier = threading.Barrier(n) if self.mode == "sync" else None

        def mark_state(task_id: int, is_stable: bool) -> None:
            with state_lock:
                stable[task_id] = is_stable
                if all(stable):
                    stop.set()

        def worker(task_id: int) -> None:
            try:
                task: Task = app.task_factory()
                task.setup(TaskContext(app.app_id, task_id, n, app.params))
                task.load_state(task.initial_state())
                detector = LocalConvergenceDetector(self.threshold, self.window)
                while not stop.is_set() and iterations[task_id] < self.max_iterations:
                    inbox = mailboxes.collect(task_id)
                    step = task.iterate(inbox)
                    iterations[task_id] += 1
                    fresh = bool(inbox) or n == 1
                    if not fresh:
                        useless[task_id] += 1
                    for dst, payload in step.outgoing.items():
                        if 0 <= dst < n and dst != task_id:
                            mailboxes.send(task_id, dst, payload)
                    judge = fresh or self.mode == "sync"
                    if judge and detector.update(step.local_distance):
                        mark_state(task_id, detector.stable)
                    if barrier is not None:
                        try:
                            barrier.wait(timeout=60.0)
                        except threading.BrokenBarrierError:
                            break
                    elif self.pace_sleep:
                        time.sleep(self.pace_sleep)
                if barrier is not None:
                    # release any peer already parked at the barrier: we are
                    # leaving, so the superstep can never complete
                    barrier.abort()
                fragments[task_id] = task.solution_fragment()
            except BaseException as exc:  # noqa: BLE001 - surfaced in run()
                errors.append(exc)
                stop.set()
                if barrier is not None:
                    barrier.abort()

        threads = [
            threading.Thread(target=worker, args=(k,), name=f"{app.app_id}-task{k}")
            for k in range(n)
        ]
        with WallTimer() as timer:
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=600.0)
        if errors:
            raise TaskError(f"worker thread failed: {errors[0]!r}") from errors[0]

        result.converged = all(stable)
        result.wall_time = timer.elapsed
        result.iterations = {k: iterations[k] for k in range(n)}
        result.useless_iterations = {k: useless[k] for k in range(n)}
        result.fragments = {k: fragments[k] for k in range(n)}
        return result
