"""Thread-safe last-write-wins channels.

The asynchronous model's mailbox semantics (§4.1): a receiver only ever
wants the *freshest* value from each neighbour; older unconsumed values are
worthless and are overwritten.  :class:`LatestValueChannel` is that cell;
:class:`MailboxSet` groups one cell per (src → dst) pair for a whole
application.
"""

from __future__ import annotations

import threading
from typing import Any

__all__ = ["LatestValueChannel", "MailboxSet"]


class LatestValueChannel:
    """A single-slot overwrite-on-put channel."""

    __slots__ = ("_lock", "_value", "_fresh", "puts", "overwrites")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value: Any = None
        self._fresh = False
        self.puts = 0
        self.overwrites = 0

    def put(self, value: Any) -> None:
        with self._lock:
            if self._fresh:
                self.overwrites += 1
            self._value = value
            self._fresh = True
            self.puts += 1

    def take(self) -> tuple[bool, Any]:
        """(fresh, value): pops the value if fresh, else (False, None)."""
        with self._lock:
            if not self._fresh:
                return (False, None)
            self._fresh = False
            value, self._value = self._value, None
            return (True, value)

    def peek(self) -> tuple[bool, Any]:
        with self._lock:
            return (self._fresh, self._value)


class MailboxSet:
    """One channel per (src, dst) pair of an n-task application."""

    def __init__(self, num_tasks: int):
        if num_tasks < 1:
            raise ValueError("num_tasks must be >= 1")
        self.num_tasks = num_tasks
        self._channels: dict[tuple[int, int], LatestValueChannel] = {
            (s, d): LatestValueChannel()
            for s in range(num_tasks)
            for d in range(num_tasks)
            if s != d
        }

    def channel(self, src: int, dst: int) -> LatestValueChannel:
        return self._channels[(src, dst)]

    def send(self, src: int, dst: int, value: Any) -> None:
        self._channels[(src, dst)].put(value)

    def collect(self, dst: int) -> dict[int, Any]:
        """Fresh values addressed to ``dst``, consuming them."""
        inbox: dict[int, Any] = {}
        for src in range(self.num_tasks):
            if src == dst:
                continue
            fresh, value = self._channels[(src, dst)].take()
            if fresh:
                inbox[src] = value
        return inbox
