"""``repro.local`` — a *real* (non-simulated) asynchronous execution engine.

Runs the same :class:`~repro.p2p.task.Task` applications with genuine Python
threads and thread-safe last-write-wins channels: one thread per task,
nobody waits for anybody (asynchronous mode), or everybody barriers each
superstep (synchronous mode, for comparison).

This backend demonstrates the library's asynchronous semantics outside the
simulator.  Per the repro-band note in DESIGN.md: CPython's GIL limits the
*speedup* of multithreaded numeric code (NumPy kernels release the GIL, pure
Python does not), so timing claims in the benchmarks use the simulator; this
engine is about correctness of the chaotic execution on real concurrency.
"""

from repro.local.channels import LatestValueChannel, MailboxSet
from repro.local.executor import ThreadedEngine, LocalResult

__all__ = ["LatestValueChannel", "MailboxSet", "ThreadedEngine", "LocalResult"]
