"""A bounded peer store with deterministic eviction scoring.

The store is the agent's whole view of the overlay: at most ``limit``
entries, each remembering a peer's id, role, address, the last time it was
heard from and how many consecutive probes to it have failed.  When a
newcomer arrives at a full store the *worst* incumbent is scored by the
tuple ``(consecutive failures, staleness, address)`` — largest first — and
evicted only if it has actually misbehaved (failed a probe, or gone stale
past ``stale_after``); a store full of healthy peers rejects the newcomer
instead.  Scoring never draws randomness, so two runs with the same message
history hold bit-identical views.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.address import Address
from repro.util.rng import RngTree

__all__ = ["PeerRecord", "PeerStore"]


@dataclass
class PeerRecord:
    """One membership entry."""

    peer_id: str
    role: str
    address: Address
    last_seen: float
    fails: int = 0

    def entry(self) -> tuple[str, str, Address]:
        """The wire form shipped in PEERS_LIST replies and push samples."""
        return (self.peer_id, self.role, self.address)


class PeerStore:
    """Bounded membership view keyed by address."""

    def __init__(self, limit: int, stale_after: float):
        self.limit = limit
        self.stale_after = stale_after
        self._peers: dict[Address, PeerRecord] = {}
        self.evictions = 0
        self.rejections = 0

    def __len__(self) -> int:
        return len(self._peers)

    def __contains__(self, address: Address) -> bool:
        return address in self._peers

    def records(self) -> list[PeerRecord]:
        return list(self._peers.values())

    def get(self, address: Address) -> PeerRecord | None:
        return self._peers.get(address)

    # -- upserts ---------------------------------------------------------------

    def upsert(self, peer_id: str, role: str, address: Address, now: float,
               *, heard: bool) -> PeerRecord | None:
        """Learn (or refresh) a peer; returns the evicted record, if any.

        ``heard=True`` means the information is first-hand (a message from
        the peer itself): the record's liveness clock resets and its probe
        failures clear.  ``heard=False`` is hearsay from a peer sample:
        a known peer is *not* refreshed (hearsay must never keep a dead
        peer looking alive), only unknown peers are admitted.
        """
        record = self._peers.get(address)
        if record is not None:
            record.peer_id = peer_id
            record.role = role
            if heard:
                record.last_seen = now
                record.fails = 0
            return None
        evicted = None
        if len(self._peers) >= self.limit:
            evicted = self._evict_candidate(now)
            if evicted is None:
                self.rejections += 1
                return None
            del self._peers[evicted.address]
            self.evictions += 1
        self._peers[address] = PeerRecord(
            peer_id=peer_id, role=role, address=address,
            last_seen=now if heard else now - self.stale_after / 2,
        )
        return evicted

    def _evict_candidate(self, now: float) -> PeerRecord | None:
        """The worst incumbent, by ``(fails, staleness, address)`` — or
        None when every incumbent is healthy (newcomer rejected)."""
        worst = max(
            self._peers.values(),
            key=lambda r: (r.fails, now - r.last_seen, str(r.address)),
        )
        if worst.fails > 0 or (now - worst.last_seen) > self.stale_after:
            return worst
        return None

    # -- liveness feedback -----------------------------------------------------

    def mark_alive(self, address: Address, now: float) -> None:
        record = self._peers.get(address)
        if record is not None:
            record.last_seen = now
            record.fails = 0

    def mark_failed(self, address: Address) -> None:
        record = self._peers.get(address)
        if record is not None:
            record.fails += 1

    def drop(self, address: Address) -> None:
        self._peers.pop(address, None)

    # -- deterministic sampling ------------------------------------------------

    def sample(self, rng: RngTree, k: int,
               exclude: Address | None = None) -> list[PeerRecord]:
        """Up to ``k`` records in a deterministic shuffled order.

        Candidates are sorted by address before shuffling, so the draw is
        a pure function of (seed, membership) — dict insertion order never
        leaks into the overlay's fanout pattern.
        """
        candidates = sorted(
            (r for r in self._peers.values() if r.address != exclude),
            key=lambda r: str(r.address),
        )
        if not candidates:
            return []
        if len(candidates) <= k:
            return candidates
        return rng.shuffled(candidates)[:k]

    def addresses_of_role(self, role: str) -> list[Address]:
        """Known addresses for a role, sorted for deterministic iteration."""
        return sorted(
            (r.address for r in self._peers.values() if r.role == role),
            key=str,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<PeerStore {len(self._peers)}/{self.limit}>"
