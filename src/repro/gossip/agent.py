"""The gossip agent: discovery plus push-rumor dissemination rounds.

One :class:`GossipAgent` per entity, served under the well-known object
name ``"gossip"`` on the entity's *existing* :class:`~repro.rmi.RmiRuntime`
(Daemon, Super-Peer, Spawner and standby ports all double as gossip
endpoints — no extra sockets).  The protocol is the classic three-message
discovery plus anti-entropy push:

* ``hello(peer_id, role, address)`` — first contact / liveness announce;
* ``get_peers(max) -> PEERS_LIST`` — a bounded pull of the receiver's view;
* ``push(sender, peer_sample, rumors)`` — one dissemination round: a
  sample of the sender's membership view piggybacked on its rumor map.

Rumors are versioned key/value pairs merged by highest version (versions
are tuples, typically ``(epoch, seq)``, so stale incarnations lose by
construction — the epoch guard the distributed convergence detector needs).
Every stochastic choice (round phase, fanout targets, probe victims,
exchange samples) draws from ``RngTree.child("gossip")`` descendants keyed
by the round number, so a reseeded rerun reproduces the exact overlay
traffic bit for bit.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import RemoteError
from repro.gossip.peers import PeerStore
from repro.net.address import Address
from repro.p2p.config import P2PConfig
from repro.rmi import RemoteObject, RmiRuntime, Stub, remote
from repro.util.rng import RngTree

__all__ = ["GOSSIP_OBJECT", "GossipAgent"]

#: name under which every gossip agent exports itself
GOSSIP_OBJECT = "gossip"

#: roles whose peers are *always* pushed to, on top of the random fanout —
#: control-plane sinks (the Spawner's epidemic convergence array, the
#: standby's failure detector) must hear every round, not eventually
PRIORITY_ROLES = ("spawner", "standby")


class GossipAgent(RemoteObject):
    """Membership + rumor dissemination for one entity."""

    def __init__(
        self,
        runtime: RmiRuntime,
        peer_id: str,
        role: str,
        config: P2PConfig,
        rng: RngTree,
        seeds: list[Address] | None = None,
        registry=None,
        log=None,
    ):
        self.runtime = runtime
        self.sim = runtime.sim
        self.host = runtime.host
        self.peer_id = peer_id
        self.role = role
        self.config = config
        self.rng = rng
        self.seeds = [a for a in (seeds or []) if a != runtime.address]
        self.registry = registry
        self.log = log
        self.address = runtime.address
        self.store = PeerStore(
            limit=config.gossip_peer_limit,
            stale_after=config.gossip_stale_after,
        )
        #: versioned rumor map: key -> (version tuple, value)
        self.rumors: dict[Any, tuple[tuple, Any]] = {}
        self._subscribers: list[tuple[tuple, Callable]] = []
        self.pushes_sent = 0
        self.pushes_received = 0
        self.rumors_merged = 0
        self.hellos_received = 0
        self.stub = runtime.serve(self, GOSSIP_OBJECT)
        self._round_no = 0
        self.host.spawn(self._rounds(), label=f"gossip:{peer_id}")

    # -- remote interface (HELLO / GET_PEERS / PEERS_LIST / PUSH) -------------

    @remote
    def hello(self, peer_id: str, role: str, address: Address) -> bool:
        """First-contact announce: admit the sender into the view."""
        self.hellos_received += 1
        self._learn(peer_id, role, address, heard=True)
        self._trace("hello", peer=peer_id, role=role)
        return True

    @remote
    def get_peers(self, max_n: int) -> list[tuple[str, str, Address]]:
        """PEERS_LIST: a bounded dump of this agent's membership view."""
        records = self.store.records()
        records.sort(key=lambda r: str(r.address))
        out = [r.entry() for r in records[: max(0, int(max_n))]]
        self._trace("peers_list", served=len(out))
        return out

    @remote
    def push(
        self,
        sender_id: str,
        sender_role: str,
        sender_address: Address,
        peer_sample: list[tuple[str, str, Address]],
        rumors: dict,
    ) -> None:
        """One incoming dissemination round: merge membership + rumors."""
        self.pushes_received += 1
        self._count("gossip_pushes_received")
        self._learn(sender_id, sender_role, sender_address, heard=True)
        for pid, role, addr in peer_sample:
            self._learn(pid, role, addr, heard=False)
        merged = 0
        for key, (version, value) in rumors.items():
            merged += self._merge(key, tuple(version), value)
        if merged:
            self._count("gossip_rumors_merged", n=merged)
        self._trace("push_recv", sender=sender_id, merged=merged)

    @remote
    def ping(self) -> bool:
        return True

    # -- local API (the overlays: discovery, convergence, failover) -----------

    def add_seeds(self, addresses: list[Address]) -> None:
        for addr in addresses:
            if addr != self.address and addr not in self.seeds:
                self.seeds.append(addr)

    def known_addresses(self, role: str) -> list[Address]:
        """Gossip-learned addresses of a role (deterministic order)."""
        return self.store.addresses_of_role(role)

    def set_rumor(self, key: Any, version: tuple, value: Any) -> bool:
        """Publish (or refresh) a rumor locally; spreads on the next round."""
        return bool(self._merge(key, tuple(version), value))

    def rumor(self, key: Any) -> tuple[tuple, Any] | None:
        return self.rumors.get(key)

    def subscribe(self, key_prefix: tuple, callback: Callable) -> None:
        """``callback(key, version, value)`` on every merge whose key starts
        with ``key_prefix``."""
        self._subscribers.append((tuple(key_prefix), callback))

    # -- internals --------------------------------------------------------------

    def _learn(self, peer_id: str, role: str, address: Address,
               *, heard: bool) -> None:
        if address == self.address:
            return
        evicted = self.store.upsert(peer_id, role, address, self.sim.now,
                                    heard=heard)
        if evicted is not None:
            self._count("gossip_peers_evicted")
            self._trace("evict", peer=evicted.peer_id, fails=evicted.fails)

    def _merge(self, key: Any, version: tuple, value: Any) -> int:
        held = self.rumors.get(key)
        if held is not None and held[0] >= version:
            return 0
        self.rumors[key] = (version, value)
        self.rumors_merged += 1
        for prefix, callback in self._subscribers:
            if key[: len(prefix)] == prefix:
                callback(key, version, value)
        return 1

    # -- the dissemination loop --------------------------------------------------

    def _rounds(self):
        """HELLO the seeds, pull one PEERS_LIST, then push-gossip forever."""
        for addr in self.seeds:
            self.runtime.oneway(Stub(GOSSIP_OBJECT, addr), "hello",
                                self.peer_id, self.role, self.address)
        # deterministic phase stagger: agents created in the same instant
        # must not all fire their rounds on the same timestep forever
        yield self.sim.timeout(
            self.rng.child("phase").uniform(0.0, self.config.gossip_period)
        )
        if self.seeds:
            yield from self._pull(self.seeds[0])
        while self.runtime.alive:
            self._push_round()
            self._probe_round()
            self._round_no += 1
            yield self.sim.timeout(self.config.gossip_period)

    def _pull(self, addr: Address):
        """GET_PEERS against one contact (discovery bootstrap)."""
        try:
            entries = yield self.runtime.call(
                Stub(GOSSIP_OBJECT, addr), "get_peers",
                self.config.gossip_peer_limit,
                timeout=self.config.call_timeout,
            )
        except RemoteError:
            self.store.mark_failed(addr)
            return
        for pid, role, address in entries:
            self._learn(pid, role, address, heard=False)
        self._trace("pull", contact=str(addr), learned=len(entries))

    def _push_round(self) -> None:
        rng = self.rng.child("round", self._round_no)
        targets = self.store.sample(rng, self.config.gossip_fanout)
        chosen = {t.address for t in targets}
        # priority sinks hear every round (bounded: one spawner + one standby)
        for record in self.store.records():
            if record.role in PRIORITY_ROLES and record.address not in chosen:
                targets.append(record)
                chosen.add(record.address)
        if not targets:
            return
        sample = [
            r.entry()
            for r in self.store.sample(rng.child("exchange"),
                                       self.config.gossip_exchange)
        ]
        rumors = dict(self.rumors)
        for record in targets:
            self.runtime.oneway(
                Stub(GOSSIP_OBJECT, record.address), "push",
                self.peer_id, self.role, self.address, sample, rumors,
            )
            self.pushes_sent += 1
        self._count("gossip_pushes_sent", n=len(targets))
        self._trace("push", targets=len(targets), rumors=len(rumors))

    def _probe_round(self) -> None:
        """Ping one deterministic victim per round: the liveness feedback
        the eviction score's ``fails`` component runs on."""
        victims = self.store.sample(self.rng.child("probe", self._round_no), 1)
        if victims:
            self.host.spawn(self._probe(victims[0].address),
                            label=f"gossip:{self.peer_id}:probe")

    def _probe(self, address: Address):
        try:
            yield self.runtime.call(
                Stub(GOSSIP_OBJECT, address), "ping",
                timeout=min(self.config.call_timeout, self.config.gossip_period),
            )
        except RemoteError:
            self.store.mark_failed(address)
            self._count("gossip_probe_failures")
            self._trace("probe_fail", peer=str(address))
        else:
            self.store.mark_alive(address, self.sim.now)

    # -- observability ------------------------------------------------------------

    def _count(self, name: str, n: int = 1, **labels) -> None:
        if self.registry is not None:
            self.registry.counter(name, GOSSIP_METRIC_HELP[name]).inc(n, **labels)

    def _trace(self, kind: str, **attrs) -> None:
        tr = self.sim.tracer
        if tr.enabled:
            tr.emit(self.sim.now, "gossip", self.peer_id, kind, **attrs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<GossipAgent {self.peer_id} role={self.role} "
                f"peers={len(self.store)} rumors={len(self.rumors)}>")


GOSSIP_METRIC_HELP = {
    "gossip_pushes_sent": "push-gossip rounds' messages sent",
    "gossip_pushes_received": "push-gossip messages received",
    "gossip_rumors_merged": "rumor versions adopted from peers",
    "gossip_peers_evicted": "peer-store evictions (bounded view)",
    "gossip_probe_failures": "liveness probes that timed out",
}
