"""Epidemic membership and dissemination (the decentralized control plane).

The JaceP2P paper's control plane is centralized twice over: Daemons find
the network through a hardcoded Super-Peer list (§5.1) and the Spawner
centralizes both liveness and the convergence array (§5.3/§5.5) — the
scalability ceiling §8 acknowledges.  This package supplies the epidemic
substrate the robustness upgrades ride on:

* :class:`~repro.gossip.peers.PeerStore` — a bounded membership view with
  deterministic eviction scoring (Sens et al.'s partial-connectivity
  failure detectors assume exactly such a bounded, churning view);
* :class:`~repro.gossip.agent.GossipAgent` — HELLO / GET_PEERS /
  PEERS_LIST discovery plus push-gossip rumor rounds, served on an
  entity's *existing* RMI runtime (no extra ports) and seeded from
  ``RngTree.child("gossip")`` so runs stay replayable.

Everything it does is observable: ``gossip/*`` trace events through the
kernel tracer and ``gossip_*`` counters through :mod:`repro.obs`.
"""

from repro.gossip.agent import GOSSIP_OBJECT, GossipAgent
from repro.gossip.peers import PeerRecord, PeerStore

__all__ = ["GOSSIP_OBJECT", "GossipAgent", "PeerRecord", "PeerStore"]
